#include "service/query_service.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "relational/engine.h"
#include "sampler/monte_carlo.h"

namespace licm::service {

namespace {

// Cached series pointers for the request lifecycle (registration is
// mutex-guarded; updates after that are lock-free relaxed adds).
struct ServiceMetrics {
  metrics::Counter* admitted;
  metrics::Counter* rejected_overload;
  metrics::Counter* failed;
  metrics::Counter* completed;
  metrics::Counter* degraded;
  metrics::Counter* deadline_expired;
  metrics::Counter* slow_queries;
  metrics::Counter* mutations;
  metrics::Gauge* queue_depth;
  metrics::Gauge* inflight;
  metrics::Gauge* instances;
  metrics::Histogram* queue_ms;
  metrics::Histogram* solve_ms;
  metrics::Histogram* sample_ms;
  metrics::Histogram* total_ms;

  static const ServiceMetrics& Get() {
    static const ServiceMetrics m;
    return m;
  }

 private:
  ServiceMetrics() {
    auto& reg = metrics::MetricsRegistry::Default();
    admitted = reg.GetCounter("licm_requests_total");
    rejected_overload = reg.GetCounter("licm_requests_rejected_total",
                                       {{"reason", "overload"}});
    failed = reg.GetCounter("licm_requests_failed_total");
    completed = reg.GetCounter("licm_requests_completed_total");
    degraded = reg.GetCounter("licm_requests_degraded_total");
    deadline_expired = reg.GetCounter("licm_deadline_expired_total");
    slow_queries = reg.GetCounter("licm_slow_queries_total");
    mutations = reg.GetCounter("licm_mutations_total");
    queue_depth = reg.GetGauge("licm_queue_depth");
    inflight = reg.GetGauge("licm_inflight");
    instances = reg.GetGauge("licm_instances");
    queue_ms = reg.GetHistogram("licm_request_queue_ms");
    solve_ms = reg.GetHistogram("licm_request_solve_ms");
    sample_ms = reg.GetHistogram("licm_request_sample_ms");
    total_ms = reg.GetHistogram("licm_request_total_ms");
  }
};

// Short root-aggregate description for slow-query records and the
// per-query metric label ("COUNT(*)", "SUM(price)", ...). The label
// cardinality stays bounded by the schema's aggregate columns, which the
// service owner controls (DESIGN.md §12).
std::string QueryAggLabel(const rel::QueryNode& query) {
  switch (query.kind) {
    case rel::QueryKind::kCountStar:
      return "COUNT(*)";
    case rel::QueryKind::kSum:
      return "SUM(" + query.sum_column + ")";
    case rel::QueryKind::kMin:
      return "MIN(" + query.sum_column + ")";
    case rel::QueryKind::kMax:
      return "MAX(" + query.sum_column + ")";
    default:
      return "?";
  }
}

// Per-instance version gauge (registry lookup with a label match; mutation
// and load granularity, not the query hot path).
void SetVersionGauge(const std::string& instance, uint64_t version) {
  metrics::MetricsRegistry::Default()
      .GetGauge("licm_instance_version", {{"instance", instance}})
      ->Set(static_cast<double>(version));
}

}  // namespace

QueryService::QueryService(ServiceConfig config)
    : config_([&] {
        ServiceConfig c = config;
        if (c.num_workers < 1) c.num_workers = 1;
        if (c.degraded_worlds < 1) c.degraded_worlds = 1;
        return c;
      }()),
      scheduler_(config_.solver_threads) {
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  std::vector<std::shared_ptr<Pending>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Fail queued-but-unstarted requests instead of leaving their callers
    // blocked forever. (Well-behaved owners don't destroy the service
    // with callers still inside Execute; this is the safety net.)
    for (auto& p : queue_) {
      p->outcome = Status::Internal("service stopped");
      if (p->callback) {
        orphaned.push_back(p);  // delivered below, off the lock
      } else {
        p->done = true;
        p->done_cv.notify_all();
      }
    }
    queue_.clear();
  }
  for (auto& p : orphaned) {
    ResponseCallback cb = std::move(p->callback);
    cb(*p->outcome);
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

Status QueryService::AddInstance(
    std::string name, LicmDatabase db,
    std::optional<sampler::WorldStructure> structure) {
  return LoadInstance(std::move(name), std::move(db), std::move(structure),
                      /*replace=*/false);
}

Status QueryService::LoadInstance(
    std::string name, LicmDatabase db,
    std::optional<sampler::WorldStructure> structure, bool replace) {
  if (structure.has_value()) {
    LICM_RETURN_NOT_OK(structure->Validate());
    if (structure->num_vars < db.pool().size()) {
      return Status::InvalidArgument(
          "structure covers fewer variables than the database pool");
    }
  }
  auto structure_ptr =
      std::make_shared<const std::optional<sampler::WorldStructure>>(
          std::move(structure));

  std::shared_ptr<MutableInstance> existing;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = instances_.find(name);
    if (it == instances_.end()) {
      Instance entry;
      entry.inst = std::make_shared<MutableInstance>(std::move(db),
                                                     config_.cache_capacity);
      entry.structure = std::move(structure_ptr);
      SetVersionGauge(name, entry.inst->version());
      instances_.emplace(std::move(name), std::move(entry));
      ServiceMetrics::Get().instances->Set(
          static_cast<double>(instances_.size()));
      return Status::OK();
    }
    if (!replace) {
      return Status::AlreadyExists("instance '" + it->first +
                                   "' already registered (load with "
                                   "replace=true to swap it)");
    }
    existing = it->second.inst;
    it->second.structure = std::move(structure_ptr);
  }
  // Commit the swap through the instance's own MVCC path, off the service
  // lock: in-flight requests keep their admission-time snapshot.
  const licm::MutationResult r = existing->Replace(std::move(db));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++mutations_;
  }
  ServiceMetrics::Get().mutations->Increment();
  SetVersionGauge(name, r.version);
  return Status::OK();
}

Result<uint64_t> QueryService::VersionOf(const std::string& name) const {
  LICM_ASSIGN_OR_RETURN(std::shared_ptr<MutableInstance> inst,
                        GetInstance(name));
  return inst->version();
}

Result<std::shared_ptr<MutableInstance>> QueryService::GetInstance(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instances_.find(name);
  if (it == instances_.end()) {
    return Status::NotFound("unknown instance '" + name + "'");
  }
  return it->second.inst;
}

Result<licm::MutationResult> QueryService::Mutate(
    const std::string& instance,
    const std::function<Result<licm::MutationResult>(MutableInstance&)>& fn) {
  LICM_ASSIGN_OR_RETURN(std::shared_ptr<MutableInstance> inst,
                        GetInstance(instance));
  telemetry::ScopedSpan span("service", "mutate");
  LICM_ASSIGN_OR_RETURN(licm::MutationResult r, fn(*inst));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++mutations_;
  }
  ServiceMetrics::Get().mutations->Increment();
  SetVersionGauge(instance, r.version);
  telemetry::Instant(
      "service", "mutation_commit",
      {{"version", static_cast<double>(r.version)},
       {"dirty_components", static_cast<double>(r.dirty_components)}});
  return r;
}

Result<licm::MutationResult> QueryService::AppendTuples(
    const std::string& instance, const std::string& relation,
    const std::vector<RowSpec>& rows) {
  return Mutate(instance, [&](MutableInstance& inst) {
    return inst.AppendTuples(relation, rows);
  });
}

Result<licm::MutationResult> QueryService::RetractTuples(
    const std::string& instance, const std::string& relation,
    const std::vector<rel::Tuple>& rows) {
  return Mutate(instance, [&](MutableInstance& inst) {
    return inst.RetractTuples(relation, rows);
  });
}

Result<licm::MutationResult> QueryService::EditConstraintRhs(
    const std::string& instance, size_t index, ConstraintOp op, int64_t rhs) {
  return Mutate(instance, [&](MutableInstance& inst) {
    return inst.EditConstraintRhs(index, op, rhs);
  });
}

Result<licm::MutationResult> QueryService::AddConstraint(
    const std::string& instance, LinearConstraint c) {
  return Mutate(instance, [&](MutableInstance& inst) {
    return inst.AddConstraint(std::move(c));
  });
}

std::vector<std::string> QueryService::InstanceNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(instances_.size());
  for (const auto& [name, inst] : instances_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void QueryService::SetSolveHookForTest(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  solve_hook_ = std::move(hook);
}

Status QueryService::AdmitLocked(const std::shared_ptr<Pending>& pending) {
  const QueryRequest& request = pending->request;
  if (request.query == nullptr || !rel::IsAggregate(*request.query)) {
    return Status::InvalidArgument(
        "request query must have an aggregate root");
  }
  if (stopping_) return Status::Internal("service stopped");
  auto inst_it = instances_.find(request.instance);
  if (inst_it == instances_.end()) {
    return Status::NotFound("unknown instance '" + request.instance + "'");
  }
  const double budget = request.deadline_s < 0.0 ? config_.default_deadline_s
                                                 : request.deadline_s;
  // The budget starts at admission: queue wait spends it, so an admitted
  // request can never occupy a worker longer than its deadline plus the
  // degraded sampling pass.
  pending->deadline = Deadline::After(budget);
  pending->enqueue_ns = telemetry::NowNs();
  // MVCC capture: the snapshot taken here — before admission completes —
  // is what the worker answers against, so mutations committing while the
  // request waits in the queue cannot change its view.
  pending->inst = inst_it->second.inst;
  pending->snap = inst_it->second.inst->snapshot();
  pending->structure = inst_it->second.structure;
  if (queue_.size() >= config_.max_queue) {
    ++rejected_overload_;
    ServiceMetrics::Get().rejected_overload->Increment();
    telemetry::Instant("service", "overloaded",
                       {{"queue_depth", static_cast<double>(queue_.size())}});
    return Status::Overloaded(
        "queue full (" + std::to_string(queue_.size()) + " waiting, " +
        std::to_string(inflight_) + " in flight)");
  }
  ++admitted_;
  queue_.push_back(pending);
  ServiceMetrics::Get().admitted->Increment();
  ServiceMetrics::Get().queue_depth->Set(static_cast<double>(queue_.size()));
  telemetry::Instant("service", "enqueue",
                     {{"queue_depth", static_cast<double>(queue_.size())}});
  work_cv_.notify_one();
  return Status::OK();
}

Result<QueryResponse> QueryService::Execute(const QueryRequest& request) {
  auto pending = std::make_shared<Pending>();
  pending->request = request;

  std::unique_lock<std::mutex> lock(mu_);
  LICM_RETURN_NOT_OK(AdmitLocked(pending));
  pending->done_cv.wait(lock, [&] { return pending->done; });
  return std::move(*pending->outcome);
}

void QueryService::ExecuteAsync(QueryRequest request, ResponseCallback done) {
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->callback = std::move(done);
  Status admitted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    admitted = AdmitLocked(pending);
  }
  if (!admitted.ok()) {
    // Admission failures complete inline, off the service lock — the
    // callback may re-enter the service (e.g. a coalescer fanning out
    // an overload to its waiters).
    ResponseCallback cb = std::move(pending->callback);
    cb(Result<QueryResponse>(admitted));
  }
}

void QueryService::WorkerLoop() {
  while (true) {
    std::shared_ptr<Pending> pending;
    std::function<void()> hook;
    double queue_ms = 0.0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_
      pending = queue_.front();
      queue_.pop_front();
      ++inflight_;
      hook = solve_hook_;
      queue_ms = static_cast<double>(telemetry::NowNs() -
                                     pending->enqueue_ns) /
                 1e6;
      ServiceMetrics::Get().queue_depth->Set(
          static_cast<double>(queue_.size()));
      ServiceMetrics::Get().inflight->Set(static_cast<double>(inflight_));
    }
    telemetry::Instant("service", "admit", {{"queue_ms", queue_ms}});
    if (hook) hook();

    Result<QueryResponse> outcome = Process(*pending, queue_ms);

    telemetry::ScopedSpan respond_span("service", "respond");
    const ServiceMetrics& m = ServiceMetrics::Get();
    m.queue_ms->Observe(queue_ms);
    if (outcome.ok()) {
      m.completed->Increment();
      if (outcome->degraded) m.degraded->Increment();
      if (pending->deadline.Expired()) m.deadline_expired->Increment();
      m.solve_ms->Observe(outcome->solve_ms);
      m.sample_ms->Observe(outcome->sample_ms);
      m.total_ms->Observe(outcome->total_ms);
      // Per-instance latency series: registry lookup (mutex + label
      // match), acceptable at request granularity.
      metrics::MetricsRegistry::Default()
          .GetHistogram("licm_instance_request_total_ms",
                        {{"instance", pending->request.instance}})
          ->Observe(outcome->total_ms);
    } else {
      m.failed->Increment();
    }

    std::unique_lock<std::mutex> lock(mu_);
    --inflight_;
    m.inflight->Set(static_cast<double>(inflight_));
    if (outcome.ok()) {
      ++completed_;
      if (outcome->degraded) ++degraded_;
      solve_stats_.MergeFrom(outcome->stats);
      // SLO check: flush the request's phase breakdown into the bounded
      // slow-query ring (slo_ms < 0 disables, 0 captures everything).
      if (config_.slo_ms >= 0.0 && outcome->total_ms > config_.slo_ms &&
          config_.slowlog_capacity > 0) {
        SlowQueryRecord rec;
        rec.seq = slow_captured_++;
        rec.ts_s = uptime_watch_.ElapsedMs() / 1e3;
        rec.instance = pending->request.instance;
        rec.query = QueryAggLabel(*pending->request.query);
        rec.degraded = outcome->degraded;
        rec.slo_ms = config_.slo_ms;
        rec.queue_ms = outcome->queue_ms;
        rec.solve_ms = outcome->solve_ms;
        rec.sample_ms = outcome->sample_ms;
        rec.total_ms = outcome->total_ms;
        rec.min = outcome->min;
        rec.max = outcome->max;
        rec.stats = outcome->stats;
        slowlog_.push_back(std::move(rec));
        while (slowlog_.size() > config_.slowlog_capacity) {
          slowlog_.pop_front();
        }
        m.slow_queries->Increment();
        telemetry::Instant("service", "slow_query",
                           {{"total_ms", outcome->total_ms}});
      }
    } else {
      ++failed_;
    }
    pending->outcome = std::move(outcome);
    if (pending->callback) {
      // Async completion: deliver off the service lock (the callback may
      // re-enter the service — e.g. a coalescer follower resubmitting).
      lock.unlock();
      ResponseCallback cb = std::move(pending->callback);
      cb(*pending->outcome);
    } else {
      pending->done = true;
      pending->done_cv.notify_all();
    }
  }
}

Result<QueryResponse> QueryService::Process(const Pending& pending,
                                            double queue_ms) {
  const QueryRequest& request = pending.request;
  // The snapshot and structure were captured at admission (MVCC): no
  // instance lookup here — a concurrent mutation commit or replace-load
  // publishes a *new* snapshot and never touches this one.
  const MutableInstance::Snapshot& snap = *pending.snap;

  QueryResponse response;
  response.queue_ms = queue_ms;
  response.version = snap.version;
  StopWatch total_watch;

  AnswerOptions options;
  options.bounds.mip.deadline = &pending.deadline;
  options.bounds.mip.cache = pending.inst->cache();
  options.bounds.mip.incumbent_pool = pending.inst->incumbents();
  options.bounds.mip.scheduler = &scheduler_;

  telemetry::ScopedSpan solve_span("service", "solve");
  StopWatch solve_watch;
  // AnswerAggregate takes the database by value: each request evaluates
  // against its own copy, so concurrent requests never share the mutable
  // variable pool / constraint set the operators append to.
  auto answer = AnswerAggregate(*request.query, snap.db, options);
  response.solve_ms = solve_watch.ElapsedMs();
  solve_span.End();
  if (!answer.ok()) return answer.status();

  response.min = answer->bounds.min.value;
  response.max = answer->bounds.max.value;
  response.min_exact = answer->bounds.min.exact;
  response.max_exact = answer->bounds.max.exact;
  response.proved_min = answer->bounds.min.proved;
  response.proved_max = answer->bounds.max.proved;
  response.stats = answer->bounds.stats;

  if (!response.min_exact || !response.max_exact) {
    response.degraded = true;
    Degrade(request, snap.db, *pending.structure, &response);
  }
  response.total_ms = queue_ms + total_watch.ElapsedMs();
  return response;
}

void QueryService::Degrade(
    const QueryRequest& request, const LicmDatabase& db,
    const std::optional<sampler::WorldStructure>& structure,
    QueryResponse* response) {
  telemetry::ScopedSpan span("service", "degrade");
  const int worlds =
      request.mc_worlds > 0 ? request.mc_worlds : config_.degraded_worlds;
  const uint64_t seed =
      request.mc_seed != 0 ? request.mc_seed : config_.degraded_seed;
  StopWatch watch;

  double sample_min = 0.0, sample_max = 0.0;
  bool have_samples = false;
  int sampled = 0;
  // A structure compiled for an earlier version can no longer cover the
  // pool once appends allocate fresh variables — fall back to rejection
  // sampling rather than sample from a stale shape.
  const bool structure_usable =
      structure.has_value() && structure->num_vars >= db.pool().size();
  if (structure_usable) {
    sampler::MonteCarloOptions mco;
    mco.num_worlds = worlds;
    mco.seed = seed;
    auto mc = sampler::MonteCarloBounds(db, *structure, *request.query, mco);
    if (mc.ok()) {
      sample_min = mc->min;
      sample_max = mc->max;
      have_samples = true;
      sampled = static_cast<int>(mc->samples.size());
    }
  } else {
    // No sampling structure (e.g. an instance registered straight from
    // constraints): generic rejection sampling. Failure to find worlds
    // just means the response interval stays the proved one.
    Rng rng(seed);
    for (int i = 0; i < worlds; ++i) {
      auto assignment = sampler::SampleValidAssignment(
          db.constraints(), static_cast<uint32_t>(db.pool().size()), &rng);
      if (!assignment.ok()) break;
      rel::Database world = db.Instantiate(*assignment);
      auto value = rel::EvaluateAggregate(*request.query, world);
      if (!value.ok()) break;  // e.g. MIN over a world with an empty answer
      if (!have_samples || *value < sample_min) sample_min = *value;
      if (!have_samples || *value > sample_max) sample_max = *value;
      have_samples = true;
      ++sampled;
    }
  }
  response->sample_ms = watch.ElapsedMs();

  // Serve the containment hull: the proved outer interval (which always
  // contains the exact bounds, even when the search stopped at the root)
  // widened by anything a sampled world achieved outside it.
  response->min = response->proved_min;
  response->max = response->proved_max;
  if (have_samples) {
    response->has_samples = true;
    response->sample_min = sample_min;
    response->sample_max = sample_max;
    response->sample_worlds = sampled;
    response->min = std::min(response->min, sample_min);
    response->max = std::max(response->max, sample_max);
  }
}

ServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s;
  s.admitted = admitted_;
  s.rejected_overload = rejected_overload_;
  s.failed = failed_;
  s.completed = completed_;
  s.degraded = degraded_;
  s.queue_depth = queue_.size();
  s.inflight = inflight_;
  s.instances = instances_.size();
  s.slow_queries = slow_captured_;
  s.uptime_s = uptime_watch_.ElapsedMs() / 1e3;
  s.snapshot_seq = ++snapshot_seq_;
  s.solve = solve_stats_;
  s.mutations = mutations_;
  // Per-instance caches: report the sum so the wire stats keep their old
  // shape, plus the per-instance version vector (sorted for determinism).
  for (const auto& [name, instance] : instances_) {
    const solver::ComponentCacheStats c = instance.inst->cache()->Snapshot();
    s.cache.hits += c.hits;
    s.cache.misses += c.misses;
    s.cache.inserts += c.inserts;
    s.cache.evictions += c.evictions;
    s.cache.cross_epoch_hits += c.cross_epoch_hits;
    s.versions.emplace_back(name, instance.inst->version());
  }
  std::sort(s.versions.begin(), s.versions.end());
  return s;
}

std::vector<SlowQueryRecord> QueryService::SlowLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryRecord>(slowlog_.rbegin(), slowlog_.rend());
}

}  // namespace licm::service
