// Line-oriented JSON wire protocol of the query service (DESIGN.md §10).
//
// One request object per line in, one response object per line out, over
// either a TCP connection or the stdin/stdout batch mode — the framing is
// identical. Grammar (all fields but `op` optional):
//
//   request  := { "op": "query" | "ping" | "stats" | "metrics"
//                        | "slowlog" | "instances" | "shutdown",
//                 "id": number,            // echoed verbatim in the reply
//                 "instance": string,      // query: registered instance
//                 "qnum": 1 | 2 | 3,       // query: paper query number
//                 "deadline_ms": number,   // query: wall budget, 0 =>
//                                          //   degrade immediately
//                 "mc_worlds": number,     // query: degraded sample size
//                 "seed": number }         // query: degraded sample seed
//   response := { "id": ..., "ok": bool, ... }  // see the renderers
//
// Every malformed line yields exactly one {"ok":false,...} response with
// the typed status name — the connection survives, so a client bug never
// wedges the stream.
#ifndef LICM_SERVICE_PROTOCOL_H_
#define LICM_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "service/query_service.h"

namespace licm::service {

struct WireRequest {
  /// Client-chosen correlation id, echoed in the response; -1 = absent.
  int64_t id = -1;
  std::string op;
  std::string instance;
  int qnum = 1;
  /// Negative = service default; 0 = already expired (degrade path).
  double deadline_ms = -1.0;
  int mc_worlds = 0;
  uint64_t seed = 0;
};

/// Parses one request line. Unknown fields are ignored (forward
/// compatibility); wrongly typed known fields are errors.
Result<WireRequest> ParseRequestLine(const std::string& line);

/// Response renderers. Each returns one JSON object without the trailing
/// newline; the transport appends it.
std::string RenderError(int64_t id, const Status& status);
std::string RenderQueryResponse(int64_t id, const QueryResponse& response);
std::string RenderStats(int64_t id, const ServiceStats& stats);
/// Full metrics-registry dump: {"id":...,"ok":true,"metrics":{...}} with
/// the registry's counters/gauges/histograms JSON (p50/p90/p99/p999 per
/// histogram). Supersedes `stats` for pollers that want distributions.
std::string RenderMetrics(int64_t id);
/// Slow-query ring, newest first (see ServiceConfig::slo_ms).
std::string RenderSlowLog(int64_t id,
                          const std::vector<SlowQueryRecord>& records);
std::string RenderPong(int64_t id);
std::string RenderInstances(int64_t id,
                            const std::vector<std::string>& names);
std::string RenderShutdownAck(int64_t id);

}  // namespace licm::service

#endif  // LICM_SERVICE_PROTOCOL_H_
