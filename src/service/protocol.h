// Line-oriented JSON wire protocol of the query service (DESIGN.md §10).
//
// One request object per line in, one response object per line out, over
// either a TCP connection or the stdin/stdout batch mode — the framing is
// identical. Grammar (all fields but `op` optional):
//
//   request  := { "op": "query" | "ping" | "stats" | "metrics"
//                        | "slowlog" | "instances" | "mutate" | "version"
//                        | "load" | "shutdown",
//                 "id": number,            // echoed verbatim in the reply
//                 "instance": string,      // query/mutate/version/load
//                 "qnum": 1 | 2 | 3,       // query: paper query number
//                 "deadline_ms": number,   // query: wall budget, 0 =>
//                                          //   degrade immediately
//                 "mc_worlds": number,     // query: degraded sample size
//                 "seed": number,          // query: degraded sample seed
//                 "action": "append" | "retract" | "edit" | "fix",
//                                          // mutate: which mutation
//                 "relation": string,      // append/retract: target
//                 "row": string,           // append/retract: comma cells
//                 "maybe": bool,           // append: allocate a fresh var
//                 "cindex": number,        // edit: constraint index
//                 "cop": "le"|"ge"|"eq",   // edit: new comparison
//                 "rhs": number,           // edit: new right-hand side
//                 "var": number,           // fix: variable to pin
//                 "value": 0 | 1,          // fix: pinned value
//                 "spec": string,          // load: instance spec string
//                 "replace": bool }        // load: swap an existing name
//   response := { "id": ..., "ok": bool, ... }  // see the renderers
//
// `mutate` commits one versioned mutation (DESIGN.md §13): `append`
// inserts one row (maybe=true allocates a fresh variable, returned in
// new_vars), `retract` removes the first row matching `row`, `edit`
// rewrites constraint `cindex`'s comparison in place (editing a fix
// constraint to "ge 0" releases it — always true over binaries), and
// `fix` pins variable `var` to `value` by appending the constraint
// 1*b_var = value, echoing the constraint index for a later release.
//
// Every malformed line yields exactly one {"ok":false,...} response with
// the typed status name — the connection survives, so a client bug never
// wedges the stream.
#ifndef LICM_SERVICE_PROTOCOL_H_
#define LICM_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "service/query_service.h"

namespace licm::service {

struct WireRequest {
  /// Client-chosen correlation id, echoed in the response; -1 = absent.
  int64_t id = -1;
  std::string op;
  std::string instance;
  int qnum = 1;
  /// Negative = service default; 0 = already expired (degrade path).
  double deadline_ms = -1.0;
  int mc_worlds = 0;
  uint64_t seed = 0;
  /// mutate: "append" | "retract" | "edit" | "fix".
  std::string action;
  std::string relation;
  /// Comma-separated cells, parsed against the relation's schema.
  std::string row;
  bool maybe = false;
  int64_t cindex = -1;
  /// "le" | "ge" | "eq"; empty = absent.
  std::string cop;
  int64_t rhs = 0;
  int64_t var = -1;
  int64_t value = 0;
  /// load: instance spec (same grammar as licm_serve --instance).
  std::string spec;
  bool replace = false;
};

/// Parses one request line. Unknown fields are ignored (forward
/// compatibility); wrongly typed known fields are errors.
Result<WireRequest> ParseRequestLine(const std::string& line);

/// Response renderers. Each returns one JSON object without the trailing
/// newline; the transport appends it.
std::string RenderError(int64_t id, const Status& status);
std::string RenderQueryResponse(int64_t id, const QueryResponse& response);
std::string RenderStats(int64_t id, const ServiceStats& stats);
/// Full metrics-registry dump: {"id":...,"ok":true,"metrics":{...}} with
/// the registry's counters/gauges/histograms JSON (p50/p90/p99/p999 per
/// histogram). Supersedes `stats` for pollers that want distributions.
std::string RenderMetrics(int64_t id);
/// Slow-query ring, newest first (see ServiceConfig::slo_ms).
std::string RenderSlowLog(int64_t id,
                          const std::vector<SlowQueryRecord>& records);
std::string RenderPong(int64_t id);
std::string RenderInstances(int64_t id,
                            const std::vector<std::string>& names);
/// One committed mutation: version, dirty-set sizes, fresh variables and
/// (for constraint mutations) the slot the constraint landed at.
std::string RenderMutateResponse(int64_t id, const MutationResult& result);
/// {"id":...,"ok":true,"instance":...,"version":N}
std::string RenderVersion(int64_t id, const std::string& instance,
                          uint64_t version);
/// Ack for `load`: the published version (1 for a fresh name, the bumped
/// counter when replace=true swapped a live instance).
std::string RenderLoadAck(int64_t id, const std::string& instance,
                          uint64_t version, bool replaced);
std::string RenderShutdownAck(int64_t id);

}  // namespace licm::service

#endif  // LICM_SERVICE_PROTOCOL_H_
