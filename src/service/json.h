// Minimal dependency-free JSON for the service wire protocol.
//
// The service speaks one JSON object per line (DESIGN.md §10); this
// module is the parsing half — a strict recursive-descent parser into a
// small value tree with typed accessors — plus the string-escaping helper
// the response writers share. It is deliberately not a general JSON
// library: numbers are doubles, object keys keep insertion order, and
// depth is capped so a hostile request cannot recurse the server stack.
#ifndef LICM_SERVICE_JSON_H_
#define LICM_SERVICE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace licm::service {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  /// Insertion-ordered; duplicate keys keep the last occurrence on Find.
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  bool IsObject() const { return kind == Kind::kObject; }

  /// Member lookup on an object (nullptr when absent or not an object).
  const JsonValue* Find(const std::string& key) const;

  /// Typed member accessors with defaults for absent keys; a present key
  /// of the wrong type returns an error so client bugs surface as typed
  /// protocol errors instead of silently defaulted fields.
  Result<double> GetNumber(const std::string& key, double def) const;
  Result<int64_t> GetInt(const std::string& key, int64_t def) const;
  Result<std::string> GetString(const std::string& key,
                                const std::string& def) const;
  Result<bool> GetBool(const std::string& key, bool def) const;
};

/// Parses exactly one JSON value (plus surrounding whitespace); trailing
/// content is an error. Strings handle the standard escapes including
/// \uXXXX basic-plane code points (encoded back as UTF-8).
Result<JsonValue> ParseJson(const std::string& text);

/// Escapes `s` for embedding inside a JSON string literal (no quotes).
std::string JsonEscape(const std::string& s);

}  // namespace licm::service

#endif  // LICM_SERVICE_JSON_H_
