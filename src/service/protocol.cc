#include "service/protocol.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/metrics.h"
#include "common/version.h"
#include "service/json.h"

namespace licm::service {
namespace {

// Field-by-field builder for the one-line response objects. Same
// rendering rules as the bench harness's JsonRecord (17 significant
// digits, inf/nan -> null) so BENCH_service.json post-processors can
// parse service responses too.
class LineWriter {
 public:
  LineWriter& Int(const char* key, int64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    return Raw(key, buf);
  }
  LineWriter& Num(const char* key, double v) {
    if (!std::isfinite(v)) return Raw(key, "null");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return Raw(key, buf);
  }
  LineWriter& Bool(const char* key, bool v) {
    return Raw(key, v ? "true" : "false");
  }
  LineWriter& Str(const char* key, const std::string& v) {
    return Raw(key, "\"" + JsonEscape(v) + "\"");
  }

  std::string Done() { return out_ + "}"; }

 private:
  LineWriter& Raw(const char* key, const std::string& rendered) {
    out_ += first_ ? "{\"" : ",\"";
    first_ = false;
    out_ += key;
    out_ += "\":";
    out_ += rendered;
    return *this;
  }
  std::string out_;
  bool first_ = true;
};

LineWriter Begin(int64_t id, bool ok) {
  LineWriter w;
  w.Int("id", id).Bool("ok", ok);
  return w;
}

}  // namespace

Result<WireRequest> ParseRequestLine(const std::string& line) {
  LICM_ASSIGN_OR_RETURN(JsonValue root, ParseJson(line));
  if (!root.IsObject()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  WireRequest req;
  LICM_ASSIGN_OR_RETURN(req.id, root.GetInt("id", -1));
  LICM_ASSIGN_OR_RETURN(req.op, root.GetString("op", ""));
  if (req.op.empty()) {
    return Status::InvalidArgument("request is missing the 'op' field");
  }
  LICM_ASSIGN_OR_RETURN(req.instance, root.GetString("instance", ""));
  LICM_ASSIGN_OR_RETURN(int64_t qnum, root.GetInt("qnum", 1));
  req.qnum = static_cast<int>(qnum);
  LICM_ASSIGN_OR_RETURN(req.deadline_ms, root.GetNumber("deadline_ms", -1.0));
  LICM_ASSIGN_OR_RETURN(int64_t worlds, root.GetInt("mc_worlds", 0));
  if (worlds < 0) {
    return Status::InvalidArgument("mc_worlds must be non-negative");
  }
  req.mc_worlds = static_cast<int>(worlds);
  LICM_ASSIGN_OR_RETURN(int64_t seed, root.GetInt("seed", 0));
  req.seed = static_cast<uint64_t>(seed);
  LICM_ASSIGN_OR_RETURN(req.action, root.GetString("action", ""));
  LICM_ASSIGN_OR_RETURN(req.relation, root.GetString("relation", ""));
  LICM_ASSIGN_OR_RETURN(req.row, root.GetString("row", ""));
  LICM_ASSIGN_OR_RETURN(req.maybe, root.GetBool("maybe", false));
  LICM_ASSIGN_OR_RETURN(req.cindex, root.GetInt("cindex", -1));
  LICM_ASSIGN_OR_RETURN(req.cop, root.GetString("cop", ""));
  LICM_ASSIGN_OR_RETURN(req.rhs, root.GetInt("rhs", 0));
  LICM_ASSIGN_OR_RETURN(req.var, root.GetInt("var", -1));
  LICM_ASSIGN_OR_RETURN(req.value, root.GetInt("value", 0));
  LICM_ASSIGN_OR_RETURN(req.spec, root.GetString("spec", ""));
  LICM_ASSIGN_OR_RETURN(req.replace, root.GetBool("replace", false));
  return req;
}

std::string RenderError(int64_t id, const Status& status) {
  return Begin(id, false)
      .Str("status", Status::CodeName(status.code()))
      .Str("error", status.message())
      .Done();
}

std::string RenderQueryResponse(int64_t id, const QueryResponse& r) {
  LineWriter w = Begin(id, true);
  w.Bool("degraded", r.degraded)
      .Num("min", r.min)
      .Num("max", r.max)
      .Bool("min_exact", r.min_exact)
      .Bool("max_exact", r.max_exact)
      .Num("proved_min", r.proved_min)
      .Num("proved_max", r.proved_max);
  if (r.has_samples) {
    w.Num("sample_min", r.sample_min)
        .Num("sample_max", r.sample_max)
        .Int("sample_worlds", r.sample_worlds);
  }
  w.Num("queue_ms", r.queue_ms)
      .Num("solve_ms", r.solve_ms)
      .Num("sample_ms", r.sample_ms)
      .Num("total_ms", r.total_ms)
      .Int("version", static_cast<int64_t>(r.version))
      .Int("nodes", r.stats.nodes)
      .Int("cache_hits", r.stats.cache_hits)
      .Int("cache_misses", r.stats.cache_misses);
  return w.Done();
}

std::string RenderStats(int64_t id, const ServiceStats& s) {
  const int64_t lookups = s.cache.hits + s.cache.misses;
  LineWriter w = Begin(id, true);
  w
      .Int("admitted", s.admitted)
      .Int("rejected_overload", s.rejected_overload)
      .Int("failed", s.failed)
      .Int("completed", s.completed)
      .Int("degraded", s.degraded)
      .Int("queue_depth", static_cast<int64_t>(s.queue_depth))
      .Int("inflight", s.inflight)
      .Int("instances", static_cast<int64_t>(s.instances))
      .Int("nodes", s.solve.nodes)
      .Int("lp_solves", s.solve.lp_solves)
      .Int("components", static_cast<int64_t>(s.solve.components))
      .Int("subtree_splits", s.solve.subtree_splits)
      .Int("cache_hits", s.cache.hits)
      .Int("cache_misses", s.cache.misses)
      .Int("cache_evictions", s.cache.evictions)
      .Int("cache_cross_version_hits", s.cache.cross_epoch_hits)
      .Num("cache_hit_rate",
           lookups > 0 ? static_cast<double>(s.cache.hits) /
                             static_cast<double>(lookups)
                       : 0.0)
      .Num("cpu_s", s.solve.cpu_seconds)
      .Int("mutations", s.mutations)
      .Int("slow_queries", s.slow_queries)
      .Num("uptime_s", s.uptime_s)
      .Int("snapshot_seq", s.snapshot_seq);
  // Per-instance versions, as a nested object spliced the RenderInstances
  // way (LineWriter has no object type).
  std::string obj = "{";
  for (size_t i = 0; i < s.versions.size(); ++i) {
    if (i > 0) obj += ",";
    obj += "\"" + JsonEscape(s.versions[i].first) +
           "\":" + std::to_string(s.versions[i].second);
  }
  obj += "}";
  std::string line = w.Done();
  line.pop_back();  // drop '}'
  line += ",\"versions\":" + obj + "}";
  return line;
}

std::string RenderMetrics(int64_t id) {
  // The registry renders a self-contained JSON object; splice it in like
  // RenderInstances splices its array.
  std::string line = Begin(id, true).Done();
  line.pop_back();  // drop '}'
  line += ",\"metrics\":" +
          metrics::MetricsRegistry::Default().RenderJson() + "}";
  return line;
}

std::string RenderSlowLog(int64_t id,
                          const std::vector<SlowQueryRecord>& records) {
  std::string arr = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    const SlowQueryRecord& r = records[i];
    if (i > 0) arr += ",";
    LineWriter w;
    w.Int("seq", r.seq)
        .Num("ts_s", r.ts_s)
        .Str("instance", r.instance)
        .Str("query", r.query)
        .Bool("degraded", r.degraded)
        .Num("slo_ms", r.slo_ms)
        .Num("queue_ms", r.queue_ms)
        .Num("solve_ms", r.solve_ms)
        .Num("sample_ms", r.sample_ms)
        .Num("total_ms", r.total_ms)
        .Num("min", r.min)
        .Num("max", r.max)
        .Int("nodes", r.stats.nodes)
        .Int("lp_solves", r.stats.lp_solves)
        .Int("lp_pivots", r.stats.lp_pivots)
        .Int("cache_hits", r.stats.cache_hits)
        .Int("cache_misses", r.stats.cache_misses);
    arr += w.Done();
  }
  arr += "]";
  std::string line = Begin(id, true).Done();
  line.pop_back();  // drop '}'
  line += ",\"slowlog\":" + arr + "}";
  return line;
}

std::string RenderPong(int64_t id) {
  return Begin(id, true)
      .Str("pong", "licm")
      .Str("git_sha", BuildGitSha())
      .Str("build_type", BuildTypeName())
      .Done();
}

std::string RenderInstances(int64_t id,
                            const std::vector<std::string>& names) {
  std::string arr = "[";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) arr += ",";
    arr += "\"" + JsonEscape(names[i]) + "\"";
  }
  arr += "]";
  LineWriter w = Begin(id, true);
  // LineWriter has no array type; splice the rendered array through the
  // raw string path of Str-like formatting.
  std::string line = w.Done();
  line.pop_back();  // drop '}'
  line += ",\"instances\":" + arr + "}";
  return line;
}

std::string RenderMutateResponse(int64_t id, const MutationResult& r) {
  LineWriter w = Begin(id, true);
  w.Int("version", static_cast<int64_t>(r.version))
      .Int("appended", static_cast<int64_t>(r.appended))
      .Int("retracted", static_cast<int64_t>(r.retracted))
      .Int("dirty_vars", static_cast<int64_t>(r.dirty_vars))
      .Int("dirty_components", static_cast<int64_t>(r.dirty_components))
      .Int("total_components", static_cast<int64_t>(r.total_components))
      .Num("dirty_ms", r.dirty_ms)
      .Num("commit_ms", r.commit_ms);
  if (r.constraint_index != MutationResult::kNoConstraint) {
    w.Int("cindex", static_cast<int64_t>(r.constraint_index));
  }
  std::string arr = "[";
  for (size_t i = 0; i < r.new_vars.size(); ++i) {
    if (i > 0) arr += ",";
    arr += std::to_string(r.new_vars[i]);
  }
  arr += "]";
  std::string line = w.Done();
  line.pop_back();  // drop '}'
  line += ",\"new_vars\":" + arr + "}";
  return line;
}

std::string RenderVersion(int64_t id, const std::string& instance,
                          uint64_t version) {
  return Begin(id, true)
      .Str("instance", instance)
      .Int("version", static_cast<int64_t>(version))
      .Done();
}

std::string RenderLoadAck(int64_t id, const std::string& instance,
                          uint64_t version, bool replaced) {
  return Begin(id, true)
      .Str("instance", instance)
      .Int("version", static_cast<int64_t>(version))
      .Bool("replaced", replaced)
      .Done();
}

std::string RenderShutdownAck(int64_t id) {
  return Begin(id, true).Bool("shutting_down", true).Done();
}

}  // namespace licm::service
