// Transports for the line-oriented protocol (service/protocol.h): a
// dependency-free POSIX TCP server (thread per connection) and a
// stdin/stdout batch mode. Both feed identical lines through one
// RequestRouter, so every protocol behaviour is testable without a
// socket.
#ifndef LICM_SERVICE_SERVER_H_
#define LICM_SERVICE_SERVER_H_

#include <atomic>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/query_service.h"

namespace licm::service {

/// Maps one request line to one response line against a QueryService.
/// The router does not know how queries are built from a qnum — the
/// transport layer injects that (the paper's query catalogue lives above
/// the service library).
class RequestRouter {
 public:
  using QueryFactory =
      std::function<Result<rel::QueryNodePtr>(const WireRequest&)>;
  /// Builds and registers an instance for the `load` op from a spec
  /// string (the transport layer owns the spec grammar, exactly as it
  /// owns the query catalogue). Returns the published version.
  using InstanceLoader = std::function<Result<uint64_t>(
      const std::string& name, const std::string& spec, bool replace)>;

  RequestRouter(QueryService* service, QueryFactory factory)
      : service_(service), factory_(std::move(factory)) {}

  /// Replaces the query execution path. The default executor calls
  /// QueryService::ExecuteAsync directly; the net front end injects a
  /// coalescing wrapper (or a shard proxy) without the router knowing.
  using AsyncExecutor =
      std::function<void(QueryRequest, QueryService::ResponseCallback)>;

  /// Enables the `load` op; without a loader it reports kInvalidArgument.
  void set_loader(InstanceLoader loader) { loader_ = std::move(loader); }

  void set_async_executor(AsyncExecutor executor) {
    executor_ = std::move(executor);
  }

  /// Handles one request line and returns the response line (no trailing
  /// newline). Never throws and never returns an empty string: malformed
  /// input yields a rendered error. Sets *shutdown on a shutdown request
  /// (after rendering its ack).
  std::string Handle(const std::string& line, bool* shutdown);

  /// Asynchronous twin of Handle() for already-parsed requests (the
  /// binary codec decodes straight into a WireRequest; the line codec
  /// parses first). Control ops complete inline — `done` may run before
  /// HandleAsync returns; query ops complete from a worker thread via
  /// the async executor. Exactly one `done(response, shutdown)` call per
  /// request, response without trailing newline.
  void HandleAsync(const WireRequest& req,
                   std::function<void(std::string, bool)> done);

  /// Builds the service-layer request for a `query` op (factory +
  /// deadline/mc fields). Shared by the sync and async paths so both
  /// front ends produce byte-identical responses.
  Result<QueryRequest> BuildQuery(const WireRequest& req) const;

  /// Renders a query outcome exactly as the sync path does.
  static std::string RenderQueryOutcome(int64_t id,
                                        const Result<QueryResponse>& outcome);

  QueryService* service() const { return service_; }

 private:
  std::string HandleMutate(const WireRequest& req);
  /// Handles every op except `query`; returns false for `query` (the
  /// caller owns execution so it can choose sync vs async).
  bool DispatchControl(const WireRequest& req, bool* shutdown,
                       std::string* response);

  QueryService* service_;
  QueryFactory factory_;
  InstanceLoader loader_;
  AsyncExecutor executor_;
};

/// Reads request lines from `in` until EOF or a shutdown request,
/// writing one response line each. Returns the number of requests
/// handled.
int64_t RunBatch(RequestRouter* router, std::istream& in, std::ostream& out);

/// Thread-per-connection TCP server. Lifecycle:
///   TcpServer server(&router);
///   LICM_RETURN_NOT_OK(server.Listen("127.0.0.1", 0));  // 0 = ephemeral
///   server.Serve();  // blocks until Stop() or a shutdown request
class TcpServer {
 public:
  explicit TcpServer(RequestRouter* router) : router_(router) {}
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and listens. Port 0 picks an ephemeral port, readable from
  /// port() afterwards. Returns kIOError when the sandbox forbids
  /// binding (callers may fall back to batch mode).
  Status Listen(const std::string& host, int port);

  int port() const { return port_; }

  /// Accept loop; blocks until Stop() is called (from any thread or a
  /// connection handler via the shutdown op), then joins all connection
  /// threads.
  Status Serve();

  void Stop();

 private:
  void HandleConnection(int fd);

  RequestRouter* router_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

/// Minimal HTTP/1.0 exposition endpoint for Prometheus scrapes: every
/// request (any path) gets a 200 text/plain body from `render` and the
/// connection is closed. One accept thread, one connection at a time —
/// scrape traffic, not the data plane. Lifecycle mirrors TcpServer:
///   MetricsHttpServer http([] { return registry.RenderPrometheus(); });
///   LICM_RETURN_NOT_OK(http.Listen("127.0.0.1", 0));
///   http.Start();   // background accept loop
///   ...
///   http.Stop();    // joins
class MetricsHttpServer {
 public:
  explicit MetricsHttpServer(std::function<std::string()> render)
      : render_(std::move(render)) {}
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  Status Listen(const std::string& host, int port);
  int port() const { return port_; }
  void Start();
  void Stop();

 private:
  void AcceptLoop();

  std::function<std::string()> render_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
};

}  // namespace licm::service

#endif  // LICM_SERVICE_SERVER_H_
