#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>

namespace licm::service {

bool RequestRouter::DispatchControl(const WireRequest& req, bool* shutdown,
                                    std::string* response) {
  if (req.op == "query") return false;
  if (req.op == "ping") {
    *response = RenderPong(req.id);
  } else if (req.op == "stats") {
    *response = RenderStats(req.id, service_->Stats());
  } else if (req.op == "metrics") {
    *response = RenderMetrics(req.id);
  } else if (req.op == "slowlog") {
    *response = RenderSlowLog(req.id, service_->SlowLog());
  } else if (req.op == "instances") {
    *response = RenderInstances(req.id, service_->InstanceNames());
  } else if (req.op == "mutate") {
    *response = HandleMutate(req);
  } else if (req.op == "version") {
    auto version = service_->VersionOf(req.instance);
    *response = version.ok()
                    ? RenderVersion(req.id, req.instance, *version)
                    : RenderError(req.id, version.status());
  } else if (req.op == "load") {
    if (!loader_) {
      *response = RenderError(req.id, Status::InvalidArgument(
                                          "this server has no instance loader"));
    } else {
      auto version = loader_(req.instance, req.spec, req.replace);
      // A fresh registration publishes version 1; anything later means an
      // existing instance was swapped in place.
      *response = version.ok()
                      ? RenderLoadAck(req.id, req.instance, *version,
                                      *version > 1)
                      : RenderError(req.id, version.status());
    }
  } else if (req.op == "shutdown") {
    if (shutdown != nullptr) *shutdown = true;
    *response = RenderShutdownAck(req.id);
  } else {
    *response = RenderError(
        req.id, Status::InvalidArgument("unknown op '" + req.op + "'"));
  }
  return true;
}

Result<QueryRequest> RequestRouter::BuildQuery(const WireRequest& req) const {
  auto query = factory_(req);
  if (!query.ok()) return query.status();
  QueryRequest request;
  request.instance = req.instance;
  request.query = std::move(*query);
  request.deadline_s = req.deadline_ms < 0.0 ? -1.0 : req.deadline_ms / 1e3;
  request.mc_worlds = req.mc_worlds;
  request.mc_seed = req.seed;
  return request;
}

std::string RequestRouter::RenderQueryOutcome(
    int64_t id, const Result<QueryResponse>& outcome) {
  if (!outcome.ok()) return RenderError(id, outcome.status());
  return RenderQueryResponse(id, *outcome);
}

std::string RequestRouter::Handle(const std::string& line, bool* shutdown) {
  auto parsed = ParseRequestLine(line);
  if (!parsed.ok()) return RenderError(-1, parsed.status());
  const WireRequest& req = *parsed;

  std::string response;
  if (DispatchControl(req, shutdown, &response)) return response;

  auto request = BuildQuery(req);
  if (!request.ok()) return RenderError(req.id, request.status());
  return RenderQueryOutcome(req.id, service_->Execute(std::move(*request)));
}

void RequestRouter::HandleAsync(const WireRequest& req,
                                std::function<void(std::string, bool)> done) {
  bool shutdown = false;
  std::string response;
  if (DispatchControl(req, &shutdown, &response)) {
    done(std::move(response), shutdown);
    return;
  }
  auto request = BuildQuery(req);
  if (!request.ok()) {
    done(RenderError(req.id, request.status()), false);
    return;
  }
  const int64_t id = req.id;
  auto finish = [id, done = std::move(done)](
                    const Result<QueryResponse>& outcome) {
    done(RenderQueryOutcome(id, outcome), false);
  };
  if (executor_) {
    executor_(std::move(*request), std::move(finish));
  } else {
    service_->ExecuteAsync(std::move(*request), std::move(finish));
  }
}

std::string RequestRouter::HandleMutate(const WireRequest& req) {
  Result<MutationResult> outcome =
      Status::InvalidArgument("mutate needs an 'action' field");
  if (req.action == "append" || req.action == "retract") {
    if (req.relation.empty()) {
      return RenderError(req.id,
                         Status::InvalidArgument("mutate " + req.action +
                                                 " needs a 'relation'"));
    }
    // Parse the row against the schema of the *current* snapshot; the
    // typed verb re-validates against the commit-time snapshot.
    auto inst = service_->GetInstance(req.instance);
    if (!inst.ok()) return RenderError(req.id, inst.status());
    auto relation = (*inst)->snapshot()->db.GetRelation(req.relation);
    if (!relation.ok()) return RenderError(req.id, relation.status());
    auto tuple = rel::TupleFromText((*relation)->schema(), req.row);
    if (!tuple.ok()) return RenderError(req.id, tuple.status());
    if (req.action == "append") {
      RowSpec spec;
      spec.tuple = std::move(*tuple);
      spec.maybe = req.maybe;
      outcome = service_->AppendTuples(req.instance, req.relation, {spec});
    } else {
      outcome = service_->RetractTuples(req.instance, req.relation,
                                        {std::move(*tuple)});
    }
  } else if (req.action == "edit") {
    if (req.cindex < 0) {
      return RenderError(
          req.id, Status::InvalidArgument("mutate edit needs a 'cindex'"));
    }
    ConstraintOp op;
    if (req.cop == "le") {
      op = ConstraintOp::kLe;
    } else if (req.cop == "ge") {
      op = ConstraintOp::kGe;
    } else if (req.cop == "eq") {
      op = ConstraintOp::kEq;
    } else {
      return RenderError(req.id, Status::InvalidArgument(
                                     "mutate edit needs 'cop' le|ge|eq"));
    }
    outcome = service_->EditConstraintRhs(
        req.instance, static_cast<size_t>(req.cindex), op, req.rhs);
  } else if (req.action == "fix") {
    if (req.var < 0 || (req.value != 0 && req.value != 1)) {
      return RenderError(req.id,
                         Status::InvalidArgument(
                             "mutate fix needs 'var' >= 0 and 'value' 0|1"));
    }
    LinearConstraint c;
    c.terms.push_back({static_cast<BVar>(req.var), 1});
    c.op = ConstraintOp::kEq;
    c.rhs = req.value;
    outcome = service_->AddConstraint(req.instance, std::move(c));
  } else if (!req.action.empty()) {
    return RenderError(req.id, Status::InvalidArgument(
                                   "unknown mutate action '" + req.action +
                                   "' (append|retract|edit|fix)"));
  }
  if (!outcome.ok()) return RenderError(req.id, outcome.status());
  return RenderMutateResponse(req.id, *outcome);
}

int64_t RunBatch(RequestRouter* router, std::istream& in, std::ostream& out) {
  int64_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    bool shutdown = false;
    out << router->Handle(line, &shutdown) << "\n" << std::flush;
    ++handled;
    if (shutdown) break;
  }
  return handled;
}

TcpServer::~TcpServer() {
  Stop();
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status TcpServer::Listen(const std::string& host, int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::IOError(std::string("getsockname: ") +
                               std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status TcpServer::Serve() {
  if (listen_fd_ < 0) return Status::Internal("Serve() before Listen()");
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      return Status::IOError(std::string("accept: ") +
                                 std::strerror(errno));
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
  return Status::OK();
}

void TcpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Unblock accept() and any connection reads so Serve() can drain.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void TcpServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool shutdown_requested = false;
  bool peer_gone = false;
  while (!shutdown_requested && !peer_gone) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;  // signal, not peer state
    if (n <= 0) break;  // client closed, or Stop() shut the socket down
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      std::string response = router_->Handle(line, &shutdown_requested);
      response += "\n";
      size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t w =
            ::send(fd, response.data() + sent, response.size() - sent,
                   MSG_NOSIGNAL);
        if (w < 0 && errno == EINTR) continue;  // partial write: resume
        if (w <= 0) {
          peer_gone = true;
          break;
        }
        sent += static_cast<size_t>(w);
      }
      if (shutdown_requested || peer_gone) break;
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  if (shutdown_requested) Stop();
}

MetricsHttpServer::~MetricsHttpServer() {
  Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status MetricsHttpServer::Listen(const std::string& host, int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::IOError(std::string("getsockname: ") +
                               std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void MetricsHttpServer::Start() {
  if (listen_fd_ < 0 || accept_thread_.joinable()) return;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void MetricsHttpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
}

void MetricsHttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;
    }
    // Drain one request chunk (the path is irrelevant — every GET serves
    // the same exposition), answer, close. Scrapers reconnect per scrape.
    char req[2048];
    (void)::recv(fd, req, sizeof(req), 0);
    const std::string body = render_();
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t w = ::send(fd, response.data() + sent,
                               response.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) break;
      sent += static_cast<size_t>(w);
    }
    ::close(fd);
  }
}

}  // namespace licm::service
