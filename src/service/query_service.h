// Long-running in-process query service (DESIGN.md §10).
//
// QueryService owns loaded LICM instances (database + optional sampling
// structure) and answers aggregate queries against them from a fixed pool
// of request workers behind a bounded admission queue:
//
//   Execute() ──admit──▶ [bounded FIFO queue] ──▶ worker: exact solve
//        │                     │                     │ deadline hit?
//        │ queue full          │ stop                ▼
//        ▼                     ▼                  degrade: sampler interval
//   kOverloaded            kInternal              (proved ∪ sampled hull)
//
// Every request carries a wall-clock Deadline budget that starts at
// admission and is threaded into the solver (SolveMinMax / the MIN-MAX
// feasibility prober share it across their whole probe sequence). When
// the exact BIP solve hits the deadline, the service degrades gracefully:
// it returns the proved outer interval widened by a Monte-Carlo sample of
// possible worlds, tagged `degraded=true`, instead of failing the
// request. All requests share one solver Scheduler; each instance owns a
// ComponentCache + IncumbentPool (licm/mutable_instance.h), so isomorphic
// components recur across requests — and across mutation commits — for
// free, while mutations on one instance can never evict another's entries.
//
// Instances are versioned and mutable (MVCC): Execute() captures the
// instance's snapshot at admission, so a request admitted before a
// mutation commit answers against the pre-commit version even if the
// commit lands while the request is queued. Mutation verbs (AppendTuples
// / RetractTuples / EditConstraintRhs / AddConstraint / LoadInstance with
// replace) run on the caller's thread, serialized per instance.
//
// Determinism contract under concurrency: a non-degraded response is
// bit-identical to an offline ComputeBounds run on the same instance and
// query — exact bounds are proved optima, which do not depend on worker
// interleaving, cache state, or thread count (the fuzz suite's `service`
// invariant enforces this). Degraded responses are deterministic given
// the request's sampling seed but their proved interval may vary with
// how far the search got before the deadline; the containment guarantee
// (interval ⊇ exact bounds) holds regardless.
#ifndef LICM_SERVICE_QUERY_SERVICE_H_
#define LICM_SERVICE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "licm/evaluator.h"
#include "licm/licm_relation.h"
#include "licm/mutable_instance.h"
#include "relational/query.h"
#include "sampler/structure.h"
#include "solver/mip_solver.h"
#include "solver/scheduler.h"
#include "solver/solve_cache.h"

namespace licm::service {

struct ServiceConfig {
  /// Request executor threads. Each runs one request at a time; total
  /// in-flight work is bounded by this count.
  int num_workers = 4;
  /// Requests allowed to wait beyond the in-flight ones; an arrival that
  /// finds the queue at this depth is rejected with kOverloaded.
  size_t max_queue = 64;
  /// Per-request wall-clock budget when the request does not set one.
  double default_deadline_s = 5.0;
  /// Worlds the degraded path samples (the paper's MC baseline size).
  int degraded_worlds = 20;
  uint64_t degraded_seed = 1;
  /// Worker threads of the shared solver scheduler (0 auto-detects); all
  /// requests pool this capacity.
  int solver_threads = 0;
  /// Capacity of the shared isomorphic-component solve cache.
  size_t cache_capacity = solver::ComponentCache::kDefaultCapacity;
  /// Latency SLO: a completed request whose total_ms exceeds this is
  /// captured into the slow-query ring (phase breakdown + solver stats).
  /// 0 captures every request; negative disables capture.
  double slo_ms = 1000.0;
  /// Bound on the slow-query ring; the oldest record is evicted first.
  size_t slowlog_capacity = 64;
};

struct QueryRequest {
  std::string instance;
  /// Aggregate query tree (kCountStar / kSum / kMin / kMax root).
  rel::QueryNodePtr query;
  /// Wall-clock budget in seconds, measured from admission (so queue wait
  /// spends budget). Negative = use the config default; 0 = already
  /// expired, i.e. degrade immediately.
  double deadline_s = -1.0;
  /// Degraded-path sampling overrides (0 = config defaults).
  int mc_worlds = 0;
  uint64_t mc_seed = 0;
};

struct QueryResponse {
  /// True when the exact solve hit its deadline and the response interval
  /// is the degraded (proved ∪ sampled) hull rather than exact bounds.
  bool degraded = false;
  /// The served answer interval. Non-degraded: the exact bounds.
  /// Degraded: a containment interval — guaranteed to contain the exact
  /// bounds (proved outer bounds widened by any sampled worlds).
  double min = 0.0;
  double max = 0.0;
  bool min_exact = false;
  bool max_exact = false;
  /// Proved outer bounds from the (possibly deadline-capped) solve.
  double proved_min = 0.0;
  double proved_max = 0.0;
  /// Observed answer range over sampled worlds (degraded path only; inner
  /// achievable band, each endpoint witnessed by a concrete world).
  bool has_samples = false;
  double sample_min = 0.0;
  double sample_max = 0.0;
  int sample_worlds = 0;
  /// Request lifecycle wall times.
  double queue_ms = 0.0;
  double solve_ms = 0.0;
  double sample_ms = 0.0;
  double total_ms = 0.0;
  /// Instance version this response was computed against — the snapshot
  /// captured at admission, so a query admitted before a mutation commit
  /// reports (and answers against) the pre-commit version.
  uint64_t version = 0;
  /// Solver statistics of this request's solve.
  solver::MipStats stats;
};

/// One SLO-violating request, captured at completion into a bounded ring
/// (ServiceConfig::slo_ms / slowlog_capacity) and served by the `slowlog`
/// verb. The phase breakdown is the request's own telemetry — queue wait,
/// exact solve, degraded sampling — plus the solver counters of its solve.
struct SlowQueryRecord {
  /// Monotonic capture index (never reused; gaps mean evictions).
  int64_t seq = 0;
  /// Capture time in seconds since service start (compare to uptime_s).
  double ts_s = 0.0;
  std::string instance;
  /// Root aggregate of the query, e.g. "COUNT(*)" or "SUM(price)".
  std::string query;
  bool degraded = false;
  double slo_ms = 0.0;
  double queue_ms = 0.0;
  double solve_ms = 0.0;
  double sample_ms = 0.0;
  double total_ms = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Solver statistics of this request's solve.
  solver::MipStats stats;
};

/// Aggregate service counters, snapshotted under the service lock.
struct ServiceStats {
  int64_t admitted = 0;
  int64_t rejected_overload = 0;
  /// Requests that completed with an error status (infeasible instance,
  /// unknown instance/column, ...). Overload rejections are not failures.
  int64_t failed = 0;
  int64_t completed = 0;
  int64_t degraded = 0;
  /// queue_depth and inflight are read under one lock acquisition, so a
  /// snapshot is internally coherent (a request is in exactly one of the
  /// two while the lock is held).
  size_t queue_depth = 0;
  int inflight = 0;
  size_t instances = 0;
  /// Requests captured into the slow-query ring so far (not the ring's
  /// current size — evictions do not decrement this).
  int64_t slow_queries = 0;
  /// Seconds since the service was constructed. A poller seeing this
  /// decrease knows the service restarted.
  double uptime_s = 0.0;
  /// Strictly increasing per Stats() call; lets pollers order snapshots
  /// and detect restarts even within one second of uptime.
  int64_t snapshot_seq = 0;
  /// Mutations committed across all instances (appends, retracts,
  /// constraint edits, replace-loads).
  int64_t mutations = 0;
  /// Current version of every instance, sorted by name. Versions are
  /// monotonic per instance; pollers use this to order mutation commits
  /// against query responses.
  std::vector<std::pair<std::string, uint64_t>> versions;
  /// Merged solver stats over all completed requests.
  solver::MipStats solve;
  /// Summed per-instance component-cache stats (each instance owns its
  /// cache so mutations on one instance never evict another's entries).
  /// cache.cross_epoch_hits counts cached results that survived a version
  /// bump — the incremental re-solve proof.
  solver::ComponentCacheStats cache;
};

class QueryService {
 public:
  explicit QueryService(ServiceConfig config = {});
  /// Drains the queue (pending requests fail with an error status) and
  /// joins the workers. Callers must not be blocked in Execute().
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers a named instance. `structure` drives the degraded path's
  /// world sampling; without one the service falls back to generic
  /// rejection sampling against the constraint set (and to the proved
  /// interval alone when that fails). Fails with kAlreadyExists if the
  /// name is taken (LoadInstance with replace=true is the opt-in).
  Status AddInstance(std::string name, LicmDatabase db,
                     std::optional<sampler::WorldStructure> structure =
                         std::nullopt);

  /// The `load` verb's semantics: registers `name`, or — only with
  /// `replace` — swaps the database under an existing name through the
  /// instance's MVCC commit, bumping its version; in-flight queries keep
  /// answering against the snapshot they admitted on. Without `replace` a
  /// name collision is a typed kAlreadyExists error.
  Status LoadInstance(std::string name, LicmDatabase db,
                      std::optional<sampler::WorldStructure> structure,
                      bool replace);

  std::vector<std::string> InstanceNames() const;

  /// Current version of an instance (kNotFound for unknown names).
  Result<uint64_t> VersionOf(const std::string& name) const;

  /// Mutation verbs: each commits one versioned mutation against the
  /// named instance (serialized per instance by MutableInstance; the
  /// service lock is not held during the commit). In-flight queries keep
  /// their admission-time snapshot; later admissions see the new version.
  Result<licm::MutationResult> AppendTuples(const std::string& instance,
                                            const std::string& relation,
                                            const std::vector<RowSpec>& rows);
  Result<licm::MutationResult> RetractTuples(
      const std::string& instance, const std::string& relation,
      const std::vector<rel::Tuple>& rows);
  Result<licm::MutationResult> EditConstraintRhs(const std::string& instance,
                                                 size_t index,
                                                 ConstraintOp op, int64_t rhs);
  Result<licm::MutationResult> AddConstraint(const std::string& instance,
                                             LinearConstraint c);

  /// The live instance handle (tests and embedders; the wire layer only
  /// uses the typed verbs above).
  Result<std::shared_ptr<MutableInstance>> GetInstance(
      const std::string& name) const;

  /// Admits, queues, and executes one request, blocking the caller until
  /// its response is ready. Safe to call from any number of threads —
  /// that is the intended use: one caller per client connection, with the
  /// bounded queue (not the caller count) limiting actual work.
  /// Errors: kOverloaded (admission), kNotFound (unknown instance),
  /// kInfeasible (instance admits no world and the solve proved it),
  /// kInvalidArgument (malformed query).
  Result<QueryResponse> Execute(const QueryRequest& request);

  /// Completion callback of ExecuteAsync. Fires exactly once: on a worker
  /// thread when the request ran, or inline — before ExecuteAsync returns
  /// — when admission failed (kOverloaded, unknown instance, stopping
  /// service, malformed query).
  using ResponseCallback = std::function<void(const Result<QueryResponse>&)>;

  /// Callback-completion variant of Execute for event-driven transports
  /// (src/net/): the caller thread only pays for admission (MVCC snapshot
  /// capture + queue push) and is never parked on a condition variable.
  /// The callback must not block for long — it runs on a request worker.
  void ExecuteAsync(QueryRequest request, ResponseCallback done);

  ServiceStats Stats() const;

  /// Snapshot of the slow-query ring, newest first.
  std::vector<SlowQueryRecord> SlowLog() const;

  const ServiceConfig& config() const { return config_; }

  /// Test hook: runs at the start of every worker solve while set. Lets
  /// tests hold workers busy deterministically to exercise admission
  /// control; never set in production paths.
  void SetSolveHookForTest(std::function<void()> hook);

 private:
  struct Instance {
    std::shared_ptr<MutableInstance> inst;
    // Swapped as one shared_ptr so a request captures a (snapshot,
    // structure) pair consistently at admission.
    std::shared_ptr<const std::optional<sampler::WorldStructure>> structure;
  };

  struct Pending {
    // Owned copy: async callers are gone by the time a worker runs this.
    QueryRequest request;
    Deadline deadline = Deadline::Never();
    int64_t enqueue_ns = 0;
    // MVCC capture at admission: the worker answers against exactly this
    // snapshot, regardless of mutations committing while it waits.
    std::shared_ptr<MutableInstance> inst;
    std::shared_ptr<const MutableInstance::Snapshot> snap;
    std::shared_ptr<const std::optional<sampler::WorldStructure>> structure;
    // Filled by the worker, signalled through `done` (blocking path) or
    // delivered through `callback` (async path), never both.
    std::optional<Result<QueryResponse>> outcome;
    bool done = false;
    std::condition_variable done_cv;
    ResponseCallback callback;
  };

  // Validates, captures the MVCC snapshot, and enqueues under mu_ (held
  // by the caller). On failure nothing was enqueued.
  Status AdmitLocked(const std::shared_ptr<Pending>& pending);
  void WorkerLoop();
  Result<QueryResponse> Process(const Pending& pending, double queue_ms);
  void Degrade(const QueryRequest& request, const LicmDatabase& db,
               const std::optional<sampler::WorldStructure>& structure,
               QueryResponse* response);
  // Looks up the instance handle under mu_ and bumps the mutation
  // counters/metrics after `fn` commits.
  Result<licm::MutationResult> Mutate(
      const std::string& instance,
      const std::function<Result<licm::MutationResult>(MutableInstance&)>&
          fn);

  const ServiceConfig config_;
  solver::Scheduler scheduler_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::unordered_map<std::string, Instance> instances_;
  std::deque<std::shared_ptr<Pending>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  int inflight_ = 0;
  int64_t admitted_ = 0;
  int64_t rejected_overload_ = 0;
  int64_t failed_ = 0;
  int64_t completed_ = 0;
  int64_t degraded_ = 0;
  int64_t mutations_ = 0;
  solver::MipStats solve_stats_;
  std::function<void()> solve_hook_;
  // SLO capture ring (guarded by mu_; only touched for slow requests).
  std::deque<SlowQueryRecord> slowlog_;
  int64_t slow_captured_ = 0;
  mutable int64_t snapshot_seq_ = 0;
  StopWatch uptime_watch_;
};

}  // namespace licm::service

#endif  // LICM_SERVICE_QUERY_SERVICE_H_
