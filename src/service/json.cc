#include "service/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace licm::service {
namespace {

constexpr int kMaxDepth = 32;

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    LICM_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != s_.size()) {
      return Err("trailing content after JSON value");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Err(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= s_.size()) return Err("unexpected end of input");
    const char c = s_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
      case 'f': return ParseLiteral(out);
      case 'n': return ParseLiteral(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseLiteral(JsonValue* out) {
    auto match = [&](const char* word) {
      const size_t n = std::char_traits<char>::length(word);
      if (s_.compare(pos_, n, word) != 0) return false;
      pos_ += n;
      return true;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::OK();
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::OK();
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return Err("unknown literal");
  }

  Status ParseNumber(JsonValue* out) {
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin || !std::isfinite(v)) return Err("malformed number");
    pos_ += static_cast<size_t>(end - begin);
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    LICM_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= s_.size()) return Err("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return Err("unterminated escape");
      c = s_[pos_++];
      switch (c) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          LICM_RETURN_NOT_OK(ParseHex4(&code));
          AppendUtf8(code, out);
          break;
        }
        default: return Err("unknown escape");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > s_.size()) return Err("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else return Err("bad hex digit in \\u escape");
    }
    *out = code;
    return Status::OK();
  }

  // Basic-plane code point -> UTF-8 (surrogate pairs are passed through as
  // individual code units; the protocol never emits them).
  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    LICM_RETURN_NOT_OK(Expect('{'));
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      LICM_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      LICM_RETURN_NOT_OK(Expect(':'));
      JsonValue v;
      LICM_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->object.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) return Status::OK();
      LICM_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    LICM_RETURN_NOT_OK(Expect('['));
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue v;
      LICM_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->array.push_back(std::move(v));
      SkipWs();
      if (Consume(']')) return Status::OK();
      LICM_RETURN_NOT_OK(Expect(','));
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;
  }
  return found;
}

Result<double> JsonValue::GetNumber(const std::string& key,
                                    double def) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return def;
  if (v->kind != Kind::kNumber) {
    return Status::InvalidArgument("field '" + key + "' must be a number");
  }
  return v->number;
}

Result<int64_t> JsonValue::GetInt(const std::string& key, int64_t def) const {
  LICM_ASSIGN_OR_RETURN(double d, GetNumber(key, static_cast<double>(def)));
  if (d != std::floor(d)) {
    return Status::InvalidArgument("field '" + key + "' must be an integer");
  }
  return static_cast<int64_t>(d);
}

Result<std::string> JsonValue::GetString(const std::string& key,
                                         const std::string& def) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return def;
  if (v->kind != Kind::kString) {
    return Status::InvalidArgument("field '" + key + "' must be a string");
  }
  return v->string;
}

Result<bool> JsonValue::GetBool(const std::string& key, bool def) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return def;
  if (v->kind != Kind::kBool) {
    return Status::InvalidArgument("field '" + key + "' must be a boolean");
  }
  return v->boolean;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace licm::service
