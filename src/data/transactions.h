// Synthetic set-valued (transaction) data in the shape of BMS-POS.
//
// The paper evaluates on BMS-POS: 515K transactions over 1657 item types,
// average transaction size 6.5, largest 164, with synthetic Location ids
// uniform in [0, 999] per transaction and Price ids uniform in [0, 39] per
// item. The real dataset is not redistributable, so this generator
// reproduces those published statistics: Zipf-distributed item popularity
// (retail purchase frequencies are heavy-tailed), Poisson-like transaction
// sizes with a configurable mean and cap, and the same uniform synthetic
// attributes. Scale is configurable so benchmarks can run at laptop scale.
#ifndef LICM_DATA_TRANSACTIONS_H_
#define LICM_DATA_TRANSACTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "relational/column.h"
#include "relational/relation.h"

namespace licm::data {

/// Item ids are dense in [0, num_items).
using ItemId = uint32_t;

struct Transaction {
  int64_t tid;
  int64_t location;            // uniform in [0, num_locations)
  std::vector<ItemId> items;   // distinct, unordered
};

struct TransactionDataset {
  std::vector<Transaction> transactions;
  uint32_t num_items = 0;
  /// price[i] in [0, num_prices) for item i.
  std::vector<int64_t> price;

  /// Flattens to TRANSITEM(tid, loc, item, price): one row per (txn, item),
  /// attributes denormalized the way the paper's queries consume them.
  rel::Relation ToTransItem() const;

  /// Same flattening straight into typed column vectors, skipping the
  /// row/Tuple materialization entirely (all four columns are ints, so no
  /// dictionary is needed). ToTransItemColumnar().ToRows(nullptr) equals
  /// ToTransItem() row for row.
  rel::ColumnTable ToTransItemColumnar() const;

  /// Dataset statistics for validation / reporting.
  struct Stats {
    size_t num_transactions = 0;
    size_t num_rows = 0;
    double avg_size = 0.0;
    size_t max_size = 0;
    uint32_t distinct_items = 0;
  };
  Stats ComputeStats() const;
};

struct GeneratorConfig {
  uint32_t num_transactions = 10000;
  uint32_t num_items = 1657;     // BMS-POS item-type count
  double zipf_s = 0.85;          // item popularity skew
  double mean_size = 6.5;        // BMS-POS average transaction size
  uint32_t max_size = 164;       // BMS-POS maximum transaction size
  uint32_t num_locations = 1000; // Location ~ U[0, 999]
  uint32_t num_prices = 40;      // Price ~ U[0, 39]
  uint64_t seed = 42;
};

/// Generates a BMS-POS-like dataset. Deterministic in (config, seed).
TransactionDataset GenerateTransactions(const GeneratorConfig& config);

/// Shared schema of the flattened TRANSITEM relation.
rel::Schema TransItemSchema();

}  // namespace licm::data

#endif  // LICM_DATA_TRANSACTIONS_H_
