#include "data/connectivity.h"

#include <utility>

namespace licm::data {

void ConnectivityIndex::Reset(size_t num_nodes) {
  parent_.resize(num_nodes);
  size_.assign(num_nodes, 1);
  for (size_t v = 0; v < num_nodes; ++v) parent_[v] = static_cast<uint32_t>(v);
}

void ConnectivityIndex::EnsureNodes(size_t num_nodes) {
  const size_t old = parent_.size();
  if (num_nodes <= old) return;
  parent_.resize(num_nodes);
  size_.resize(num_nodes, 1);
  for (size_t v = old; v < num_nodes; ++v)
    parent_[v] = static_cast<uint32_t>(v);
}

uint32_t ConnectivityIndex::Find(uint32_t node) {
  EnsureNodes(static_cast<size_t>(node) + 1);
  uint32_t root = node;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[node] != root) {
    uint32_t next = parent_[node];
    parent_[node] = root;
    node = next;
  }
  return root;
}

void ConnectivityIndex::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
}

void ConnectivityIndex::UnionAll(const std::vector<uint32_t>& nodes) {
  for (size_t i = 1; i < nodes.size(); ++i) Union(nodes[0], nodes[i]);
}

size_t ConnectivityIndex::NumComponents() {
  size_t roots = 0;
  for (size_t v = 0; v < parent_.size(); ++v) {
    if (Find(static_cast<uint32_t>(v)) == v) ++roots;
  }
  return roots;
}

std::vector<uint32_t> ConnectivityIndex::Component(uint32_t node) {
  const uint32_t root = Find(node);
  std::vector<uint32_t> out;
  for (size_t v = 0; v < parent_.size(); ++v) {
    if (Find(static_cast<uint32_t>(v)) == root)
      out.push_back(static_cast<uint32_t>(v));
  }
  return out;
}

}  // namespace licm::data
