#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

namespace licm::data {

Status SaveCsv(const TransactionDataset& dataset, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f << "tid,loc,item\n";
  for (const Transaction& t : dataset.transactions) {
    for (ItemId i : t.items) {
      f << t.tid << ',' << t.location << ',' << i << '\n';
    }
  }
  if (!f) return Status::IOError("write failed for " + path);

  std::ofstream pf(path + ".prices");
  if (!pf) return Status::IOError("cannot open " + path + ".prices");
  pf << "item,price\n";
  for (size_t i = 0; i < dataset.price.size(); ++i) {
    pf << i << ',' << dataset.price[i] << '\n';
  }
  if (!pf) return Status::IOError("write failed for " + path + ".prices");
  return Status::OK();
}

namespace {

Result<std::vector<int64_t>> SplitInts(const std::string& line, size_t n) {
  std::vector<int64_t> out;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    char* end = nullptr;
    const long long v = std::strtoll(cell.c_str(), &end, 10);
    if (end == cell.c_str()) {
      return Status::InvalidArgument("non-numeric CSV cell: '" + cell + "'");
    }
    out.push_back(v);
  }
  if (out.size() != n) {
    return Status::InvalidArgument("expected " + std::to_string(n) +
                                   " columns, got " +
                                   std::to_string(out.size()) + " in: " +
                                   line);
  }
  return out;
}

}  // namespace

Result<TransactionDataset> LoadCsv(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(f, line) || line != "tid,loc,item") {
    return Status::InvalidArgument("bad header in " + path);
  }
  std::map<int64_t, Transaction> txns;
  ItemId max_item = 0;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    LICM_ASSIGN_OR_RETURN(auto cells, SplitInts(line, 3));
    if (cells[2] < 0) {
      return Status::InvalidArgument("negative item id in " + path);
    }
    Transaction& t = txns[cells[0]];
    t.tid = cells[0];
    t.location = cells[1];
    t.items.push_back(static_cast<ItemId>(cells[2]));
    max_item = std::max(max_item, static_cast<ItemId>(cells[2]));
  }

  TransactionDataset out;
  std::ifstream pf(path + ".prices");
  if (!pf) return Status::IOError("cannot open " + path + ".prices");
  if (!std::getline(pf, line) || line != "item,price") {
    return Status::InvalidArgument("bad header in " + path + ".prices");
  }
  std::map<ItemId, int64_t> prices;
  while (std::getline(pf, line)) {
    if (line.empty()) continue;
    LICM_ASSIGN_OR_RETURN(auto cells, SplitInts(line, 2));
    prices[static_cast<ItemId>(cells[0])] = cells[1];
    max_item = std::max(max_item, static_cast<ItemId>(cells[0]));
  }

  out.num_items = max_item + 1;
  out.price.assign(out.num_items, 0);
  for (const auto& [item, price] : prices) out.price[item] = price;
  out.transactions.reserve(txns.size());
  for (auto& [tid, t] : txns) {
    std::sort(t.items.begin(), t.items.end());
    t.items.erase(std::unique(t.items.begin(), t.items.end()),
                  t.items.end());
    out.transactions.push_back(std::move(t));
  }
  return out;
}

}  // namespace licm::data
