#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

namespace licm::data {

Status SaveCsv(const TransactionDataset& dataset, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f << "tid,loc,item\n";
  for (const Transaction& t : dataset.transactions) {
    for (ItemId i : t.items) {
      f << t.tid << ',' << t.location << ',' << i << '\n';
    }
  }
  if (!f) return Status::IOError("write failed for " + path);

  std::ofstream pf(path + ".prices");
  if (!pf) return Status::IOError("cannot open " + path + ".prices");
  pf << "item,price\n";
  for (size_t i = 0; i < dataset.price.size(); ++i) {
    pf << i << ',' << dataset.price[i] << '\n';
  }
  if (!pf) return Status::IOError("write failed for " + path + ".prices");
  return Status::OK();
}

namespace {

// Normalizes one raw line: strips a trailing '\r' (CRLF files round-trip
// through Windows tooling) and reports whether anything but whitespace
// remains. Whitespace-only rows are skipped like empty ones.
bool NormalizeLine(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return line->find_first_not_of(" \t") != std::string::npos;
}

bool IsSpaceOnly(const std::string& s) {
  return s.find_first_not_of(" \t") == std::string::npos;
}

Result<std::vector<int64_t>> SplitInts(const std::string& line, size_t n) {
  // A trailing comma would silently read as a missing final column; make
  // the malformation explicit instead.
  if (!line.empty() && line.back() == ',') {
    return Status::InvalidArgument("trailing comma in CSV row: '" + line +
                                   "'");
  }
  std::vector<int64_t> out;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    if (IsSpaceOnly(cell)) {
      return Status::InvalidArgument("empty CSV cell in row: '" + line + "'");
    }
    char* end = nullptr;
    const long long v = std::strtoll(cell.c_str(), &end, 10);
    if (end == cell.c_str()) {
      return Status::InvalidArgument("non-numeric CSV cell: '" + cell + "'");
    }
    // strtoll stops at the first non-digit; accepting "12abc" as 12 would
    // be a silent misparse, so require the whole cell (modulo padding).
    while (*end == ' ' || *end == '\t') ++end;
    if (*end != '\0') {
      return Status::InvalidArgument("trailing garbage in CSV cell: '" +
                                     cell + "'");
    }
    out.push_back(v);
  }
  if (out.size() != n) {
    return Status::InvalidArgument("expected " + std::to_string(n) +
                                   " columns, got " +
                                   std::to_string(out.size()) + " in: " +
                                   line);
  }
  return out;
}

}  // namespace

Result<TransactionDataset> LoadCsv(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(f, line)) {
    return Status::InvalidArgument("bad header in " + path);
  }
  NormalizeLine(&line);
  if (line != "tid,loc,item") {
    return Status::InvalidArgument("bad header in " + path);
  }
  std::map<int64_t, Transaction> txns;
  ItemId max_item = 0;
  while (std::getline(f, line)) {
    if (!NormalizeLine(&line)) continue;
    LICM_ASSIGN_OR_RETURN(auto cells, SplitInts(line, 3));
    if (cells[2] < 0) {
      return Status::InvalidArgument("negative item id in " + path);
    }
    Transaction& t = txns[cells[0]];
    t.tid = cells[0];
    t.location = cells[1];
    t.items.push_back(static_cast<ItemId>(cells[2]));
    max_item = std::max(max_item, static_cast<ItemId>(cells[2]));
  }

  TransactionDataset out;
  std::ifstream pf(path + ".prices");
  if (!pf) return Status::IOError("cannot open " + path + ".prices");
  if (!std::getline(pf, line)) {
    return Status::InvalidArgument("bad header in " + path + ".prices");
  }
  NormalizeLine(&line);
  if (line != "item,price") {
    return Status::InvalidArgument("bad header in " + path + ".prices");
  }
  std::map<ItemId, int64_t> prices;
  while (std::getline(pf, line)) {
    if (!NormalizeLine(&line)) continue;
    LICM_ASSIGN_OR_RETURN(auto cells, SplitInts(line, 2));
    prices[static_cast<ItemId>(cells[0])] = cells[1];
    max_item = std::max(max_item, static_cast<ItemId>(cells[0]));
  }

  out.num_items = max_item + 1;
  out.price.assign(out.num_items, 0);
  for (const auto& [item, price] : prices) out.price[item] = price;
  out.transactions.reserve(txns.size());
  for (auto& [tid, t] : txns) {
    std::sort(t.items.begin(), t.items.end());
    t.items.erase(std::unique(t.items.begin(), t.items.end()),
                  t.items.end());
    out.transactions.push_back(std::move(t));
  }
  return out;
}

}  // namespace licm::data
