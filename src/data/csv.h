// CSV serialization for transaction datasets.
//
// Two files per dataset: `<path>` holds one "tid,loc,item" row per
// transaction-item pair, and `<path>.prices` holds one "item,price" row
// per item. The format round-trips exactly and is easy to feed from / into
// external tools (the real BMS-POS distribution is a similar flat text
// format).
#ifndef LICM_DATA_CSV_H_
#define LICM_DATA_CSV_H_

#include <string>

#include "data/transactions.h"

namespace licm::data {

Status SaveCsv(const TransactionDataset& dataset, const std::string& path);

/// Loads a dataset previously written by SaveCsv (or hand-authored in the
/// same shape). Transactions are reconstructed in tid order; item ids must
/// be dense in [0, max_item]. CRLF line endings are tolerated and
/// empty / whitespace-only rows are skipped; structurally malformed rows
/// (trailing commas, empty cells, non-numeric or trailing-garbage cells)
/// return a typed kInvalidArgument error instead of misparsing silently.
Result<TransactionDataset> LoadCsv(const std::string& path);

}  // namespace licm::data

#endif  // LICM_DATA_CSV_H_
