// Union-find connectivity over boolean-variable ids.
//
// The mutation layer (licm/mutable_instance.h) needs to answer "which
// connected components does this mutation touch?" without re-running the
// solver's decomposition: constraints are hyperedges over BVars, and two
// variables share a component exactly when a chain of constraints links
// them. ConnectivityIndex is a plain disjoint-set union with union by
// size and path compression — append-only unions are O(alpha) each, and a
// retract/edit (which can split components) rebuilds from the surviving
// hyperedges, which is linear in the constraint set and far cheaper than
// any solve.
#ifndef LICM_DATA_CONNECTIVITY_H_
#define LICM_DATA_CONNECTIVITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace licm::data {

class ConnectivityIndex {
 public:
  ConnectivityIndex() = default;

  /// Drops all nodes and edges.
  void Reset(size_t num_nodes = 0);

  /// Grows the node set to at least `num_nodes`; new nodes start as
  /// singleton components.
  void EnsureNodes(size_t num_nodes);

  size_t num_nodes() const { return parent_.size(); }

  /// Merges the components of `a` and `b` (both grown into range first).
  void Union(uint32_t a, uint32_t b);

  /// Merges every node in `nodes` into one component (a hyperedge).
  void UnionAll(const std::vector<uint32_t>& nodes);

  /// Component representative of `node`; nodes beyond num_nodes() are
  /// their own singleton (they are grown in first).
  uint32_t Find(uint32_t node);

  /// Number of distinct components over the current node set.
  size_t NumComponents();

  /// All nodes in the same component as `node` (including itself).
  std::vector<uint32_t> Component(uint32_t node);

 private:
  // parent_[v] == v for roots; size_ is only meaningful at roots.
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace licm::data

#endif  // LICM_DATA_CONNECTIVITY_H_
