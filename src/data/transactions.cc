#include "data/transactions.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace licm::data {

rel::Schema TransItemSchema() {
  return rel::Schema({{"tid", rel::ValueType::kInt},
                      {"loc", rel::ValueType::kInt},
                      {"item", rel::ValueType::kInt},
                      {"price", rel::ValueType::kInt}});
}

rel::Relation TransactionDataset::ToTransItem() const {
  rel::Relation r(TransItemSchema());
  for (const Transaction& t : transactions) {
    for (ItemId item : t.items) {
      r.AppendUnchecked({t.tid, t.location, static_cast<int64_t>(item),
                         price[item]});
    }
  }
  return r;
}

rel::ColumnTable TransactionDataset::ToTransItemColumnar() const {
  rel::ColumnTable t(TransItemSchema());
  size_t rows = 0;
  for (const Transaction& txn : transactions) rows += txn.items.size();
  t.Reserve(rows);
  std::vector<int64_t>& tid = t.col(0).i64;
  std::vector<int64_t>& loc = t.col(1).i64;
  std::vector<int64_t>& item = t.col(2).i64;
  std::vector<int64_t>& pr = t.col(3).i64;
  for (const Transaction& txn : transactions) {
    for (ItemId it : txn.items) {
      tid.push_back(txn.tid);
      loc.push_back(txn.location);
      item.push_back(static_cast<int64_t>(it));
      pr.push_back(price[it]);
    }
  }
  t.set_num_rows(rows);
  return t;
}

TransactionDataset::Stats TransactionDataset::ComputeStats() const {
  Stats s;
  s.num_transactions = transactions.size();
  std::unordered_set<ItemId> distinct;
  for (const Transaction& t : transactions) {
    s.num_rows += t.items.size();
    s.max_size = std::max(s.max_size, t.items.size());
    distinct.insert(t.items.begin(), t.items.end());
  }
  s.avg_size = s.num_transactions == 0
                   ? 0.0
                   : static_cast<double>(s.num_rows) /
                         static_cast<double>(s.num_transactions);
  s.distinct_items = static_cast<uint32_t>(distinct.size());
  return s;
}

namespace {
// Knuth's Poisson sampler; fine for the small means used here.
uint32_t SamplePoisson(double lambda, Rng* rng) {
  const double limit = std::exp(-lambda);
  double p = 1.0;
  uint32_t k = 0;
  do {
    ++k;
    p *= rng->UniformDouble();
  } while (p > limit);
  return k - 1;
}
}  // namespace

TransactionDataset GenerateTransactions(const GeneratorConfig& config) {
  LICM_CHECK(config.num_items > 0);
  LICM_CHECK(config.mean_size >= 1.0);
  Rng rng(config.seed);
  ZipfSampler zipf(config.num_items, config.zipf_s);

  TransactionDataset out;
  out.num_items = config.num_items;
  out.price.resize(config.num_items);
  for (auto& p : out.price) {
    p = rng.UniformInt(0, static_cast<int64_t>(config.num_prices) - 1);
  }

  out.transactions.reserve(config.num_transactions);
  for (uint32_t i = 0; i < config.num_transactions; ++i) {
    Transaction t;
    t.tid = static_cast<int64_t>(i);
    t.location =
        rng.UniformInt(0, static_cast<int64_t>(config.num_locations) - 1);
    // Sizes: 1 + Poisson(mean - 1), capped; reproduces a right-skewed size
    // distribution with the target mean.
    uint32_t size = 1 + SamplePoisson(config.mean_size - 1.0, &rng);
    size = std::min(size, std::min(config.max_size, config.num_items));
    std::unordered_set<ItemId> items;
    // Zipf with rejection for distinctness; guard against pathological
    // configs where the head is too concentrated to find `size` distinct
    // items quickly.
    uint32_t attempts = 0;
    while (items.size() < size && attempts < 50 * size) {
      items.insert(zipf.Sample(&rng));
      ++attempts;
    }
    t.items.assign(items.begin(), items.end());
    std::sort(t.items.begin(), t.items.end());
    out.transactions.push_back(std::move(t));
  }
  return out;
}

}  // namespace licm::data
