// Activity-based bound propagation for integer linear programs.
//
// For every row, the minimum / maximum possible activity under the current
// variable bounds implies bounds on each participating variable. Iterating
// to a fixpoint fixes forced variables and detects infeasibility early.
// This is the workhorse of the branch & bound search: LICM constraint sets
// are dominated by cardinality rows for which propagation is very strong.
#ifndef LICM_SOLVER_PROPAGATION_H_
#define LICM_SOLVER_PROPAGATION_H_

#include <vector>

#include "solver/linear_program.h"

namespace licm::solver {

/// Mutable per-variable bounds used during search. Starts as a copy of the
/// LP's variable bounds and tightens monotonically.
struct Domains {
  std::vector<double> lower;
  std::vector<double> upper;

  static Domains FromProgram(const LinearProgram& lp);

  bool IsFixed(VarId v, double tol = 1e-9) const {
    return upper[v] - lower[v] <= tol;
  }
};

enum class PropagateResult { kFixpoint, kInfeasible };

/// Reusable propagation engine: caches the variable -> rows adjacency of
/// one program so branch & bound can propagate millions of nodes without
/// rebuilding it. The program must outlive the propagator.
class Propagator {
 public:
  explicit Propagator(const LinearProgram& lp);

  /// Tightens `domains` until fixpoint or proven infeasibility. Integer
  /// variables are rounded to integral bounds. `touched` (optional) limits
  /// the initial worklist to rows mentioning those variables; pass nullptr
  /// to start from all rows.
  PropagateResult Run(Domains* domains,
                      const std::vector<VarId>* touched = nullptr) const;

  /// Rows mentioning each variable (exposed for branching heuristics).
  const std::vector<std::vector<uint32_t>>& var_rows() const {
    return var_rows_;
  }

 private:
  const LinearProgram& lp_;
  std::vector<std::vector<uint32_t>> var_rows_;
};

/// One-shot convenience wrapper around Propagator.
PropagateResult Propagate(const LinearProgram& lp, Domains* domains,
                          const std::vector<VarId>* touched = nullptr);

}  // namespace licm::solver

#endif  // LICM_SOLVER_PROPAGATION_H_
