// Activity-based bound propagation for integer linear programs.
//
// For every row, the minimum / maximum possible activity under the current
// variable bounds implies bounds on each participating variable. Iterating
// to a fixpoint fixes forced variables and detects infeasibility early.
// This is the workhorse of the branch & bound search: LICM constraint sets
// are dominated by cardinality rows for which propagation is very strong.
//
// Search integration: propagation can record every bound write into a
// BoundTrail so the caller restores the pre-propagation state in
// O(#changes) instead of copying whole Domains per node/probe, and can
// reuse a PropagationScratch so the per-run worklist does not reallocate.
#ifndef LICM_SOLVER_PROPAGATION_H_
#define LICM_SOLVER_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "solver/linear_program.h"

namespace licm::solver {

/// Mutable per-variable bounds used during search. Starts as a copy of the
/// LP's variable bounds and tightens monotonically.
struct Domains {
  std::vector<double> lower;
  std::vector<double> upper;

  static Domains FromProgram(const LinearProgram& lp);

  bool IsFixed(VarId v, double tol = 1e-9) const {
    return upper[v] - lower[v] <= tol;
  }
};

/// Undo log of domain writes. Every mutation of a Domains during search
/// (branch decisions, propagation, probes, reduced-cost fixings) records
/// the variable's prior bounds here; UnwindTo restores them in reverse
/// order, turning backtracking and probing into O(#changes) operations on
/// one shared Domains instead of full copies.
class BoundTrail {
 public:
  size_t Mark() const { return recs_.size(); }

  /// Records `v`'s current bounds (call BEFORE overwriting them).
  void Record(VarId v, const Domains& dom) {
    recs_.push_back(Rec{v, dom.lower[v], dom.upper[v]});
  }

  /// Pops records down to `mark`, restoring each into `dom`.
  void UnwindTo(size_t mark, Domains* dom) {
    while (recs_.size() > mark) {
      const Rec& r = recs_.back();
      dom->lower[r.var] = r.lo;
      dom->upper[r.var] = r.hi;
      recs_.pop_back();
    }
  }

  /// Like UnwindTo but non-destructive: undoes records above `mark` into
  /// `dom` while leaving the trail itself intact. Used to materialize the
  /// Domains of an interior decision (subtree donation, open-bound
  /// accounting) from the live strand state.
  void ReplayUndo(size_t mark, Domains* dom) const {
    for (size_t i = recs_.size(); i > mark; --i) {
      const Rec& r = recs_[i - 1];
      dom->lower[r.var] = r.lo;
      dom->upper[r.var] = r.hi;
    }
  }

  /// Discards records above `mark` WITHOUT undoing them: the writes they
  /// guard become permanent. Used when a probe refutation fixes a variable
  /// for good at the component root.
  void CommitTo(size_t mark) { recs_.resize(mark); }

  size_t size() const { return recs_.size(); }
  void Clear() { recs_.clear(); }

 private:
  struct Rec {
    VarId var;
    double lo, hi;
  };
  std::vector<Rec> recs_;
};

/// Reusable worklist storage for Propagator::Run. A per-strand instance
/// avoids reallocating (and re-zeroing) a rows-sized queued bitmap on
/// every propagation call — significant when probing fixes one variable
/// at a time on programs with 100k+ rows.
struct PropagationScratch {
  /// stamp[r] == epoch means row r is currently queued.
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;
  std::vector<uint32_t> queue;
};

enum class PropagateResult { kFixpoint, kInfeasible };

/// Reusable propagation engine: caches the variable -> rows adjacency of
/// one program so branch & bound can propagate millions of nodes without
/// rebuilding it. The program must outlive the propagator.
class Propagator {
 public:
  explicit Propagator(const LinearProgram& lp);

  /// Tightens `domains` until fixpoint or proven infeasibility. Integer
  /// variables are rounded to integral bounds. `touched` (optional) limits
  /// the initial worklist to rows mentioning those variables; pass nullptr
  /// to start from all rows. When `trail` is given, every bound write is
  /// recorded so the caller can unwind (including the partial writes of an
  /// infeasible run). `scratch` reuses worklist storage across calls; it
  /// may be shared by calls on different Domains but not concurrently.
  PropagateResult Run(Domains* domains,
                      const std::vector<VarId>* touched = nullptr,
                      BoundTrail* trail = nullptr,
                      PropagationScratch* scratch = nullptr) const;

  /// Rows mentioning each variable (exposed for branching heuristics).
  const std::vector<std::vector<uint32_t>>& var_rows() const {
    return var_rows_;
  }

 private:
  const LinearProgram& lp_;
  std::vector<std::vector<uint32_t>> var_rows_;
};

/// One-shot convenience wrapper around Propagator.
PropagateResult Propagate(const LinearProgram& lp, Domains* domains,
                          const std::vector<VarId>* touched = nullptr);

}  // namespace licm::solver

#endif  // LICM_SOLVER_PROPAGATION_H_
