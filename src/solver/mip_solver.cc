#include "solver/mip_solver.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>

#include <string_view>
#include <unordered_map>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "solver/canonical.h"
#include "solver/components.h"
#include "solver/presolve.h"
#include "solver/propagation.h"
#include "solver/scheduler.h"
#include "solver/simplex.h"
#include "solver/solve_cache.h"

namespace licm::solver {

namespace {

// Everything below maximizes; Solve() flips the objective for minimize.

struct ComponentResult {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;   // incumbent value (valid iff has_solution)
  double best_bound = 0.0;  // proved upper bound
  bool has_solution = false;
  std::vector<double> solution;
};

bool AllIntegral(const LinearProgram& lp) {
  for (const auto& v : lp.vars())
    if (!v.is_integer) return false;
  for (double c : lp.objective())
    if (std::abs(c - std::round(c)) > 1e-9) return false;
  return true;
}

// Max of the objective over the bounding box (ignores rows). Always a valid
// upper bound; exact when the component has no rows.
double ActivityBound(const LinearProgram& lp, const Domains& dom) {
  double b = lp.objective_constant();
  for (VarId v = 0; v < lp.num_vars(); ++v) {
    const double c = lp.objective_coef(v);
    b += c > 0 ? c * dom.upper[v] : c * dom.lower[v];
  }
  return b;
}

// Branch & bound over one connected component. When `scheduler` is
// non-null the search may go parallel: once a depth-first strand has run
// `split_node_threshold` nodes and an executor is idle, it donates the
// oldest half of its open stack (the subtrees nearest the root) to the
// pool as fresh strands, all sharing one atomic incumbent for pruning,
// one node budget, and one stop flag. Every frontier node is either
// expanded or folded into `open_bound_`, so `best_bound` stays a proved
// bound even when the node cap or the deadline cuts the search short.
class ComponentSearch {
 public:
  ComponentSearch(const LinearProgram& lp, const MipOptions& opt,
                  const Deadline& deadline, Scheduler* scheduler,
                  MipStats* stats, int64_t trace_id = 0)
      : lp_(lp), opt_(opt), deadline_(deadline), scheduler_(scheduler),
        stats_(stats), trace_id_(trace_id), propagator_(lp),
        integral_(AllIntegral(lp)) {
    // Index SOS1-style rows (sum of binaries = 1): branching on a whole
    // row (one child per candidate assignee) fixes a permutation slot at a
    // time, which propagates far better than 0/1 branching on one binary.
    sos1_of_var_.assign(lp.num_vars(), -1);
    for (uint32_t r = 0; r < lp.num_rows(); ++r) {
      const Row& row = lp.rows()[r];
      if (row.op != RowOp::kEq || row.rhs != 1.0 || row.terms.size() < 2) {
        continue;
      }
      bool ok = true;
      for (const Term& t : row.terms) {
        const auto& def = lp.vars()[t.var];
        ok &= t.coef == 1.0 && def.is_integer && def.lower >= 0.0 &&
              def.upper <= 1.0;
      }
      if (!ok) continue;
      for (const Term& t : row.terms) {
        if (sos1_of_var_[t.var] < 0) {
          sos1_of_var_[t.var] = static_cast<int32_t>(r);
        }
      }
    }
  }

  ComponentResult Run() {
    ComponentResult res;
    // CPU accounting of the single-threaded prologue (root propagation,
    // probing, dives) and of the search-free paths. Charged to stats_
    // directly — no parallel strands exist yet.
    StopWatch prep_clock;

    // Rowless component: objective decomposes per variable.
    if (lp_.num_rows() == 0) {
      res.status = SolveStatus::kOptimal;
      res.solution.resize(lp_.num_vars());
      for (VarId v = 0; v < lp_.num_vars(); ++v) {
        const auto& def = lp_.vars()[v];
        double x = lp_.objective_coef(v) > 0 ? def.upper : def.lower;
        if (def.is_integer) x = std::round(x);
        res.solution[v] = x;
      }
      res.objective = res.best_bound = lp_.EvalObjective(res.solution);
      res.has_solution = true;
      stats_->cpu_seconds += prep_clock.ElapsedSeconds();
      return res;
    }

    // Pure LP component (no integer variables): one simplex call.
    bool any_integer = false;
    for (const auto& v : lp_.vars()) any_integer |= v.is_integer;
    if (!any_integer) {
      LpSolution s = SolveLpRelaxation(lp_, Sense::kMaximize);
      ++stats_->lp_solves;
      res.status = s.status;
      if (s.status == SolveStatus::kOptimal) {
        res.objective = res.best_bound = s.objective;
        res.solution = std::move(s.values);
        res.has_solution = true;
      }
      stats_->cpu_seconds += prep_clock.ElapsedSeconds();
      return res;
    }

    Domains root = Domains::FromProgram(lp_);
    if (propagator_.Run(&root) == PropagateResult::kFixpoint) {
      if (opt_.use_probing && !ProbeRoot(&root)) {
        res.status = SolveStatus::kInfeasible;
        stats_->cpu_seconds += prep_clock.ElapsedSeconds();
        return res;
      }
      // Seed the incumbent with a few propagation-guided greedy dives;
      // search then starts with a primal bound to prune against. This
      // phase is single-threaded: parallel strands only exist below.
      for (int heur = 0; heur < 3; ++heur) GreedyDive(root, heur);
      stats_->cpu_seconds += prep_clock.ElapsedSeconds();
      {
        std::optional<Scheduler::Group> group;
        if (scheduler_ != nullptr && scheduler_->num_threads() > 1) {
          group.emplace(scheduler_);
          group_ = &*group;
        }
        MipStats local;
        std::vector<Node> stack;
        stack.push_back(Node{std::move(root), {}});
        Dfs(std::move(stack), &local);
        if (group) group->Wait();  // donated strands merge their stats
        group_ = nullptr;
        MergeLocalStats(local);
      }
    } else {
      res.status = SolveStatus::kInfeasible;
      stats_->cpu_seconds += prep_clock.ElapsedSeconds();
      return res;
    }

    // The group has been waited on: all strands are done and their
    // effects ordered before these reads. Infeasibility is only proved by
    // an *uninterrupted* search: a stopped run that found nothing is a
    // time limit, not a proof.
    if (!stopped_.load() && infeasible_only_.load() &&
        !has_incumbent_.load()) {
      res.status = SolveStatus::kInfeasible;
      return res;
    }
    res.has_solution = has_incumbent_.load();
    res.objective = incumbent_value_.load();
    res.solution = incumbent_;
    if (stopped_.load()) {
      res.status = SolveStatus::kTimeLimit;
      res.best_bound = std::max(open_bound_, res.has_solution
                                                 ? res.objective
                                                 : -kInfinity);
    } else {
      res.status = res.has_solution ? SolveStatus::kOptimal
                                    : SolveStatus::kInfeasible;
      res.best_bound = incumbent_value_.load();
    }
    return res;
  }

 private:
  struct Node {
    Domains dom;
    // Variables newly restricted relative to the parent (for incremental
    // propagation); empty => propagate everything.
    std::vector<VarId> touched;
    // Tightest bound inherited from ancestors (their LP/activity bounds
    // remain valid for this subregion). +inf at the root.
    double inherited_bound = kInfinity;
  };

  // Singleton-consistency probing at the root: for every unfixed binary,
  // tentatively fix each value and propagate; a value that propagates to
  // infeasibility fixes the variable to the other value. Returns false if
  // the root itself becomes infeasible. Tightens both search and the
  // activity bounds substantially on permutation-coupled instances.
  bool ProbeRoot(Domains* root) {
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 3) {
      changed = false;
      for (VarId v = 0; v < lp_.num_vars(); ++v) {
        if (!lp_.vars()[v].is_integer) continue;
        if (root->upper[v] - root->lower[v] < 0.5) continue;
        if (deadline_.Expired()) return true;
        const std::vector<VarId> touched{v};
        Domains low = *root;
        low.upper[v] = low.lower[v];
        const bool low_ok =
            propagator_.Run(&low, &touched) == PropagateResult::kFixpoint;
        Domains high = *root;
        high.lower[v] = high.upper[v];
        const bool high_ok =
            propagator_.Run(&high, &touched) == PropagateResult::kFixpoint;
        if (!low_ok && !high_ok) return false;
        if (!low_ok) {
          *root = std::move(high);
          changed = true;
        } else if (!high_ok) {
          *root = std::move(low);
          changed = true;
        }
      }
    }
    return true;
  }

  // Probes every unfixed objective variable at its objective-preferred
  // bound (we maximize, so coef > 0 prefers upper, coef < 0 prefers
  // lower). A refuted preference fixes the variable the other way in
  // `dom`, directly lowering the activity bound. Returns false when the
  // node is infeasible.
  bool ProbeObjectiveVars(Domains* dom) {
    for (VarId v = 0; v < lp_.num_vars(); ++v) {
      const double c = lp_.objective_coef(v);
      if (c == 0.0 || !lp_.vars()[v].is_integer) continue;
      if (dom->upper[v] - dom->lower[v] < 0.5) continue;
      const std::vector<VarId> touched{v};
      Domains probe = *dom;
      if (c > 0) {
        probe.lower[v] = probe.upper[v];
      } else {
        probe.upper[v] = probe.lower[v];
      }
      if (propagator_.Run(&probe, &touched) == PropagateResult::kFixpoint) {
        continue;  // preferred value viable; bound keeps its contribution
      }
      // Preferred value refuted: force the other one and re-propagate.
      if (c > 0) {
        dom->upper[v] = dom->lower[v];
      } else {
        dom->lower[v] = dom->upper[v];
      }
      if (propagator_.Run(dom, &touched) == PropagateResult::kInfeasible) {
        return false;
      }
    }
    return true;
  }

  // Propagation-guided dive: repeatedly fix an unfixed binary to a
  // heuristic value (repairing to the other value on refutation) until all
  // integer variables are fixed, then record the incumbent. Different
  // `heur` values vary the variable order so the dives explore different
  // corners.
  void GreedyDive(Domains dom, int heur) {
    // Dives only apply to pure-integer components (always true for LICM).
    for (const auto& v : lp_.vars()) {
      if (!v.is_integer) return;
    }
    uint64_t lcg = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(heur + 1);
    for (;;) {
      if (deadline_.Expired()) return;
      VarId pick = lp_.num_vars();
      double best_key = -kInfinity;
      for (VarId v = 0; v < lp_.num_vars(); ++v) {
        if (dom.upper[v] - dom.lower[v] <= 0.5) continue;
        double key = 0.0;
        switch (heur) {
          case 0: key = -static_cast<double>(v); break;  // lowest id
          case 1: key = std::abs(lp_.objective_coef(v)); break;
          default: {
            lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
            key = static_cast<double>(lcg >> 33);
            break;
          }
        }
        if (key > best_key) {
          best_key = key;
          pick = v;
        }
      }
      if (pick == lp_.num_vars()) {
        std::vector<double> x(lp_.num_vars());
        for (VarId v = 0; v < lp_.num_vars(); ++v) x[v] = dom.lower[v];
        const double val = lp_.EvalObjective(x);
        OfferIncumbent(val, std::move(x));
        return;
      }
      const double c = lp_.objective_coef(pick);
      const bool up_first = c > 0 || (c == 0.0 && heur == 1);
      const std::vector<VarId> touched{pick};
      Domains trial = dom;
      if (up_first) trial.lower[pick] = trial.upper[pick];
      else trial.upper[pick] = trial.lower[pick];
      if (propagator_.Run(&trial, &touched) == PropagateResult::kFixpoint) {
        dom = std::move(trial);
        continue;
      }
      if (up_first) dom.upper[pick] = dom.lower[pick];
      else dom.lower[pick] = dom.upper[pick];
      if (propagator_.Run(&dom, &touched) == PropagateResult::kInfeasible) {
        return;  // dead end; abandon this dive
      }
    }
  }

  // One depth-first strand. Sequential runs have exactly one strand and
  // visit nodes in the same order as the pre-parallel solver; parallel
  // runs spawn more strands via SplitStack. `stats` is strand-local and
  // merged under stats_mu_ when the strand ends. The wrapper charges the
  // strand's elapsed time to cpu_seconds: strands run concurrently, so
  // their sum approximates CPU time, not wall time.
  void Dfs(std::vector<Node> stack, MipStats* stats) {
    StopWatch strand_clock;
    DfsLoop(std::move(stack), stats);
    stats->cpu_seconds += strand_clock.ElapsedSeconds();
  }

  void DfsLoop(std::vector<Node> stack, MipStats* stats) {
    int64_t since_split = 0;
    int64_t since_progress = 0;
    while (!stack.empty()) {
      if (stopped_.load(std::memory_order_relaxed) ||
          nodes_.load(std::memory_order_relaxed) >=
              opt_.max_nodes_per_component ||
          deadline_.Expired()) {
        stopped_.store(true, std::memory_order_relaxed);
        // Remaining nodes contribute to the proved bound.
        AccountOpen(stack);
        return;
      }
      // Donate the oldest open subtrees once this strand has done enough
      // work to suggest the component is hard and someone is idle.
      if (group_ != nullptr && stack.size() >= 2 &&
          ++since_split >= opt_.split_node_threshold &&
          scheduler_->HasIdleWorker()) {
        since_split = 0;
        SplitStack(&stack, stats);
      }
      Node node = std::move(stack.back());
      stack.pop_back();
      nodes_.fetch_add(1, std::memory_order_relaxed);
      ++stats->nodes;

      const std::vector<VarId>* touched =
          node.touched.empty() ? nullptr : &node.touched;
      if (propagator_.Run(&node.dom, touched) ==
          PropagateResult::kInfeasible) {
        continue;
      }
      infeasible_only_.store(false, std::memory_order_relaxed);

      double bound =
          std::min(ActivityBound(lp_, node.dom), node.inherited_bound);
      if (integral_) bound = std::floor(bound + opt_.tol);
      if (telemetry::Enabled() &&
          ++since_progress >= opt_.trace_progress_nodes) {
        since_progress = 0;
        EmitProgress(bound);
      }
      if (Cut(bound)) continue;

      if (opt_.use_objective_probing &&
          !ProbeObjectiveVars(&node.dom)) {
        continue;  // probing proved the node infeasible
      }
      bound = std::min(ActivityBound(lp_, node.dom), node.inherited_bound);
      if (integral_) bound = std::floor(bound + opt_.tol);
      if (Cut(bound)) continue;

      // Find an unfixed integer variable; preferred branch value comes from
      // the LP relaxation when available. Among candidates, prefer the one
      // most connected to already-fixed variables: on permutation-coupled
      // instances this interleaves the two sides of each join so objective
      // variables get decided (and the bound tightens) early in each dive.
      VarId branch_var = lp_.num_vars();
      double best_score = -1.0;
      for (VarId v = 0; v < lp_.num_vars(); ++v) {
        if (!lp_.vars()[v].is_integer ||
            node.dom.upper[v] - node.dom.lower[v] <= 0.5) {
          continue;
        }
        double score = 0.0;
        for (uint32_t r : propagator_.var_rows()[v]) {
          const Row& row = lp_.rows()[r];
          int fixed = 0;
          for (const Term& t : row.terms) {
            if (node.dom.upper[t.var] - node.dom.lower[t.var] <= 0.5) {
              ++fixed;
            }
          }
          score += static_cast<double>(fixed) /
                   static_cast<double>(row.terms.size());
        }
        if (score > best_score + 1e-12) {
          best_score = score;
          branch_var = v;
        }
      }
      if (branch_var == lp_.num_vars()) {
        // All integer variables fixed; propagation fixpoint on fully fixed
        // integer rows implies feasibility (activities are point values).
        std::vector<double> x(lp_.num_vars());
        for (VarId v = 0; v < lp_.num_vars(); ++v) x[v] = node.dom.lower[v];
        const double val = lp_.EvalObjective(x);
        OfferIncumbent(val, std::move(x));
        continue;
      }

      double frac_target = -1.0;  // LP value of the branch variable
      if (opt_.use_lp_bound && lp_.num_vars() <= opt_.lp_bound_max_vars) {
        LpSolution rel = SolveWithDomains(node.dom);
        ++stats->lp_solves;
        if (rel.status == SolveStatus::kInfeasible) continue;
        if (rel.status == SolveStatus::kOptimal) {
          double lpb = rel.objective;
          if (integral_) lpb = std::floor(lpb + opt_.tol);
          bound = std::min(bound, lpb);
          if (Cut(bound)) continue;
          // Integral LP solutions are incumbents for free.
          VarId most_frac = lp_.num_vars();
          double best_frac = opt_.tol;
          for (VarId v = 0; v < lp_.num_vars(); ++v) {
            if (!lp_.vars()[v].is_integer) continue;
            const double f =
                std::abs(rel.values[v] - std::round(rel.values[v]));
            if (f > best_frac &&
                node.dom.upper[v] - node.dom.lower[v] > 0.5) {
              best_frac = f;
              most_frac = v;
            }
          }
          if (most_frac == lp_.num_vars()) {
            // Vertex is integral; it may still sit between node bounds for
            // fixed vars, but bounds were respected by the LP, so feasible.
            // Snap the within-tolerance values to exact integers and
            // re-evaluate, so the incumbent never carries simplex epsilons
            // (bounds must be bit-identical to enumerating worlds).
            std::vector<double> x = rel.values;
            for (VarId v = 0; v < lp_.num_vars(); ++v) {
              if (lp_.vars()[v].is_integer) x[v] = std::round(x[v]);
            }
            const double val = lp_.EvalObjective(x);
            OfferIncumbent(val, std::move(x));
            continue;
          }
          branch_var = most_frac;
          frac_target = rel.values[most_frac];
        }
        // kTimeLimit / kUnbounded from the relaxation: keep activity bound.
      }

      // SOS1 branching: if the variable sits in a sum(=1) row with several
      // candidates, branch "who gets the 1" — one child per candidate.
      if (sos1_of_var_[branch_var] >= 0) {
        const Row& row =
            lp_.rows()[static_cast<uint32_t>(sos1_of_var_[branch_var])];
        std::vector<VarId> candidates;
        for (const Term& t : row.terms) {
          if (node.dom.upper[t.var] - node.dom.lower[t.var] > 0.5) {
            candidates.push_back(t.var);
          }
        }
        if (candidates.size() >= 2) {
          // Push in reverse so the first candidate is explored first.
          for (size_t i = candidates.size(); i-- > 0;) {
            Node child{node.dom, {candidates[i]}, bound};
            child.dom.lower[candidates[i]] = 1.0;
            stack.push_back(std::move(child));
          }
          continue;
        }
      }

      // Child A explores the preferred value first (pushed last).
      const double lo = node.dom.lower[branch_var];
      const double hi = node.dom.upper[branch_var];
      double split;  // branch: x <= split  |  x >= split + 1
      if (frac_target >= 0.0) {
        split = std::floor(frac_target);
        split = std::clamp(split, lo, hi - 1.0);
      } else {
        split = lo;  // binary-style: try lo side vs rest
      }
      const double c = lp_.objective_coef(branch_var);
      const bool prefer_up = frac_target >= 0.0
                                 ? (frac_target - split > 0.5)
                                 : (c > 0);

      Node down{node.dom, {branch_var}, bound};
      down.dom.upper[branch_var] = split;
      Node up{std::move(node.dom), {branch_var}, bound};
      up.dom.lower[branch_var] = split + 1.0;

      if (prefer_up) {
        stack.push_back(std::move(down));
        stack.push_back(std::move(up));
      } else {
        stack.push_back(std::move(up));
        stack.push_back(std::move(down));
      }
    }
  }

  // Donates the oldest half of the open stack (the subtrees nearest the
  // root) to the pool as fresh strands of this same search.
  void SplitStack(std::vector<Node>* stack, MipStats* stats) {
    const size_t donate = stack->size() / 2;
    telemetry::Instant("scheduler", "donate",
                       {{"component", static_cast<double>(trace_id_)},
                        {"tasks", static_cast<double>(donate)}});
    for (size_t i = 0; i < donate; ++i) {
      // shared_ptr because std::function requires a copyable callable.
      auto n = std::make_shared<Node>(std::move((*stack)[i]));
      ++stats->subtree_tasks;
      group_->Submit([this, n] {
        LICM_TRACE_SPAN("bnb", "subtree");
        MipStats local;
        std::vector<Node> sub;
        sub.push_back(std::move(*n));
        Dfs(std::move(sub), &local);
        MergeLocalStats(local);
      });
    }
    stack->erase(stack->begin(),
                 stack->begin() + static_cast<ptrdiff_t>(donate));
    ++stats->subtree_splits;
  }

  // Periodic gap-vs-time sample from one strand — the per-component
  // progress log. `bound` is the strand's current node bound: a valid
  // upper bound on what its subtree can still deliver.
  void EmitProgress(double bound) const {
    constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
    const bool has_inc = has_incumbent_.load(std::memory_order_relaxed);
    const double inc =
        has_inc ? incumbent_value_.load(std::memory_order_relaxed) : kNan;
    telemetry::Instant(
        "bnb", "progress",
        {{"component", static_cast<double>(trace_id_)},
         {"nodes",
          static_cast<double>(nodes_.load(std::memory_order_relaxed))},
         {"incumbent", inc},
         {"best_bound", bound},
         {"gap", has_inc ? std::max(0.0, bound - inc) : kNan}});
  }

  // Folds unexplored frontier nodes into the proved bound of a stopped
  // search.
  void AccountOpen(const std::vector<Node>& stack) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Node& n : stack) {
      open_bound_ = std::max(
          open_bound_, std::min(NodeBoundCheap(n.dom), n.inherited_bound));
    }
  }

  void OfferIncumbent(double value, std::vector<double> x) {
    // Racy fast path: the incumbent value only ever increases, so a stale
    // read can at worst let a tied-or-worse candidate reach the lock.
    if (has_incumbent_.load(std::memory_order_relaxed) &&
        value <= incumbent_value_.load(std::memory_order_relaxed)) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!has_incumbent_.load(std::memory_order_relaxed) ||
        value > incumbent_value_.load(std::memory_order_relaxed)) {
      incumbent_ = std::move(x);
      incumbent_value_.store(value, std::memory_order_relaxed);
      has_incumbent_.store(true, std::memory_order_relaxed);
    }
  }

  // True when `bound` cannot beat the shared incumbent. A stale incumbent
  // read only delays a cut (extra nodes), never removes a solution.
  bool Cut(double bound) const {
    return has_incumbent_.load(std::memory_order_relaxed) &&
           bound <= incumbent_value_.load(std::memory_order_relaxed) +
                        opt_.tol;
  }

  void MergeLocalStats(const MipStats& local) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_->MergeFrom(local);
  }

  double NodeBoundCheap(const Domains& dom) const {
    double b = ActivityBound(lp_, dom);
    if (integral_) b = std::floor(b + opt_.tol);
    return b;
  }

  LpSolution SolveWithDomains(const Domains& dom) const {
    LinearProgram sub = lp_;  // cheap: component programs are small
    for (VarId v = 0; v < sub.num_vars(); ++v) {
      sub.mutable_vars()[v].lower = dom.lower[v];
      sub.mutable_vars()[v].upper = dom.upper[v];
    }
    return SolveLpRelaxation(sub, Sense::kMaximize);
  }

  const LinearProgram& lp_;
  const MipOptions& opt_;
  const Deadline& deadline_;
  Scheduler* const scheduler_;  // null => splitting disabled
  MipStats* stats_;             // merged into under stats_mu_
  const int64_t trace_id_;      // component id in telemetry events
  Propagator propagator_;       // Run() is const and stateless: shared
  std::vector<int32_t> sos1_of_var_;
  const bool integral_;

  // State shared by all strands of this component's search. The atomics
  // are monotone signals (relaxed ordering suffices: a stale read costs
  // extra nodes, never correctness); the vectors live under mu_.
  Scheduler::Group* group_ = nullptr;
  std::atomic<int64_t> nodes_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> infeasible_only_{true};
  std::atomic<bool> has_incumbent_{false};
  std::atomic<double> incumbent_value_{-kInfinity};
  std::mutex mu_;        // incumbent_ vector + open_bound_
  std::mutex stats_mu_;  // strand-local MipStats merges into *stats_
  double open_bound_ = -kInfinity;
  std::vector<double> incumbent_;
};

// ---------------------------------------------------------------------------
// Shared pipeline: presolve + decomposition run once, components are solved
// as one deduplicated batch (cache-aware), results assemble per sense.

struct PreparedPipeline {
  bool infeasible = false;
  PresolveResult pre;
  /// Post-presolve program; points into `pre` or at the caller's program.
  const LinearProgram* work = nullptr;
  std::vector<Component> comps;
};

void Prepare(const LinearProgram& lp, const MipOptions& opt, MipStats* stats,
             PreparedPipeline* p) {
  if (opt.use_presolve) {
    ++stats->presolve_calls;
    p->pre = Presolve(lp);
    if (p->pre.infeasible) {
      p->infeasible = true;
      return;
    }
    stats->presolve_fixed_vars = p->pre.stats.vars_fixed;
    stats->presolve_removed_rows =
        p->pre.stats.rows_removed + p->pre.stats.duplicate_rows;
    p->work = &p->pre.reduced;
  } else {
    p->work = &lp;
  }
  ++stats->decompose_calls;
  if (opt.use_decomposition) {
    p->comps = Decompose(*p->work);
  } else {
    Component whole;
    whole.program = *p->work;
    whole.to_parent.resize(p->work->num_vars());
    for (VarId v = 0; v < p->work->num_vars(); ++v) whole.to_parent[v] = v;
    p->comps.push_back(std::move(whole));
  }
  stats->components = p->comps.size();
}

ComponentResult EntryToResult(const ComponentCache::Entry& e,
                              const CanonicalForm& form) {
  ComponentResult res;
  res.status = e.status;
  res.has_solution = e.has_solution;
  res.objective = res.best_bound = e.objective;
  if (e.has_solution) res.solution = CanonicalToInput(form, e.solution);
  return res;
}

// Solves every program (all maximization-oriented) in one batch. With a
// cache, programs are canonicalized first and grouped by form: one search
// answers the whole isomorphism class, and proved results are memoized for
// later batches. Rowless programs skip the cache — solving them by
// inspection is cheaper than fingerprinting them — as do components above
// the size cap (see MipOptions::cache_max_component_vars).
//
// With a multi-thread scheduler, component tasks go through one shared
// pool, and each ComponentSearch may additionally donate subtrees into
// that same pool — so a batch that is one giant component (the Query-3
// join regime) still saturates the machine.
std::vector<ComponentResult> SolveBatch(
    const std::vector<const LinearProgram*>& programs, const MipOptions& opt,
    const Deadline& deadline, Scheduler* scheduler, MipStats* stats) {
  const size_t n = programs.size();
  std::vector<ComponentResult> results(n);

  std::vector<CanonicalForm> forms(n);
  std::vector<bool> use_cache(n, false);
  std::vector<std::vector<size_t>> group_members;  // ordered by first member
  std::vector<int32_t> group_of_rep(n, -1);
  if (opt.cache) {
    LICM_TRACE_SPAN("solver", "canonicalize");
    std::unordered_map<std::string_view, size_t> group_of;
    for (size_t i = 0; i < n; ++i) {
      if (programs[i]->num_rows() == 0 ||
          programs[i]->num_vars() > opt.cache_max_component_vars) {
        continue;
      }
      forms[i] = Canonicalize(*programs[i]);
      use_cache[i] = true;
      ++stats->canonical_forms;
      auto [it, fresh] = group_of.try_emplace(std::string_view(forms[i].key),
                                              group_members.size());
      if (fresh) group_members.emplace_back();
      group_members[it->second].push_back(i);
    }
  }

  // Task list: every uncacheable program, plus one representative per
  // isomorphism class.
  std::vector<size_t> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!use_cache[i]) tasks.push_back(i);
  }
  for (size_t g = 0; g < group_members.size(); ++g) {
    group_of_rep[group_members[g].front()] = static_cast<int32_t>(g);
    tasks.push_back(group_members[g].front());
  }
  std::vector<uint8_t> rep_hit(group_members.size(), 0);

  auto run_task = [&](size_t i, MipStats* task_stats) {
    if (use_cache[i]) {
      ComponentCache::Entry entry;
      if (opt.cache->Lookup(forms[i], &entry)) {
        telemetry::Instant("cache", "cache_hit",
                           {{"component", static_cast<double>(i)}});
        results[i] = EntryToResult(entry, forms[i]);
        rep_hit[static_cast<size_t>(group_of_rep[i])] = 1;
        return;
      }
      telemetry::Instant("cache", "cache_miss",
                         {{"component", static_cast<double>(i)}});
      telemetry::ScopedSpan span("solver", "search");
      span.AddArg("component", static_cast<double>(i));
      ComponentSearch search(*programs[i], opt, deadline, scheduler,
                             task_stats, static_cast<int64_t>(i));
      results[i] = search.Run();
      const ComponentResult& res = results[i];
      if (res.status == SolveStatus::kOptimal ||
          res.status == SolveStatus::kInfeasible) {
        ComponentCache::Entry ins;
        ins.status = res.status;
        ins.objective = res.objective;
        ins.has_solution = res.has_solution;
        if (res.has_solution) {
          ins.solution = InputToCanonical(forms[i], res.solution);
        }
        opt.cache->Insert(forms[i], std::move(ins));
      }
      return;
    }
    telemetry::ScopedSpan span("solver", "search");
    span.AddArg("component", static_cast<double>(i));
    ComponentSearch search(*programs[i], opt, deadline, scheduler, task_stats,
                           static_cast<int64_t>(i));
    results[i] = search.Run();
  };

  const int threads = scheduler == nullptr ? 1 : scheduler->num_threads();
  if (threads == 1) {
    for (size_t t : tasks) run_task(t, stats);
  } else {
    // One scheduler task per component search; each search may donate
    // subtrees back into the same pool. A single-task batch still goes
    // through the group so the lone component can split internally.
    std::vector<MipStats> task_stats(tasks.size());
    {
      Scheduler::Group group(scheduler);
      for (size_t idx = 0; idx < tasks.size(); ++idx) {
        group.Submit([&, idx] { run_task(tasks[idx], &task_stats[idx]); });
      }
      group.Wait();
    }
    // Merge in task-index order: counters are sums, so the totals are
    // deterministic regardless of how work was interleaved.
    for (const MipStats& s : task_stats) stats->MergeFrom(s);
  }

  // Replay each representative's result to the rest of its isomorphism
  // class, permuting the solution through canonical space. Time-limited
  // results are shared too (their bounds are permutation-invariant) but
  // were not inserted into the cache above.
  for (size_t g = 0; g < group_members.size(); ++g) {
    const std::vector<size_t>& members = group_members[g];
    const size_t rep = members.front();
    if (rep_hit[g]) {
      stats->cache_hits += static_cast<int64_t>(members.size());
    } else {
      ++stats->cache_misses;
      stats->cache_hits += static_cast<int64_t>(members.size()) - 1;
    }
    if (members.size() == 1) continue;
    const ComponentResult& src = results[rep];
    std::vector<double> canonical_x;
    if (src.has_solution) {
      canonical_x = InputToCanonical(forms[rep], src.solution);
    }
    for (size_t mi = 1; mi < members.size(); ++mi) {
      const size_t m = members[mi];
      ComponentResult res;
      res.status = src.status;
      res.objective = src.objective;
      res.best_bound = src.best_bound;
      res.has_solution = src.has_solution;
      if (src.has_solution) {
        res.solution = CanonicalToInput(forms[m], canonical_x);
      }
      results[m] = std::move(res);
    }
  }
  return results;
}

// Assembles component results (for maximize-oriented solved programs) into
// a MipResult. `offset` selects the slice of `solved` belonging to this
// sense; `solved_work_constant` is the objective constant of the solved
// whole program; `negate` flips objective/bound back into the caller's
// orientation (the min side solves negated programs).
MipResult Assemble(const PreparedPipeline& p, const MipOptions& opt,
                   const std::vector<const LinearProgram*>& solved_programs,
                   const std::vector<ComponentResult>& solved, size_t offset,
                   double solved_work_constant, bool negate) {
  MipResult result;
  // Component programs carry coefficient-only objectives, so the whole
  // program's constant is added once. (Component constants are subtracted
  // back out to keep this correct when decomposition is disabled and the
  // single component *is* the whole program.)
  double objective = solved_work_constant;
  double best_bound = solved_work_constant;
  bool all_optimal = true;
  bool any_solution_missing = false;
  std::vector<double> assembled(p.work->num_vars(), 0.0);

  for (size_t ci = 0; ci < p.comps.size(); ++ci) {
    const ComponentResult& cr = solved[offset + ci];
    if (cr.status == SolveStatus::kInfeasible) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
    if (cr.status == SolveStatus::kUnbounded) {
      result.status = SolveStatus::kUnbounded;
      return result;
    }
    if (cr.status != SolveStatus::kOptimal) all_optimal = false;
    const double comp_const =
        solved_programs[offset + ci]->objective_constant();
    objective += cr.has_solution ? cr.objective - comp_const : 0.0;
    best_bound += cr.best_bound - comp_const;
    if (cr.has_solution) {
      const Component& comp = p.comps[ci];
      for (size_t i = 0; i < comp.to_parent.size(); ++i)
        assembled[comp.to_parent[i]] = cr.solution[i];
    } else {
      any_solution_missing = true;
    }
  }

  result.status =
      all_optimal ? SolveStatus::kOptimal : SolveStatus::kTimeLimit;
  result.has_solution = !any_solution_missing;
  if (result.has_solution) {
    result.solution = opt.use_presolve ? p.pre.Postsolve(assembled)
                                       : std::move(assembled);
    result.objective = negate ? -objective : objective;
  }
  result.best_bound = negate ? -best_bound : best_bound;
  if (result.status == SolveStatus::kOptimal) {
    result.best_bound = result.objective;
  }
  // Normalize negative zeros introduced by the negation.
  if (result.objective == 0.0) result.objective = 0.0;
  if (result.best_bound == 0.0) result.best_bound = 0.0;
  return result;
}

// Copies a negated-objective twin of `lp` (same feasible set; maximizing it
// solves the min side).
LinearProgram NegateObjective(const LinearProgram& lp) {
  LinearProgram neg = lp;
  for (VarId v = 0; v < neg.num_vars(); ++v)
    neg.SetObjectiveCoef(v, -neg.objective_coef(v));
  neg.AddObjectiveConstant(-2.0 * neg.objective_constant());
  return neg;
}

}  // namespace

void MipStats::MergeFrom(const MipStats& other) {
  nodes += other.nodes;
  lp_solves += other.lp_solves;
  components += other.components;
  presolve_fixed_vars += other.presolve_fixed_vars;
  presolve_removed_rows += other.presolve_removed_rows;
  presolve_calls += other.presolve_calls;
  decompose_calls += other.decompose_calls;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  canonical_forms += other.canonical_forms;
  subtree_splits += other.subtree_splits;
  subtree_tasks += other.subtree_tasks;
  num_threads = std::max(num_threads, other.num_threads);
  // Wall time keeps the outermost (concurrent strands overlap in time);
  // CPU time sums across strands. Sequential aggregation over *disjoint*
  // intervals (e.g. the feasibility prober's probe sequence) must sum
  // walls explicitly around this merge.
  solve_seconds = std::max(solve_seconds, other.solve_seconds);
  cpu_seconds += other.cpu_seconds;
}

MipResult MipSolver::Solve(const LinearProgram& input, Sense sense) const {
  StopWatch clock;
  LICM_TRACE_SPAN("solver", "mip_solve");
  LICM_CHECK_OK(input.Validate());

  // Normalize to maximization.
  const bool minimize = sense == Sense::kMinimize;
  LinearProgram lp = input;
  if (minimize) lp = NegateObjective(input);

  MipOptions opt = options_;
  ComponentCache local_cache;
  if (!opt.use_cache) {
    opt.cache = nullptr;
  } else if (opt.cache == nullptr) {
    opt.cache = &local_cache;
  }

  const Deadline local_deadline = Deadline::After(opt.time_limit_seconds);
  const Deadline& deadline =
      opt.deadline != nullptr ? *opt.deadline : local_deadline;
  std::optional<Scheduler> local_sched;
  Scheduler* sched = opt.scheduler;
  if (sched == nullptr && Scheduler::ResolveThreads(opt.num_threads) > 1) {
    local_sched.emplace(opt.num_threads);
    sched = &*local_sched;
  }

  MipStats stats;
  stats.num_threads = sched != nullptr ? sched->num_threads() : 1;
  PreparedPipeline p;
  Prepare(lp, opt, &stats, &p);
  if (p.infeasible) {
    MipResult result;
    result.status = SolveStatus::kInfeasible;
    result.stats = stats;
    result.stats.solve_seconds = clock.ElapsedSeconds();
    return result;
  }

  std::vector<const LinearProgram*> programs;
  programs.reserve(p.comps.size());
  for (const Component& c : p.comps) programs.push_back(&c.program);
  std::vector<ComponentResult> solved =
      SolveBatch(programs, opt, deadline, sched, &stats);
  MipResult result = Assemble(p, opt, programs, solved, 0,
                              p.work->objective_constant(), minimize);
  result.stats = stats;
  result.stats.solve_seconds = clock.ElapsedSeconds();
  return result;
}

MinMaxMipResult MipSolver::SolveMinMax(const LinearProgram& input) const {
  StopWatch clock;
  LICM_TRACE_SPAN("solver", "mip_solve_minmax");
  MinMaxMipResult out;
  LICM_CHECK_OK(input.Validate());

  MipOptions opt = options_;
  ComponentCache local_cache;
  if (!opt.use_cache) {
    opt.cache = nullptr;
  } else if (opt.cache == nullptr) {
    opt.cache = &local_cache;
  }

  const Deadline local_deadline = Deadline::After(opt.time_limit_seconds);
  const Deadline& deadline =
      opt.deadline != nullptr ? *opt.deadline : local_deadline;
  std::optional<Scheduler> local_sched;
  Scheduler* sched = opt.scheduler;
  if (sched == nullptr && Scheduler::ResolveThreads(opt.num_threads) > 1) {
    local_sched.emplace(opt.num_threads);
    sched = &*local_sched;
  }

  PreparedPipeline p;
  out.stats.num_threads = sched != nullptr ? sched->num_threads() : 1;
  Prepare(input, opt, &out.stats, &p);
  if (p.infeasible) {
    out.min.status = out.max.status = SolveStatus::kInfeasible;
    out.stats.solve_seconds = clock.ElapsedSeconds();
    return out;
  }

  // One task list covers both senses: components as-is for the max side,
  // negated-objective twins for the min side. A single batch shares the
  // thread pool and the cache across senses, and feasibility-only
  // components (zero objective) even dedupe *between* senses.
  const size_t nc = p.comps.size();
  std::vector<LinearProgram> negated;
  negated.reserve(nc);
  for (const Component& c : p.comps) {
    negated.push_back(NegateObjective(c.program));
  }
  std::vector<const LinearProgram*> programs(2 * nc);
  for (size_t i = 0; i < nc; ++i) {
    programs[i] = &p.comps[i].program;
    programs[nc + i] = &negated[i];
  }
  std::vector<ComponentResult> solved =
      SolveBatch(programs, opt, deadline, sched, &out.stats);

  out.max = Assemble(p, opt, programs, solved, 0,
                     p.work->objective_constant(), /*negate=*/false);
  out.min = Assemble(p, opt, programs, solved, nc,
                     -p.work->objective_constant(), /*negate=*/true);
  out.stats.solve_seconds = clock.ElapsedSeconds();
  return out;
}

}  // namespace licm::solver
