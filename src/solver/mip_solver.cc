#include "solver/mip_solver.h"

#include "common/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "solver/canonical.h"
#include "solver/components.h"
#include "solver/cuts.h"
#include "solver/presolve.h"
#include "solver/propagation.h"
#include "solver/scheduler.h"
#include "solver/simplex.h"
#include "solver/solve_cache.h"

namespace licm::solver {

namespace {

// Everything below maximizes; Solve() flips the objective for minimize.

struct ComponentResult {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;   // incumbent value (valid iff has_solution)
  double best_bound = 0.0;  // proved upper bound
  bool has_solution = false;
  std::vector<double> solution;
};

bool AllIntegral(const LinearProgram& lp) {
  for (const auto& v : lp.vars())
    if (!v.is_integer) return false;
  for (double c : lp.objective())
    if (std::abs(c - std::round(c)) > 1e-9) return false;
  return true;
}

// Max of the objective over the bounding box (ignores rows). Always a valid
// upper bound; exact when the component has no rows.
double ActivityBound(const LinearProgram& lp, const Domains& dom) {
  double b = lp.objective_constant();
  for (VarId v = 0; v < lp.num_vars(); ++v) {
    const double c = lp.objective_coef(v);
    b += c > 0 ? c * dom.upper[v] : c * dom.lower[v];
  }
  return b;
}

constexpr VarId kNoVar = std::numeric_limits<VarId>::max();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// Serialized identity of a cut row for deduplication in the component
// registry (variable ids, coefficient signs, rounded rhs).
std::string CutKeyString(const Row& row) {
  std::string key;
  key.reserve(row.terms.size() * 6 + 8);
  for (const Term& t : row.terms) {
    key.push_back(t.coef > 0 ? '+' : '-');
    key.append(std::to_string(t.var));
    key.push_back(',');
  }
  key.push_back('|');
  key.append(std::to_string(std::llround(row.rhs * 4.0)));
  return key;
}

// Branch & bound over one connected component. When `scheduler` is
// non-null the search may go parallel: once a depth-first strand has run
// `split_node_threshold` nodes and an executor is idle, it donates the
// oldest open decisions of its stack (the subtrees nearest the root) to
// the pool as fresh strands, all sharing one atomic incumbent for pruning,
// one node budget, and one stop flag. Every frontier node is either
// expanded or folded into `open_bound_`, so `best_bound` stays a proved
// bound even when the node cap or the deadline cuts the search short.
//
// Node state is a *strand*: one Domains, one BoundTrail, and a stack of
// pending Decisions. A decision records the trail mark at which it was
// created; popping it unwinds the trail to that mark (O(#changes) instead
// of a Domains copy per node), applies its bound change, and propagates.
// Probing and dives run on the same trail. Each strand also carries one
// IncrementalLp: the node relaxation warm-starts from whatever basis the
// previous node left, and its duals feed reduced-cost fixing and
// pseudo-cost branching. Donated subtrees materialize their Domains from
// the donor's trail and inherit the donor's basis snapshot.
class ComponentSearch {
 public:
  ComponentSearch(const LinearProgram& lp, const MipOptions& opt,
                  const Deadline& deadline, Scheduler* scheduler,
                  MipStats* stats, int64_t trace_id = 0,
                  const CanonicalForm* form = nullptr)
      : lp_(lp), opt_(opt), deadline_(deadline), scheduler_(scheduler),
        stats_(stats), trace_id_(trace_id), form_(form), propagator_(lp),
        integral_(AllIntegral(lp)),
        lp_warm_(opt.use_lp_bound && opt.use_warm_lp &&
                 lp.num_vars() <= opt.warm_lp_max_vars &&
                 IncrementalLp::Suitable(lp, SimplexOptions{})),
        lp_at_nodes_(opt.use_lp_bound &&
                     (lp.num_vars() <= opt.lp_bound_max_vars || lp_warm_)) {
    if (opt.use_pseudo_cost) {
      for (int dir = 0; dir < 2; ++dir) {
        pc_sum_[dir].assign(lp.num_vars(), 0.0);
        pc_cnt_[dir].assign(lp.num_vars(), 0);
      }
    }
    // Index SOS1-style rows (sum of binaries = 1): branching on a whole
    // row (one child per candidate assignee) fixes a permutation slot at a
    // time, which propagates far better than 0/1 branching on one binary.
    sos1_of_var_.assign(lp.num_vars(), -1);
    for (uint32_t r = 0; r < lp.num_rows(); ++r) {
      const Row& row = lp.rows()[r];
      if (row.op != RowOp::kEq || row.rhs != 1.0 || row.terms.size() < 2) {
        continue;
      }
      bool ok = true;
      for (const Term& t : row.terms) {
        const auto& def = lp.vars()[t.var];
        ok &= t.coef == 1.0 && def.is_integer && def.lower >= 0.0 &&
              def.upper <= 1.0;
      }
      if (!ok) continue;
      for (const Term& t : row.terms) {
        if (sos1_of_var_[t.var] < 0) {
          sos1_of_var_[t.var] = static_cast<int32_t>(r);
        }
      }
    }
  }

  /// Seeds the shared incumbent with a candidate feasible point before
  /// Run(). The candidate is re-validated against the concrete program
  /// (bounds, integrality, rows); an infeasible point is rejected and
  /// false returned, so a stale pool entry can never corrupt a proof.
  /// A seeded incumbent only prunes — the optimum is unchanged, the
  /// adaptive prologue may just find the root gap already closed.
  bool SeedIncumbent(std::vector<double> x) {
    if (x.size() != lp_.num_vars()) return false;
    if (!lp_.IsFeasible(x, opt_.tol)) return false;
    const double val = lp_.EvalObjective(x);
    OfferIncumbent(val, std::move(x));
    return true;
  }

  ComponentResult Run() {
    ComponentResult res;
    // CPU accounting of the single-threaded prologue (root propagation,
    // probing, dives) and of the search-free paths. Charged to stats_
    // directly — no parallel strands exist yet.
    StopWatch prep_clock;

    // Rowless component: objective decomposes per variable.
    if (lp_.num_rows() == 0) {
      res.status = SolveStatus::kOptimal;
      res.solution.resize(lp_.num_vars());
      for (VarId v = 0; v < lp_.num_vars(); ++v) {
        const auto& def = lp_.vars()[v];
        double x = lp_.objective_coef(v) > 0 ? def.upper : def.lower;
        if (def.is_integer) x = std::round(x);
        res.solution[v] = x;
      }
      res.objective = res.best_bound = lp_.EvalObjective(res.solution);
      res.has_solution = true;
      stats_->cpu_seconds += prep_clock.ElapsedSeconds();
      return res;
    }

    // Pure LP component (no integer variables): one simplex call.
    bool any_integer = false;
    for (const auto& v : lp_.vars()) any_integer |= v.is_integer;
    if (!any_integer) {
      LpSolution s = SolveLpRelaxation(lp_, Sense::kMaximize);
      ++stats_->lp_solves;
      res.status = s.status;
      if (s.status == SolveStatus::kOptimal) {
        res.objective = res.best_bound = s.objective;
        res.solution = std::move(s.values);
        res.has_solution = true;
      }
      stats_->cpu_seconds += prep_clock.ElapsedSeconds();
      return res;
    }

    Strand root_strand;
    root_strand.dom = Domains::FromProgram(lp_);
    if (propagator_.Run(&root_strand.dom, nullptr, nullptr,
                        &root_strand.scratch) == PropagateResult::kFixpoint) {
      // Adaptive prologue (use_adaptive_prologue): one objective-guided
      // dive first — heuristic 1 drives every objective variable to its
      // preferred bound before touching filler variables, so when that
      // corner is feasible the incumbent equals the root activity bound
      // outright and both the singleton-probing sweep and the remaining
      // dives are pure overhead (on aggregate queries the objective
      // touches a few dozen variables of a 20k-variable component). Each
      // stage below runs only while the gap stays open. With the flag off
      // this reproduces the legacy fixed prologue: full probing sweep,
      // then all three dives, unconditionally.
      if (opt_.use_adaptive_prologue) {
        LICM_TRACE_SPAN("solver", "dives");
        // Cheapest first: if the objective-preferred corner of the
        // propagated box satisfies every row outright (one O(nnz) sweep),
        // its value IS the activity bound and no dive is needed at all.
        if (!TryPreferredCorner(root_strand.dom)) {
          GreedyDive(&root_strand, 1);
        }
      }
      if (!opt_.use_adaptive_prologue || !RootGapClosed(root_strand.dom)) {
        LICM_TRACE_SPAN("solver", "probe_root");
        if (opt_.use_probing && !ProbeRoot(&root_strand)) {
          res.status = SolveStatus::kInfeasible;
          stats_->cpu_seconds += prep_clock.ElapsedSeconds();
          return res;
        }
      }
      // Remaining dives: seed the incumbent from other corners so search
      // starts with a primal bound to prune against. Single-threaded —
      // parallel strands only exist below.
      if (!opt_.use_adaptive_prologue) {
        LICM_TRACE_SPAN("solver", "dives");
        for (int heur = 0; heur < 3; ++heur) GreedyDive(&root_strand, heur);
      } else if (!RootGapClosed(root_strand.dom)) {
        LICM_TRACE_SPAN("solver", "dives");
        for (int heur : {0, 2}) {
          GreedyDive(&root_strand, heur);
          if (RootGapClosed(root_strand.dom)) break;
        }
      }

      // Root LP: warm state, pooled cuts, root cut separation, and strong
      // branching — all before any parallel strand exists.
      double root_bound = kInfinity;
      if (lp_warm_ && !RootLpSetup(&root_strand, &root_bound)) {
        res.status = SolveStatus::kInfeasible;
        stats_->cpu_seconds += prep_clock.ElapsedSeconds();
        return res;
      }
      stats_->cpu_seconds += prep_clock.ElapsedSeconds();
      {
        std::optional<Scheduler::Group> group;
        if (scheduler_ != nullptr && scheduler_->num_threads() > 1) {
          group.emplace(scheduler_);
          group_ = &*group;
        }
        MipStats local;
        Decision root_dec;
        root_dec.var = kNoVar;  // domains already propagated above
        root_dec.inherited = root_bound;
        root_strand.stack.push_back(root_dec);
        Dfs(&root_strand, &local);
        if (group) group->Wait();  // donated strands merge their stats
        group_ = nullptr;
        MergeLocalStats(local);
      }
      // Cuts survive the search — valid rows for every later isomorphic
      // component even when this solve itself hit a limit.
      if (opt_.use_cuts && opt_.cut_pool != nullptr && form_ != nullptr) {
        std::lock_guard<std::mutex> lock(cuts_mu_);
        if (!cuts_.empty()) opt_.cut_pool->Store(*form_, cuts_);
      }
    } else {
      res.status = SolveStatus::kInfeasible;
      stats_->cpu_seconds += prep_clock.ElapsedSeconds();
      return res;
    }

    // The group has been waited on: all strands are done and their
    // effects ordered before these reads. Infeasibility is only proved by
    // an *uninterrupted* search: a stopped run that found nothing is a
    // time limit, not a proof.
    if (!stopped_.load() && infeasible_only_.load() &&
        !has_incumbent_.load()) {
      res.status = SolveStatus::kInfeasible;
      return res;
    }
    res.has_solution = has_incumbent_.load();
    res.objective = incumbent_value_.load();
    res.solution = incumbent_;
    if (stopped_.load()) {
      res.status = SolveStatus::kTimeLimit;
      res.best_bound = std::max(open_bound_, res.has_solution
                                                 ? res.objective
                                                 : -kInfinity);
    } else {
      res.status = res.has_solution ? SolveStatus::kOptimal
                                    : SolveStatus::kInfeasible;
      res.best_bound = incumbent_value_.load();
    }
    return res;
  }

 private:
  // One pending branch decision. `mark` is the trail length when the
  // decision was created: popping it unwinds to `mark` (recovering the
  // parent's exact Domains), then imposes [lo, hi] on `var` and
  // propagates. The root seed uses var == kNoVar (no change, domains
  // already at fixpoint).
  struct Decision {
    size_t mark = 0;
    VarId var = kNoVar;
    double lo = 0.0, hi = 0.0;
    // Tightest bound inherited from ancestors (their LP/activity bounds
    // remain valid for this subregion). +inf at the root.
    double inherited = kInfinity;
    // Parent relaxation objective and this child's fractional distance,
    // for the pseudo-cost observation when this child's relaxation
    // solves. pc_dist < 0 => no observation (no parent LP, SOS1 child).
    double parent_obj = kNan;
    double pc_dist = -1.0;
    int8_t dir = 0;  // 0 = down child, 1 = up child
  };

  // One depth-first search strand: shared Domains + undo trail + decision
  // stack, plus the strand's warm LP state and reusable propagation
  // scratch. Sequential searches have exactly one; SplitStack donates
  // more.
  struct Strand {
    Domains dom;
    BoundTrail trail;
    std::vector<Decision> stack;
    PropagationScratch scratch;
    std::unique_ptr<IncrementalLp> lp;
    size_t applied_cuts = 0;  // prefix of cuts_ already in `lp`
    LpBasis seed_basis;       // donor basis for warm-starting
  };

  // Singleton-consistency probing at the root: for every unfixed binary,
  // tentatively fix each value and propagate; a value that propagates to
  // infeasibility fixes the variable to the other value. Returns false if
  // the root itself becomes infeasible. Tightens both search and the
  // activity bounds substantially on permutation-coupled instances.
  // Probes run on the strand's trail and unwind in O(#changes); forced
  // fixings are committed (root state is permanent, nothing unwinds past
  // it).
  bool ProbeRoot(Strand* s) {
    Domains& dom = s->dom;
    bool changed = true;
    int rounds = 0;
    uint32_t since_check = 0;
    while (changed && rounds++ < 3) {
      changed = false;
      if (opt_.use_adaptive_prologue && RootGapClosed(dom)) return true;
      for (VarId v = 0; v < lp_.num_vars(); ++v) {
        if (!lp_.vars()[v].is_integer) continue;
        if (dom.upper[v] - dom.lower[v] < 0.5) continue;
        if (deadline_.Expired()) return true;
        // Committed fixings tighten the activity bound as the sweep runs;
        // once it meets the incumbent the rest of the sweep is moot.
        if (opt_.use_adaptive_prologue && ++since_check >= 512) {
          since_check = 0;
          if (RootGapClosed(dom)) return true;
        }
        const std::vector<VarId> touched{v};
        const size_t mark = s->trail.Mark();
        s->trail.Record(v, dom);
        dom.upper[v] = dom.lower[v];
        const bool low_ok =
            propagator_.Run(&dom, &touched, &s->trail, &s->scratch) ==
            PropagateResult::kFixpoint;
        s->trail.UnwindTo(mark, &dom);
        s->trail.Record(v, dom);
        dom.lower[v] = dom.upper[v];
        const bool high_ok =
            propagator_.Run(&dom, &touched, &s->trail, &s->scratch) ==
            PropagateResult::kFixpoint;
        if (!low_ok && !high_ok) return false;
        if (!low_ok) {
          s->trail.CommitTo(mark);  // keep the propagated high state
          changed = true;
        } else if (!high_ok) {
          s->trail.UnwindTo(mark, &dom);
          s->trail.Record(v, dom);
          dom.upper[v] = dom.lower[v];
          propagator_.Run(&dom, &touched, &s->trail, &s->scratch);
          s->trail.CommitTo(mark);  // keep the propagated low state
          changed = true;
        } else {
          s->trail.UnwindTo(mark, &dom);  // both viable: keep neither
        }
      }
    }
    return true;
  }

  // Probes every unfixed objective variable at its objective-preferred
  // bound (we maximize, so coef > 0 prefers upper, coef < 0 prefers
  // lower). A refuted preference fixes the variable the other way —
  // recorded on the trail, so the fixing lives exactly as long as the
  // node. Returns false when the node is infeasible.
  bool ProbeObjectiveVars(Strand* s) {
    Domains& dom = s->dom;
    for (VarId v = 0; v < lp_.num_vars(); ++v) {
      const double c = lp_.objective_coef(v);
      if (c == 0.0 || !lp_.vars()[v].is_integer) continue;
      if (dom.upper[v] - dom.lower[v] < 0.5) continue;
      const std::vector<VarId> touched{v};
      const size_t mark = s->trail.Mark();
      s->trail.Record(v, dom);
      if (c > 0) {
        dom.lower[v] = dom.upper[v];
      } else {
        dom.upper[v] = dom.lower[v];
      }
      if (propagator_.Run(&dom, &touched, &s->trail, &s->scratch) ==
          PropagateResult::kFixpoint) {
        s->trail.UnwindTo(mark, &dom);
        continue;  // preferred value viable; bound keeps its contribution
      }
      // Preferred value refuted: force the other one and re-propagate.
      s->trail.UnwindTo(mark, &dom);
      s->trail.Record(v, dom);
      if (c > 0) {
        dom.upper[v] = dom.lower[v];
      } else {
        dom.lower[v] = dom.upper[v];
      }
      if (propagator_.Run(&dom, &touched, &s->trail, &s->scratch) ==
          PropagateResult::kInfeasible) {
        return false;
      }
    }
    return true;
  }

  // Evaluates the objective-preferred corner of the current box (every
  // variable at the bound its objective coefficient prefers) against all
  // rows. Feasible => offers it as the incumbent — whose value equals the
  // activity bound by construction — and returns true. One O(nnz) sweep;
  // integral components only (fractional bounds could need rounding).
  bool TryPreferredCorner(const Domains& dom) {
    for (const auto& v : lp_.vars()) {
      if (!v.is_integer) return false;
    }
    std::vector<double> x(lp_.num_vars());
    for (VarId v = 0; v < lp_.num_vars(); ++v) {
      x[v] = lp_.objective_coef(v) > 0 ? dom.upper[v] : dom.lower[v];
    }
    for (const Row& row : lp_.rows()) {
      double act = 0.0;
      for (const Term& t : row.terms) act += t.coef * x[t.var];
      const bool ok = row.op == RowOp::kLe   ? act <= row.rhs + opt_.tol
                      : row.op == RowOp::kGe ? act >= row.rhs - opt_.tol
                                             : std::abs(act - row.rhs) <=
                                                   opt_.tol;
      if (!ok) return false;
    }
    const double val = lp_.EvalObjective(x);  // before the move below
    OfferIncumbent(val, std::move(x));
    return true;
  }

  // Propagation-guided dive: repeatedly fix an unfixed binary to a
  // heuristic value (repairing to the other value on refutation) until all
  // integer variables are fixed, then record the incumbent. Different
  // `heur` values vary the variable order so the dives explore different
  // corners. Runs on the strand's trail and fully unwinds before
  // returning.
  void GreedyDive(Strand* s, int heur) {
    // Dives only apply to pure-integer components (always true for LICM).
    for (const auto& v : lp_.vars()) {
      if (!v.is_integer) return;
    }
    Domains& dom = s->dom;
    const size_t base = s->trail.Mark();
    // Pick order, fixed up front: scanning all variables per pick is
    // O(n^2) on monolithic components (the Query-3 wall). Within a dive
    // domains only tighten — an unwind restores at most the state at its
    // own probe's mark — so a cursor over this order never has to move
    // backwards.
    std::vector<VarId> order(lp_.num_vars());
    for (VarId v = 0; v < lp_.num_vars(); ++v) order[v] = v;
    if (heur == 1) {
      std::sort(order.begin(), order.end(), [this](VarId a, VarId b) {
        const double ka = std::abs(lp_.objective_coef(a));
        const double kb = std::abs(lp_.objective_coef(b));
        return ka > kb || (ka == kb && a < b);
      });
    } else if (heur >= 2) {
      uint64_t lcg = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(heur + 1);
      std::vector<uint64_t> key(lp_.num_vars());
      for (VarId v = 0; v < lp_.num_vars(); ++v) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        key[v] = lcg;
      }
      std::sort(order.begin(), order.end(),
                [&key](VarId a, VarId b) { return key[a] < key[b]; });
    }
    size_t cursor = 0;
    for (;;) {
      if (deadline_.Expired()) break;
      while (cursor < order.size() &&
             dom.upper[order[cursor]] - dom.lower[order[cursor]] <= 0.5) {
        ++cursor;
      }
      const VarId pick =
          cursor < order.size() ? order[cursor] : lp_.num_vars();
      if (pick == lp_.num_vars()) {
        std::vector<double> x(lp_.num_vars());
        for (VarId v = 0; v < lp_.num_vars(); ++v) x[v] = dom.lower[v];
        const double val = lp_.EvalObjective(x);
        OfferIncumbent(val, std::move(x));
        break;
      }
      const double c = lp_.objective_coef(pick);
      const bool up_first = c > 0;
      const std::vector<VarId> touched{pick};
      const size_t mark = s->trail.Mark();
      s->trail.Record(pick, dom);
      if (up_first) dom.lower[pick] = dom.upper[pick];
      else dom.upper[pick] = dom.lower[pick];
      if (propagator_.Run(&dom, &touched, &s->trail, &s->scratch) ==
          PropagateResult::kFixpoint) {
        continue;
      }
      s->trail.UnwindTo(mark, &dom);
      s->trail.Record(pick, dom);
      if (up_first) dom.upper[pick] = dom.lower[pick];
      else dom.lower[pick] = dom.upper[pick];
      if (propagator_.Run(&dom, &touched, &s->trail, &s->scratch) ==
          PropagateResult::kInfeasible) {
        break;  // dead end; abandon this dive
      }
    }
    s->trail.UnwindTo(base, &dom);
  }

  // Lazily creates the strand's warm LP state, replays the shared cut
  // registry into it, and warm-starts from the donor basis if one was
  // inherited (a column-count mismatch — the registry grew since the
  // donor's snapshot — falls back to a cold basis inside RestoreBasis).
  void EnsureLp(Strand* s) {
    if (s->lp != nullptr) return;
    s->lp = std::make_unique<IncrementalLp>(lp_, SimplexOptions{});
    ApplyNewCuts(s);
    if (!s->seed_basis.empty()) s->lp->RestoreBasis(s->seed_basis);
  }

  // Appends every registry cut this strand's LP has not absorbed yet.
  void ApplyNewCuts(Strand* s) {
    if (!opt_.use_cuts || s->lp == nullptr) return;
    std::lock_guard<std::mutex> lock(cuts_mu_);
    for (size_t i = s->applied_cuts; i < cuts_.size(); ++i) {
      s->lp->AddCutRow(cuts_[i]);
    }
    s->applied_cuts = cuts_.size();
  }

  // Separates cardinality cuts at the fractional vertex `x`, registers the
  // unseen ones (deduped across strands), and replays them into this
  // strand's LP. Returns how many new cuts were registered.
  int SeparateCuts(Strand* s, const std::vector<double>& x, MipStats* stats) {
    CutOptions copt;
    copt.max_cuts = opt_.max_cuts_per_component;
    std::vector<Row> gen = GenerateCardinalityCuts(lp_, x, copt);
    int added = 0;
    {
      std::lock_guard<std::mutex> lock(cuts_mu_);
      for (Row& r : gen) {
        if (cuts_.size() >=
            static_cast<size_t>(opt_.max_cuts_per_component)) {
          break;
        }
        if (!cut_keys_.insert(CutKeyString(r)).second) continue;
        cuts_.push_back(std::move(r));
        ++added;
      }
    }
    stats->cuts_generated += added;
    if (added > 0) ApplyNewCuts(s);
    return added;
  }

  // Reduced-cost fixing after an optimal node relaxation: a nonbasic
  // integer variable whose reduced cost proves that moving it off its
  // bound (by the minimal integer step) cannot reach an objective above
  // the incumbent is fixed at that bound for the whole subtree. We
  // maximize, so a variable at lower has d <= 0 (obj(v = lo + 1) <=
  // lp_obj + d) and one at upper has d >= 0 (obj(v = hi - 1) <= lp_obj -
  // d). With an integral program the incumbent+1 rounding makes the test
  // exact. Fixings land on the trail (they die with the node) and are
  // propagated; returns -1 when propagation refutes the node, else the
  // number of variables fixed.
  int RcFix(Strand* s, double lp_obj, MipStats* stats) {
    const double inc = incumbent_value_.load(std::memory_order_relaxed);
    const double limit =
        integral_ ? inc + 1.0 - 2.0 * opt_.tol : inc + opt_.tol;
    Domains& dom = s->dom;
    std::vector<VarId> fixed;
    for (VarId v = 0; v < lp_.num_vars(); ++v) {
      if (!lp_.vars()[v].is_integer) continue;
      if (dom.upper[v] - dom.lower[v] <= 0.5) continue;
      const VarStatus st = s->lp->StatusOf(v);
      if (st == VarStatus::kBasic) continue;
      const double d = s->lp->ReducedCost(v);
      if (st == VarStatus::kAtLower && lp_obj + d <= limit) {
        s->trail.Record(v, dom);
        dom.upper[v] = dom.lower[v];
        fixed.push_back(v);
      } else if (st == VarStatus::kAtUpper && lp_obj - d <= limit) {
        s->trail.Record(v, dom);
        dom.lower[v] = dom.upper[v];
        fixed.push_back(v);
      }
    }
    if (fixed.empty()) return 0;
    stats->rc_fixed_vars += static_cast<int64_t>(fixed.size());
    if (propagator_.Run(&dom, &fixed, &s->trail, &s->scratch) ==
        PropagateResult::kInfeasible) {
      return -1;
    }
    return static_cast<int>(fixed.size());
  }

  // Accumulates one pseudo-cost observation: objective degradation per
  // unit of enforced fractional distance for branching `v` in direction
  // `dir` (0 = down, 1 = up).
  void RecordPseudoCost(VarId v, int dir, double deg) {
    if (!(deg >= 0.0)) deg = 0.0;  // guards NaN and negative degradations
    std::lock_guard<std::mutex> lock(pc_mu_);
    pc_sum_[dir][v] += deg;
    ++pc_cnt_[dir][v];
  }

  // Pseudo-cost branching rule: product of estimated down/up degradations,
  // with the global average as prior for unobserved variables. Returns
  // kNoVar when no integer variable is fractional in `x`.
  VarId SelectPseudoCost(const Domains& dom, const std::vector<double>& x,
                         double* frac_out) {
    std::lock_guard<std::mutex> lock(pc_mu_);
    double avg[2] = {1.0, 1.0};
    for (int dir = 0; dir < 2; ++dir) {
      double sum = 0.0;
      int64_t cnt = 0;
      for (VarId v = 0; v < lp_.num_vars(); ++v) {
        sum += pc_sum_[dir][v];
        cnt += pc_cnt_[dir][v];
      }
      if (cnt > 0) avg[dir] = sum / static_cast<double>(cnt);
    }
    VarId best = kNoVar;
    double best_score = -1.0;
    for (VarId v = 0; v < lp_.num_vars(); ++v) {
      if (!lp_.vars()[v].is_integer) continue;
      if (dom.upper[v] - dom.lower[v] <= 0.5) continue;
      const double f = x[v] - std::floor(x[v]);
      if (f <= opt_.tol || f >= 1.0 - opt_.tol) continue;
      const double down =
          pc_cnt_[0][v] > 0 ? pc_sum_[0][v] / pc_cnt_[0][v] : avg[0];
      const double up =
          pc_cnt_[1][v] > 0 ? pc_sum_[1][v] / pc_cnt_[1][v] : avg[1];
      const double score =
          std::max(down * f, 1e-6) * std::max(up * (1.0 - f), 1e-6);
      if (score > best_score + 1e-12) {
        best_score = score;
        best = v;
      }
    }
    if (best != kNoVar) *frac_out = x[best];
    return best;
  }

  // Root LP work, all before any parallel strand exists: builds the root
  // strand's warm state, replays pooled cuts from isomorphic components,
  // separates a few rounds of fresh root cuts, and seeds the pseudo-cost
  // tables by strong branching. Returns false when the relaxation (with
  // globally valid cuts) is infeasible — a proof that the component is.
  bool RootLpSetup(Strand* s, double* root_bound) {
    LICM_TRACE_SPAN("solver", "root_lp");
    EnsureLp(s);
    if (opt_.use_cuts && opt_.cut_pool != nullptr && form_ != nullptr) {
      std::vector<Row> pooled = opt_.cut_pool->Fetch(*form_);
      int added = 0;
      {
        std::lock_guard<std::mutex> lock(cuts_mu_);
        for (Row& r : pooled) {
          if (cuts_.size() >=
              static_cast<size_t>(opt_.max_cuts_per_component)) {
            break;
          }
          if (!cut_keys_.insert(CutKeyString(r)).second) continue;
          cuts_.push_back(std::move(r));
          ++added;
        }
      }
      stats_->cuts_reused += added;
      if (added > 0) ApplyNewCuts(s);
    }
    auto solve = [&] {
      const SolveStatus st = s->lp->Solve(s->dom.lower, s->dom.upper);
      ++stats_->lp_solves;
      ++stats_->warm_lp_solves;
      stats_->lp_pivots += s->lp->last_pivots();
      stats_->max_resolve_pivots =
          std::max(stats_->max_resolve_pivots, s->lp->last_pivots());
      return st;
    };
    SolveStatus st = solve();
    if (st == SolveStatus::kInfeasible) return false;
    if (st == SolveStatus::kOptimal && opt_.use_cuts) {
      for (int round = 0; round < 4; ++round) {
        if (SeparateCuts(s, s->lp->values(), stats_) == 0) break;
        st = solve();
        if (st == SolveStatus::kInfeasible) return false;
        if (st != SolveStatus::kOptimal) break;
      }
    }
    if (st == SolveStatus::kOptimal) {
      *root_bound = s->lp->objective();
      if (integral_) *root_bound = std::floor(*root_bound + opt_.tol);
      if (opt_.use_pseudo_cost) StrongBranchRoot(s);
    }
    return true;
  }

  // Strong branching at the component root: probes both directions of the
  // most fractional variables by direct bound mutation + warm re-solve
  // (single-threaded here, so no trail needed) and records the observed
  // degradations as pseudo-cost seeds. Leaves the LP re-solved at the true
  // root bounds.
  void StrongBranchRoot(Strand* s) {
    const double root_obj = s->lp->objective();
    const std::vector<double> x = s->lp->values();  // re-solves overwrite
    Domains& dom = s->dom;
    std::vector<std::pair<double, VarId>> cands;
    for (VarId v = 0; v < lp_.num_vars(); ++v) {
      if (!lp_.vars()[v].is_integer) continue;
      if (dom.upper[v] - dom.lower[v] <= 0.5) continue;
      const double f = std::abs(x[v] - std::round(x[v]));
      if (f > opt_.tol) cands.emplace_back(f, v);
    }
    std::sort(cands.begin(), cands.end(), [](const auto& a, const auto& b) {
      return a.first > b.first || (a.first == b.first && a.second < b.second);
    });
    if (opt_.strong_branch_candidates >= 0 &&
        cands.size() > static_cast<size_t>(opt_.strong_branch_candidates)) {
      cands.resize(static_cast<size_t>(opt_.strong_branch_candidates));
    }
    for (const auto& [f, v] : cands) {
      if (deadline_.Expired()) break;
      const double split = std::floor(x[v]);
      const double frac = x[v] - split;
      const double lo = dom.lower[v], hi = dom.upper[v];
      dom.upper[v] = std::max(split, lo);  // down probe: x[v] <= split
      SolveStatus st = s->lp->Solve(dom.lower, dom.upper);
      ++stats_->strong_branch_solves;
      stats_->lp_pivots += s->lp->last_pivots();
      if (st == SolveStatus::kOptimal) {
        RecordPseudoCost(
            v, 0, (root_obj - s->lp->objective()) / std::max(frac, 1e-6));
      }
      dom.upper[v] = hi;
      dom.lower[v] = std::min(split + 1.0, hi);  // up probe: >= split + 1
      st = s->lp->Solve(dom.lower, dom.upper);
      ++stats_->strong_branch_solves;
      stats_->lp_pivots += s->lp->last_pivots();
      if (st == SolveStatus::kOptimal) {
        RecordPseudoCost(v, 1, (root_obj - s->lp->objective()) /
                                   std::max(1.0 - frac, 1e-6));
      }
      dom.lower[v] = lo;
    }
    s->lp->Solve(dom.lower, dom.upper);
    stats_->lp_pivots += s->lp->last_pivots();
  }

  // One depth-first strand. Sequential runs have exactly one strand;
  // parallel runs spawn more via SplitStack. `stats` is strand-local and
  // merged under stats_mu_ when the strand ends. The wrapper charges the
  // strand's elapsed time to cpu_seconds: strands run concurrently, so
  // their sum approximates CPU time, not wall time.
  void Dfs(Strand* s, MipStats* stats) {
    StopWatch strand_clock;
    DfsLoop(s, stats);
    stats->cpu_seconds += strand_clock.ElapsedSeconds();
  }

  void DfsLoop(Strand* s, MipStats* stats) {
    int64_t since_split = 0;
    int64_t since_progress = 0;
    Domains& dom = s->dom;
    while (!s->stack.empty()) {
      if (stopped_.load(std::memory_order_relaxed) ||
          nodes_.load(std::memory_order_relaxed) >=
              opt_.max_nodes_per_component ||
          deadline_.Expired()) {
        stopped_.store(true, std::memory_order_relaxed);
        // Remaining decisions contribute to the proved bound.
        AccountOpen(*s);
        return;
      }
      // Donate the oldest open subtrees once this strand has done enough
      // work to suggest the component is hard and someone is idle.
      if (group_ != nullptr && s->stack.size() >= 2 &&
          ++since_split >= opt_.split_node_threshold &&
          scheduler_->HasIdleWorker()) {
        since_split = 0;
        SplitStack(s, stats);
      }
      const Decision d = s->stack.back();
      s->stack.pop_back();
      // O(#changes) backtrack to this decision's parent state, then apply
      // and propagate its bound change.
      s->trail.UnwindTo(d.mark, &dom);
      nodes_.fetch_add(1, std::memory_order_relaxed);
      ++stats->nodes;

      if (d.var != kNoVar) {
        const std::vector<VarId> touched{d.var};
        s->trail.Record(d.var, dom);
        dom.lower[d.var] = d.lo;
        dom.upper[d.var] = d.hi;
        if (propagator_.Run(&dom, &touched, &s->trail, &s->scratch) ==
            PropagateResult::kInfeasible) {
          continue;
        }
      }
      infeasible_only_.store(false, std::memory_order_relaxed);

      double bound = std::min(ActivityBound(lp_, dom), d.inherited);
      if (integral_) bound = std::floor(bound + opt_.tol);
      if (telemetry::Enabled() &&
          ++since_progress >= opt_.trace_progress_nodes) {
        since_progress = 0;
        EmitProgress(bound);
      }
      if (Cut(bound)) continue;

      if (opt_.use_objective_probing && !ProbeObjectiveVars(s)) {
        continue;  // probing proved the node infeasible
      }
      bound = std::min(ActivityBound(lp_, dom), d.inherited);
      if (integral_) bound = std::floor(bound + opt_.tol);
      if (Cut(bound)) continue;

      // LP relaxation at the node. The warm path re-solves the strand's
      // incremental state from the previous basis in a few dual pivots and
      // feeds reduced-cost fixing, cut separation, and pseudo-cost data;
      // the cold path is one SolveLpRelaxation call on a bounded copy.
      VarId branch_var = kNoVar;
      double frac_target = -1.0;  // LP value of the branch variable
      double lp_obj = kNan;       // node relaxation objective if optimal
      if (lp_at_nodes_ && lp_warm_) {
        EnsureLp(s);
        ApplyNewCuts(s);
        bool prune = false;
        bool did_rc = false;
        bool did_cuts = false;
        bool pc_recorded = false;
        for (;;) {
          const SolveStatus st = s->lp->Solve(dom.lower, dom.upper);
          ++stats->lp_solves;
          ++stats->warm_lp_solves;
          stats->lp_pivots += s->lp->last_pivots();
          stats->max_resolve_pivots =
              std::max(stats->max_resolve_pivots, s->lp->last_pivots());
          if (st == SolveStatus::kInfeasible) {
            prune = true;
            break;
          }
          if (st != SolveStatus::kOptimal) break;  // keep activity bound
          lp_obj = s->lp->objective();
          if (!pc_recorded && opt_.use_pseudo_cost && d.var != kNoVar &&
              !std::isnan(d.parent_obj) && d.pc_dist > 1e-6) {
            pc_recorded = true;
            RecordPseudoCost(d.var, d.dir,
                             (d.parent_obj - lp_obj) / d.pc_dist);
          }
          double lpb = lp_obj;
          if (integral_) lpb = std::floor(lpb + opt_.tol);
          bound = std::min(bound, lpb);
          if (Cut(bound)) {
            prune = true;
            break;
          }
          if (!did_rc && opt_.use_rc_fixing &&
              has_incumbent_.load(std::memory_order_relaxed)) {
            did_rc = true;
            const int fixed = RcFix(s, lp_obj, stats);
            if (fixed < 0) {
              prune = true;
              break;
            }
            if (fixed > 0) continue;  // re-solve under the fixed bounds
          }
          const std::vector<double>& x = s->lp->values();
          VarId most_frac = kNoVar;
          double best_frac = opt_.tol;
          for (VarId v = 0; v < lp_.num_vars(); ++v) {
            if (!lp_.vars()[v].is_integer) continue;
            const double f = std::abs(x[v] - std::round(x[v]));
            if (f > best_frac && dom.upper[v] - dom.lower[v] > 0.5) {
              best_frac = f;
              most_frac = v;
            }
          }
          if (most_frac == kNoVar) {
            // Integral vertex: a feasible point of the node. Snap the
            // within-tolerance values to exact integers and re-evaluate so
            // the incumbent never carries simplex epsilons (bounds must be
            // bit-identical to enumerating worlds).
            std::vector<double> xi = x;
            for (VarId v = 0; v < lp_.num_vars(); ++v) {
              if (lp_.vars()[v].is_integer) xi[v] = std::round(xi[v]);
            }
            const double val = lp_.EvalObjective(xi);
            OfferIncumbent(val, std::move(xi));
            prune = true;
            break;
          }
          if (!did_cuts && opt_.use_cuts) {
            did_cuts = true;
            if (SeparateCuts(s, x, stats) > 0) continue;  // one re-solve
          }
          branch_var = most_frac;
          frac_target = x[most_frac];
          if (opt_.use_pseudo_cost) {
            double pf = -1.0;
            const VarId pv = SelectPseudoCost(dom, x, &pf);
            if (pv != kNoVar) {
              branch_var = pv;
              frac_target = pf;
            }
          }
          break;
        }
        if (prune) continue;
      } else if (lp_at_nodes_) {
        LpSolution rel = SolveWithDomains(dom);
        ++stats->lp_solves;
        if (rel.status == SolveStatus::kInfeasible) continue;
        if (rel.status == SolveStatus::kOptimal) {
          lp_obj = rel.objective;
          double lpb = lp_obj;
          if (integral_) lpb = std::floor(lpb + opt_.tol);
          bound = std::min(bound, lpb);
          if (Cut(bound)) continue;
          // Integral LP solutions are incumbents for free.
          VarId most_frac = kNoVar;
          double best_frac = opt_.tol;
          for (VarId v = 0; v < lp_.num_vars(); ++v) {
            if (!lp_.vars()[v].is_integer) continue;
            const double f =
                std::abs(rel.values[v] - std::round(rel.values[v]));
            if (f > best_frac && dom.upper[v] - dom.lower[v] > 0.5) {
              best_frac = f;
              most_frac = v;
            }
          }
          if (most_frac == kNoVar) {
            std::vector<double> x = rel.values;
            for (VarId v = 0; v < lp_.num_vars(); ++v) {
              if (lp_.vars()[v].is_integer) x[v] = std::round(x[v]);
            }
            const double val = lp_.EvalObjective(x);
            OfferIncumbent(val, std::move(x));
            continue;
          }
          branch_var = most_frac;
          frac_target = rel.values[most_frac];
        }
        // kTimeLimit / kUnbounded from the relaxation: keep activity bound.
      }

      // No LP-guided choice: pick the unfixed integer variable most
      // connected to already-fixed variables — on permutation-coupled
      // instances this interleaves the two sides of each join so objective
      // variables get decided (and the bound tightens) early in each dive.
      if (branch_var == kNoVar) {
        double best_score = -1.0;
        for (VarId v = 0; v < lp_.num_vars(); ++v) {
          if (!lp_.vars()[v].is_integer ||
              dom.upper[v] - dom.lower[v] <= 0.5) {
            continue;
          }
          double score = 0.0;
          for (uint32_t r : propagator_.var_rows()[v]) {
            const Row& row = lp_.rows()[r];
            int fixed = 0;
            for (const Term& t : row.terms) {
              if (dom.upper[t.var] - dom.lower[t.var] <= 0.5) ++fixed;
            }
            score += static_cast<double>(fixed) /
                     static_cast<double>(row.terms.size());
          }
          if (score > best_score + 1e-12) {
            best_score = score;
            branch_var = v;
          }
        }
        if (branch_var == kNoVar) {
          // All integer variables fixed; propagation fixpoint on fully
          // fixed integer rows implies feasibility (activities are point
          // values).
          std::vector<double> x(lp_.num_vars());
          for (VarId v = 0; v < lp_.num_vars(); ++v) x[v] = dom.lower[v];
          const double val = lp_.EvalObjective(x);
          OfferIncumbent(val, std::move(x));
          continue;
        }
      }

      // SOS1 branching: if the variable sits in a sum(=1) row with several
      // candidates, branch "who gets the 1" — one child per candidate.
      const size_t mark = s->trail.Mark();
      if (sos1_of_var_[branch_var] >= 0) {
        const Row& row =
            lp_.rows()[static_cast<uint32_t>(sos1_of_var_[branch_var])];
        std::vector<VarId> candidates;
        for (const Term& t : row.terms) {
          if (dom.upper[t.var] - dom.lower[t.var] > 0.5) {
            candidates.push_back(t.var);
          }
        }
        if (candidates.size() >= 2) {
          // Push in reverse so the first candidate is explored first.
          for (size_t i = candidates.size(); i-- > 0;) {
            Decision child;
            child.mark = mark;
            child.var = candidates[i];
            child.lo = 1.0;
            child.hi = dom.upper[candidates[i]];
            child.inherited = bound;
            s->stack.push_back(child);
          }
          continue;
        }
      }

      // Child A explores the preferred value first (pushed last).
      const double lo = dom.lower[branch_var];
      const double hi = dom.upper[branch_var];
      double split;  // branch: x <= split  |  x >= split + 1
      if (frac_target >= 0.0) {
        split = std::clamp(std::floor(frac_target), lo, hi - 1.0);
      } else {
        split = lo;  // binary-style: try lo side vs rest
      }
      const double c = lp_.objective_coef(branch_var);
      const bool prefer_up =
          frac_target >= 0.0 ? (frac_target - split > 0.5) : (c > 0);

      Decision down{mark,   branch_var, lo,
                    split,  bound,      lp_obj,
                    frac_target >= 0.0 ? frac_target - split : -1.0, 0};
      Decision up{mark,     branch_var,  split + 1.0,
                  hi,       bound,       lp_obj,
                  frac_target >= 0.0 ? split + 1.0 - frac_target : -1.0, 1};

      if (prefer_up) {
        s->stack.push_back(down);
        s->stack.push_back(up);
      } else {
        s->stack.push_back(up);
        s->stack.push_back(down);
      }
    }
  }

  // Donates the oldest half of the open stack (the subtrees nearest the
  // root) to the pool as fresh strands of this same search. A donated
  // strand materializes its Domains by replaying the donor's trail down to
  // the decision's mark (non-destructively) and inherits the donor's basis
  // snapshot so its first LP solve warm-starts too.
  void SplitStack(Strand* s, MipStats* stats) {
    const size_t donate = s->stack.size() / 2;
    telemetry::Instant("scheduler", "donate",
                       {{"component", static_cast<double>(trace_id_)},
                        {"tasks", static_cast<double>(donate)}});
    LpBasis basis;
    if (s->lp != nullptr) basis = s->lp->SaveBasis();
    for (size_t i = 0; i < donate; ++i) {
      const Decision& d = s->stack[i];
      // shared_ptr because std::function requires a copyable callable.
      auto child = std::make_shared<Strand>();
      child->dom = s->dom;
      s->trail.ReplayUndo(d.mark, &child->dom);
      Decision seed = d;
      seed.mark = 0;
      child->stack.push_back(seed);
      child->seed_basis = basis;
      ++stats->subtree_tasks;
      group_->Submit([this, child] {
        LICM_TRACE_SPAN("bnb", "subtree");
        MipStats local;
        Dfs(child.get(), &local);
        MergeLocalStats(local);
      });
    }
    s->stack.erase(s->stack.begin(),
                   s->stack.begin() + static_cast<ptrdiff_t>(donate));
    ++stats->subtree_splits;
  }

  // Periodic gap-vs-time sample from one strand — the per-component
  // progress log. `bound` is the strand's current node bound: a valid
  // upper bound on what its subtree can still deliver.
  void EmitProgress(double bound) const {
    constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
    const bool has_inc = has_incumbent_.load(std::memory_order_relaxed);
    const double inc =
        has_inc ? incumbent_value_.load(std::memory_order_relaxed) : kNan;
    telemetry::Instant(
        "bnb", "progress",
        {{"component", static_cast<double>(trace_id_)},
         {"nodes",
          static_cast<double>(nodes_.load(std::memory_order_relaxed))},
         {"incumbent", inc},
         {"best_bound", bound},
         {"gap", has_inc ? std::max(0.0, bound - inc) : kNan}});
  }

  // Folds unexplored frontier decisions into the proved bound of a
  // stopped search. Each decision's Domains are materialized from the
  // strand's live state by non-destructive trail replay (only runs once,
  // at stop time).
  void AccountOpen(const Strand& s) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Decision& d : s.stack) {
      Domains dm = s.dom;
      s.trail.ReplayUndo(d.mark, &dm);
      if (d.var != kNoVar) {
        dm.lower[d.var] = d.lo;
        dm.upper[d.var] = d.hi;
      }
      open_bound_ = std::max(open_bound_,
                             std::min(NodeBoundCheap(dm), d.inherited));
    }
  }

  void OfferIncumbent(double value, std::vector<double> x) {
    // Racy fast path: the incumbent value only ever increases, so a stale
    // read can at worst let a tied-or-worse candidate reach the lock.
    if (has_incumbent_.load(std::memory_order_relaxed) &&
        value <= incumbent_value_.load(std::memory_order_relaxed)) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!has_incumbent_.load(std::memory_order_relaxed) ||
        value > incumbent_value_.load(std::memory_order_relaxed)) {
      incumbent_ = std::move(x);
      incumbent_value_.store(value, std::memory_order_relaxed);
      has_incumbent_.store(true, std::memory_order_relaxed);
    }
  }

  // True when `bound` cannot beat the shared incumbent. A stale incumbent
  // read only delays a cut (extra nodes), never removes a solution.
  bool Cut(double bound) const {
    return has_incumbent_.load(std::memory_order_relaxed) &&
           bound <= incumbent_value_.load(std::memory_order_relaxed) +
                        opt_.tol;
  }

  // True when the incumbent already matches the root activity bound (same
  // floor + tolerance as the node prune): the search would cut its first
  // node immediately, so any remaining prologue work is pure overhead.
  bool RootGapClosed(const Domains& dom) const {
    double bound = ActivityBound(lp_, dom);
    if (integral_) bound = std::floor(bound + opt_.tol);
    return Cut(bound);
  }

  void MergeLocalStats(const MipStats& local) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_->MergeFrom(local);
  }

  double NodeBoundCheap(const Domains& dom) const {
    double b = ActivityBound(lp_, dom);
    if (integral_) b = std::floor(b + opt_.tol);
    return b;
  }

  LpSolution SolveWithDomains(const Domains& dom) const {
    LinearProgram sub = lp_;  // cheap: component programs are small
    for (VarId v = 0; v < sub.num_vars(); ++v) {
      sub.mutable_vars()[v].lower = dom.lower[v];
      sub.mutable_vars()[v].upper = dom.upper[v];
    }
    return SolveLpRelaxation(sub, Sense::kMaximize);
  }

  const LinearProgram& lp_;
  const MipOptions& opt_;
  const Deadline& deadline_;
  Scheduler* const scheduler_;  // null => splitting disabled
  MipStats* stats_;             // merged into under stats_mu_
  const int64_t trace_id_;      // component id in telemetry events
  const CanonicalForm* form_;   // cut-pool key (null => no pooling)
  Propagator propagator_;       // Run() is const and stateless: shared
  const bool integral_;
  const bool lp_warm_;      // strands keep warm IncrementalLp states
  const bool lp_at_nodes_;  // some LP bound (warm or cold) at every node
  std::vector<int32_t> sos1_of_var_;

  // Cut registry shared by all strands: each strand's LP has absorbed the
  // prefix cuts_[0 .. strand.applied_cuts); ApplyNewCuts replays the rest.
  // cut_keys_ dedupes across strands. Guarded by cuts_mu_.
  std::mutex cuts_mu_;
  std::vector<Row> cuts_;
  std::unordered_set<std::string> cut_keys_;

  // Pseudo-cost tables per direction (0 = down, 1 = up), guarded by
  // pc_mu_. Sized in the constructor iff use_pseudo_cost.
  std::mutex pc_mu_;
  std::vector<double> pc_sum_[2];
  std::vector<int32_t> pc_cnt_[2];

  // State shared by all strands of this component's search. The atomics
  // are monotone signals (relaxed ordering suffices: a stale read costs
  // extra nodes, never correctness); the vectors live under mu_.
  Scheduler::Group* group_ = nullptr;
  std::atomic<int64_t> nodes_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> infeasible_only_{true};
  std::atomic<bool> has_incumbent_{false};
  std::atomic<double> incumbent_value_{-kInfinity};
  std::mutex mu_;        // incumbent_ vector + open_bound_
  std::mutex stats_mu_;  // strand-local MipStats merges into *stats_
  double open_bound_ = -kInfinity;
  std::vector<double> incumbent_;
};

// ---------------------------------------------------------------------------
// Shared pipeline: presolve + decomposition run once, components are solved
// as one deduplicated batch (cache-aware), results assemble per sense.

struct PreparedPipeline {
  bool infeasible = false;
  PresolveResult pre;
  /// Post-presolve program; points into `pre` or at the caller's program.
  const LinearProgram* work = nullptr;
  std::vector<Component> comps;
};

void Prepare(const LinearProgram& lp, const MipOptions& opt, MipStats* stats,
             PreparedPipeline* p) {
  if (opt.use_presolve) {
    ++stats->presolve_calls;
    p->pre = Presolve(lp);
    if (p->pre.infeasible) {
      p->infeasible = true;
      return;
    }
    stats->presolve_fixed_vars = p->pre.stats.vars_fixed;
    stats->presolve_removed_rows =
        p->pre.stats.rows_removed + p->pre.stats.duplicate_rows;
    p->work = &p->pre.reduced;
  } else {
    p->work = &lp;
  }
  ++stats->decompose_calls;
  if (opt.use_decomposition) {
    p->comps = Decompose(*p->work);
  } else {
    Component whole;
    whole.program = *p->work;
    whole.to_parent.resize(p->work->num_vars());
    for (VarId v = 0; v < p->work->num_vars(); ++v) whole.to_parent[v] = v;
    p->comps.push_back(std::move(whole));
  }
  stats->components = p->comps.size();
}

ComponentResult EntryToResult(const ComponentCache::Entry& e,
                              const CanonicalForm& form) {
  ComponentResult res;
  res.status = e.status;
  res.has_solution = e.has_solution;
  res.objective = res.best_bound = e.objective;
  if (e.has_solution) res.solution = CanonicalToInput(form, e.solution);
  return res;
}

// Solves every program (all maximization-oriented) in one batch. With a
// cache, programs are canonicalized first and grouped by form: one search
// answers the whole isomorphism class, and proved results are memoized for
// later batches. Rowless programs skip the cache — solving them by
// inspection is cheaper than fingerprinting them — as do components above
// the size cap (see MipOptions::cache_max_component_vars).
//
// With a multi-thread scheduler, component tasks go through one shared
// pool, and each ComponentSearch may additionally donate subtrees into
// that same pool — so a batch that is one giant component (the Query-3
// join regime) still saturates the machine.
std::vector<ComponentResult> SolveBatch(
    const std::vector<const LinearProgram*>& programs, const MipOptions& opt,
    const Deadline& deadline, Scheduler* scheduler, MipStats* stats) {
  const size_t n = programs.size();
  std::vector<ComponentResult> results(n);

  std::vector<CanonicalForm> forms(n);
  std::vector<bool> use_cache(n, false);
  std::vector<std::vector<size_t>> group_members;  // ordered by first member
  std::vector<int32_t> group_of_rep(n, -1);
  // Components too large for the memo cache are still fingerprinted when an
  // incumbent pool is present: the pool's warm starts are exactly for the
  // solves the cache cannot short-cut (see MipOptions::incumbent_pool).
  std::vector<bool> use_pool(n, false);
  if (opt.cache || opt.incumbent_pool) {
    LICM_TRACE_SPAN("solver", "canonicalize");
    std::unordered_map<std::string_view, size_t> group_of;
    for (size_t i = 0; i < n; ++i) {
      if (programs[i]->num_rows() == 0) continue;
      const bool cacheable =
          opt.cache != nullptr &&
          programs[i]->num_vars() <= opt.cache_max_component_vars;
      if (!cacheable && opt.incumbent_pool == nullptr) continue;
      forms[i] = Canonicalize(*programs[i]);
      ++stats->canonical_forms;
      if (!cacheable) {
        use_pool[i] = true;
        continue;
      }
      use_cache[i] = true;
      auto [it, fresh] = group_of.try_emplace(std::string_view(forms[i].key),
                                              group_members.size());
      if (fresh) group_members.emplace_back();
      group_members[it->second].push_back(i);
    }
  }

  // Task list: every uncacheable program, plus one representative per
  // isomorphism class.
  std::vector<size_t> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!use_cache[i]) tasks.push_back(i);
  }
  for (size_t g = 0; g < group_members.size(); ++g) {
    group_of_rep[group_members[g].front()] = static_cast<int32_t>(g);
    tasks.push_back(group_members[g].front());
  }
  std::vector<uint8_t> rep_hit(group_members.size(), 0);

  // Warm-start plumbing shared by both run_task arms: seed the search with
  // the pooled feasible point for this form (if it validates), and pool the
  // search's own best point afterwards — any status, a time-limited
  // incumbent is still a feasible point worth keeping.
  auto seed_from_pool = [&](ComponentSearch* search, const CanonicalForm& f,
                            MipStats* task_stats) {
    if (opt.incumbent_pool == nullptr) return;
    std::vector<double> warm;
    if (opt.incumbent_pool->Fetch(f, &warm) &&
        search->SeedIncumbent(std::move(warm))) {
      ++task_stats->warm_incumbents;
    }
  };
  auto store_to_pool = [&](const ComponentResult& res,
                           const CanonicalForm& f) {
    if (opt.incumbent_pool != nullptr && res.has_solution) {
      opt.incumbent_pool->Store(f, res.objective, res.solution);
    }
  };

  auto run_task = [&](size_t i, MipStats* task_stats) {
    if (use_cache[i]) {
      ComponentCache::Entry entry;
      if (opt.cache->Lookup(forms[i], &entry)) {
        telemetry::Instant("cache", "cache_hit",
                           {{"component", static_cast<double>(i)}});
        results[i] = EntryToResult(entry, forms[i]);
        rep_hit[static_cast<size_t>(group_of_rep[i])] = 1;
        return;
      }
      telemetry::Instant("cache", "cache_miss",
                         {{"component", static_cast<double>(i)}});
      telemetry::ScopedSpan span("solver", "search");
      span.AddArg("component", static_cast<double>(i));
      ComponentSearch search(*programs[i], opt, deadline, scheduler,
                             task_stats, static_cast<int64_t>(i), &forms[i]);
      seed_from_pool(&search, forms[i], task_stats);
      results[i] = search.Run();
      const ComponentResult& res = results[i];
      store_to_pool(res, forms[i]);
      if (res.status == SolveStatus::kOptimal ||
          res.status == SolveStatus::kInfeasible) {
        ComponentCache::Entry ins;
        ins.status = res.status;
        ins.objective = res.objective;
        ins.has_solution = res.has_solution;
        if (res.has_solution) {
          ins.solution = InputToCanonical(forms[i], res.solution);
        }
        opt.cache->Insert(forms[i], std::move(ins));
      }
      return;
    }
    telemetry::ScopedSpan span("solver", "search");
    span.AddArg("component", static_cast<double>(i));
    ComponentSearch search(*programs[i], opt, deadline, scheduler, task_stats,
                           static_cast<int64_t>(i),
                           use_pool[i] ? &forms[i] : nullptr);
    if (use_pool[i]) seed_from_pool(&search, forms[i], task_stats);
    results[i] = search.Run();
    if (use_pool[i]) store_to_pool(results[i], forms[i]);
  };

  const int threads = scheduler == nullptr ? 1 : scheduler->num_threads();
  if (threads == 1) {
    for (size_t t : tasks) run_task(t, stats);
  } else {
    // One scheduler task per component search; each search may donate
    // subtrees back into the same pool. A single-task batch still goes
    // through the group so the lone component can split internally.
    std::vector<MipStats> task_stats(tasks.size());
    {
      Scheduler::Group group(scheduler);
      for (size_t idx = 0; idx < tasks.size(); ++idx) {
        group.Submit([&, idx] { run_task(tasks[idx], &task_stats[idx]); });
      }
      group.Wait();
    }
    // Merge in task-index order: counters are sums, so the totals are
    // deterministic regardless of how work was interleaved.
    for (const MipStats& s : task_stats) stats->MergeFrom(s);
  }

  // Replay each representative's result to the rest of its isomorphism
  // class, permuting the solution through canonical space. Time-limited
  // results are shared too (their bounds are permutation-invariant) but
  // were not inserted into the cache above.
  for (size_t g = 0; g < group_members.size(); ++g) {
    const std::vector<size_t>& members = group_members[g];
    const size_t rep = members.front();
    if (rep_hit[g]) {
      stats->cache_hits += static_cast<int64_t>(members.size());
    } else {
      ++stats->cache_misses;
      stats->cache_hits += static_cast<int64_t>(members.size()) - 1;
    }
    if (members.size() == 1) continue;
    const ComponentResult& src = results[rep];
    std::vector<double> canonical_x;
    if (src.has_solution) {
      canonical_x = InputToCanonical(forms[rep], src.solution);
    }
    for (size_t mi = 1; mi < members.size(); ++mi) {
      const size_t m = members[mi];
      ComponentResult res;
      res.status = src.status;
      res.objective = src.objective;
      res.best_bound = src.best_bound;
      res.has_solution = src.has_solution;
      if (src.has_solution) {
        res.solution = CanonicalToInput(forms[m], canonical_x);
      }
      results[m] = std::move(res);
    }
  }
  return results;
}

// Assembles component results (for maximize-oriented solved programs) into
// a MipResult. `offset` selects the slice of `solved` belonging to this
// sense; `solved_work_constant` is the objective constant of the solved
// whole program; `negate` flips objective/bound back into the caller's
// orientation (the min side solves negated programs).
MipResult Assemble(const PreparedPipeline& p, const MipOptions& opt,
                   const std::vector<const LinearProgram*>& solved_programs,
                   const std::vector<ComponentResult>& solved, size_t offset,
                   double solved_work_constant, bool negate) {
  MipResult result;
  // Component programs carry coefficient-only objectives, so the whole
  // program's constant is added once. (Component constants are subtracted
  // back out to keep this correct when decomposition is disabled and the
  // single component *is* the whole program.)
  double objective = solved_work_constant;
  double best_bound = solved_work_constant;
  bool all_optimal = true;
  bool any_solution_missing = false;
  std::vector<double> assembled(p.work->num_vars(), 0.0);

  for (size_t ci = 0; ci < p.comps.size(); ++ci) {
    const ComponentResult& cr = solved[offset + ci];
    if (cr.status == SolveStatus::kInfeasible) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
    if (cr.status == SolveStatus::kUnbounded) {
      result.status = SolveStatus::kUnbounded;
      return result;
    }
    if (cr.status != SolveStatus::kOptimal) all_optimal = false;
    const double comp_const =
        solved_programs[offset + ci]->objective_constant();
    objective += cr.has_solution ? cr.objective - comp_const : 0.0;
    best_bound += cr.best_bound - comp_const;
    if (cr.has_solution) {
      const Component& comp = p.comps[ci];
      for (size_t i = 0; i < comp.to_parent.size(); ++i)
        assembled[comp.to_parent[i]] = cr.solution[i];
    } else {
      any_solution_missing = true;
    }
  }

  result.status =
      all_optimal ? SolveStatus::kOptimal : SolveStatus::kTimeLimit;
  result.has_solution = !any_solution_missing;
  if (result.has_solution) {
    result.solution = opt.use_presolve ? p.pre.Postsolve(assembled)
                                       : std::move(assembled);
    result.objective = negate ? -objective : objective;
  }
  result.best_bound = negate ? -best_bound : best_bound;
  if (result.status == SolveStatus::kOptimal) {
    result.best_bound = result.objective;
  }
  // Normalize negative zeros introduced by the negation.
  if (result.objective == 0.0) result.objective = 0.0;
  if (result.best_bound == 0.0) result.best_bound = 0.0;
  return result;
}

// Copies a negated-objective twin of `lp` (same feasible set; maximizing it
// solves the min side).
LinearProgram NegateObjective(const LinearProgram& lp) {
  LinearProgram neg = lp;
  for (VarId v = 0; v < neg.num_vars(); ++v)
    neg.SetObjectiveCoef(v, -neg.objective_coef(v));
  neg.AddObjectiveConstant(-2.0 * neg.objective_constant());
  return neg;
}

}  // namespace

void MipStats::MergeFrom(const MipStats& other) {
  nodes += other.nodes;
  lp_solves += other.lp_solves;
  components += other.components;
  presolve_fixed_vars += other.presolve_fixed_vars;
  presolve_removed_rows += other.presolve_removed_rows;
  presolve_calls += other.presolve_calls;
  decompose_calls += other.decompose_calls;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  canonical_forms += other.canonical_forms;
  subtree_splits += other.subtree_splits;
  subtree_tasks += other.subtree_tasks;
  warm_lp_solves += other.warm_lp_solves;
  lp_pivots += other.lp_pivots;
  max_resolve_pivots = std::max(max_resolve_pivots, other.max_resolve_pivots);
  rc_fixed_vars += other.rc_fixed_vars;
  cuts_generated += other.cuts_generated;
  cuts_reused += other.cuts_reused;
  warm_incumbents += other.warm_incumbents;
  strong_branch_solves += other.strong_branch_solves;
  num_threads = std::max(num_threads, other.num_threads);
  // Wall time keeps the outermost (concurrent strands overlap in time);
  // CPU time sums across strands. Sequential aggregation over *disjoint*
  // intervals (e.g. the feasibility prober's probe sequence) must sum
  // walls explicitly around this merge.
  solve_seconds = std::max(solve_seconds, other.solve_seconds);
  cpu_seconds += other.cpu_seconds;
}

namespace {

// Global solver counters, flushed once per top-level solve from the
// solve's merged MipStats. The search hot path keeps updating the plain
// stats struct; one batched Increment per metric here keeps the registry
// off the per-node path entirely. Scrapers turn the monotonic totals
// into rates (steal/donation pressure, cut/cache hit rates).
void RecordSolveMetrics(const MipStats& s) {
  auto& reg = metrics::MetricsRegistry::Default();
  static metrics::Counter* solves =
      reg.GetCounter("licm_solver_solves_total");
  static metrics::Counter* nodes = reg.GetCounter("licm_solver_nodes_total");
  static metrics::Counter* lp_solves =
      reg.GetCounter("licm_solver_lp_solves_total");
  static metrics::Counter* pivots =
      reg.GetCounter("licm_solver_lp_pivots_total");
  static metrics::Counter* rc_fixed =
      reg.GetCounter("licm_solver_rc_fixed_vars_total");
  static metrics::Counter* cuts_generated =
      reg.GetCounter("licm_solver_cuts_generated_total");
  static metrics::Counter* cut_hits =
      reg.GetCounter("licm_solver_cut_hits_total");
  static metrics::Counter* cache_hits =
      reg.GetCounter("licm_solver_cache_hits_total");
  static metrics::Counter* cache_misses =
      reg.GetCounter("licm_solver_cache_misses_total");
  static metrics::Counter* steals =
      reg.GetCounter("licm_solver_subtree_steals_total");
  static metrics::Counter* donations =
      reg.GetCounter("licm_solver_subtree_donations_total");
  static metrics::Counter* warm =
      reg.GetCounter("licm_solver_warm_incumbents_total");
  solves->Increment();
  warm->Increment(static_cast<int64_t>(s.warm_incumbents));
  nodes->Increment(static_cast<int64_t>(s.nodes));
  lp_solves->Increment(static_cast<int64_t>(s.lp_solves));
  pivots->Increment(static_cast<int64_t>(s.lp_pivots));
  rc_fixed->Increment(static_cast<int64_t>(s.rc_fixed_vars));
  cuts_generated->Increment(static_cast<int64_t>(s.cuts_generated));
  cut_hits->Increment(static_cast<int64_t>(s.cuts_reused));
  cache_hits->Increment(static_cast<int64_t>(s.cache_hits));
  cache_misses->Increment(static_cast<int64_t>(s.cache_misses));
  steals->Increment(static_cast<int64_t>(s.subtree_splits));
  donations->Increment(static_cast<int64_t>(s.subtree_tasks));
}

}  // namespace

MipResult MipSolver::Solve(const LinearProgram& input, Sense sense) const {
  StopWatch clock;
  LICM_TRACE_SPAN("solver", "mip_solve");
  LICM_CHECK_OK(input.Validate());

  // Normalize to maximization.
  const bool minimize = sense == Sense::kMinimize;
  LinearProgram lp = input;
  if (minimize) lp = NegateObjective(input);

  MipOptions opt = options_;
  ComponentCache local_cache;
  if (!opt.use_cache) {
    opt.cache = nullptr;
  } else if (opt.cache == nullptr) {
    opt.cache = &local_cache;
  }

  const Deadline local_deadline = Deadline::After(opt.time_limit_seconds);
  const Deadline& deadline =
      opt.deadline != nullptr ? *opt.deadline : local_deadline;
  std::optional<Scheduler> local_sched;
  Scheduler* sched = opt.scheduler;
  if (sched == nullptr && Scheduler::ResolveThreads(opt.num_threads) > 1) {
    local_sched.emplace(opt.num_threads);
    sched = &*local_sched;
  }

  MipStats stats;
  stats.num_threads = sched != nullptr ? sched->num_threads() : 1;
  PreparedPipeline p;
  Prepare(lp, opt, &stats, &p);
  if (p.infeasible) {
    MipResult result;
    result.status = SolveStatus::kInfeasible;
    result.stats = stats;
    result.stats.solve_seconds = clock.ElapsedSeconds();
    RecordSolveMetrics(result.stats);
    return result;
  }

  std::vector<const LinearProgram*> programs;
  programs.reserve(p.comps.size());
  for (const Component& c : p.comps) programs.push_back(&c.program);
  std::vector<ComponentResult> solved =
      SolveBatch(programs, opt, deadline, sched, &stats);
  MipResult result = Assemble(p, opt, programs, solved, 0,
                              p.work->objective_constant(), minimize);
  result.stats = stats;
  result.stats.solve_seconds = clock.ElapsedSeconds();
  RecordSolveMetrics(result.stats);
  return result;
}

MinMaxMipResult MipSolver::SolveMinMax(const LinearProgram& input) const {
  StopWatch clock;
  LICM_TRACE_SPAN("solver", "mip_solve_minmax");
  MinMaxMipResult out;
  LICM_CHECK_OK(input.Validate());

  MipOptions opt = options_;
  ComponentCache local_cache;
  if (!opt.use_cache) {
    opt.cache = nullptr;
  } else if (opt.cache == nullptr) {
    opt.cache = &local_cache;
  }

  const Deadline local_deadline = Deadline::After(opt.time_limit_seconds);
  const Deadline& deadline =
      opt.deadline != nullptr ? *opt.deadline : local_deadline;
  std::optional<Scheduler> local_sched;
  Scheduler* sched = opt.scheduler;
  if (sched == nullptr && Scheduler::ResolveThreads(opt.num_threads) > 1) {
    local_sched.emplace(opt.num_threads);
    sched = &*local_sched;
  }

  PreparedPipeline p;
  out.stats.num_threads = sched != nullptr ? sched->num_threads() : 1;
  Prepare(input, opt, &out.stats, &p);
  if (p.infeasible) {
    out.min.status = out.max.status = SolveStatus::kInfeasible;
    out.stats.solve_seconds = clock.ElapsedSeconds();
    RecordSolveMetrics(out.stats);
    return out;
  }

  // One task list covers both senses: components as-is for the max side,
  // negated-objective twins for the min side. A single batch shares the
  // thread pool and the cache across senses, and feasibility-only
  // components (zero objective) even dedupe *between* senses.
  const size_t nc = p.comps.size();
  std::vector<LinearProgram> negated;
  negated.reserve(nc);
  for (const Component& c : p.comps) {
    negated.push_back(NegateObjective(c.program));
  }
  std::vector<const LinearProgram*> programs(2 * nc);
  for (size_t i = 0; i < nc; ++i) {
    programs[i] = &p.comps[i].program;
    programs[nc + i] = &negated[i];
  }
  std::vector<ComponentResult> solved =
      SolveBatch(programs, opt, deadline, sched, &out.stats);

  out.max = Assemble(p, opt, programs, solved, 0,
                     p.work->objective_constant(), /*negate=*/false);
  out.min = Assemble(p, opt, programs, solved, nc,
                     -p.work->objective_constant(), /*negate=*/true);
  out.stats.solve_seconds = clock.ElapsedSeconds();
  RecordSolveMetrics(out.stats);
  return out;
}

}  // namespace licm::solver
