#include "solver/lp_format.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <unordered_map>

namespace licm::solver {

namespace {
std::string VarName(const LinearProgram& lp, VarId v) {
  const std::string& n = lp.vars()[v].name;
  return n.empty() ? "x" + std::to_string(v) : n;
}

std::string Num(double x) {
  if (x == std::floor(x) && std::abs(x) < 1e15) {
    return std::to_string(static_cast<long long>(x));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", x);
  return buf;
}

void AppendTerms(std::ostringstream* os, const std::vector<Term>& terms,
                 const LinearProgram& lp) {
  bool first = true;
  for (const Term& t : terms) {
    double c = t.coef;
    if (first) {
      if (c < 0) *os << "- ";
      first = false;
    } else {
      *os << (c < 0 ? " - " : " + ");
    }
    c = std::abs(c);
    if (c != 1.0) *os << Num(c) << " ";
    *os << VarName(lp, t.var);
  }
  if (first) *os << "0";  // empty expression
}
}  // namespace

std::string ToLpFormat(const LinearProgram& lp, Sense sense) {
  std::ostringstream os;
  if (lp.objective_constant() != 0.0) {
    os << "\\ objective constant: " << Num(lp.objective_constant()) << "\n";
  }
  os << (sense == Sense::kMaximize ? "Maximize" : "Minimize") << "\n obj: ";
  std::vector<Term> obj_terms;
  for (VarId v = 0; v < lp.num_vars(); ++v) {
    if (lp.objective_coef(v) != 0.0)
      obj_terms.push_back(Term{v, lp.objective_coef(v)});
  }
  AppendTerms(&os, obj_terms, lp);
  os << "\nSubject To\n";
  for (size_t i = 0; i < lp.num_rows(); ++i) {
    const Row& r = lp.rows()[i];
    os << " c" << i << ": ";
    AppendTerms(&os, r.terms, lp);
    switch (r.op) {
      case RowOp::kLe: os << " <= "; break;
      case RowOp::kGe: os << " >= "; break;
      case RowOp::kEq: os << " = "; break;
    }
    os << Num(r.rhs) << "\n";
  }

  // Bounds for non-binary variables (binaries go to the Binary section).
  std::ostringstream bounds, binaries, generals;
  for (VarId v = 0; v < lp.num_vars(); ++v) {
    const auto& def = lp.vars()[v];
    const bool is_binary =
        def.is_integer && def.lower == 0.0 && def.upper == 1.0;
    if (is_binary) {
      binaries << " " << VarName(lp, v) << "\n";
      continue;
    }
    if (def.is_integer) generals << " " << VarName(lp, v) << "\n";
    bounds << " " << Num(def.lower) << " <= " << VarName(lp, v);
    if (std::isfinite(def.upper)) bounds << " <= " << Num(def.upper);
    bounds << "\n";
  }
  if (!bounds.str().empty()) os << "Bounds\n" << bounds.str();
  if (!generals.str().empty()) os << "General\n" << generals.str();
  if (!binaries.str().empty()) os << "Binary\n" << binaries.str();
  os << "End\n";
  return os.str();
}

Status WriteLpFile(const LinearProgram& lp, Sense sense,
                   const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f << ToLpFormat(lp, sense);
  if (!f) return Status::IOError("write failed for " + path);
  return Status::OK();
}

namespace {

// Tokenizer for LP expressions: operators, numbers, identifiers.
struct Tokenizer {
  explicit Tokenizer(const std::string& s) : s_(s) {}

  // Returns the next token, or empty at end. Tokens: "+", "-", "<=", ">=",
  // "=", ":", numbers, identifiers.
  std::string Next() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
    if (i_ >= s_.size()) return "";
    const char c = s_[i_];
    if (c == '+' || c == '-' || c == ':') {
      ++i_;
      return std::string(1, c);
    }
    if (c == '<' || c == '>') {
      size_t j = i_ + 1;
      if (j < s_.size() && s_[j] == '=') ++j;
      std::string t = s_.substr(i_, j - i_);
      i_ = j;
      return t.size() == 1 ? t + "=" : t;  // treat '<' as '<='
    }
    if (c == '=') {
      ++i_;
      return "=";
    }
    size_t j = i_;
    while (j < s_.size() && !std::isspace(static_cast<unsigned char>(s_[j])) &&
           s_[j] != '+' && s_[j] != '-' && s_[j] != '<' && s_[j] != '>' &&
           s_[j] != '=' && s_[j] != ':') {
      ++j;
    }
    std::string t = s_.substr(i_, j - i_);
    i_ = j;
    return t;
  }

  const std::string& s_;
  size_t i_ = 0;
};

bool IsNumber(const std::string& t) {
  if (t.empty()) return false;
  char* end = nullptr;
  std::strtod(t.c_str(), &end);
  return end == t.c_str() + t.size();
}

// Parses "expr (op rhs)?" where expr is +-coefficient-variable terms.
// Returns terms via the name resolver; op/rhs only when present.
struct ParsedExpr {
  std::vector<Term> terms;
  bool has_relation = false;
  RowOp op = RowOp::kLe;
  double rhs = 0.0;
};

Result<ParsedExpr> ParseExpr(
    const std::string& text,
    const std::function<VarId(const std::string&)>& var_of) {
  ParsedExpr out;
  Tokenizer tok(text);
  double sign = 1.0;
  double pending_coef = 1.0;
  bool have_coef = false;
  for (std::string t = tok.Next(); !t.empty(); t = tok.Next()) {
    if (t == "+" || t == "-") {
      sign = t == "-" ? -sign : sign;
      continue;
    }
    if (t == "<=" || t == ">=" || t == "=") {
      out.has_relation = true;
      out.op = t == "<=" ? RowOp::kLe : (t == ">=" ? RowOp::kGe : RowOp::kEq);
      std::string rhs = tok.Next();
      double rhs_sign = 1.0;
      if (rhs == "-") {
        rhs_sign = -1.0;
        rhs = tok.Next();
      } else if (rhs == "+") {
        rhs = tok.Next();
      }
      if (!IsNumber(rhs)) {
        return Status::InvalidArgument("expected rhs number, got '" + rhs +
                                       "' in: " + text);
      }
      out.rhs = rhs_sign * std::strtod(rhs.c_str(), nullptr);
      break;
    }
    if (IsNumber(t)) {
      pending_coef = std::strtod(t.c_str(), nullptr);
      have_coef = true;
      continue;
    }
    // Identifier: emit a term.
    const double coef = sign * (have_coef ? pending_coef : 1.0);
    if (coef != 0.0) out.terms.push_back(Term{var_of(t), coef});
    sign = 1.0;
    pending_coef = 1.0;
    have_coef = false;
  }
  return out;
}

}  // namespace

Result<ParsedLp> ParseLpFormat(const std::string& text) {
  ParsedLp out;
  std::unordered_map<std::string, VarId> ids;
  auto var_of = [&](const std::string& name) -> VarId {
    auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    // Default continuous non-negative; refined by Bounds/General/Binary.
    const VarId id = out.program.AddVariable(0.0, kInfinity, false, name);
    ids.emplace(name, id);
    out.names.push_back(name);
    return id;
  };

  enum class Section { kNone, kObjective, kRows, kBounds, kGeneral, kBinary };
  Section section = Section::kNone;
  bool objective_seen = false;

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Strip comments and whitespace.
    const size_t comment = line.find('\\');
    if (comment != std::string::npos) line = line.substr(0, comment);
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\r");
      if (b == std::string::npos) return std::string();
      const auto e = s.find_last_not_of(" \t\r");
      return s.substr(b, e - b + 1);
    };
    line = trim(line);
    if (line.empty()) continue;

    // Section keywords (case-insensitive prefixes).
    std::string lower;
    for (char c : line) lower.push_back(static_cast<char>(std::tolower(c)));
    if (lower == "maximize" || lower == "max") {
      out.sense = Sense::kMaximize;
      section = Section::kObjective;
      continue;
    }
    if (lower == "minimize" || lower == "min") {
      out.sense = Sense::kMinimize;
      section = Section::kObjective;
      continue;
    }
    if (lower == "subject to" || lower == "st" || lower == "s.t.") {
      section = Section::kRows;
      continue;
    }
    if (lower == "bounds") {
      section = Section::kBounds;
      continue;
    }
    if (lower == "general" || lower == "generals" || lower == "gen") {
      section = Section::kGeneral;
      continue;
    }
    if (lower == "binary" || lower == "binaries" || lower == "bin") {
      section = Section::kBinary;
      continue;
    }
    if (lower == "end") break;

    // Drop a leading "name:" label.
    std::string body = line;
    const size_t colon = body.find(':');
    if (colon != std::string::npos &&
        (section == Section::kObjective || section == Section::kRows)) {
      body = trim(body.substr(colon + 1));
    }

    switch (section) {
      case Section::kObjective: {
        LICM_ASSIGN_OR_RETURN(ParsedExpr e, ParseExpr(body, var_of));
        if (e.has_relation) {
          return Status::InvalidArgument("objective cannot have a relation");
        }
        for (const Term& t : e.terms) {
          out.program.SetObjectiveCoef(
              t.var, out.program.objective_coef(t.var) + t.coef);
        }
        objective_seen = true;
        break;
      }
      case Section::kRows: {
        LICM_ASSIGN_OR_RETURN(ParsedExpr e, ParseExpr(body, var_of));
        if (!e.has_relation) {
          return Status::InvalidArgument("constraint without relation: " +
                                         line);
        }
        Row row;
        row.terms = e.terms;
        row.op = e.op;
        row.rhs = e.rhs;
        out.program.AddRow(std::move(row));
        break;
      }
      case Section::kBounds: {
        // Forms: "lo <= x <= hi", "lo <= x", "x <= hi", "x = v".
        Tokenizer tok(body);
        std::vector<std::string> toks;
        for (std::string t = tok.Next(); !t.empty(); t = tok.Next()) {
          toks.push_back(t);
        }
        // Normalize "- num" into one token.
        std::vector<std::string> norm;
        for (size_t i = 0; i < toks.size(); ++i) {
          if (toks[i] == "-" && i + 1 < toks.size() &&
              IsNumber(toks[i + 1])) {
            norm.push_back("-" + toks[i + 1]);
            ++i;
          } else {
            norm.push_back(toks[i]);
          }
        }
        auto num = [](const std::string& s) {
          return std::strtod(s.c_str(), nullptr);
        };
        if (norm.size() == 5 && norm[1] == "<=" && norm[3] == "<=") {
          const VarId v = var_of(norm[2]);
          out.program.mutable_vars()[v].lower = num(norm[0]);
          out.program.mutable_vars()[v].upper = num(norm[4]);
        } else if (norm.size() == 3 && norm[1] == "<=" &&
                   IsNumber(norm[0])) {
          const VarId v = var_of(norm[2]);
          out.program.mutable_vars()[v].lower = num(norm[0]);
        } else if (norm.size() == 3 && norm[1] == "<=" &&
                   IsNumber(norm[2])) {
          const VarId v = var_of(norm[0]);
          out.program.mutable_vars()[v].upper = num(norm[2]);
        } else if (norm.size() == 3 && norm[1] == "=") {
          const VarId v = var_of(norm[0]);
          out.program.mutable_vars()[v].lower = num(norm[2]);
          out.program.mutable_vars()[v].upper = num(norm[2]);
        } else {
          return Status::InvalidArgument("unsupported bound line: " + line);
        }
        break;
      }
      case Section::kGeneral: {
        Tokenizer tok(body);
        for (std::string t = tok.Next(); !t.empty(); t = tok.Next()) {
          out.program.mutable_vars()[var_of(t)].is_integer = true;
        }
        break;
      }
      case Section::kBinary: {
        Tokenizer tok(body);
        for (std::string t = tok.Next(); !t.empty(); t = tok.Next()) {
          const VarId v = var_of(t);
          auto& def = out.program.mutable_vars()[v];
          def.is_integer = true;
          def.lower = 0.0;
          def.upper = 1.0;
        }
        break;
      }
      case Section::kNone:
        return Status::InvalidArgument("content before Maximize/Minimize: " +
                                       line);
    }
  }
  if (!objective_seen) {
    return Status::InvalidArgument("LP file has no objective section");
  }
  LICM_RETURN_NOT_OK(out.program.Validate());
  return out;
}

Result<ParsedLp> ReadLpFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseLpFormat(buf.str());
}

}  // namespace licm::solver
