// Work-stealing task scheduler shared by cross-component and
// intra-component (subtree) parallel branch & bound.
//
// Execution model: the scheduler owns up to `num_threads - 1` lazily
// spawned worker threads; the caller becomes the final executor whenever
// it blocks in Group::Wait, so a scheduler built for N threads runs at
// most N tasks concurrently, and `num_threads == 1` degenerates to fully
// inline sequential execution (no thread is ever spawned and
// HasIdleWorker() is always false, which disables subtree splitting in
// the search).
//
// Scheduling order is work-stealing: a task submitted from inside a
// worker lands on that worker's own deque and is resumed LIFO (depth
// first, cache warm), while an idle executor steals the *oldest* task of
// a victim deque — for a branch & bound donation that is the node nearest
// the root, i.e. the largest stolen subtree. All deques hang off one
// scheduler mutex: tasks here are thousands of search nodes each, so lock
// traffic is negligible and the single lock keeps the scheduler trivially
// ThreadSanitizer-clean.
#ifndef LICM_SOLVER_SCHEDULER_H_
#define LICM_SOLVER_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace licm::solver {

class Scheduler {
 public:
  /// `num_threads <= 0` auto-detects (hardware_concurrency, capped at
  /// kMaxAutoThreads). Workers are spawned lazily on first demand, so an
  /// unused scheduler costs one allocation, not N threads.
  explicit Scheduler(int num_threads = 0);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Total executor slots (workers + the waiting caller).
  int num_threads() const { return num_threads_; }

  /// True when an executor slot is idle or not yet spawned, i.e. a task
  /// submitted now would start immediately. Searches consult this before
  /// donating subtrees; a stale answer only delays or wastes one split.
  bool HasIdleWorker() const;

  /// Resolves a thread-count request: positive counts pass through
  /// (capped at kMaxThreads), <= 0 auto-detects from
  /// std::thread::hardware_concurrency() (capped at kMaxAutoThreads).
  static int ResolveThreads(int requested);
  static constexpr int kMaxThreads = 64;
  static constexpr int kMaxAutoThreads = 16;

  /// A completion-tracked set of tasks. Submit may be called from any
  /// thread, including from inside a task of the same group (subtree
  /// donation). Wait executes pending tasks — of *any* group — until this
  /// group's count reaches zero, so a worker waiting on its donations
  /// keeps the pool saturated instead of blocking a slot. Tasks must not
  /// throw (the solver reports failure through Status/result values).
  class Group {
   public:
    explicit Group(Scheduler* scheduler) : scheduler_(scheduler) {}
    ~Group() { Wait(); }
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    void Submit(std::function<void()> fn);
    void Wait();

   private:
    friend class Scheduler;
    Scheduler* const scheduler_;
    int64_t pending_ = 0;  // guarded by scheduler_->mu_
  };

 private:
  struct Task {
    std::function<void()> fn;
    Group* group;
  };

  void WorkerLoop(size_t slot);
  bool PopTaskLocked(size_t slot, Task* out);
  void MaybeSpawnLocked();
  void RunTask(Task task);
  size_t CurrentSlot() const;

  const int num_threads_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// deques_[0] is the shared injector (submissions from non-worker
  /// threads); deque s + 1 belongs to worker s.
  std::vector<std::deque<Task>> deques_;
  std::vector<std::thread> workers_;  // spawned lazily, guarded by mu_
  int idle_ = 0;                      // executors blocked waiting for work
  int64_t queued_ = 0;                // tasks sitting in some deque
  bool stop_ = false;
};

}  // namespace licm::solver

#endif  // LICM_SOLVER_SCHEDULER_H_
