#include "solver/solve_cache.h"

namespace licm::solver {

bool ComponentCache::Lookup(const CanonicalForm& form, Entry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(form.key));
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->entry;
  ++stats_.hits;
  return true;
}

bool ComponentCache::Insert(const CanonicalForm& form, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(form.key));
  if (it != index_.end()) {
    // Lost a race with an identical solve; keep the existing entry.
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Node{form.key, std::move(entry)});
  // string_view into the node's own key: stable because std::list never
  // moves nodes and the index entry is erased together with the node.
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
  ++stats_.inserts;
  return true;
}

size_t ComponentCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ComponentCacheStats ComponentCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ComponentCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
}

}  // namespace licm::solver
