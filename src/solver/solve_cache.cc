#include "solver/solve_cache.h"

#include <algorithm>

namespace licm::solver {

bool ComponentCache::Lookup(const CanonicalForm& form, Entry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(form.key));
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->entry;
  ++stats_.hits;
  if (it->second->epoch < epoch_) ++stats_.cross_epoch_hits;
  return true;
}

bool ComponentCache::Insert(const CanonicalForm& form, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(form.key));
  if (it != index_.end()) {
    // Lost a race with an identical solve; keep the existing entry.
    lru_.splice(lru_.begin(), lru_, it->second);
    return false;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Node{form.key, std::move(entry), epoch_});
  // string_view into the node's own key: stable because std::list never
  // moves nodes and the index entry is erased together with the node.
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
  ++stats_.inserts;
  return true;
}

void ComponentCache::BumpEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
}

uint64_t ComponentCache::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t ComponentCache::EraseKeys(const std::vector<std::string>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t erased = 0;
  for (const std::string& key : keys) {
    auto it = index_.find(std::string_view(key));
    if (it == index_.end()) continue;
    lru_.erase(it->second);
    index_.erase(it);
    ++erased;
  }
  return erased;
}

size_t ComponentCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ComponentCacheStats ComponentCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ComponentCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();
  lru_.clear();
}

namespace {

// Rewrites a cut's variable ids through `map` (identity-sized lookup
// table); terms are re-sorted so equal cuts serialize equally.
std::vector<Row> TranslateCuts(const std::vector<Row>& cuts,
                               const std::vector<VarId>& map) {
  std::vector<Row> out;
  out.reserve(cuts.size());
  for (const Row& c : cuts) {
    Row t = c;
    bool ok = true;
    for (Term& term : t.terms) {
      if (term.var >= map.size()) {
        ok = false;
        break;
      }
      term.var = map[term.var];
    }
    if (!ok) continue;
    std::sort(t.terms.begin(), t.terms.end(),
              [](const Term& a, const Term& b) { return a.var < b.var; });
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<VarId> InverseMap(const std::vector<VarId>& canon_to_input) {
  std::vector<VarId> inv(canon_to_input.size(), 0);
  for (VarId pos = 0; pos < canon_to_input.size(); ++pos)
    inv[canon_to_input[pos]] = pos;
  return inv;
}

}  // namespace

std::vector<Row> CutPool::Fetch(const CanonicalForm& form) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(form.key));
  if (it == index_.end()) return {};
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return TranslateCuts(it->second->cuts, form.canon_to_input);
}

void CutPool::Store(const CanonicalForm& form, const std::vector<Row>& cuts) {
  std::vector<Row> canonical =
      TranslateCuts(cuts, InverseMap(form.canon_to_input));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(form.key));
  if (it != index_.end()) {
    it->second->cuts = std::move(canonical);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
  }
  lru_.push_front(Node{form.key, std::move(canonical)});
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
}

size_t CutPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

int64_t CutPool::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

bool IncumbentPool::Fetch(const CanonicalForm& form, std::vector<double>* x) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(form.key));
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  *x = CanonicalToInput(form, it->second->x);
  return true;
}

void IncumbentPool::Store(const CanonicalForm& form, double objective,
                          const std::vector<double>& x) {
  std::vector<double> canonical = InputToCanonical(form, x);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(form.key));
  if (it != index_.end()) {
    if (objective > it->second->objective) {
      it->second->objective = objective;
      it->second->x = std::move(canonical);
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
  }
  lru_.push_front(Node{form.key, objective, std::move(canonical)});
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
}

size_t IncumbentPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

int64_t IncumbentPool::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

}  // namespace licm::solver
