// Canonical form of a linear program up to variable renaming.
//
// Two connected components that differ only by a permutation of variable
// ids (and by row / term order) are the *same* optimization problem; under
// k-anonymization the BIP splits into thousands of such isomorphic group
// components. Canonicalize() computes a normal form: a deterministic
// variable relabeling plus a byte serialization that is identical for
// isomorphic programs, so one proved solve can answer all of them (see
// solve_cache.h).
//
// The labeling uses color refinement (1-WL over the variable/row incidence
// structure, seeded with bounds, integrality, and objective coefficients)
// to a fixpoint; ties that survive are broken by input id. Surviving ties
// are automorphic on the row structures LICM emits (cardinality rows, SOS1
// rows, AND/OR links), and serialization is invariant under automorphic
// relabelings, so isomorphic inputs still land on the same bytes. On
// 1-WL-hard structure the tie-break can split an isomorphism class, but the
// only cost is a missed cache hit — equality of serialized forms always
// implies true isomorphism, so correctness never depends on the labeling.
#ifndef LICM_SOLVER_CANONICAL_H_
#define LICM_SOLVER_CANONICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "solver/linear_program.h"

namespace licm::solver {

struct CanonicalForm {
  /// Full byte serialization of the relabeled program (bounds, integrality,
  /// objective, sorted rows; variable names excluded). Equal keys <=>
  /// isomorphic programs, with the relabelings below as witness.
  std::string key;
  /// 64-bit hash of `key`, precomputed for cheap map lookups.
  uint64_t hash = 0;
  /// canonical position -> variable id in the input program.
  std::vector<VarId> canon_to_input;
};

/// Computes the canonical form of `lp`. Deterministic; cost is a few
/// refinement sweeps over the rows, intended for the small per-group
/// components produced by Decompose().
CanonicalForm Canonicalize(const LinearProgram& lp);

/// Maps a solution vector in canonical variable order back to the input
/// program's variable order.
std::vector<double> CanonicalToInput(const CanonicalForm& form,
                                     const std::vector<double>& canonical_x);

/// Maps a solution vector in input variable order to canonical order.
std::vector<double> InputToCanonical(const CanonicalForm& form,
                                     const std::vector<double>& input_x);

}  // namespace licm::solver

#endif  // LICM_SOLVER_CANONICAL_H_
