// Connected-component decomposition of a linear program.
//
// Two variables are connected when they share a row. Because the LICM
// objective is separable (a sum over existence variables), the program
// splits into independent sub-programs — typically one per transaction or
// anonymization group — each of which is tiny. This is the structural
// property the paper credits for CPLEX's efficiency; we exploit it
// explicitly.
#ifndef LICM_SOLVER_COMPONENTS_H_
#define LICM_SOLVER_COMPONENTS_H_

#include <vector>

#include "solver/linear_program.h"

namespace licm::solver {

struct Component {
  LinearProgram program;
  /// component var id -> variable id in the source program.
  std::vector<VarId> to_parent;
};

/// Splits `lp` into connected components. Every row of `lp` lands in
/// exactly one component; isolated variables (no rows) are gathered into a
/// single trailing component with an empty row set so the caller can solve
/// them by inspection of objective signs.
std::vector<Component> Decompose(const LinearProgram& lp);

}  // namespace licm::solver

#endif  // LICM_SOLVER_COMPONENTS_H_
