#include "solver/components.h"

#include <algorithm>
#include <numeric>

#include "common/telemetry.h"

namespace licm::solver {

namespace {
// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<size_t> parent_;
};
}  // namespace

std::vector<Component> Decompose(const LinearProgram& lp) {
  LICM_TRACE_SPAN("solver", "decompose");
  const size_t n = lp.num_vars();
  UnionFind uf(n);
  for (const Row& r : lp.rows()) {
    for (size_t i = 1; i < r.terms.size(); ++i)
      uf.Union(r.terms[0].var, r.terms[i].var);
  }

  // Map each root to a component index; isolated variables (those in no
  // row) share one trailing component.
  std::vector<bool> in_row(n, false);
  for (const Row& r : lp.rows())
    for (const Term& t : r.terms) in_row[t.var] = true;

  std::vector<int32_t> root_to_comp(n, -1);
  std::vector<Component> comps;
  int32_t isolated_comp = -1;
  std::vector<int32_t> var_to_local(n, -1);

  for (size_t v = 0; v < n; ++v) {
    int32_t ci;
    if (!in_row[v]) {
      if (isolated_comp < 0) {
        isolated_comp = static_cast<int32_t>(comps.size());
        comps.emplace_back();
      }
      ci = isolated_comp;
    } else {
      const size_t root = uf.Find(v);
      if (root_to_comp[root] < 0) {
        root_to_comp[root] = static_cast<int32_t>(comps.size());
        comps.emplace_back();
      }
      ci = root_to_comp[root];
    }
    Component& c = comps[static_cast<size_t>(ci)];
    const auto& def = lp.vars()[v];
    var_to_local[v] = static_cast<int32_t>(
        c.program.AddVariable(def.lower, def.upper, def.is_integer, def.name));
    c.to_parent.push_back(static_cast<VarId>(v));
    c.program.SetObjectiveCoef(static_cast<VarId>(var_to_local[v]),
                               lp.objective_coef(static_cast<VarId>(v)));
  }

  for (const Row& r : lp.rows()) {
    if (r.terms.empty()) continue;  // handled by presolve; skip defensively
    const size_t v0 = r.terms[0].var;
    const size_t ci = static_cast<size_t>(root_to_comp[uf.Find(v0)]);
    Row nr;
    nr.op = r.op;
    nr.rhs = r.rhs;
    nr.terms.reserve(r.terms.size());
    for (const Term& t : r.terms)
      nr.terms.push_back(
          Term{static_cast<VarId>(var_to_local[t.var]), t.coef});
    comps[ci].program.AddRow(std::move(nr));
  }
  return comps;
}

}  // namespace licm::solver
