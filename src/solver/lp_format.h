// Writer for the CPLEX LP text format.
//
// The paper encodes its BIP instances in the LP file format before handing
// them to CPLEX; we provide the same escape hatch so models built by LICM
// can be inspected or solved by external solvers (CPLEX, GLPK, CBC, SCIP).
#ifndef LICM_SOLVER_LP_FORMAT_H_
#define LICM_SOLVER_LP_FORMAT_H_

#include <string>

#include "common/status.h"
#include "solver/linear_program.h"

namespace licm::solver {

/// Renders `lp` in CPLEX LP format. Variables without names are called
/// x<id>. The objective constant is emitted as a comment (the format has
/// no native slot for it).
std::string ToLpFormat(const LinearProgram& lp, Sense sense);

/// Writes ToLpFormat(lp, sense) to `path`.
Status WriteLpFile(const LinearProgram& lp, Sense sense,
                   const std::string& path);

/// A parsed LP-format model.
struct ParsedLp {
  LinearProgram program;
  Sense sense = Sense::kMaximize;
  /// Variable names in id order (also stored in program.vars()).
  std::vector<std::string> names;
};

/// Parses the subset of the CPLEX LP format that ToLpFormat emits
/// (Maximize/Minimize, one objective, Subject To rows, Bounds, General,
/// Binary, End; '\' comments). Round-trips with ToLpFormat and accepts
/// models written by other tools that stay within this subset.
Result<ParsedLp> ParseLpFormat(const std::string& text);

/// Reads and parses an LP file from disk.
Result<ParsedLp> ReadLpFile(const std::string& path);

}  // namespace licm::solver

#endif  // LICM_SOLVER_LP_FORMAT_H_
