#include "solver/scheduler.h"

#include <algorithm>

#include "common/status.h"
#include "common/telemetry.h"

namespace licm::solver {

namespace {

// Identifies the deque a submission from the current thread should land
// on. Keyed by scheduler so nested schedulers (a worker of one pool
// driving a solver that owns another) never cross-index deques.
struct ThreadSlot {
  const Scheduler* scheduler = nullptr;
  size_t slot = 0;
};
thread_local ThreadSlot tls_slot;

}  // namespace

int Scheduler::ResolveThreads(int requested) {
  if (requested > 0) return std::min(requested, kMaxThreads);
  const unsigned hw = std::thread::hardware_concurrency();
  const int detected = hw == 0 ? 1 : static_cast<int>(hw);
  return std::min(detected, kMaxAutoThreads);
}

Scheduler::Scheduler(int num_threads)
    : num_threads_(ResolveThreads(num_threads)) {
  deques_.resize(static_cast<size_t>(num_threads_));
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    LICM_CHECK(queued_ == 0);  // all groups must be waited on first
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t Scheduler::CurrentSlot() const {
  return tls_slot.scheduler == this ? tls_slot.slot : 0;
}

bool Scheduler::HasIdleWorker() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (workers_.size() < static_cast<size_t>(num_threads_ - 1)) return true;
  return idle_ > queued_;
}

void Scheduler::MaybeSpawnLocked() {
  if (queued_ > idle_ &&
      workers_.size() < static_cast<size_t>(num_threads_ - 1)) {
    const size_t slot = workers_.size() + 1;
    telemetry::Instant("scheduler", "worker_spawn",
                       {{"slot", static_cast<double>(slot)}});
    workers_.emplace_back(&Scheduler::WorkerLoop, this, slot);
  }
}

bool Scheduler::PopTaskLocked(size_t slot, Task* out) {
  // Own deque first, newest task (LIFO: depth-first, cache warm) ...
  if (!deques_[slot].empty()) {
    *out = std::move(deques_[slot].back());
    deques_[slot].pop_back();
    return true;
  }
  // ... then the injector, then steal the *oldest* task of a victim.
  for (size_t d = 0; d < deques_.size(); ++d) {
    if (d == slot || deques_[d].empty()) continue;
    // Taking from the injector (deque 0) is plain dispatch; taking from
    // another worker's deque is a steal worth tracing.
    if (d != 0) {
      telemetry::Instant("scheduler", "steal",
                         {{"victim", static_cast<double>(d)},
                          {"thief", static_cast<double>(slot)}});
    }
    *out = std::move(deques_[d].front());
    deques_[d].pop_front();
    return true;
  }
  return false;
}

void Scheduler::RunTask(Task task) {
  task.fn();
  std::lock_guard<std::mutex> lock(mu_);
  if (--task.group->pending_ == 0) cv_.notify_all();
}

void Scheduler::WorkerLoop(size_t slot) {
  tls_slot = {this, slot};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Task task;
    if (PopTaskLocked(slot, &task)) {
      --queued_;
      lock.unlock();
      RunTask(std::move(task));
      lock.lock();
      continue;
    }
    if (stop_) return;
    ++idle_;
    cv_.wait(lock, [&] { return queued_ > 0 || stop_; });
    --idle_;
  }
}

void Scheduler::Group::Submit(std::function<void()> fn) {
  Scheduler* s = scheduler_;
  {
    std::lock_guard<std::mutex> lock(s->mu_);
    ++pending_;
    s->deques_[s->CurrentSlot()].push_back(Task{std::move(fn), this});
    ++s->queued_;
    s->MaybeSpawnLocked();
  }
  s->cv_.notify_one();
}

void Scheduler::Group::Wait() {
  Scheduler* s = scheduler_;
  std::unique_lock<std::mutex> lock(s->mu_);
  const size_t slot = s->CurrentSlot();
  for (;;) {
    if (pending_ == 0) return;
    Task task;
    if (s->PopTaskLocked(slot, &task)) {
      --s->queued_;
      lock.unlock();
      s->RunTask(std::move(task));
      lock.lock();
      continue;
    }
    // The remaining tasks of this group are running on other executors;
    // sleep until one completes or new work shows up to help with.
    ++s->idle_;
    s->cv_.wait(lock, [&] { return pending_ == 0 || s->queued_ > 0; });
    --s->idle_;
  }
}

}  // namespace licm::solver
