#include "solver/propagation.h"

#include <algorithm>
#include <cmath>

namespace licm::solver {

namespace {
constexpr double kTol = 1e-7;

// Rounds a derived bound for an integer variable, absorbing numerical fuzz.
double FloorTol(double x) { return std::floor(x + kTol); }
double CeilTol(double x) { return std::ceil(x - kTol); }
}  // namespace

Domains Domains::FromProgram(const LinearProgram& lp) {
  Domains d;
  d.lower.reserve(lp.num_vars());
  d.upper.reserve(lp.num_vars());
  for (const auto& v : lp.vars()) {
    d.lower.push_back(v.lower);
    d.upper.push_back(v.upper);
  }
  return d;
}

Propagator::Propagator(const LinearProgram& lp)
    : lp_(lp), var_rows_(lp.num_vars()) {
  const auto& rows = lp.rows();
  for (uint32_t r = 0; r < rows.size(); ++r)
    for (const Term& t : rows[r].terms) var_rows_[t.var].push_back(r);
}

PropagateResult Propagate(const LinearProgram& lp, Domains* domains,
                          const std::vector<VarId>* touched) {
  return Propagator(lp).Run(domains, touched);
}

PropagateResult Propagator::Run(Domains* domains,
                                const std::vector<VarId>* touched,
                                BoundTrail* trail,
                                PropagationScratch* scratch) const {
  const LinearProgram& lp = lp_;
  const auto& rows = lp.rows();
  const auto& var_rows = var_rows_;

  // Worklist: FIFO queue with an epoch-stamped membership test, so a
  // reused scratch needs no clearing between runs.
  PropagationScratch local;
  PropagationScratch& s = scratch != nullptr ? *scratch : local;
  if (s.stamp.size() != rows.size()) {
    s.stamp.assign(rows.size(), 0);
    s.epoch = 0;
  }
  if (++s.epoch == 0) {  // wraparound: old stamps could collide
    std::fill(s.stamp.begin(), s.stamp.end(), 0);
    s.epoch = 1;
  }
  s.queue.clear();
  size_t head = 0;
  auto enqueue_row = [&](uint32_t r) {
    if (s.stamp[r] != s.epoch) {
      s.stamp[r] = s.epoch;
      s.queue.push_back(r);
    }
  };

  if (touched == nullptr) {
    for (uint32_t r = 0; r < rows.size(); ++r) enqueue_row(r);
  } else {
    for (VarId v : *touched) {
      for (uint32_t r : var_rows[v]) enqueue_row(r);
    }
  }

  auto enqueue_var = [&](VarId v) {
    for (uint32_t r : var_rows[v]) enqueue_row(r);
  };

  while (head < s.queue.size()) {
    const uint32_t ri = s.queue[head++];
    s.stamp[ri] = 0;  // dequeued (epoch is never 0)
    const Row& row = rows[ri];

    // Treat the row as up to two one-sided constraints.
    const bool has_le = row.op != RowOp::kGe;  // sum <= rhs
    const bool has_ge = row.op != RowOp::kLe;  // sum >= rhs

    double min_act = 0.0, max_act = 0.0;
    for (const Term& t : row.terms) {
      if (t.coef > 0) {
        min_act += t.coef * domains->lower[t.var];
        max_act += t.coef * domains->upper[t.var];
      } else {
        min_act += t.coef * domains->upper[t.var];
        max_act += t.coef * domains->lower[t.var];
      }
    }
    if (has_le && min_act > row.rhs + kTol) return PropagateResult::kInfeasible;
    if (has_ge && max_act < row.rhs - kTol) return PropagateResult::kInfeasible;

    for (const Term& t : row.terms) {
      const VarId v = t.var;
      const double a = t.coef;
      double lo = domains->lower[v], hi = domains->upper[v];
      const bool is_int = lp.vars()[v].is_integer;

      if (has_le) {
        // a*x <= rhs - (min activity of the other terms)
        const double resid =
            min_act - (a > 0 ? a * lo : a * hi);
        const double room = row.rhs - resid;
        if (a > 0) {
          double nb = room / a;
          if (is_int) nb = FloorTol(nb);
          if (nb < hi - kTol) hi = nb;
        } else {
          double nb = room / a;
          if (is_int) nb = CeilTol(nb);
          if (nb > lo + kTol) lo = nb;
        }
      }
      if (has_ge) {
        // a*x >= rhs - (max activity of the other terms)
        const double resid =
            max_act - (a > 0 ? a * hi : a * lo);
        const double need = row.rhs - resid;
        if (a > 0) {
          double nb = need / a;
          if (is_int) nb = CeilTol(nb);
          if (nb > lo + kTol) lo = nb;
        } else {
          double nb = need / a;
          if (is_int) nb = FloorTol(nb);
          if (nb < hi - kTol) hi = nb;
        }
      }

      if (lo > hi + kTol) return PropagateResult::kInfeasible;
      if (lo > domains->lower[v] + kTol || hi < domains->upper[v] - kTol) {
        if (trail != nullptr) trail->Record(v, *domains);
        domains->lower[v] = lo;
        domains->upper[v] = std::max(lo, hi);
        enqueue_var(v);
        // Bounds moved: the activity snapshot for this row is stale, so
        // requeue it as well rather than continuing with stale values.
        enqueue_row(ri);
        break;
      }
    }
  }
  return PropagateResult::kFixpoint;
}

}  // namespace licm::solver
