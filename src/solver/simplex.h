// Simplex solvers for the LP relaxation of LICM programs.
//
// Two engines share this header:
//
//  * SolveLpRelaxation — the original two-phase *primal* simplex on a dense
//    tableau. Stateless: every call builds the tableau from scratch. Used
//    for pure-LP components and as the cold fallback when the incremental
//    engine does not apply.
//
//  * IncrementalLp — a bounded-variable *dual* simplex that keeps its
//    basis, tableau, and reduced costs alive between solves. Branch &
//    bound re-solves the same program thousands of times under slightly
//    different variable bounds; the dual method re-establishes optimality
//    from the parent basis in a handful of pivots instead of a full
//    re-solve, and its reduced costs drive reduced-cost variable fixing
//    and pseudo-cost branching (mip_solver.cc). Requires every variable
//    to have finite bounds (LICM variables are binary, so this always
//    holds after presolve).
//
// Both operate on dense tableaus, appropriate because the MIP layer only
// invokes them on connected components below a size cap.
#ifndef LICM_SOLVER_SIMPLEX_H_
#define LICM_SOLVER_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "solver/linear_program.h"

namespace licm::solver {

struct SimplexOptions {
  /// Numerical tolerance for feasibility / optimality tests.
  double tol = 1e-9;
  /// Iteration cap; exceeded => solver switches to Bland's rule, and a
  /// second cap aborts (reported as time limit).
  int max_iterations = 100000;
  /// Hard cap on tableau cells to protect against accidentally huge dense
  /// instances; exceeding it returns kTimeLimit so callers fall back to
  /// propagation bounds.
  size_t max_tableau_cells = 64ull * 1024 * 1024;
  /// Pivots between refactorizations of the incremental engine (drift
  /// control; each refactorization rebuilds the tableau from the basis).
  int refactor_interval = 4096;
};

/// Solves the *continuous relaxation* of `lp` (integrality flags ignored).
/// Maximizes when sense == kMaximize. On kOptimal, `values` holds one
/// optimal vertex in original variable space.
LpSolution SolveLpRelaxation(const LinearProgram& lp, Sense sense,
                             const SimplexOptions& options = {});

/// Status of one column (structural variable or row slack) in a
/// bounded-variable basis.
enum class VarStatus : uint8_t { kBasic, kAtLower, kAtUpper };

/// Compact basis snapshot: one status per column, structurals first, then
/// one slack per row (original rows followed by cut rows). A donated
/// subtree carries one so its strand warm-starts where the donor left off.
struct LpBasis {
  std::vector<VarStatus> status;
  bool empty() const { return status.empty(); }
};

/// Lifetime counters of one IncrementalLp instance.
struct IncrementalLpStats {
  int64_t solves = 0;
  int64_t pivots = 0;
  int64_t refactorizations = 0;
  /// Pivot count of the most expensive single re-solve.
  int64_t max_resolve_pivots = 0;
};

/// Bounded-variable dual simplex with a persistent basis.
///
/// Always *maximizes* (the MIP layer negates objectives for the min
/// sense). Every row becomes an equality with a slack column whose bounds
/// encode the row sense; nonbasic columns rest at a finite bound, so the
/// all-slack basis (structurals at their objective-preferred bound) is
/// dual feasible by construction and both the first solve and every warm
/// re-solve run the same dual iteration.
///
/// The referenced program must outlive the instance. Variable bounds are
/// passed per Solve call (the search's current domains); rows are fixed at
/// construction except for AddCutRow.
class IncrementalLp {
 public:
  explicit IncrementalLp(const LinearProgram& lp,
                         const SimplexOptions& options = {});

  IncrementalLp(const IncrementalLp&) = delete;
  IncrementalLp& operator=(const IncrementalLp&) = delete;

  /// True when `lp` fits this engine: every variable bound finite and the
  /// dense tableau within `options.max_tableau_cells`.
  static bool Suitable(const LinearProgram& lp, const SimplexOptions& options);

  /// Re-solves under the given bounds (indexed by VarId), warm-starting
  /// from the current basis. The first call cold-starts from the all-slack
  /// basis. kTimeLimit means the pivot cap was hit: objective/values/
  /// reduced costs are NOT valid and the caller must fall back to other
  /// bounds.
  SolveStatus Solve(const std::vector<double>& lower,
                    const std::vector<double>& upper);

  /// Optimal objective (including the program's constant). Valid after a
  /// kOptimal Solve.
  double objective() const { return objective_; }
  /// Optimal structural values, indexed by VarId. Valid after kOptimal.
  const std::vector<double>& values() const { return values_; }

  /// Reduced cost of structural variable `v` at the last optimum, in the
  /// maximization orientation: nonbasic-at-lower implies d <= 0 and
  /// raising v by t can improve the objective by at most d * t (i.e. not
  /// at all); symmetrically at-upper implies d >= 0.
  double ReducedCost(VarId v) const { return d_[v]; }
  VarStatus StatusOf(VarId v) const { return status_[v]; }

  /// Appends a globally valid cut row (sum(terms) <= rhs over structural
  /// variables). The cut's slack joins the basis; if the current point
  /// violates the cut, the next Solve repairs feasibility in dual pivots.
  void AddCutRow(const Row& row);
  size_t num_cut_rows() const { return num_rows_ - num_base_rows_; }

  LpBasis SaveBasis() const;
  /// Adopts a basis snapshot (e.g. from a donor strand) and refactorizes.
  /// Falls back to the all-slack cold basis when the snapshot does not
  /// match the column layout or is singular.
  void RestoreBasis(const LpBasis& basis);

  /// Pivots performed by the most recent Solve call.
  int64_t last_pivots() const { return last_pivots_; }
  const IncrementalLpStats& stats() const { return stats_; }

 private:
  void ColdBasis();
  /// Rebuilds tableau, beta, and reduced costs from `status_`. Returns
  /// false when the implied basis matrix is singular.
  bool Refactorize();
  void SyncBounds(const std::vector<double>& lower,
                  const std::vector<double>& upper);
  double NonbasicValue(size_t col) const;
  void Pivot(size_t row, size_t enter_col, double ratio);

  const LinearProgram& lp_;
  const SimplexOptions opt_;
  size_t num_vars_;       // structural columns
  size_t num_base_rows_;  // rows of the original program
  size_t num_rows_;       // base rows + cut rows
  size_t num_cols_;       // num_vars_ + num_rows_

  // Row storage (original + cuts) used by Refactorize: normalized terms,
  // rhs, and slack bounds encoding the row sense.
  struct StoredRow {
    std::vector<Term> terms;
    double rhs = 0.0;
    double slack_lo = 0.0;
    double slack_hi = 0.0;
  };
  std::vector<StoredRow> rows_;

  std::vector<std::vector<double>> tab_;  // num_rows_ x num_cols_
  std::vector<size_t> basis_;             // row -> basic column
  std::vector<VarStatus> status_;         // per column
  std::vector<double> beta_;              // value of each row's basic var
  std::vector<double> d_;                 // reduced costs per column
  std::vector<double> lb_, ub_;           // working bounds per column
  std::vector<double> obj_;               // objective coef per column

  bool factorized_ = false;
  int pivots_since_refactor_ = 0;
  int64_t last_pivots_ = 0;
  double objective_ = 0.0;
  std::vector<double> values_;
  IncrementalLpStats stats_;
};

}  // namespace licm::solver

#endif  // LICM_SOLVER_SIMPLEX_H_
