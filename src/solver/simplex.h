// Two-phase primal simplex for the LP relaxation of LICM programs.
//
// The method operates on a dense tableau, which is appropriate here because
// the MIP layer only invokes it on small connected components (LICM
// constraints each touch few variables, so after decomposition components
// are small). Variables must have finite lower bounds (LICM variables are
// binary, so bounds are always [0, 1]); finite upper bounds are enforced
// with explicit bound rows.
#ifndef LICM_SOLVER_SIMPLEX_H_
#define LICM_SOLVER_SIMPLEX_H_

#include "solver/linear_program.h"

namespace licm::solver {

struct SimplexOptions {
  /// Numerical tolerance for feasibility / optimality tests.
  double tol = 1e-9;
  /// Iteration cap; exceeded => solver switches to Bland's rule, and a
  /// second cap aborts (reported as time limit).
  int max_iterations = 100000;
  /// Hard cap on tableau cells to protect against accidentally huge dense
  /// instances; exceeding it returns kTimeLimit so callers fall back to
  /// propagation bounds.
  size_t max_tableau_cells = 64ull * 1024 * 1024;
};

/// Solves the *continuous relaxation* of `lp` (integrality flags ignored).
/// Maximizes when sense == kMaximize. On kOptimal, `values` holds one
/// optimal vertex in original variable space.
LpSolution SolveLpRelaxation(const LinearProgram& lp, Sense sense,
                             const SimplexOptions& options = {});

}  // namespace licm::solver

#endif  // LICM_SOLVER_SIMPLEX_H_
