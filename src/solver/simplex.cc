#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace licm::solver {
namespace {

// Dense tableau for the two-phase method. Column layout:
//   [0, n)          shifted structural variables (y = x - lower)
//   [n, n + s)      slack / surplus variables
//   [n + s, total)  artificial variables (phase 1 only)
// One extra column stores the rhs. Row 0..m-1 are constraints; the
// objective is kept in a separate vector with a scalar for its value.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), a_(rows * (cols + 1), 0.0) {}

  double& At(size_t r, size_t c) { return a_[r * (cols_ + 1) + c]; }
  double At(size_t r, size_t c) const { return a_[r * (cols_ + 1) + c]; }
  double& Rhs(size_t r) { return a_[r * (cols_ + 1) + cols_]; }
  double Rhs(size_t r) const { return a_[r * (cols_ + 1) + cols_]; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Gauss-Jordan pivot on (pr, pc): scales the pivot row to make the pivot
  /// 1 and eliminates column pc from every other row and from `obj`.
  void Pivot(size_t pr, size_t pc, std::vector<double>* obj,
             double* obj_value) {
    const double piv = At(pr, pc);
    const double inv = 1.0 / piv;
    for (size_t c = 0; c <= cols_; ++c) a_[pr * (cols_ + 1) + c] *= inv;
    for (size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double f = At(r, pc);
      if (f == 0.0) continue;
      for (size_t c = 0; c <= cols_; ++c)
        a_[r * (cols_ + 1) + c] -= f * a_[pr * (cols_ + 1) + c];
      At(r, pc) = 0.0;  // clamp rounding
    }
    const double f = (*obj)[pc];
    if (f != 0.0) {
      // Identity z = obj_value + sum(obj[c] * x_c); substituting the scaled
      // pivot row x_pc = Rhs(pr) - sum A(pr,c) x_c keeps it valid.
      for (size_t c = 0; c < cols_; ++c) (*obj)[c] -= f * At(pr, c);
      *obj_value += f * Rhs(pr);
      (*obj)[pc] = 0.0;
    }
  }

 private:
  size_t rows_, cols_;
  std::vector<double> a_;
};

// Runs simplex iterations to maximize. `obj` holds reduced costs (objective
// coefficients expressed in the current basis, i.e. already eliminated for
// basic columns). Returns kOptimal, kUnbounded, or kTimeLimit.
SolveStatus Iterate(Tableau* t, std::vector<double>* obj, double* obj_value,
                    std::vector<size_t>* basis, size_t usable_cols,
                    const SimplexOptions& opt) {
  const size_t m = t->rows();
  int iters = 0;
  // After this many Dantzig iterations, switch to Bland's rule, which is
  // slower but provably cycle-free.
  const int bland_after = opt.max_iterations / 2;
  for (;;) {
    if (++iters > opt.max_iterations) return SolveStatus::kTimeLimit;
    const bool bland = iters > bland_after;

    // Entering column: positive reduced cost (we maximize).
    size_t enter = usable_cols;
    double best = opt.tol;
    for (size_t c = 0; c < usable_cols; ++c) {
      const double rc = (*obj)[c];
      if (rc > best) {
        enter = c;
        if (bland) break;  // first eligible
        best = rc;
      } else if (bland && rc > opt.tol) {
        enter = c;
        break;
      }
    }
    if (enter == usable_cols) return SolveStatus::kOptimal;

    // Ratio test: leaving row minimizes rhs / a over positive a.
    size_t leave = m;
    double best_ratio = 0.0;
    for (size_t r = 0; r < m; ++r) {
      const double a = t->At(r, enter);
      if (a > opt.tol) {
        const double ratio = t->Rhs(r) / a;
        if (leave == m || ratio < best_ratio - opt.tol ||
            (bland && std::abs(ratio - best_ratio) <= opt.tol &&
             (*basis)[r] < (*basis)[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
    }
    if (leave == m) return SolveStatus::kUnbounded;

    t->Pivot(leave, enter, obj, obj_value);
    (*basis)[leave] = enter;
  }
}

}  // namespace

LpSolution SolveLpRelaxation(const LinearProgram& lp, Sense sense,
                             const SimplexOptions& opt) {
  LpSolution out;
  const size_t n = lp.num_vars();

  // This implementation requires finite lower bounds (always true for the
  // binary programs LICM emits). Unexpected inputs get a conservative
  // "don't know" answer rather than a wrong one.
  for (const auto& v : lp.vars()) {
    if (!std::isfinite(v.lower)) {
      out.status = SolveStatus::kTimeLimit;
      return out;
    }
    if (v.lower > v.upper) {
      out.status = SolveStatus::kInfeasible;
      return out;
    }
  }

  // Build the row set in shifted space y = x - lower, adding upper-bound
  // rows for finite upper bounds.
  struct BuildRow {
    std::vector<Term> terms;
    RowOp op;
    double rhs;
  };
  std::vector<BuildRow> rows;
  rows.reserve(lp.num_rows() + n);
  for (const Row& r : lp.rows()) {
    BuildRow br{r.terms, r.op, r.rhs};
    for (const Term& t : r.terms) br.rhs -= t.coef * lp.vars()[t.var].lower;
    // An empty row is a pure feasibility test.
    if (br.terms.empty()) {
      bool ok_row = true;
      switch (br.op) {
        case RowOp::kLe: ok_row = 0.0 <= br.rhs + opt.tol; break;
        case RowOp::kGe: ok_row = 0.0 >= br.rhs - opt.tol; break;
        case RowOp::kEq: ok_row = std::abs(br.rhs) <= opt.tol; break;
      }
      if (!ok_row) {
        out.status = SolveStatus::kInfeasible;
        return out;
      }
      continue;
    }
    rows.push_back(std::move(br));
  }
  for (VarId v = 0; v < n; ++v) {
    const auto& def = lp.vars()[v];
    if (std::isfinite(def.upper)) {
      rows.push_back(
          BuildRow{{Term{v, 1.0}}, RowOp::kLe, def.upper - def.lower});
    }
  }

  const size_t m = rows.size();
  // Count slacks (one per inequality) and normalize so rhs >= 0.
  size_t num_slack = 0;
  for (auto& br : rows) {
    if (br.rhs < 0.0) {
      for (auto& t : br.terms) t.coef = -t.coef;
      br.rhs = -br.rhs;
      if (br.op == RowOp::kLe) br.op = RowOp::kGe;
      else if (br.op == RowOp::kGe) br.op = RowOp::kLe;
    }
    if (br.op != RowOp::kEq) ++num_slack;
  }
  // Artificials: needed for kGe and kEq rows (no natural basic column).
  size_t num_art = 0;
  for (const auto& br : rows)
    if (br.op != RowOp::kLe) ++num_art;

  const size_t total_cols = n + num_slack + num_art;
  if (m * (total_cols + 1) > opt.max_tableau_cells) {
    out.status = SolveStatus::kTimeLimit;
    return out;
  }

  Tableau t(m, total_cols);
  std::vector<size_t> basis(m);
  std::vector<double> phase1_obj(total_cols, 0.0);
  double phase1_value = 0.0;

  size_t slack_at = n, art_at = n + num_slack;
  for (size_t r = 0; r < m; ++r) {
    for (const Term& term : rows[r].terms) t.At(r, term.var) = term.coef;
    t.Rhs(r) = rows[r].rhs;
    switch (rows[r].op) {
      case RowOp::kLe:
        t.At(r, slack_at) = 1.0;
        basis[r] = slack_at++;
        break;
      case RowOp::kGe:
        t.At(r, slack_at) = -1.0;
        ++slack_at;
        t.At(r, art_at) = 1.0;
        basis[r] = art_at++;
        break;
      case RowOp::kEq:
        t.At(r, art_at) = 1.0;
        basis[r] = art_at++;
        break;
    }
  }

  if (num_art > 0) {
    // Phase 1: maximize -(sum of artificials). Express the objective in
    // terms of nonbasic columns by adding each artificial's row.
    for (size_t r = 0; r < m; ++r) {
      if (basis[r] >= n + num_slack) {
        for (size_t c = 0; c < total_cols; ++c)
          phase1_obj[c] += t.At(r, c);
        phase1_value += t.Rhs(r);
      }
    }
    // z1 = -sum(artificials) = -sum Rhs(r) + sum_c (sum_r A(r,c)) x_c once
    // the basic artificial columns are substituted out.
    for (size_t c = n + num_slack; c < total_cols; ++c) phase1_obj[c] = 0.0;
    phase1_value = -phase1_value;
    // Allow artificials to re-enter? No: restrict pivoting to real columns.
    SolveStatus st = Iterate(&t, &phase1_obj, &phase1_value, &basis,
                             n + num_slack, opt);
    if (st == SolveStatus::kTimeLimit) {
      out.status = st;
      return out;
    }
    // phase1_value now holds -(sum of artificials) at optimum.
    if (phase1_value < -1e-7) {
      out.status = SolveStatus::kInfeasible;
      return out;
    }
    // Drive any remaining basic artificials out (they must be at 0).
    for (size_t r = 0; r < m; ++r) {
      if (basis[r] >= n + num_slack) {
        size_t pc = total_cols;
        for (size_t c = 0; c < n + num_slack; ++c) {
          if (std::abs(t.At(r, c)) > opt.tol) {
            pc = c;
            break;
          }
        }
        if (pc < total_cols) {
          double dummy = 0.0;
          std::vector<double> no_obj(total_cols, 0.0);
          t.Pivot(r, pc, &no_obj, &dummy);
          basis[r] = pc;
        }
        // Else the row is all-zero over real columns: redundant, leave it.
      }
    }
  }

  // Phase 2: real objective over shifted variables. Shift constant:
  // c.x = c.y + c.lower.
  const double sign = (sense == Sense::kMaximize) ? 1.0 : -1.0;
  std::vector<double> obj(total_cols, 0.0);
  double obj_value = lp.objective_constant();
  for (VarId v = 0; v < n; ++v) {
    const double c = sign * lp.objective_coef(v);
    obj[v] = c;
    obj_value += c * lp.vars()[v].lower;
  }
  // Eliminate basic columns from the objective row.
  for (size_t r = 0; r < m; ++r) {
    const size_t b = basis[r];
    if (b < total_cols && obj[b] != 0.0) {
      const double f = obj[b];
      for (size_t c = 0; c < total_cols; ++c) obj[c] -= f * t.At(r, c);
      obj_value += f * t.Rhs(r);
      obj[b] = 0.0;
    }
  }
  SolveStatus st =
      Iterate(&t, &obj, &obj_value, &basis, n + num_slack, opt);
  if (st != SolveStatus::kOptimal) {
    out.status = st;
    return out;
  }

  out.status = SolveStatus::kOptimal;
  out.values.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] < n) out.values[basis[r]] = t.Rhs(r);
  }
  for (VarId v = 0; v < n; ++v) {
    out.values[v] += lp.vars()[v].lower;
    // Clamp tiny numerical drift back into the box.
    out.values[v] =
        std::clamp(out.values[v], lp.vars()[v].lower, lp.vars()[v].upper);
  }
  out.objective = lp.EvalObjective(out.values);
  return out;
}

}  // namespace licm::solver
