#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace licm::solver {
namespace {

// Dense tableau for the two-phase method. Column layout:
//   [0, n)          shifted structural variables (y = x - lower)
//   [n, n + s)      slack / surplus variables
//   [n + s, total)  artificial variables (phase 1 only)
// One extra column stores the rhs. Row 0..m-1 are constraints; the
// objective is kept in a separate vector with a scalar for its value.
class Tableau {
 public:
  Tableau(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), a_(rows * (cols + 1), 0.0) {}

  double& At(size_t r, size_t c) { return a_[r * (cols_ + 1) + c]; }
  double At(size_t r, size_t c) const { return a_[r * (cols_ + 1) + c]; }
  double& Rhs(size_t r) { return a_[r * (cols_ + 1) + cols_]; }
  double Rhs(size_t r) const { return a_[r * (cols_ + 1) + cols_]; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Gauss-Jordan pivot on (pr, pc): scales the pivot row to make the pivot
  /// 1 and eliminates column pc from every other row and from `obj`.
  void Pivot(size_t pr, size_t pc, std::vector<double>* obj,
             double* obj_value) {
    const double piv = At(pr, pc);
    const double inv = 1.0 / piv;
    for (size_t c = 0; c <= cols_; ++c) a_[pr * (cols_ + 1) + c] *= inv;
    for (size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double f = At(r, pc);
      if (f == 0.0) continue;
      for (size_t c = 0; c <= cols_; ++c)
        a_[r * (cols_ + 1) + c] -= f * a_[pr * (cols_ + 1) + c];
      At(r, pc) = 0.0;  // clamp rounding
    }
    const double f = (*obj)[pc];
    if (f != 0.0) {
      // Identity z = obj_value + sum(obj[c] * x_c); substituting the scaled
      // pivot row x_pc = Rhs(pr) - sum A(pr,c) x_c keeps it valid.
      for (size_t c = 0; c < cols_; ++c) (*obj)[c] -= f * At(pr, c);
      *obj_value += f * Rhs(pr);
      (*obj)[pc] = 0.0;
    }
  }

 private:
  size_t rows_, cols_;
  std::vector<double> a_;
};

// Runs simplex iterations to maximize. `obj` holds reduced costs (objective
// coefficients expressed in the current basis, i.e. already eliminated for
// basic columns). Returns kOptimal, kUnbounded, or kTimeLimit.
SolveStatus Iterate(Tableau* t, std::vector<double>* obj, double* obj_value,
                    std::vector<size_t>* basis, size_t usable_cols,
                    const SimplexOptions& opt) {
  const size_t m = t->rows();
  int iters = 0;
  // After this many Dantzig iterations, switch to Bland's rule, which is
  // slower but provably cycle-free.
  const int bland_after = opt.max_iterations / 2;
  for (;;) {
    if (++iters > opt.max_iterations) return SolveStatus::kTimeLimit;
    const bool bland = iters > bland_after;

    // Entering column: positive reduced cost (we maximize).
    size_t enter = usable_cols;
    double best = opt.tol;
    for (size_t c = 0; c < usable_cols; ++c) {
      const double rc = (*obj)[c];
      if (rc > best) {
        enter = c;
        if (bland) break;  // first eligible
        best = rc;
      } else if (bland && rc > opt.tol) {
        enter = c;
        break;
      }
    }
    if (enter == usable_cols) return SolveStatus::kOptimal;

    // Ratio test: leaving row minimizes rhs / a over positive a.
    size_t leave = m;
    double best_ratio = 0.0;
    for (size_t r = 0; r < m; ++r) {
      const double a = t->At(r, enter);
      if (a > opt.tol) {
        const double ratio = t->Rhs(r) / a;
        if (leave == m || ratio < best_ratio - opt.tol ||
            (bland && std::abs(ratio - best_ratio) <= opt.tol &&
             (*basis)[r] < (*basis)[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
    }
    if (leave == m) return SolveStatus::kUnbounded;

    t->Pivot(leave, enter, obj, obj_value);
    (*basis)[leave] = enter;
  }
}

}  // namespace

LpSolution SolveLpRelaxation(const LinearProgram& lp, Sense sense,
                             const SimplexOptions& opt) {
  LpSolution out;
  const size_t n = lp.num_vars();

  // This implementation requires finite lower bounds (always true for the
  // binary programs LICM emits). Unexpected inputs get a conservative
  // "don't know" answer rather than a wrong one.
  for (const auto& v : lp.vars()) {
    if (!std::isfinite(v.lower)) {
      out.status = SolveStatus::kTimeLimit;
      return out;
    }
    if (v.lower > v.upper) {
      out.status = SolveStatus::kInfeasible;
      return out;
    }
  }

  // Build the row set in shifted space y = x - lower, adding upper-bound
  // rows for finite upper bounds.
  struct BuildRow {
    std::vector<Term> terms;
    RowOp op;
    double rhs;
  };
  std::vector<BuildRow> rows;
  rows.reserve(lp.num_rows() + n);
  for (const Row& r : lp.rows()) {
    BuildRow br{r.terms, r.op, r.rhs};
    for (const Term& t : r.terms) br.rhs -= t.coef * lp.vars()[t.var].lower;
    // An empty row is a pure feasibility test.
    if (br.terms.empty()) {
      bool ok_row = true;
      switch (br.op) {
        case RowOp::kLe: ok_row = 0.0 <= br.rhs + opt.tol; break;
        case RowOp::kGe: ok_row = 0.0 >= br.rhs - opt.tol; break;
        case RowOp::kEq: ok_row = std::abs(br.rhs) <= opt.tol; break;
      }
      if (!ok_row) {
        out.status = SolveStatus::kInfeasible;
        return out;
      }
      continue;
    }
    rows.push_back(std::move(br));
  }
  for (VarId v = 0; v < n; ++v) {
    const auto& def = lp.vars()[v];
    if (std::isfinite(def.upper)) {
      rows.push_back(
          BuildRow{{Term{v, 1.0}}, RowOp::kLe, def.upper - def.lower});
    }
  }

  const size_t m = rows.size();
  // Count slacks (one per inequality) and normalize so rhs >= 0.
  size_t num_slack = 0;
  for (auto& br : rows) {
    if (br.rhs < 0.0) {
      for (auto& t : br.terms) t.coef = -t.coef;
      br.rhs = -br.rhs;
      if (br.op == RowOp::kLe) br.op = RowOp::kGe;
      else if (br.op == RowOp::kGe) br.op = RowOp::kLe;
    }
    if (br.op != RowOp::kEq) ++num_slack;
  }
  // Artificials: needed for kGe and kEq rows (no natural basic column).
  size_t num_art = 0;
  for (const auto& br : rows)
    if (br.op != RowOp::kLe) ++num_art;

  const size_t total_cols = n + num_slack + num_art;
  if (m * (total_cols + 1) > opt.max_tableau_cells) {
    out.status = SolveStatus::kTimeLimit;
    return out;
  }

  Tableau t(m, total_cols);
  std::vector<size_t> basis(m);
  std::vector<double> phase1_obj(total_cols, 0.0);
  double phase1_value = 0.0;

  size_t slack_at = n, art_at = n + num_slack;
  for (size_t r = 0; r < m; ++r) {
    for (const Term& term : rows[r].terms) t.At(r, term.var) = term.coef;
    t.Rhs(r) = rows[r].rhs;
    switch (rows[r].op) {
      case RowOp::kLe:
        t.At(r, slack_at) = 1.0;
        basis[r] = slack_at++;
        break;
      case RowOp::kGe:
        t.At(r, slack_at) = -1.0;
        ++slack_at;
        t.At(r, art_at) = 1.0;
        basis[r] = art_at++;
        break;
      case RowOp::kEq:
        t.At(r, art_at) = 1.0;
        basis[r] = art_at++;
        break;
    }
  }

  if (num_art > 0) {
    // Phase 1: maximize -(sum of artificials). Express the objective in
    // terms of nonbasic columns by adding each artificial's row.
    for (size_t r = 0; r < m; ++r) {
      if (basis[r] >= n + num_slack) {
        for (size_t c = 0; c < total_cols; ++c)
          phase1_obj[c] += t.At(r, c);
        phase1_value += t.Rhs(r);
      }
    }
    // z1 = -sum(artificials) = -sum Rhs(r) + sum_c (sum_r A(r,c)) x_c once
    // the basic artificial columns are substituted out.
    for (size_t c = n + num_slack; c < total_cols; ++c) phase1_obj[c] = 0.0;
    phase1_value = -phase1_value;
    // Allow artificials to re-enter? No: restrict pivoting to real columns.
    SolveStatus st = Iterate(&t, &phase1_obj, &phase1_value, &basis,
                             n + num_slack, opt);
    if (st == SolveStatus::kTimeLimit) {
      out.status = st;
      return out;
    }
    // phase1_value now holds -(sum of artificials) at optimum.
    if (phase1_value < -1e-7) {
      out.status = SolveStatus::kInfeasible;
      return out;
    }
    // Drive any remaining basic artificials out (they must be at 0).
    for (size_t r = 0; r < m; ++r) {
      if (basis[r] >= n + num_slack) {
        size_t pc = total_cols;
        for (size_t c = 0; c < n + num_slack; ++c) {
          if (std::abs(t.At(r, c)) > opt.tol) {
            pc = c;
            break;
          }
        }
        if (pc < total_cols) {
          double dummy = 0.0;
          std::vector<double> no_obj(total_cols, 0.0);
          t.Pivot(r, pc, &no_obj, &dummy);
          basis[r] = pc;
        }
        // Else the row is all-zero over real columns: redundant, leave it.
      }
    }
  }

  // Phase 2: real objective over shifted variables. Shift constant:
  // c.x = c.y + c.lower.
  const double sign = (sense == Sense::kMaximize) ? 1.0 : -1.0;
  std::vector<double> obj(total_cols, 0.0);
  double obj_value = lp.objective_constant();
  for (VarId v = 0; v < n; ++v) {
    const double c = sign * lp.objective_coef(v);
    obj[v] = c;
    obj_value += c * lp.vars()[v].lower;
  }
  // Eliminate basic columns from the objective row.
  for (size_t r = 0; r < m; ++r) {
    const size_t b = basis[r];
    if (b < total_cols && obj[b] != 0.0) {
      const double f = obj[b];
      for (size_t c = 0; c < total_cols; ++c) obj[c] -= f * t.At(r, c);
      obj_value += f * t.Rhs(r);
      obj[b] = 0.0;
    }
  }
  SolveStatus st =
      Iterate(&t, &obj, &obj_value, &basis, n + num_slack, opt);
  if (st != SolveStatus::kOptimal) {
    out.status = st;
    return out;
  }

  out.status = SolveStatus::kOptimal;
  out.values.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (basis[r] < n) out.values[basis[r]] = t.Rhs(r);
  }
  for (VarId v = 0; v < n; ++v) {
    out.values[v] += lp.vars()[v].lower;
    // Clamp tiny numerical drift back into the box.
    out.values[v] =
        std::clamp(out.values[v], lp.vars()[v].lower, lp.vars()[v].upper);
  }
  out.objective = lp.EvalObjective(out.values);
  return out;
}

namespace {

// Feasibility tolerance for primal bound violations in the dual engine.
// Looser than SimplexOptions::tol (which governs pivot eligibility) to
// match the 1e-7 feasibility tolerance of the primal engine above.
constexpr double kFeasTol = 1e-7;
// Minimum |pivot| accepted by the ratio test.
constexpr double kPivEps = 1e-7;
// Entries below this are treated as structural zeros when deciding whether
// a row certifies infeasibility.
constexpr double kZeroEps = 1e-9;

}  // namespace

bool IncrementalLp::Suitable(const LinearProgram& lp,
                             const SimplexOptions& options) {
  const size_t n = lp.num_vars();
  if (n == 0) return false;
  for (const auto& v : lp.vars()) {
    if (!std::isfinite(v.lower) || !std::isfinite(v.upper)) return false;
  }
  const size_t m = lp.num_rows();
  // Reserve headroom for cut rows when sizing the dense tableau.
  const size_t kCutReserve = 64;
  return (m + kCutReserve) * (n + m + kCutReserve) <= options.max_tableau_cells;
}

IncrementalLp::IncrementalLp(const LinearProgram& lp,
                             const SimplexOptions& options)
    : lp_(lp), opt_(options) {
  num_vars_ = lp.num_vars();
  num_base_rows_ = lp.num_rows();
  num_rows_ = num_base_rows_;
  num_cols_ = num_vars_ + num_rows_;

  rows_.reserve(num_base_rows_);
  for (const Row& r : lp.rows()) {
    StoredRow sr;
    sr.terms = r.terms;
    sr.rhs = r.rhs;
    switch (r.op) {
      case RowOp::kLe:
        sr.slack_lo = 0.0;
        sr.slack_hi = std::numeric_limits<double>::infinity();
        break;
      case RowOp::kGe:
        sr.slack_lo = -std::numeric_limits<double>::infinity();
        sr.slack_hi = 0.0;
        break;
      case RowOp::kEq:
        sr.slack_lo = 0.0;
        sr.slack_hi = 0.0;
        break;
    }
    rows_.push_back(std::move(sr));
  }

  status_.assign(num_cols_, VarStatus::kAtLower);
  d_.assign(num_cols_, 0.0);
  obj_.assign(num_cols_, 0.0);
  lb_.assign(num_cols_, 0.0);
  ub_.assign(num_cols_, 0.0);
  for (VarId v = 0; v < num_vars_; ++v) {
    obj_[v] = lp.objective_coef(v);
    lb_[v] = lp.vars()[v].lower;
    ub_[v] = lp.vars()[v].upper;
  }
  for (size_t r = 0; r < num_rows_; ++r) {
    lb_[num_vars_ + r] = rows_[r].slack_lo;
    ub_[num_vars_ + r] = rows_[r].slack_hi;
  }
  values_.assign(num_vars_, 0.0);
}

double IncrementalLp::NonbasicValue(size_t col) const {
  return status_[col] == VarStatus::kAtUpper ? ub_[col] : lb_[col];
}

void IncrementalLp::ColdBasis() {
  // All slacks basic; each structural rests at its objective-preferred
  // bound so the starting reduced costs are dual feasible by construction.
  for (VarId v = 0; v < num_vars_; ++v) {
    status_[v] = obj_[v] > 0.0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
  }
  for (size_t r = 0; r < num_rows_; ++r) {
    status_[num_vars_ + r] = VarStatus::kBasic;
  }
  Refactorize();  // identity basis: cannot be singular
  factorized_ = true;
}

bool IncrementalLp::Refactorize() {
  ++stats_.refactorizations;
  pivots_since_refactor_ = 0;

  tab_.assign(num_rows_, std::vector<double>(num_cols_, 0.0));
  std::vector<double> rhs(num_rows_, 0.0);
  for (size_t r = 0; r < num_rows_; ++r) {
    for (const Term& t : rows_[r].terms) tab_[r][t.var] += t.coef;
    tab_[r][num_vars_ + r] = 1.0;
    rhs[r] = rows_[r].rhs;
  }

  // Gauss-Jordan over the basic columns with row pivoting.
  std::vector<char> row_done(num_rows_, 0);
  basis_.assign(num_rows_, num_cols_);
  size_t assigned = 0;
  for (size_t c = 0; c < num_cols_; ++c) {
    if (status_[c] != VarStatus::kBasic) continue;
    size_t pr = num_rows_;
    double best = 1e-9;
    for (size_t r = 0; r < num_rows_; ++r) {
      if (row_done[r]) continue;
      const double a = std::abs(tab_[r][c]);
      if (a > best) {
        best = a;
        pr = r;
      }
    }
    if (pr == num_rows_) return false;  // singular
    const double inv = 1.0 / tab_[pr][c];
    for (size_t j = 0; j < num_cols_; ++j) tab_[pr][j] *= inv;
    rhs[pr] *= inv;
    tab_[pr][c] = 1.0;
    for (size_t r = 0; r < num_rows_; ++r) {
      if (r == pr) continue;
      const double f = tab_[r][c];
      if (f == 0.0) continue;
      const std::vector<double>& prow = tab_[pr];
      std::vector<double>& rrow = tab_[r];
      for (size_t j = 0; j < num_cols_; ++j) rrow[j] -= f * prow[j];
      rhs[r] -= f * rhs[pr];
      rrow[c] = 0.0;
    }
    row_done[pr] = 1;
    basis_[pr] = c;
    ++assigned;
  }
  if (assigned != num_rows_) return false;

  // beta = B^-1 b - sum over nonbasic j of column_j * value_j.
  beta_ = rhs;
  for (size_t j = 0; j < num_cols_; ++j) {
    if (status_[j] == VarStatus::kBasic) continue;
    const double x = NonbasicValue(j);
    if (x == 0.0) continue;
    for (size_t r = 0; r < num_rows_; ++r) {
      const double a = tab_[r][j];
      if (a != 0.0) beta_[r] -= a * x;
    }
  }

  // Reduced costs d = c - c_B^T B^-1 A.
  d_.assign(num_cols_, 0.0);
  for (size_t j = 0; j < num_cols_; ++j) d_[j] = obj_[j];
  for (size_t r = 0; r < num_rows_; ++r) {
    const double cb = obj_[basis_[r]];
    if (cb == 0.0) continue;
    const std::vector<double>& rrow = tab_[r];
    for (size_t j = 0; j < num_cols_; ++j) d_[j] -= cb * rrow[j];
  }
  for (size_t r = 0; r < num_rows_; ++r) d_[basis_[r]] = 0.0;
  return true;
}

void IncrementalLp::SyncBounds(const std::vector<double>& lower,
                               const std::vector<double>& upper) {
  for (VarId v = 0; v < num_vars_; ++v) {
    const double nl = lower[v], nu = upper[v];
    if (nl == lb_[v] && nu == ub_[v]) continue;
    if (status_[v] != VarStatus::kBasic) {
      // The resting value moves with its bound; shift beta by the delta
      // times the variable's tableau column.
      const double old = NonbasicValue(v);
      const double now = status_[v] == VarStatus::kAtUpper ? nu : nl;
      const double delta = now - old;
      if (delta != 0.0) {
        for (size_t r = 0; r < num_rows_; ++r) {
          const double a = tab_[r][v];
          if (a != 0.0) beta_[r] -= a * delta;
        }
      }
    }
    lb_[v] = nl;
    ub_[v] = nu;
  }
}

void IncrementalLp::Pivot(size_t row, size_t enter_col, double theta) {
  const size_t leave_col = basis_[row];
  std::vector<double>& prow = tab_[row];
  const double alpha = prow[enter_col];

  // Primal update: entering variable moves by t so the leaving variable
  // lands exactly on its violated bound.
  const bool to_lower = beta_[row] < lb_[leave_col];
  const double target = to_lower ? lb_[leave_col] : ub_[leave_col];
  const double t = (beta_[row] - target) / alpha;
  const double enter_val = NonbasicValue(enter_col) + t;
  for (size_t r = 0; r < num_rows_; ++r) {
    if (r == row) continue;
    const double a = tab_[r][enter_col];
    if (a != 0.0) beta_[r] -= a * t;
  }
  beta_[row] = enter_val;

  // Dual update uses the unscaled pivot row.
  for (size_t j = 0; j < num_cols_; ++j) d_[j] -= theta * prow[j];
  d_[enter_col] = 0.0;

  // Eliminate the entering column everywhere else.
  const double inv = 1.0 / alpha;
  for (size_t j = 0; j < num_cols_; ++j) prow[j] *= inv;
  prow[enter_col] = 1.0;
  for (size_t r = 0; r < num_rows_; ++r) {
    if (r == row) continue;
    const double f = tab_[r][enter_col];
    if (f == 0.0) continue;
    std::vector<double>& rrow = tab_[r];
    for (size_t j = 0; j < num_cols_; ++j) rrow[j] -= f * prow[j];
    rrow[enter_col] = 0.0;
  }

  status_[enter_col] = VarStatus::kBasic;
  status_[leave_col] = to_lower ? VarStatus::kAtLower : VarStatus::kAtUpper;
  basis_[row] = enter_col;
  ++pivots_since_refactor_;
  ++stats_.pivots;
}

SolveStatus IncrementalLp::Solve(const std::vector<double>& lower,
                                 const std::vector<double>& upper) {
  ++stats_.solves;
  last_pivots_ = 0;
  for (VarId v = 0; v < num_vars_; ++v) {
    if (lower[v] > upper[v] + opt_.tol) return SolveStatus::kInfeasible;
  }

  if (!factorized_) {
    for (VarId v = 0; v < num_vars_; ++v) {
      lb_[v] = lower[v];
      ub_[v] = upper[v];
    }
    ColdBasis();
  } else {
    SyncBounds(lower, upper);
    if (pivots_since_refactor_ >= opt_.refactor_interval) {
      if (!Refactorize()) ColdBasis();
    }
  }

  const int bland_after = opt_.max_iterations / 2;
  bool retried_after_refactor = false;
  for (;;) {
    // Leaving row: largest primal bound violation among basic variables.
    size_t row = num_rows_;
    double worst = kFeasTol;
    for (size_t r = 0; r < num_rows_; ++r) {
      const size_t b = basis_[r];
      double viol = lb_[b] - beta_[r];
      const double over = beta_[r] - ub_[b];
      if (over > viol) viol = over;
      if (viol > worst) {
        worst = viol;
        row = r;
      }
    }
    if (row == num_rows_) break;  // primal feasible => optimal

    if (++last_pivots_ > opt_.max_iterations) {
      factorized_ = false;  // state is suspect; next Solve cold-starts
      return SolveStatus::kTimeLimit;
    }
    const bool bland = last_pivots_ > bland_after;

    const size_t leave_col = basis_[row];
    const bool to_lower = beta_[row] < lb_[leave_col];
    const std::vector<double>& prow = tab_[row];

    // Dual ratio test. When the leaving variable rises to its lower bound,
    // eligible entering columns are at-lower with negative row entry or
    // at-upper with positive entry (signs flip for the upper case); the
    // winner minimizes |d_j / alpha_j|, keeping reduced costs dual
    // feasible after the pivot.
    size_t enter = num_cols_;
    double best_score = 0.0, best_alpha = 0.0;
    bool any_sign_ok = false;
    for (size_t j = 0; j < num_cols_; ++j) {
      const VarStatus st = status_[j];
      if (st == VarStatus::kBasic) continue;
      const double a = prow[j];
      const bool sign_ok =
          to_lower ? (st == VarStatus::kAtLower ? a < -kZeroEps : a > kZeroEps)
                   : (st == VarStatus::kAtLower ? a > kZeroEps : a < -kZeroEps);
      if (!sign_ok) continue;
      any_sign_ok = true;
      if (std::abs(a) <= kPivEps) continue;
      double score = to_lower ? d_[j] / a : -(d_[j] / a);
      if (score < 0.0) score = 0.0;  // numerical dual infeasibility
      if (enter == num_cols_) {
        enter = j;
        best_score = score;
        best_alpha = std::abs(a);
        continue;
      }
      if (bland) continue;  // first eligible (smallest index) already kept
      if (score < best_score - opt_.tol ||
          (score < best_score + opt_.tol && std::abs(a) > best_alpha)) {
        enter = j;
        best_score = score;
        best_alpha = std::abs(a);
      }
    }

    if (enter == num_cols_) {
      // No usable pivot. A freshly refactorized row with no sign-correct
      // entry is a Farkas certificate; anything else is numerical doubt,
      // answered conservatively.
      if (pivots_since_refactor_ > 0 && !retried_after_refactor) {
        retried_after_refactor = true;
        if (!Refactorize()) ColdBasis();
        continue;
      }
      if (any_sign_ok) {
        factorized_ = false;
        return SolveStatus::kTimeLimit;
      }
      return SolveStatus::kInfeasible;
    }
    retried_after_refactor = false;

    const double theta = d_[enter] / prow[enter];
    Pivot(row, enter, theta);
  }

  // Extract the optimum.
  for (VarId v = 0; v < num_vars_; ++v) {
    if (status_[v] != VarStatus::kBasic) values_[v] = NonbasicValue(v);
  }
  for (size_t r = 0; r < num_rows_; ++r) {
    const size_t b = basis_[r];
    if (b < num_vars_) values_[b] = std::clamp(beta_[r], lb_[b], ub_[b]);
  }
  objective_ = lp_.objective_constant();
  for (VarId v = 0; v < num_vars_; ++v) objective_ += obj_[v] * values_[v];
  if (stats_.solves > 1 && last_pivots_ > stats_.max_resolve_pivots) {
    stats_.max_resolve_pivots = last_pivots_;
  }
  return SolveStatus::kOptimal;
}

void IncrementalLp::AddCutRow(const Row& row) {
  StoredRow sr;
  sr.terms = row.terms;
  sr.rhs = row.rhs;
  sr.slack_lo = 0.0;
  sr.slack_hi = std::numeric_limits<double>::infinity();
  rows_.push_back(sr);

  const size_t new_row = num_rows_;
  const size_t slack_col = num_vars_ + new_row;
  ++num_rows_;
  ++num_cols_;
  // Slack columns stay contiguous after structurals, so the new slack's
  // column index is exactly the old num_cols_ and no remapping is needed.
  status_.push_back(VarStatus::kBasic);
  d_.push_back(0.0);
  obj_.push_back(0.0);
  lb_.push_back(sr.slack_lo);
  ub_.push_back(sr.slack_hi);

  if (!factorized_) return;  // next Solve cold-starts and rebuilds

  for (auto& r : tab_) r.push_back(0.0);
  std::vector<double> nrow(num_cols_, 0.0);
  for (const Term& t : row.terms) nrow[t.var] += t.coef;
  nrow[slack_col] = 1.0;
  // Express the cut in the current basis: eliminate every basic column.
  for (size_t r = 0; r < new_row; ++r) {
    const double f = nrow[basis_[r]];
    if (f == 0.0) continue;
    const std::vector<double>& rrow = tab_[r];
    for (size_t j = 0; j < num_cols_; ++j) nrow[j] -= f * rrow[j];
    nrow[basis_[r]] = 0.0;
  }
  tab_.push_back(std::move(nrow));
  basis_.push_back(slack_col);
  // The slack's value at the current point; if negative the cut is
  // violated and the next Solve repairs it dually.
  double s = row.rhs;
  for (const Term& t : row.terms) s -= t.coef * values_[t.var];
  beta_.push_back(s);
}

LpBasis IncrementalLp::SaveBasis() const {
  LpBasis b;
  b.status = status_;
  return b;
}

void IncrementalLp::RestoreBasis(const LpBasis& basis) {
  if (basis.status.size() != num_cols_) {
    ColdBasis();
    return;
  }
  size_t basic = 0;
  for (VarStatus st : basis.status) basic += st == VarStatus::kBasic ? 1 : 0;
  if (basic != num_rows_) {
    ColdBasis();
    return;
  }
  status_ = basis.status;
  if (!Refactorize()) {
    ColdBasis();
    return;
  }
  factorized_ = true;
}

}  // namespace licm::solver
