// Exact branch & bound solver for the binary integer programs LICM emits.
//
// Pipeline: presolve -> connected-component decomposition -> per-component
// depth-first branch & bound with activity bounds, bound propagation at
// every node, and optional LP-relaxation bounds from the simplex. Optima
// are *proved*, matching the paper's use of CPLEX; a time/node limit yields
// valid approximate bounds with a reported gap (the paper's Query-3
// behaviour on bipartite data).
#ifndef LICM_SOLVER_MIP_SOLVER_H_
#define LICM_SOLVER_MIP_SOLVER_H_

#include <cstdint>
#include <vector>

#include "solver/linear_program.h"

namespace licm::solver {

struct MipOptions {
  double time_limit_seconds = 300.0;
  bool use_presolve = true;
  bool use_decomposition = true;
  bool use_lp_bound = true;
  /// Singleton-consistency probing at each component root.
  bool use_probing = true;
  /// Per-node probing of objective variables: tentatively fix each unfixed
  /// objective variable to its objective-preferred value and propagate; a
  /// refutation forces the other value, tightening the activity bound.
  /// This is the workhorse bound on permutation-coupled instances where
  /// the LP relaxation is uninformative.
  bool use_objective_probing = true;
  /// Node cap per connected component; exceeding it degrades the result to
  /// kTimeLimit with valid (objective, best_bound) interval.
  int64_t max_nodes_per_component = 4'000'000;
  /// Skip the LP bound for components larger than this many variables
  /// (dense tableau cost grows quadratically); propagation and probing
  /// bounds remain.
  size_t lp_bound_max_vars = 150;
  /// Worker threads for independent connected components (the paper's
  /// concluding remark that "parallelism ... may be required to scale").
  /// 1 = sequential.
  int num_threads = 1;
  double tol = 1e-6;
};

struct MipStats {
  int64_t nodes = 0;
  int64_t lp_solves = 0;
  size_t components = 0;
  size_t presolve_fixed_vars = 0;
  size_t presolve_removed_rows = 0;
  double solve_seconds = 0.0;
};

struct MipResult {
  SolveStatus status = SolveStatus::kInfeasible;
  /// Objective of the best feasible solution found (valid iff has_solution).
  double objective = 0.0;
  /// Proved bound on the true optimum: >= objective when maximizing,
  /// <= objective when minimizing. Equal to objective when kOptimal.
  double best_bound = 0.0;
  bool has_solution = false;
  /// Assignment in the input program's variable space (iff has_solution).
  std::vector<double> solution;
  MipStats stats;

  /// Absolute gap |best_bound - objective| (0 when optimal).
  double Gap() const {
    return has_solution ? (best_bound > objective ? best_bound - objective
                                                  : objective - best_bound)
                        : kInfinity;
  }
};

class MipSolver {
 public:
  explicit MipSolver(MipOptions options = {}) : options_(options) {}

  /// Solves `lp` to proven optimality (or the configured limits).
  MipResult Solve(const LinearProgram& lp, Sense sense) const;

  const MipOptions& options() const { return options_; }

 private:
  MipOptions options_;
};

}  // namespace licm::solver

#endif  // LICM_SOLVER_MIP_SOLVER_H_
