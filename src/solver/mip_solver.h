// Exact branch & bound solver for the binary integer programs LICM emits.
//
// Pipeline: presolve -> connected-component decomposition -> per-component
// depth-first branch & bound with activity bounds, bound propagation at
// every node, and optional LP-relaxation bounds from the simplex. Optima
// are *proved*, matching the paper's use of CPLEX; a time/node limit yields
// valid approximate bounds with a reported gap (the paper's Query-3
// behaviour on bipartite data).
#ifndef LICM_SOLVER_MIP_SOLVER_H_
#define LICM_SOLVER_MIP_SOLVER_H_

#include <cstdint>
#include <vector>

#include "common/stopwatch.h"
#include "solver/linear_program.h"

namespace licm::solver {

class ComponentCache;
class CutPool;
class IncumbentPool;
class Scheduler;

struct MipOptions {
  double time_limit_seconds = 300.0;
  bool use_presolve = true;
  bool use_decomposition = true;
  bool use_lp_bound = true;
  /// Consult a canonical-form solve cache per connected component (see
  /// solve_cache.h): isomorphic components — the common case under
  /// k-anonymization, where every group of size k emits the same
  /// sub-program up to variable renaming — are solved once and answered by
  /// permutation thereafter.
  bool use_cache = true;
  /// Cache shared across solver calls. When null and use_cache is set,
  /// each Solve/SolveMinMax call uses a private per-call cache, which
  /// still dedupes isomorphic components within the call.
  ComponentCache* cache = nullptr;
  /// Components with more variables than this bypass the cache: the cache
  /// targets the small per-group components k-anonymization emits by the
  /// thousand, while a query that couples everything into one big blob
  /// (e.g. through a join) produces a unique component whose fingerprint
  /// would cost more than it could ever save.
  size_t cache_max_component_vars = 512;
  /// Singleton-consistency probing at each component root.
  bool use_probing = true;
  /// Per-node probing of objective variables: tentatively fix each unfixed
  /// objective variable to its objective-preferred value and propagate; a
  /// refutation forces the other value, tightening the activity bound.
  /// This is the workhorse bound on permutation-coupled instances where
  /// the LP relaxation is uninformative.
  bool use_objective_probing = true;
  /// Node cap per connected component; exceeding it degrades the result to
  /// kTimeLimit with valid (objective, best_bound) interval.
  int64_t max_nodes_per_component = 4'000'000;
  /// Skip the LP bound for components larger than this many variables
  /// (dense tableau cost grows quadratically); propagation and probing
  /// bounds remain.
  size_t lp_bound_max_vars = 150;
  /// Incremental LP core (simplex.h IncrementalLp): each search strand
  /// keeps one warm bounded-variable dual-simplex state and re-solves a
  /// node's relaxation from the parent basis in a few pivots instead of a
  /// cold SolveLpRelaxation per node. Also the prerequisite for
  /// use_rc_fixing / use_cuts / use_pseudo_cost, which consume its duals
  /// and fractional vertices.
  bool use_warm_lp = true;
  /// Components up to this many variables use the warm LP even above
  /// lp_bound_max_vars (warm re-solves amortize the larger tableau).
  size_t warm_lp_max_vars = 400;
  /// Reduced-cost variable fixing: after an optimal node relaxation with
  /// an incumbent in hand, a nonbasic integer whose reduced cost proves
  /// every improving solution keeps it at its bound is fixed there for the
  /// subtree (and the fixing propagated). Undone on backtrack via the
  /// bound trail.
  bool use_rc_fixing = true;
  /// Cover/clique cuts separated from cardinality rows (cuts.h) at
  /// fractional relaxation vertices, kept per component and reused across
  /// isomorphic components via `cut_pool`.
  bool use_cuts = true;
  /// Cut rows a single component search may accumulate.
  int max_cuts_per_component = 32;
  /// Cross-call cut reuse keyed by canonical form (see solve_cache.h).
  /// Optional even when use_cuts is set; per-search separation still runs.
  CutPool* cut_pool = nullptr;
  /// Cross-call warm starts keyed by canonical form (see solve_cache.h):
  /// the best feasible point of every searched component is pooled, and a
  /// later solve of the same form seeds its search with the pooled point
  /// (after re-checking feasibility against the concrete program). This is
  /// how a versioned instance's re-solve skips the prologue of components
  /// the cache could not memoize — too large, or previously time-limited.
  IncumbentPool* incumbent_pool = nullptr;
  /// Pseudo-cost branching seeded by strong branching at the component
  /// root, replacing the most-fractional rule when relaxation data is
  /// available (falls back to the structural heuristic otherwise).
  bool use_pseudo_cost = true;
  /// Gap-aware root prologue: run one objective-guided dive first and skip
  /// the singleton-probing sweep and remaining dives whenever the
  /// incumbent already meets the root activity bound (checked between —
  /// and during — every prologue stage). On aggregate queries whose
  /// objective touches a few dozen variables of a huge coupled component,
  /// this removes the entire O(vars x probes) prologue from the critical
  /// path. Off reproduces the legacy fixed prologue (full probe sweep,
  /// then all dives). Bounds are identical either way; only the work done
  /// to reach them changes.
  bool use_adaptive_prologue = true;
  /// Fractional candidates probed by strong branching at the root.
  int strong_branch_candidates = 8;
  /// Worker threads shared by independent connected components and by
  /// intra-component subtree search (the paper's concluding remark that
  /// "parallelism ... may be required to scale"). 0 (the default)
  /// auto-detects from std::thread::hardware_concurrency(), capped at
  /// Scheduler::kMaxAutoThreads; 1 forces fully sequential solves.
  int num_threads = 0;
  /// Nodes a component search runs before it offers its oldest open
  /// subtrees to idle workers (see scheduler.h). Only consulted when the
  /// resolved thread count exceeds 1; small values exercise the split
  /// path in tests, larger ones keep trivial searches split-free.
  int64_t split_node_threshold = 10'000;
  /// Shared scheduler. When null, Solve/SolveMinMax size a private pool
  /// by `num_threads`; the MIN/MAX feasibility prober shares one pool
  /// across its whole probe sequence (like `cache`). The scheduler's own
  /// thread count governs when set.
  Scheduler* scheduler = nullptr;
  /// Shared absolute deadline. When set it overrides
  /// `time_limit_seconds`, letting a caller budget one wall-clock limit
  /// across many solver calls; all workers of a solve check this single
  /// deadline, so a timed-out parallel solve stops at one consistent
  /// point (sticky expiry, see common/stopwatch.h).
  const Deadline* deadline = nullptr;
  /// Nodes between "progress" telemetry events of one search strand
  /// (incumbent, best bound, gap, node count — the gap-vs-time curve per
  /// component). Only consulted while a trace session is recording
  /// (common/telemetry.h); small values are test/demo territory.
  int64_t trace_progress_nodes = 4096;
  double tol = 1e-6;
};

struct MipStats {
  int64_t nodes = 0;
  int64_t lp_solves = 0;
  size_t components = 0;
  size_t presolve_fixed_vars = 0;
  size_t presolve_removed_rows = 0;
  /// Pipeline invocations. SolveMinMax runs presolve and decomposition
  /// exactly once for both senses; callers assert on these to keep it so.
  int64_t presolve_calls = 0;
  int64_t decompose_calls = 0;
  /// Component-instance cache accounting: a hit is a component answered
  /// without a search (cache memo, or in-batch sharing with an isomorphic
  /// twin solved in the same call); a miss runs a branch & bound search.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// Canonical fingerprints computed (components routed through the cache).
  int64_t canonical_forms = 0;
  /// Intra-component parallelism: split events (a search donating open
  /// subtrees to the pool) and subtree tasks donated. Zero on sequential
  /// runs. Node counts of parallel runs are *not* run-order-independent
  /// (pruning depends on when workers share incumbents); bounds are.
  int64_t subtree_splits = 0;
  int64_t subtree_tasks = 0;
  /// Incremental LP core accounting: dual-simplex re-solves performed by
  /// warm strand states, total pivots across them, and the pivot count of
  /// the deepest single re-solve (MergeFrom keeps the max — the "how warm
  /// are the starts" metric).
  int64_t warm_lp_solves = 0;
  int64_t lp_pivots = 0;
  int64_t max_resolve_pivots = 0;
  /// Variables fixed by reduced-cost bounds across all nodes.
  int64_t rc_fixed_vars = 0;
  /// Cut rows separated by this solve / replayed from the cut pool.
  int64_t cuts_generated = 0;
  int64_t cuts_reused = 0;
  /// Component searches seeded with a feasible point from the incumbent
  /// pool (the point passed the pre-seed feasibility re-check).
  int64_t warm_incumbents = 0;
  /// Strong-branching probe solves at component roots.
  int64_t strong_branch_solves = 0;
  /// Resolved executor count of the solve (MergeFrom keeps the max).
  int num_threads = 0;
  /// Wall-clock seconds of the outermost solve. MergeFrom keeps the max
  /// (concurrent strands overlap in time); sequential aggregation — e.g.
  /// the MIN/MAX feasibility prober's probe sequence — must sum walls
  /// explicitly around the merge.
  double solve_seconds = 0.0;
  /// CPU seconds summed across search strands (MergeFrom adds). Equals
  /// solve_seconds on sequential runs; on parallel runs the ratio
  /// cpu_seconds / solve_seconds measures effective parallelism.
  double cpu_seconds = 0.0;

  /// Deterministic merge: every counter adds, independent of the order
  /// worker threads finished in (num_threads and solve_seconds keep the
  /// max). Used for per-thread and per-phase stats.
  void MergeFrom(const MipStats& other);
};

struct MipResult {
  SolveStatus status = SolveStatus::kInfeasible;
  /// Objective of the best feasible solution found (valid iff has_solution).
  double objective = 0.0;
  /// Proved bound on the true optimum: >= objective when maximizing,
  /// <= objective when minimizing. Equal to objective when kOptimal.
  double best_bound = 0.0;
  bool has_solution = false;
  /// Assignment in the input program's variable space (iff has_solution).
  std::vector<double> solution;
  MipStats stats;

  /// Absolute gap |best_bound - objective| (0 when optimal).
  double Gap() const {
    return has_solution ? (best_bound > objective ? best_bound - objective
                                                  : objective - best_bound)
                        : kInfinity;
  }
};

/// Both senses of one program, solved off a single presolve +
/// decomposition pass. `stats` covers the whole pass; the per-side stats
/// inside min/max are left zero because searches are shared across senses
/// (a feasibility-only component has the same canonical form in both).
struct MinMaxMipResult {
  MipResult min;
  MipResult max;
  MipStats stats;
};

class MipSolver {
 public:
  explicit MipSolver(MipOptions options = {}) : options_(options) {}

  /// Solves `lp` to proven optimality (or the configured limits).
  MipResult Solve(const LinearProgram& lp, Sense sense) const;

  /// Solves `lp` for both senses in one pass: presolve and decomposition
  /// run once, and every component (plus its negated-objective twin for
  /// the min side) goes through one shared batch of searches — one thread
  /// pool, one solve cache, isomorphic components deduplicated across
  /// senses.
  MinMaxMipResult SolveMinMax(const LinearProgram& lp) const;

  const MipOptions& options() const { return options_; }

 private:
  MipOptions options_;
};

}  // namespace licm::solver

#endif  // LICM_SOLVER_MIP_SOLVER_H_
