#include "solver/presolve.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/telemetry.h"
#include "solver/propagation.h"

namespace licm::solver {

namespace {
constexpr double kTol = 1e-7;

// Order-insensitive hash of a normalized row's LHS (terms + op, NOT rhs):
// rows with identical left sides but different right sides must collide so
// the dedup pass can merge them by tightening instead of keeping both.
size_t HashRow(const Row& r) {
  size_t h = static_cast<size_t>(r.op) * 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const Term& t : r.terms) {
    mix(t.var);
    mix(static_cast<uint64_t>(t.coef * 4096.0));
  }
  return h;
}

// Same op and identical (sorted) term list; rhs may differ.
bool SameLhs(const Row& a, const Row& b) {
  if (a.op != b.op) return false;
  if (a.terms.size() != b.terms.size()) return false;
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (a.terms[i].var != b.terms[i].var ||
        std::abs(a.terms[i].coef - b.terms[i].coef) > kTol)
      return false;
  }
  return true;
}
}  // namespace

std::vector<double> PresolveResult::Postsolve(
    const std::vector<double>& reduced_x) const {
  std::vector<double> x(orig_to_reduced.size(), 0.0);
  for (size_t v = 0; v < orig_to_reduced.size(); ++v) {
    if (orig_to_reduced[v] < 0) {
      x[v] = fixed_value[v];
    } else {
      x[v] = reduced_x[static_cast<size_t>(orig_to_reduced[v])];
    }
  }
  return x;
}

PresolveResult Presolve(const LinearProgram& lp) {
  LICM_TRACE_SPAN("solver", "presolve");
  PresolveResult out;
  const size_t n = lp.num_vars();
  out.orig_to_reduced.assign(n, -1);
  out.fixed_value.assign(n, 0.0);

  // 1. Propagate bounds globally; this both tightens and fixes variables.
  Domains dom = Domains::FromProgram(lp);
  if (Propagate(lp, &dom) == PropagateResult::kInfeasible) {
    out.infeasible = true;
    return out;
  }

  // 2. Decide which variables survive.
  std::vector<bool> fixed(n, false);
  for (size_t v = 0; v < n; ++v) {
    if (dom.upper[v] - dom.lower[v] <= kTol) {
      fixed[v] = true;
      out.fixed_value[v] =
          lp.vars()[v].is_integer ? std::round(dom.lower[v]) : dom.lower[v];
      ++out.stats.vars_fixed;
    }
  }
  for (size_t v = 0; v < n; ++v) {
    if (!fixed[v]) {
      const auto& def = lp.vars()[v];
      out.orig_to_reduced[v] = static_cast<int32_t>(
          out.reduced.AddVariable(dom.lower[v], dom.upper[v], def.is_integer,
                                  def.name));
    }
  }

  // 3. Rewrite rows: substitute fixed variables, drop satisfied rows,
  //    deduplicate the rest.
  std::unordered_multimap<size_t, size_t> seen;  // hash -> reduced row index
  for (const Row& row : lp.rows()) {
    Row nr;
    nr.op = row.op;
    nr.rhs = row.rhs;
    for (const Term& t : row.terms) {
      if (fixed[t.var]) {
        nr.rhs -= t.coef * out.fixed_value[t.var];
      } else {
        nr.terms.push_back(
            Term{static_cast<VarId>(out.orig_to_reduced[t.var]), t.coef});
      }
    }
    if (nr.terms.empty()) {
      // Fully substituted: verify and drop. Propagation already proved
      // feasibility, so a violation here is numerical; be strict anyway.
      bool ok = true;
      switch (nr.op) {
        case RowOp::kLe: ok = 0.0 <= nr.rhs + kTol; break;
        case RowOp::kGe: ok = 0.0 >= nr.rhs - kTol; break;
        case RowOp::kEq: ok = std::abs(nr.rhs) <= kTol; break;
      }
      if (!ok) {
        out.infeasible = true;
        return out;
      }
      ++out.stats.rows_removed;
      continue;
    }
    // Redundancy: row satisfied for every point in the (tightened) box.
    double min_act = 0.0, max_act = 0.0;
    for (const Term& t : nr.terms) {
      const double lo = out.reduced.vars()[t.var].lower;
      const double hi = out.reduced.vars()[t.var].upper;
      if (t.coef > 0) {
        min_act += t.coef * lo;
        max_act += t.coef * hi;
      } else {
        min_act += t.coef * hi;
        max_act += t.coef * lo;
      }
    }
    bool redundant = false;
    switch (nr.op) {
      case RowOp::kLe: redundant = max_act <= nr.rhs + kTol; break;
      case RowOp::kGe: redundant = min_act >= nr.rhs - kTol; break;
      case RowOp::kEq:
        redundant = std::abs(max_act - nr.rhs) <= kTol &&
                    std::abs(min_act - nr.rhs) <= kTol;
        break;
    }
    if (redundant) {
      ++out.stats.rows_removed;
      continue;
    }
    std::sort(nr.terms.begin(), nr.terms.end(),
              [](const Term& a, const Term& b) { return a.var < b.var; });
    const size_t h = HashRow(nr);
    bool merged = false;
    auto [it, end] = seen.equal_range(h);
    for (; it != end; ++it) {
      Row& prev = out.reduced.mutable_rows()[it->second];
      if (!SameLhs(prev, nr)) continue;
      merged = true;
      if (std::abs(prev.rhs - nr.rhs) <= kTol) {
        ++out.stats.duplicate_rows;
      } else if (nr.op == RowOp::kEq) {
        // ax = b1 and ax = b2 with b1 != b2: no point satisfies both.
        out.infeasible = true;
        return out;
      } else {
        // Same LHS, different rhs: keep the binding one.
        prev.rhs = nr.op == RowOp::kLe ? std::min(prev.rhs, nr.rhs)
                                       : std::max(prev.rhs, nr.rhs);
        ++out.stats.rows_tightened;
      }
      break;
    }
    if (merged) continue;
    seen.emplace(h, out.reduced.num_rows());
    out.reduced.AddRow(std::move(nr));
  }

  // 4. Objective: move fixed contributions into the constant.
  double constant = lp.objective_constant();
  for (size_t v = 0; v < n; ++v) {
    const double c = lp.objective_coef(static_cast<VarId>(v));
    if (c == 0.0) continue;
    if (fixed[v]) {
      constant += c * out.fixed_value[v];
    } else {
      out.reduced.SetObjectiveCoef(
          static_cast<VarId>(out.orig_to_reduced[v]), c);
    }
  }
  out.reduced.AddObjectiveConstant(constant);
  return out;
}

}  // namespace licm::solver
