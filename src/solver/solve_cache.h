// Memoization of proved component solves keyed by canonical form.
//
// The LICM pipeline re-solves thousands of isomorphic group components per
// aggregate query (and per MIN/MAX feasibility probe). ComponentCache maps
// a component's canonical form (canonical.h) to its proved solve result in
// canonical variable space, so every later isomorphic component is answered
// by a permutation instead of a branch & bound search. Only *proved*
// results (kOptimal / kInfeasible) are stored; time-limited results are
// never cached because their bounds depend on the limits in force.
//
// Thread-safe: MipSolver consults it from its component worker threads, and
// one cache can be shared across solver calls (both senses of a bound
// computation, or a whole sequence of MIN/MAX probes). Bounded by an LRU
// policy so long-running servers cannot grow it without limit.
#ifndef LICM_SOLVER_SOLVE_CACHE_H_
#define LICM_SOLVER_SOLVE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "solver/canonical.h"

namespace licm::solver {

/// Monotonic counters; read with Snapshot() while other threads insert.
struct ComponentCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserts = 0;
  int64_t evictions = 0;
  /// Hits on entries inserted before the latest BumpEpoch() call. When the
  /// owner bumps the epoch at each instance mutation commit, this counts
  /// proved results that survived a version change — the "entries keyed by
  /// canonical fingerprint stay valid across versions" claim, measured.
  int64_t cross_epoch_hits = 0;
};

class ComponentCache {
 public:
  /// A proved solve of a canonical component program (maximization sense).
  struct Entry {
    SolveStatus status = SolveStatus::kInfeasible;
    /// Optimal objective, including the program's constant (valid iff
    /// has_solution).
    double objective = 0.0;
    bool has_solution = false;
    /// Optimal assignment in canonical variable order.
    std::vector<double> solution;
  };

  explicit ComponentCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  ComponentCache(const ComponentCache&) = delete;
  ComponentCache& operator=(const ComponentCache&) = delete;

  /// Looks up `form`; on a hit copies the entry into `*out`, marks the
  /// entry most-recently-used, and returns true. Counts a hit or miss.
  bool Lookup(const CanonicalForm& form, Entry* out);

  /// Inserts (or refreshes) the entry for `form`, evicting the least
  /// recently used entry when at capacity. Returns false if an equal key
  /// was already present (another thread solved the same form first).
  bool Insert(const CanonicalForm& form, Entry entry);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  ComponentCacheStats Snapshot() const;
  void Clear();

  /// Starts a new epoch. Entries themselves are untouched — canonical keys
  /// are content hashes, so a mutation that changes a component changes its
  /// key and the stale entry simply stops being looked up. Hits on entries
  /// from earlier epochs are tallied as cross_epoch_hits.
  void BumpEpoch();
  uint64_t epoch() const;

  /// Drops every entry whose key is in `keys` (exact match). Returns the
  /// number of entries removed. Mutation commits use this to retire the
  /// touched components' fingerprints eagerly instead of waiting for LRU
  /// pressure.
  size_t EraseKeys(const std::vector<std::string>& keys);

  static constexpr size_t kDefaultCapacity = 1 << 16;

 private:
  struct Node {
    std::string key;
    Entry entry;
    uint64_t epoch = 0;  // epoch_ at insert time
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<std::string_view, std::list<Node>::iterator> index_;
  ComponentCacheStats stats_;
  uint64_t epoch_ = 0;
};

/// LRU pool of cardinality cuts (cuts.h) keyed by canonical form.
///
/// Unlike ComponentCache — which stores finished *answers* and short-cuts
/// the solve entirely — the cut pool stores *strengthenings*: globally
/// valid rows discovered while solving one component, replayed into the LP
/// of every later isomorphic component so its search starts with the
/// tighter relaxation instead of re-separating from scratch. Ownership is
/// deliberately separate from the cache: a time-limited solve may not be
/// cached, but its cuts are still valid and worth keeping.
///
/// Cuts are stored in canonical variable space and translated through the
/// component's CanonicalForm on both Store and Fetch. Thread-safe.
class CutPool {
 public:
  explicit CutPool(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  CutPool(const CutPool&) = delete;
  CutPool& operator=(const CutPool&) = delete;

  /// Returns the pooled cuts for `form` translated into input variable
  /// space (empty when unknown) and marks the entry most recently used.
  std::vector<Row> Fetch(const CanonicalForm& form);

  /// Stores `cuts` (input variable space) for `form`, replacing any
  /// previous entry and evicting the LRU entry when at capacity.
  void Store(const CanonicalForm& form, const std::vector<Row>& cuts);

  size_t size() const;
  int64_t hits() const;

  static constexpr size_t kDefaultCapacity = 1 << 14;

 private:
  struct Node {
    std::string key;
    std::vector<Row> cuts;  // canonical variable space
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Node> lru_;
  std::unordered_map<std::string_view, std::list<Node>::iterator> index_;
  int64_t hits_ = 0;
};

/// LRU pool of best-known *feasible* solutions keyed by canonical form.
///
/// Complements ComponentCache for the parts of a solve it cannot serve:
/// components above the cache size cap are never memoized, and
/// time-limited searches produce incumbents whose optimality was not
/// proved. Both still yield feasible points that remain valid whenever the
/// same canonical form is solved again — e.g. the untouched components of
/// a versioned instance after a mutation commit. MipSolver seeds
/// ComponentSearch with a pooled incumbent (after re-checking feasibility
/// against the concrete program, so a stale entry can never corrupt a
/// proof), which lets the root gap close immediately on re-solves.
///
/// Solutions are stored in canonical variable space and translated through
/// the component's CanonicalForm on Store and Fetch. Thread-safe.
class IncumbentPool {
 public:
  explicit IncumbentPool(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  IncumbentPool(const IncumbentPool&) = delete;
  IncumbentPool& operator=(const IncumbentPool&) = delete;

  /// On a hit, fills `*x` with the pooled solution translated into input
  /// variable space, marks the entry most recently used, and returns true.
  /// Callers must validate feasibility before trusting the point.
  bool Fetch(const CanonicalForm& form, std::vector<double>* x);

  /// Stores `x` (input variable space, objective value `objective`) for
  /// `form`. Keeps whichever of the old and new entry has the better
  /// (larger — solves are maximization-oriented) objective.
  void Store(const CanonicalForm& form, double objective,
             const std::vector<double>& x);

  size_t size() const;
  int64_t hits() const;

  static constexpr size_t kDefaultCapacity = 1 << 14;

 private:
  struct Node {
    std::string key;
    double objective = 0.0;
    std::vector<double> x;  // canonical variable space
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Node> lru_;
  std::unordered_map<std::string_view, std::list<Node>::iterator> index_;
  int64_t hits_ = 0;
};

}  // namespace licm::solver

#endif  // LICM_SOLVER_SOLVE_CACHE_H_
