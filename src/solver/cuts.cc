#include "solver/cuts.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace licm::solver {
namespace {

constexpr double kEps = 1e-9;

// One complemented term of a knapsack row: weight > 0, and the literal's
// LP value (1 - x when complemented).
struct Literal {
  VarId var;
  double weight;
  bool complemented;
  double value;
};

// De-complements sum_{L} l_j <= bound into input space: each complemented
// literal contributes (1 - x_j), shifting the rhs down by one and flipping
// the coefficient sign.
Row ToInputRow(const std::vector<const Literal*>& lits, int bound) {
  Row row;
  row.op = RowOp::kLe;
  row.rhs = bound;
  row.terms.reserve(lits.size());
  for (const Literal* l : lits) {
    if (l->complemented) {
      row.terms.push_back(Term{l->var, -1.0});
      row.rhs -= 1.0;
    } else {
      row.terms.push_back(Term{l->var, 1.0});
    }
  }
  std::sort(row.terms.begin(), row.terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  return row;
}

// Canonical key for deduplication: sorted (var, sign) pairs plus rhs.
std::vector<std::pair<int64_t, int>> CutKey(const Row& row) {
  std::vector<std::pair<int64_t, int>> key;
  key.reserve(row.terms.size() + 1);
  for (const Term& t : row.terms)
    key.emplace_back(static_cast<int64_t>(t.var), t.coef > 0 ? 1 : -1);
  key.emplace_back(static_cast<int64_t>(std::llround(row.rhs * 4.0)), 0);
  return key;
}

}  // namespace

std::vector<Row> GenerateCardinalityCuts(const LinearProgram& lp,
                                         const std::vector<double>& x,
                                         const CutOptions& opt) {
  struct Found {
    Row row;
    double violation;
  };
  std::vector<Found> found;
  std::vector<Literal> lits;

  // Expand each row into <=-form knapsacks: kLe as-is, kGe negated, kEq
  // both ways.
  struct Knap {
    const Row* row;
    double sign;  // +1 keeps the row, -1 negates it
  };
  std::vector<Knap> knaps;
  knaps.reserve(lp.num_rows() + 4);
  for (const Row& r : lp.rows()) {
    if (r.op != RowOp::kGe) knaps.push_back(Knap{&r, 1.0});
    if (r.op != RowOp::kLe) knaps.push_back(Knap{&r, -1.0});
  }

  for (const Knap& kn : knaps) {
    const Row& row = *kn.row;
    if (row.terms.size() < 3 || row.terms.size() > opt.max_row_terms) continue;

    // Complement to an all-positive knapsack over binaries.
    lits.clear();
    double rhs = kn.sign * row.rhs;
    double weight_sum = 0.0;
    bool ok = true;
    bool uniform = true;
    double first_w = 0.0;
    for (const Term& t : row.terms) {
      const auto& def = lp.vars()[t.var];
      if (!def.is_integer || def.lower < -kEps || def.upper > 1.0 + kEps) {
        ok = false;
        break;
      }
      const double a = kn.sign * t.coef;
      if (std::abs(a) < kEps) continue;
      Literal l;
      l.var = t.var;
      if (a > 0) {
        l.weight = a;
        l.complemented = false;
        l.value = x[t.var];
      } else {
        // a*x = |a|*y - |a| with y = 1 - x: weight |a|, rhs grows by |a|.
        l.weight = -a;
        l.complemented = true;
        l.value = 1.0 - x[t.var];
        rhs += -a;
      }
      if (lits.empty()) first_w = l.weight;
      else if (std::abs(l.weight - first_w) > kEps) uniform = false;
      weight_sum += l.weight;
      lits.push_back(l);
    }
    if (!ok || lits.size() < 3) continue;
    if (rhs < -kEps) continue;  // infeasible row; propagation's job
    if (weight_sum <= rhs + kEps) continue;  // no cover exists

    // --- Cover cut: greedily pick high-LP-value literals until the
    // weight budget is exceeded, then drop redundant members. Uniform
    // rows are skipped: they are cardinality bounds already and every
    // cover they yield is dominated by the row itself.
    if (!uniform) {
      std::vector<const Literal*> order;
      order.reserve(lits.size());
      for (const Literal& l : lits) order.push_back(&l);
      std::stable_sort(order.begin(), order.end(),
                       [](const Literal* a, const Literal* b) {
                         return a->value > b->value;
                       });
      std::vector<const Literal*> cover;
      double w = 0.0;
      for (const Literal* l : order) {
        cover.push_back(l);
        w += l->weight;
        if (w > rhs + kEps) break;
      }
      if (w > rhs + kEps) {
        // Minimalize: a member whose removal keeps w > rhs is redundant.
        for (size_t i = cover.size(); i-- > 0;) {
          if (w - cover[i]->weight > rhs + kEps) {
            w -= cover[i]->weight;
            cover.erase(cover.begin() + static_cast<long>(i));
          }
        }
        double val = 0.0;
        for (const Literal* l : cover) val += l->value;
        const double viol = val - (static_cast<double>(cover.size()) - 1.0);
        if (cover.size() >= 2 && viol >= opt.min_violation) {
          found.push_back(
              Found{ToInputRow(cover, static_cast<int>(cover.size()) - 1),
                    viol});
        }
      }
    }

    // --- Clique cut: literals heavier than half the budget are pairwise
    // exclusive.
    std::vector<const Literal*> clique;
    double val = 0.0;
    for (const Literal& l : lits) {
      if (l.weight > rhs / 2.0 + kEps) {
        clique.push_back(&l);
        val += l.value;
      }
    }
    if (clique.size() >= 3 && val - 1.0 >= opt.min_violation) {
      found.push_back(Found{ToInputRow(clique, 1), val - 1.0});
    }
  }

  std::stable_sort(found.begin(), found.end(),
                   [](const Found& a, const Found& b) {
                     return a.violation > b.violation;
                   });

  std::vector<Row> out;
  std::set<std::vector<std::pair<int64_t, int>>> seen;
  for (Found& c : found) {
    if (static_cast<int>(out.size()) >= opt.max_cuts) break;
    if (!seen.insert(CutKey(c.row)).second) continue;
    out.push_back(std::move(c.row));
  }
  return out;
}

}  // namespace licm::solver
