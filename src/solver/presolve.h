// Presolve: shrink a MIP before search.
//
// Mirrors the pre-solve stage the paper relies on in CPLEX: fixed-variable
// substitution, bound propagation, redundant-row and duplicate-row removal.
// Produces a reduced program plus the bookkeeping needed to map a reduced
// solution back to the original variable space.
#ifndef LICM_SOLVER_PRESOLVE_H_
#define LICM_SOLVER_PRESOLVE_H_

#include <vector>

#include "solver/linear_program.h"

namespace licm::solver {

struct PresolveResult {
  /// True when presolve proved the program infeasible outright.
  bool infeasible = false;

  LinearProgram reduced;

  /// orig var -> reduced var, or -1 when the variable was fixed.
  std::vector<int32_t> orig_to_reduced;
  /// Fixed value for variables with orig_to_reduced == -1.
  std::vector<double> fixed_value;

  struct Stats {
    size_t vars_fixed = 0;
    size_t rows_removed = 0;
    size_t duplicate_rows = 0;
    /// Same-LHS inequality pairs merged by keeping the tighter rhs.
    size_t rows_tightened = 0;
  } stats;

  /// Expands a solution of `reduced` into original variable space.
  std::vector<double> Postsolve(const std::vector<double>& reduced_x) const;
};

/// Runs presolve on `lp`. The reduced program's objective constant absorbs
/// contributions of fixed variables, so optimal objective values agree.
PresolveResult Presolve(const LinearProgram& lp);

}  // namespace licm::solver

#endif  // LICM_SOLVER_PRESOLVE_H_
