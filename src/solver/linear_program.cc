#include "solver/linear_program.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace licm::solver {

VarId AddedId(size_t n) { return static_cast<VarId>(n); }

VarId LinearProgram::AddVariable(double lower, double upper, bool is_integer,
                                 std::string name) {
  LICM_CHECK(lower <= upper);
  vars_.push_back(VariableDef{lower, upper, is_integer, std::move(name)});
  objective_.push_back(0.0);
  return AddedId(vars_.size() - 1);
}

void LinearProgram::AddRow(Row row) {
  // Merge duplicate variables within the row so downstream code can assume
  // each variable appears at most once per row.
  std::sort(row.terms.begin(), row.terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  merged.reserve(row.terms.size());
  for (const Term& t : row.terms) {
    LICM_CHECK(t.var < vars_.size());
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coef += t.coef;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const Term& t) { return t.coef == 0.0; });
  row.terms = std::move(merged);
  rows_.push_back(std::move(row));
}

void LinearProgram::SetObjectiveCoef(VarId var, double coef) {
  LICM_CHECK(var < vars_.size());
  objective_[var] = coef;
}

double LinearProgram::EvalObjective(const std::vector<double>& x) const {
  LICM_CHECK(x.size() >= vars_.size());
  double obj = objective_constant_;
  for (size_t v = 0; v < vars_.size(); ++v) obj += objective_[v] * x[v];
  return obj;
}

bool LinearProgram::IsFeasible(const std::vector<double>& x,
                               double tol) const {
  if (x.size() < vars_.size()) return false;
  for (size_t v = 0; v < vars_.size(); ++v) {
    if (x[v] < vars_[v].lower - tol || x[v] > vars_[v].upper + tol)
      return false;
    if (vars_[v].is_integer &&
        std::abs(x[v] - std::round(x[v])) > tol)
      return false;
  }
  for (const Row& r : rows_) {
    double lhs = 0.0;
    for (const Term& t : r.terms) lhs += t.coef * x[t.var];
    switch (r.op) {
      case RowOp::kLe:
        if (lhs > r.rhs + tol) return false;
        break;
      case RowOp::kGe:
        if (lhs < r.rhs - tol) return false;
        break;
      case RowOp::kEq:
        if (std::abs(lhs - r.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

Status LinearProgram::Validate() const {
  for (size_t v = 0; v < vars_.size(); ++v) {
    if (vars_[v].lower > vars_[v].upper) {
      return Status::InvalidArgument("variable " + std::to_string(v) +
                                     " has lower > upper");
    }
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (const Term& t : rows_[i].terms) {
      if (t.var >= vars_.size()) {
        return Status::InvalidArgument("row " + std::to_string(i) +
                                       " references unknown variable");
      }
      if (!std::isfinite(t.coef)) {
        return Status::InvalidArgument("row " + std::to_string(i) +
                                       " has non-finite coefficient");
      }
    }
    if (!std::isfinite(rows_[i].rhs)) {
      return Status::InvalidArgument("row " + std::to_string(i) +
                                     " has non-finite rhs");
    }
  }
  return Status::OK();
}

}  // namespace licm::solver
