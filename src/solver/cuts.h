// Cover and clique cuts from cardinality / knapsack rows.
//
// LICM programs are dominated by COUNT-between constraints: cardinality
// rows over a tuple group, AND/OR link rows with mixed-sign coefficients.
// Complementing negative-coefficient binaries (x -> 1 - x) turns any such
// row into an all-positive knapsack sum(a_j * l_j) <= b over literals, from
// which two classic families of valid inequalities follow:
//
//  * Cover cuts: a minimal literal set C with sum(a_j) > b cannot be all
//    ones, so sum_{C} l_j <= |C| - 1.
//  * Clique cuts: literals with a_j > b/2 are pairwise conflicting, so at
//    most one of them can be one.
//
// Cuts are separated at a fractional LP point (only violated cuts are
// returned) and de-complemented back into input variable space, so they
// are valid for the original program regardless of the current search
// node — which is what lets the per-component cut pool (solve_cache.h)
// reuse them across cache hits.
#ifndef LICM_SOLVER_CUTS_H_
#define LICM_SOLVER_CUTS_H_

#include <vector>

#include "solver/linear_program.h"

namespace licm::solver {

struct CutOptions {
  /// Cap on returned cuts per call (most violated first).
  int max_cuts = 32;
  /// Minimum violation at the separation point for a cut to be emitted.
  double min_violation = 1e-3;
  /// Rows with more terms than this are skipped (dense rows make weak
  /// covers and cost quadratic minimalization time).
  size_t max_row_terms = 128;
};

/// Separates violated cover and clique cuts for `lp` at the fractional
/// point `x` (indexed by VarId). Only rows whose variables are all binary
/// in `lp` participate. Returned rows are kLe over input variables and
/// globally valid for every integer-feasible point of `lp`.
std::vector<Row> GenerateCardinalityCuts(const LinearProgram& lp,
                                         const std::vector<double>& x,
                                         const CutOptions& options = {});

}  // namespace licm::solver

#endif  // LICM_SOLVER_CUTS_H_
