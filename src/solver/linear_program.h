// In-memory representation of a (mixed-integer) linear program.
//
// This is the interchange format between the LICM query layer (which emits
// binary integer programs whose objective is a sum of existence variables)
// and the solver stack (presolve -> decomposition -> simplex / branch &
// bound). Rows are stored sparsely; variables carry bounds and an
// integrality flag.
#ifndef LICM_SOLVER_LINEAR_PROGRAM_H_
#define LICM_SOLVER_LINEAR_PROGRAM_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace licm::solver {

using VarId = uint32_t;

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One `coef * var` term of a row or objective.
struct Term {
  VarId var;
  double coef;
  bool operator==(const Term&) const = default;
};

enum class RowOp { kLe, kGe, kEq };

/// A linear constraint: sum(terms) op rhs.
struct Row {
  std::vector<Term> terms;
  RowOp op = RowOp::kLe;
  double rhs = 0.0;
};

enum class Sense { kMaximize, kMinimize };

struct VariableDef {
  double lower = 0.0;
  double upper = kInfinity;
  bool is_integer = false;
  std::string name;  // optional; used by the LP-format writer
};

/// A linear program: variables with bounds, sparse rows, linear objective.
class LinearProgram {
 public:
  /// Adds a variable and returns its id. Binary variables use (0, 1, true).
  VarId AddVariable(double lower, double upper, bool is_integer,
                    std::string name = "");

  /// Convenience for binary {0,1} variables (the LICM case).
  VarId AddBinary(std::string name = "") {
    return AddVariable(0.0, 1.0, true, std::move(name));
  }

  /// Adds a constraint row. Terms with duplicate vars are merged.
  void AddRow(Row row);

  /// Sets the coefficient of `var` in the objective (replaces any previous).
  void SetObjectiveCoef(VarId var, double coef);

  /// Constant added to the objective value (from presolve substitutions).
  void AddObjectiveConstant(double c) { objective_constant_ += c; }

  size_t num_vars() const { return vars_.size(); }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<VariableDef>& vars() const { return vars_; }
  std::vector<VariableDef>& mutable_vars() { return vars_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  const std::vector<double>& objective() const { return objective_; }
  double objective_constant() const { return objective_constant_; }

  double objective_coef(VarId v) const {
    return v < objective_.size() ? objective_[v] : 0.0;
  }

  /// Objective value of a full assignment (including the constant).
  double EvalObjective(const std::vector<double>& x) const;

  /// True if `x` satisfies all rows and bounds within `tol`, and integer
  /// variables are integral within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Structural sanity checks (bounds ordered, var ids in range).
  Status Validate() const;

 private:
  std::vector<VariableDef> vars_;
  std::vector<Row> rows_;
  std::vector<double> objective_;  // dense, indexed by VarId
  double objective_constant_ = 0.0;
};

/// Result of an LP or MIP solve.
enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kTimeLimit };

struct LpSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // indexed by VarId; empty unless optimal
};

}  // namespace licm::solver

#endif  // LICM_SOLVER_LINEAR_PROGRAM_H_
