#include "solver/canonical.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace licm::solver {

namespace {

// splitmix64-style mixer; used to combine signature components.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Combine(uint64_t h, uint64_t v) { return Mix(h ^ Mix(v)); }

// Bit pattern of a double with -0.0 normalized to +0.0 so equal values hash
// equally.
uint64_t DoubleBits(double d) {
  if (d == 0.0) d = 0.0;
  return std::bit_cast<uint64_t>(d);
}

uint64_t HashBytes(const std::string& s) {
  // FNV-1a, then mixed; collisions only cost hash-bucket sharing — key
  // comparison is always on the full bytes.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix(h);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendDouble(std::string* out, double d) { AppendU64(out, DoubleBits(d)); }

// Dense re-ranking of arbitrary 64-bit colors, order defined by the color
// values themselves (so the result is independent of input variable order
// whenever the colors are).
void Densify(std::vector<uint64_t>* colors) {
  std::vector<uint64_t> sorted(*colors);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (uint64_t& c : *colors) {
    c = static_cast<uint64_t>(
        std::lower_bound(sorted.begin(), sorted.end(), c) - sorted.begin());
  }
}

size_t CountDistinct(const std::vector<uint64_t>& colors) {
  std::vector<uint64_t> sorted(colors);
  std::sort(sorted.begin(), sorted.end());
  return static_cast<size_t>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

// One refinement sweep: row signatures from variable colors, then variable
// colors from incident row signatures. One pass over the nonzeros in each
// direction (plus a per-variable sort of its incident signatures), so a
// sweep is O(nnz log deg) even on long cardinality rows.
void RefineOnce(const LinearProgram& lp,
                std::vector<std::vector<uint64_t>>* buckets,
                std::vector<uint64_t>* colors) {
  for (auto& b : *buckets) b.clear();
  for (const Row& row : lp.rows()) {
    uint64_t h = Combine(static_cast<uint64_t>(row.op), DoubleBits(row.rhs));
    std::vector<uint64_t> scratch;
    scratch.reserve(row.terms.size());
    for (const Term& t : row.terms) {
      scratch.push_back(Combine((*colors)[t.var], DoubleBits(t.coef)));
    }
    std::sort(scratch.begin(), scratch.end());
    for (uint64_t s : scratch) h = Combine(h, s);
    for (const Term& t : row.terms) {
      (*buckets)[t.var].push_back(Combine(h, DoubleBits(t.coef)));
    }
  }
  for (VarId v = 0; v < colors->size(); ++v) {
    std::vector<uint64_t>& b = (*buckets)[v];
    std::sort(b.begin(), b.end());
    uint64_t h = (*colors)[v];
    for (uint64_t s : b) h = Combine(h, s);
    (*colors)[v] = h;
  }
  Densify(colors);
}

void RefineToFixpoint(const LinearProgram& lp,
                      std::vector<std::vector<uint64_t>>* buckets,
                      std::vector<uint64_t>* colors) {
  size_t distinct = CountDistinct(*colors);
  for (size_t round = 0; round < lp.num_vars(); ++round) {
    RefineOnce(lp, buckets, colors);
    const size_t d = CountDistinct(*colors);
    if (d == distinct || d == lp.num_vars()) return;
    distinct = d;
  }
}

}  // namespace

CanonicalForm Canonicalize(const LinearProgram& lp) {
  const size_t n = lp.num_vars();
  CanonicalForm form;

  // Initial colors: everything that distinguishes a variable on its own.
  std::vector<uint64_t> colors(n);
  for (VarId v = 0; v < n; ++v) {
    const auto& def = lp.vars()[v];
    uint64_t h = DoubleBits(def.lower);
    h = Combine(h, DoubleBits(def.upper));
    h = Combine(h, def.is_integer ? 1 : 0);
    h = Combine(h, DoubleBits(lp.objective_coef(v)));
    colors[v] = h;
  }
  Densify(&colors);
  std::vector<std::vector<uint64_t>> buckets(n);
  RefineToFixpoint(lp, &buckets, &colors);

  // Canonical position = final color rank, ties broken by input id. Tied
  // variables are automorphic on the structures LICM emits, and the byte
  // serialization below is invariant under automorphic relabelings, so the
  // tie-break never costs a hit there. (Full individualization-refinement
  // would cost O(orbits) extra fixpoint passes — more than solving the
  // typical component — for hit-rate gains only on 1-WL-hard structure
  // that LICM never produces.)
  form.canon_to_input.resize(n);
  for (VarId v = 0; v < n; ++v) form.canon_to_input[v] = v;
  std::sort(form.canon_to_input.begin(), form.canon_to_input.end(),
            [&colors](VarId a, VarId b) {
              return colors[a] != colors[b] ? colors[a] < colors[b] : a < b;
            });
  std::vector<VarId> input_to_canon(n);
  for (size_t pos = 0; pos < n; ++pos) {
    input_to_canon[form.canon_to_input[pos]] = static_cast<VarId>(pos);
  }

  // Serialize the relabeled program. Rows are sorted so the form is
  // independent of row insertion order.
  std::string& key = form.key;
  key.reserve(16 + n * 33 + lp.num_rows() * 24);
  AppendU64(&key, n);
  AppendU64(&key, lp.num_rows());
  AppendDouble(&key, lp.objective_constant());
  for (size_t pos = 0; pos < n; ++pos) {
    const VarId v = form.canon_to_input[pos];
    const auto& def = lp.vars()[v];
    AppendDouble(&key, def.lower);
    AppendDouble(&key, def.upper);
    key.push_back(def.is_integer ? 1 : 0);
    AppendDouble(&key, lp.objective_coef(v));
  }
  std::vector<std::string> row_bytes;
  row_bytes.reserve(lp.num_rows());
  std::vector<std::pair<VarId, double>> terms;
  for (const Row& row : lp.rows()) {
    terms.clear();
    for (const Term& t : row.terms) {
      terms.emplace_back(input_to_canon[t.var], t.coef);
    }
    std::sort(terms.begin(), terms.end());
    std::string bytes;
    bytes.push_back(static_cast<char>(row.op));
    AppendDouble(&bytes, row.rhs);
    AppendU64(&bytes, terms.size());
    for (const auto& [var, coef] : terms) {
      AppendU64(&bytes, var);
      AppendDouble(&bytes, coef);
    }
    row_bytes.push_back(std::move(bytes));
  }
  std::sort(row_bytes.begin(), row_bytes.end());
  for (const std::string& bytes : row_bytes) key += bytes;

  form.hash = HashBytes(key);
  return form;
}

std::vector<double> CanonicalToInput(const CanonicalForm& form,
                                     const std::vector<double>& canonical_x) {
  std::vector<double> x(canonical_x.size());
  for (size_t pos = 0; pos < canonical_x.size(); ++pos) {
    x[form.canon_to_input[pos]] = canonical_x[pos];
  }
  return x;
}

std::vector<double> InputToCanonical(const CanonicalForm& form,
                                     const std::vector<double>& input_x) {
  std::vector<double> x(input_x.size());
  for (size_t pos = 0; pos < input_x.size(); ++pos) {
    x[pos] = input_x[form.canon_to_input[pos]];
  }
  return x;
}

}  // namespace licm::solver
