// Item generalization hierarchy (Figure 2(b)).
//
// Generalization-based anonymization replaces items (leaves) with internal
// nodes of a domain hierarchy; the LICM encoding expands a generalized item
// back into "one or more of the leaves under it". We build balanced
// fanout-F hierarchies over dense item ids, with leaves occupying
// contiguous ranges so leaf expansion is O(1) range lookup.
#ifndef LICM_ANONYMIZE_HIERARCHY_H_
#define LICM_ANONYMIZE_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace licm::anonymize {

/// Node ids: [0, num_leaves) are the items themselves; internal nodes
/// follow, with the root last.
using NodeId = uint32_t;

class Hierarchy {
 public:
  /// Builds a balanced hierarchy with the given fanout over `num_leaves`
  /// items. fanout >= 2.
  static Hierarchy BuildUniform(uint32_t num_leaves, uint32_t fanout);

  uint32_t num_leaves() const { return num_leaves_; }
  uint32_t num_nodes() const { return static_cast<uint32_t>(parent_.size()); }
  NodeId root() const { return num_nodes() - 1; }

  bool IsLeaf(NodeId n) const { return n < num_leaves_; }
  /// Parent of `n`; the root is its own parent.
  NodeId Parent(NodeId n) const { return parent_[n]; }
  const std::vector<NodeId>& Children(NodeId n) const { return children_[n]; }

  /// Number of leaves under `n` (1 for a leaf).
  uint32_t LeafCount(NodeId n) const {
    return leaf_end_[n] - leaf_begin_[n];
  }
  /// Leaves under `n` occupy the id range [LeafBegin(n), LeafEnd(n)).
  uint32_t LeafBegin(NodeId n) const { return leaf_begin_[n]; }
  uint32_t LeafEnd(NodeId n) const { return leaf_end_[n]; }

  /// True if `ancestor` is `n` or an ancestor of `n`.
  bool Covers(NodeId ancestor, NodeId n) const {
    return leaf_begin_[ancestor] <= leaf_begin_[n] &&
           leaf_end_[n] <= leaf_end_[ancestor];
  }

  /// Distance to the root (root has depth 0).
  uint32_t Depth(NodeId n) const { return depth_[n]; }

  /// Structural invariants (used by tests / failure injection).
  Status Validate() const;

 private:
  uint32_t num_leaves_ = 0;
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<uint32_t> leaf_begin_, leaf_end_;
  std::vector<uint32_t> depth_;
};

}  // namespace licm::anonymize

#endif  // LICM_ANONYMIZE_HIERARCHY_H_
