#include "anonymize/hierarchy.h"

#include <algorithm>

namespace licm::anonymize {

Hierarchy Hierarchy::BuildUniform(uint32_t num_leaves, uint32_t fanout) {
  LICM_CHECK(num_leaves >= 1);
  LICM_CHECK(fanout >= 2);
  Hierarchy h;
  h.num_leaves_ = num_leaves;

  // Level by level: leaves are nodes [0, num_leaves); each level groups
  // `fanout` consecutive nodes under a fresh parent until one node remains.
  std::vector<NodeId> level(num_leaves);
  for (uint32_t i = 0; i < num_leaves; ++i) level[i] = i;
  h.parent_.resize(num_leaves);
  h.children_.resize(num_leaves);
  h.leaf_begin_.resize(num_leaves);
  h.leaf_end_.resize(num_leaves);
  for (uint32_t i = 0; i < num_leaves; ++i) {
    h.leaf_begin_[i] = i;
    h.leaf_end_[i] = i + 1;
  }

  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i < level.size(); i += fanout) {
      const NodeId node = static_cast<NodeId>(h.parent_.size());
      h.parent_.push_back(node);  // provisional self-parent
      h.children_.emplace_back();
      const size_t end = std::min(i + fanout, level.size());
      for (size_t j = i; j < end; ++j) {
        h.parent_[level[j]] = node;
        h.children_[node].push_back(level[j]);
      }
      h.leaf_begin_.push_back(h.leaf_begin_[level[i]]);
      h.leaf_end_.push_back(h.leaf_end_[level[end - 1]]);
      next.push_back(node);
    }
    level = std::move(next);
  }
  h.parent_[level[0]] = level[0];  // root is its own parent

  // Depths via a sweep from the root (node ids are topologically ordered:
  // children < parent).
  h.depth_.assign(h.num_nodes(), 0);
  for (NodeId n = h.num_nodes(); n-- > 0;) {
    if (n != h.root()) h.depth_[n] = h.depth_[h.parent_[n]] + 1;
  }
  return h;
}

Status Hierarchy::Validate() const {
  if (num_leaves_ == 0 || parent_.empty()) {
    return Status::InvalidArgument("empty hierarchy");
  }
  if (parent_[root()] != root()) {
    return Status::Internal("root must be its own parent");
  }
  for (NodeId n = 0; n < num_nodes(); ++n) {
    if (n != root() && parent_[n] <= n) {
      return Status::Internal("parents must have larger ids than children");
    }
    if (IsLeaf(n)) {
      if (LeafCount(n) != 1) return Status::Internal("leaf range broken");
    } else {
      if (children_[n].empty()) {
        return Status::Internal("internal node without children");
      }
      uint32_t covered = 0;
      for (NodeId c : children_[n]) {
        if (!Covers(n, c)) return Status::Internal("child range escapes");
        covered += LeafCount(c);
      }
      if (covered != LeafCount(n)) {
        return Status::Internal("children do not partition leaf range");
      }
    }
  }
  return Status::OK();
}

}  // namespace licm::anonymize
