// LICM encodings of anonymized data (the paper's Appendix).
//
// Each encoder turns an anonymization output into (i) an LicmDatabase —
// relations with existence variables plus the linear constraints capturing
// the uncertainty — and (ii) a sampler::WorldStructure describing the same
// uncertainty for the Monte-Carlo baseline. The original dataset is always
// one of the possible worlds of the encoding (tested).
//
// Relation schemas:
//  - Generalization / suppression: trans_item(tid, loc, item, price).
//  - Bipartite grouping: trans_group(tid, loc, lnode),
//    graph(lnode, rnode), item_group(item, price, rnode); queries compose
//    them with joins (see BipartiteTransItemView).
#ifndef LICM_ANONYMIZE_LICM_ENCODE_H_
#define LICM_ANONYMIZE_LICM_ENCODE_H_

#include "anonymize/generalize.h"
#include "anonymize/grouping.h"
#include "anonymize/hierarchy.h"
#include "anonymize/suppress.h"
#include "licm/licm_relation.h"
#include "relational/query.h"
#include "sampler/structure.h"

namespace licm::anonymize {

struct EncodedDb {
  LicmDatabase db;
  sampler::WorldStructure structure;
  /// The assignment that reproduces the original (pre-anonymization) data:
  /// the anonymized description must always admit the truth as a world.
  std::vector<uint8_t> original_world;
};

/// Appendix A: each exact item becomes a certain tuple; each generalized
/// item becomes one maybe-tuple per covered leaf, with the constraint
/// b_1 + ... + b_k >= 1.
Result<EncodedDb> EncodeGeneralized(const GeneralizedDataset& anon,
                                    const Hierarchy& hierarchy,
                                    const data::TransactionDataset& original);

/// Appendix B: trans_group holds all (tid, lnode) pairs of each group with
/// row/column bijection constraints (likewise item_group); the graph
/// topology is certain. The true node assignment is the identity, so the
/// original data is a possible world.
Result<EncodedDb> EncodeBipartite(const BipartiteGroups& groups,
                                  const data::TransactionDataset& original);

/// Appendix C: surviving items are certain tuples; every transaction that
/// could contain suppressed items gets an unconstrained maybe-tuple per
/// globally suppressed item.
Result<EncodedDb> EncodeSuppressed(const SuppressedDataset& anon,
                                   const data::TransactionDataset& original);

/// Query subtree that reconstructs trans_item(tid, loc, item, price) from
/// the three bipartite relations:
///   project(join(join(trans_group, graph), item_group)).
/// `txn_predicates` / `item_predicates` are pushed below the joins (onto
/// trans_group / item_group) — the paper's point that LICM reuses ordinary
/// relational optimization.
rel::QueryNodePtr BipartiteTransItemView(
    std::vector<rel::Predicate> txn_predicates = {},
    std::vector<rel::Predicate> item_predicates = {});

}  // namespace licm::anonymize

#endif  // LICM_ANONYMIZE_LICM_ENCODE_H_
