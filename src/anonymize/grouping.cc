#include "anonymize/grouping.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace licm::anonymize {

namespace {

// Builds item -> transaction indices adjacency.
std::unordered_map<data::ItemId, std::vector<uint32_t>> ItemToTxns(
    const data::TransactionDataset& data) {
  std::unordered_map<data::ItemId, std::vector<uint32_t>> adj;
  for (uint32_t t = 0; t < data.transactions.size(); ++t) {
    for (data::ItemId i : data.transactions[t].items) adj[i].push_back(t);
  }
  return adj;
}

}  // namespace

Result<BipartiteGroups> SafeGrouping(const data::TransactionDataset& data,
                                     const GroupingConfig& config) {
  if (config.k < 1 || config.l < 1) {
    return Status::InvalidArgument("group sizes must be >= 1");
  }
  if (data.transactions.size() < config.k) {
    return Status::InvalidArgument("fewer than k transactions");
  }
  BipartiteGroups out;
  Rng rng(config.seed);

  // --- Transaction side: greedy first-fit; a group is safe for txn t when
  // no member shares an item with t (then any item group can touch the
  // txn group at most once through t).
  std::vector<uint32_t> txn_order(data.transactions.size());
  for (uint32_t i = 0; i < txn_order.size(); ++i) txn_order[i] = i;
  rng.Shuffle(&txn_order);

  std::vector<std::unordered_set<data::ItemId>> group_items;
  std::vector<size_t> open_txn_groups;  // indices of groups below size k
  for (uint32_t t : txn_order) {
    const auto& items = data.transactions[t].items;
    size_t target = out.txn_groups.size();
    for (size_t gi : open_txn_groups) {
      bool clash = false;
      for (data::ItemId i : items) clash |= group_items[gi].contains(i);
      if (!clash) {
        target = gi;
        break;
      }
    }
    if (target == out.txn_groups.size()) {
      out.txn_groups.emplace_back();
      group_items.emplace_back();
      open_txn_groups.push_back(target);
    }
    out.txn_groups[target].push_back(t);
    group_items[target].insert(items.begin(), items.end());
    if (out.txn_groups[target].size() >= config.k) {
      std::erase(open_txn_groups, target);
    }
  }
  // Fold undersized groups together until every group has >= k members
  // (merged groups may lose safety, which we count below). Merging two
  // undersized groups first preserves more of the safe structure than
  // dumping them into a full group.
  auto fold = [](std::vector<std::vector<uint32_t>>* groups, size_t min_size)
      -> Status {
    for (;;) {
      size_t small = groups->size();
      for (size_t g = 0; g < groups->size(); ++g) {
        if ((*groups)[g].size() < min_size &&
            (small == groups->size() ||
             (*groups)[g].size() < (*groups)[small].size())) {
          small = g;
        }
      }
      if (small == groups->size()) return Status::OK();
      if (groups->size() == 1) {
        return Status::Internal("too few elements to form one full group");
      }
      // Merge the smallest group into the next-smallest other group.
      size_t partner = groups->size();
      for (size_t g = 0; g < groups->size(); ++g) {
        if (g == small) continue;
        if (partner == groups->size() ||
            (*groups)[g].size() < (*groups)[partner].size()) {
          partner = g;
        }
      }
      auto& dst = (*groups)[partner];
      dst.insert(dst.end(), (*groups)[small].begin(), (*groups)[small].end());
      groups->erase(groups->begin() + small);
    }
  };
  LICM_RETURN_NOT_OK(fold(&out.txn_groups, config.k));
  group_items.clear();  // stale after folding; not needed below

  // --- Item side: same greedy over items that occur in the data.
  auto adj = ItemToTxns(data);
  std::vector<data::ItemId> items;
  items.reserve(adj.size());
  for (const auto& [i, txns] : adj) items.push_back(i);
  std::sort(items.begin(), items.end(),
            [&](data::ItemId a, data::ItemId b) {
              return adj[a].size() > adj[b].size();  // hardest first
            });
  std::vector<std::unordered_set<uint32_t>> group_txns;
  std::vector<size_t> open_item_groups;
  for (data::ItemId item : items) {
    const auto& txns = adj[item];
    size_t target = out.item_groups.size();
    for (size_t gi : open_item_groups) {
      bool clash = false;
      for (uint32_t t : txns) clash |= group_txns[gi].contains(t);
      if (!clash) {
        target = gi;
        break;
      }
    }
    if (target == out.item_groups.size()) {
      out.item_groups.emplace_back();
      group_txns.emplace_back();
      open_item_groups.push_back(target);
    }
    out.item_groups[target].push_back(item);
    group_txns[target].insert(txns.begin(), txns.end());
    if (out.item_groups[target].size() >= config.l) {
      std::erase(open_item_groups, target);
    }
  }
  {
    // Same folding pass on the item side; vector element types differ, so
    // reuse via a temporary index representation is not worth it.
    for (;;) {
      size_t small = out.item_groups.size();
      for (size_t g = 0; g < out.item_groups.size(); ++g) {
        if (out.item_groups[g].size() < config.l &&
            (small == out.item_groups.size() ||
             out.item_groups[g].size() < out.item_groups[small].size())) {
          small = g;
        }
      }
      if (small == out.item_groups.size()) break;
      if (out.item_groups.size() == 1) {
        return Status::Internal("too few items to form one full group");
      }
      size_t partner = out.item_groups.size();
      for (size_t g = 0; g < out.item_groups.size(); ++g) {
        if (g == small) continue;
        if (partner == out.item_groups.size() ||
            out.item_groups[g].size() < out.item_groups[partner].size()) {
          partner = g;
        }
      }
      auto& dst = out.item_groups[partner];
      dst.insert(dst.end(), out.item_groups[small].begin(),
                 out.item_groups[small].end());
      out.item_groups.erase(out.item_groups.begin() + small);
      group_txns.erase(group_txns.begin() + small);
    }
  }

  LICM_RETURN_NOT_OK(CheckGrouping(data, out, config.k, config.l,
                                   &out.safety_violations));
  return out;
}

Status CheckGrouping(const data::TransactionDataset& data,
                     const BipartiteGroups& groups, uint32_t k, uint32_t l,
                     size_t* violations_out) {
  // Coverage and sizes.
  std::unordered_map<uint32_t, size_t> txn_group_of;
  for (size_t g = 0; g < groups.txn_groups.size(); ++g) {
    if (groups.txn_groups[g].size() < k) {
      return Status::Internal("transaction group below k");
    }
    for (uint32_t t : groups.txn_groups[g]) {
      if (!txn_group_of.emplace(t, g).second) {
        return Status::Internal("transaction in two groups");
      }
    }
  }
  if (txn_group_of.size() != data.transactions.size()) {
    return Status::Internal("not all transactions grouped");
  }
  std::unordered_map<data::ItemId, size_t> item_group_of;
  for (size_t g = 0; g < groups.item_groups.size(); ++g) {
    if (groups.item_groups[g].size() < l) {
      return Status::Internal("item group below l");
    }
    for (data::ItemId i : groups.item_groups[g]) {
      if (!item_group_of.emplace(i, g).second) {
        return Status::Internal("item in two groups");
      }
    }
  }

  // Safety: count (member, opposite group) incidences > 1.
  size_t violations = 0;
  for (uint32_t t = 0; t < data.transactions.size(); ++t) {
    std::unordered_map<size_t, int> per_group;
    for (data::ItemId i : data.transactions[t].items) {
      auto it = item_group_of.find(i);
      if (it == item_group_of.end()) {
        return Status::Internal("item of a transaction is ungrouped");
      }
      if (++per_group[it->second] == 2) ++violations;
    }
  }
  auto adj = ItemToTxns(data);
  for (const auto& [item, gi] : item_group_of) {
    (void)gi;
    std::unordered_map<size_t, int> per_group;
    for (uint32_t t : adj[item]) {
      if (++per_group[txn_group_of[t]] == 2) ++violations;
    }
  }
  if (violations_out != nullptr) *violations_out = violations;
  return Status::OK();
}

}  // namespace licm::anonymize
