#include "anonymize/generalize.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace licm::anonymize {

namespace {

// Recodes one transaction's items through a global cut: leaf -> cut node,
// deduplicated (set semantics) and sorted.
std::vector<NodeId> RecodeThroughCut(const std::vector<data::ItemId>& items,
                                     const std::vector<NodeId>& cut_of_leaf) {
  std::vector<NodeId> nodes;
  nodes.reserve(items.size());
  for (data::ItemId it : items) nodes.push_back(cut_of_leaf[it]);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace

GeneralizedDataset::Stats GeneralizedDataset::ComputeStats(
    const Hierarchy& h) const {
  Stats s;
  for (const auto& t : transactions) {
    for (NodeId n : t.nodes) {
      if (h.IsLeaf(n)) {
        ++s.exact_items;
      } else {
        ++s.generalized_nodes;
        s.expansion += h.LeafCount(n) - 1;
      }
    }
  }
  return s;
}

Result<GeneralizedDataset> KmAnonymize(const data::TransactionDataset& data,
                                       const Hierarchy& hierarchy,
                                       const KmConfig& config) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (config.m < 1 || config.m > 2) {
    return Status::Unimplemented("k^m-anonymity supports m in {1, 2}");
  }
  if (hierarchy.num_leaves() < data.num_items) {
    return Status::InvalidArgument("hierarchy smaller than item domain");
  }
  if (data.transactions.size() < config.k) {
    return Status::InvalidArgument("fewer than k transactions");
  }

  // Global cut through the hierarchy: cut_of_leaf[i] = the node item i is
  // currently recoded to.
  std::vector<NodeId> cut_of_leaf(hierarchy.num_leaves());
  for (uint32_t i = 0; i < hierarchy.num_leaves(); ++i) cut_of_leaf[i] = i;

  // Lifts every leaf under Parent(node) to Parent(node), keeping the cut an
  // antichain.
  auto lift = [&](NodeId node) {
    const NodeId p = hierarchy.Parent(node);
    for (uint32_t l = hierarchy.LeafBegin(p); l < hierarchy.LeafEnd(p); ++l) {
      cut_of_leaf[l] = p;
    }
  };

  for (int round = 0;; ++round) {
    LICM_CHECK(round < 64);  // bounded by hierarchy depth
    // Recode all transactions through the current cut and count supports.
    std::vector<std::vector<NodeId>> recoded;
    recoded.reserve(data.transactions.size());
    std::unordered_map<NodeId, uint32_t> support;
    std::map<std::pair<NodeId, NodeId>, uint32_t> pair_support;
    for (const auto& t : data.transactions) {
      recoded.push_back(RecodeThroughCut(t.items, cut_of_leaf));
      const auto& nodes = recoded.back();
      for (NodeId n : nodes) ++support[n];
      if (config.m >= 2) {
        for (size_t i = 0; i < nodes.size(); ++i) {
          for (size_t j = i + 1; j < nodes.size(); ++j) {
            ++pair_support[{nodes[i], nodes[j]}];
          }
        }
      }
    }

    // Collect violating nodes (batch, then lift all at once: rounds are
    // bounded by the hierarchy depth instead of the node count).
    std::unordered_set<NodeId> to_lift;
    for (const auto& [n, sup] : support) {
      if (sup < config.k && n != hierarchy.root()) to_lift.insert(n);
    }
    if (config.m >= 2) {
      for (const auto& [pr, sup] : pair_support) {
        if (sup >= config.k) continue;
        // Lift the less-supported member of the pair (greedy; the original
        // algorithm searches recodings more carefully).
        const NodeId a = pr.first, b = pr.second;
        NodeId victim = support[a] <= support[b] ? a : b;
        if (victim == hierarchy.root()) victim = (victim == a) ? b : a;
        if (victim != hierarchy.root()) to_lift.insert(victim);
      }
    }
    if (to_lift.empty()) {
      GeneralizedDataset out;
      out.transactions.reserve(data.transactions.size());
      for (size_t i = 0; i < data.transactions.size(); ++i) {
        out.transactions.push_back({data.transactions[i].tid,
                                    data.transactions[i].location,
                                    std::move(recoded[i])});
      }
      return out;
    }
    for (NodeId n : to_lift) {
      // The node may already have been lifted past this level by another
      // victim sharing its parent; lifting is idempotent per parent.
      lift(n);
    }
  }
}

namespace {

// A partition cell during top-down local k-anonymization: members plus the
// common generalized representation (an antichain of hierarchy nodes) all
// of them currently share, and nodes we failed to specialize further.
struct KGroup {
  std::vector<const data::Transaction*> members;
  std::vector<NodeId> rep;           // sorted antichain
  std::unordered_set<NodeId> blocked;
};

// Signature of one member w.r.t. specializing `n` into its children: the
// sorted list of children the member has at least one item under.
std::vector<NodeId> Signature(const data::Transaction& t, NodeId n,
                              const Hierarchy& h) {
  std::vector<NodeId> sig;
  for (NodeId c : h.Children(n)) {
    for (data::ItemId item : t.items) {
      if (h.Covers(c, item)) {
        sig.push_back(c);
        break;
      }
    }
  }
  return sig;
}

}  // namespace

Result<GeneralizedDataset> KAnonymize(const data::TransactionDataset& data,
                                      const Hierarchy& hierarchy,
                                      const KAnonConfig& config) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (hierarchy.num_leaves() < data.num_items) {
    return Status::InvalidArgument("hierarchy smaller than item domain");
  }
  if (data.transactions.size() < config.k) {
    return Status::InvalidArgument("fewer than k transactions");
  }
  const size_t k = config.k;

  // Top-down local partitioning in the spirit of He & Naughton: start with
  // everyone generalized to the root; repeatedly specialize the most
  // general node of a group's representation, partitioning the group by
  // which children each member has items under. Splits that would strand
  // fewer than k members either steal members back from the largest part
  // (they keep the unspecialized representation: local recoding) or are
  // rolled back for that node.
  std::vector<KGroup> done;
  std::vector<KGroup> work;
  {
    KGroup root;
    for (const auto& t : data.transactions) root.members.push_back(&t);
    root.rep = {hierarchy.root()};
    work.push_back(std::move(root));
  }

  while (!work.empty()) {
    KGroup g = std::move(work.back());
    work.pop_back();

    // Most-general specializable node of the representation.
    NodeId pick = hierarchy.num_nodes();
    uint32_t best_leaves = 1;
    for (NodeId n : g.rep) {
      if (hierarchy.IsLeaf(n) || g.blocked.contains(n)) continue;
      if (hierarchy.LeafCount(n) > best_leaves) {
        best_leaves = hierarchy.LeafCount(n);
        pick = n;
      }
    }
    if (pick == hierarchy.num_nodes()) {
      done.push_back(std::move(g));
      continue;
    }

    // Partition members by signature.
    std::map<std::vector<NodeId>, std::vector<const data::Transaction*>>
        parts;
    for (const auto* t : g.members) {
      parts[Signature(*t, pick, hierarchy)].push_back(t);
    }

    std::vector<KGroup> split_off;
    KGroup leftover;
    leftover.rep = g.rep;
    leftover.blocked = g.blocked;
    leftover.blocked.insert(pick);
    for (auto& [sig, members] : parts) {
      if (members.size() >= k) {
        KGroup part;
        part.members = std::move(members);
        part.blocked = g.blocked;
        // rep \ {pick} ∪ sig, kept sorted.
        for (NodeId n : g.rep) {
          if (n != pick) part.rep.push_back(n);
        }
        part.rep.insert(part.rep.end(), sig.begin(), sig.end());
        std::sort(part.rep.begin(), part.rep.end());
        split_off.push_back(std::move(part));
      } else {
        leftover.members.insert(leftover.members.end(), members.begin(),
                                members.end());
      }
    }

    if (!leftover.members.empty() && leftover.members.size() < k) {
      // Steal from the largest split part while it stays >= k.
      auto largest = std::max_element(
          split_off.begin(), split_off.end(),
          [](const KGroup& a, const KGroup& b) {
            return a.members.size() < b.members.size();
          });
      const size_t need = k - leftover.members.size();
      if (largest != split_off.end() &&
          largest->members.size() >= k + need) {
        for (size_t i = 0; i < need; ++i) {
          leftover.members.push_back(largest->members.back());
          largest->members.pop_back();
        }
      } else {
        // Cannot repair: roll this specialization back and block the node.
        g.blocked.insert(pick);
        work.push_back(std::move(g));
        continue;
      }
    }

    if (split_off.empty()) {
      // No part reached size k: the node is unsplittable for this group.
      work.push_back(std::move(leftover));
      continue;
    }
    for (KGroup& part : split_off) work.push_back(std::move(part));
    if (!leftover.members.empty()) work.push_back(std::move(leftover));
  }

  GeneralizedDataset out;
  out.transactions.reserve(data.transactions.size());
  for (const KGroup& g : done) {
    for (const auto* t : g.members) {
      out.transactions.push_back({t->tid, t->location, g.rep});
    }
  }
  return out;
}

Status CheckKmAnonymity(const GeneralizedDataset& out, uint32_t k,
                        uint32_t m) {
  std::unordered_map<NodeId, uint32_t> support;
  std::map<std::pair<NodeId, NodeId>, uint32_t> pair_support;
  for (const auto& t : out.transactions) {
    for (NodeId a : t.nodes) ++support[a];
    if (m >= 2) {
      for (size_t i = 0; i < t.nodes.size(); ++i) {
        for (size_t j = i + 1; j < t.nodes.size(); ++j) {
          ++pair_support[{t.nodes[i], t.nodes[j]}];
        }
      }
    }
  }
  for (const auto& [node, sup] : support) {
    if (sup < k) {
      return Status::Internal("node " + std::to_string(node) +
                              " has support " + std::to_string(sup));
    }
  }
  for (const auto& [pr, sup] : pair_support) {
    if (sup < k) {
      return Status::Internal("pair support " + std::to_string(sup) +
                              " below k");
    }
  }
  return Status::OK();
}

Status CheckKAnonymity(const GeneralizedDataset& out, uint32_t k) {
  std::map<std::vector<NodeId>, uint32_t> counts;
  for (const auto& t : out.transactions) ++counts[t.nodes];
  for (const auto& [nodes, c] : counts) {
    if (c < k) {
      return Status::Internal("an output transaction has only " +
                              std::to_string(c) + " duplicates");
    }
  }
  return Status::OK();
}

Status CheckRecodingValid(const data::TransactionDataset& original,
                          const GeneralizedDataset& out,
                          const Hierarchy& hierarchy) {
  if (original.transactions.size() != out.transactions.size()) {
    return Status::Internal("transaction count changed");
  }
  std::unordered_map<int64_t, const data::Transaction*> by_tid;
  for (const auto& t : original.transactions) by_tid[t.tid] = &t;
  for (const auto& t : out.transactions) {
    // Antichain check.
    for (size_t i = 0; i < t.nodes.size(); ++i) {
      for (size_t j = 0; j < t.nodes.size(); ++j) {
        if (i != j && hierarchy.Covers(t.nodes[i], t.nodes[j])) {
          return Status::Internal("output nodes overlap");
        }
      }
    }
    auto it = by_tid.find(t.tid);
    if (it == by_tid.end()) return Status::Internal("unknown tid in output");
    // Every original item is covered by exactly one output node (antichain
    // => at most one; coverage => at least one).
    for (data::ItemId item : it->second->items) {
      bool covered = false;
      for (NodeId n : t.nodes) covered |= hierarchy.Covers(n, item);
      if (!covered) {
        return Status::Internal("item " + std::to_string(item) +
                                " of tid " + std::to_string(t.tid) +
                                " not covered");
      }
    }
  }
  return Status::OK();
}

}  // namespace licm::anonymize
