// Suppression-based anonymization (Appendix C; Xu et al., KDD'08).
//
// Suppression removes items from transactions outright — the extreme form
// of generalization. We implement the global variant used for
// (h,k,p)-coherence-style guarantees: items whose support falls below k are
// suppressed from every transaction. After global suppression, a
// transaction that lost items "could have contained any subset of the
// suppressed vocabulary", which is what the LICM encoding captures.
#ifndef LICM_ANONYMIZE_SUPPRESS_H_
#define LICM_ANONYMIZE_SUPPRESS_H_

#include "data/transactions.h"

namespace licm::anonymize {

struct SuppressedDataset {
  /// Transactions with suppressed items removed (tids/locations kept).
  std::vector<data::Transaction> transactions;
  /// Globally suppressed items, ascending.
  std::vector<data::ItemId> suppressed_items;
};

struct SuppressConfig {
  /// Items with support < k are suppressed (global recoding: everywhere).
  uint32_t k = 2;
};

Result<SuppressedDataset> SuppressRareItems(
    const data::TransactionDataset& data, const SuppressConfig& config);

/// Verifies that every remaining item has support >= k and that no
/// suppressed item survives anywhere.
Status CheckSuppression(const SuppressedDataset& out, uint32_t k);

}  // namespace licm::anonymize

#endif  // LICM_ANONYMIZE_SUPPRESS_H_
