// Generalization-based anonymization of set-valued data (Appendix A).
//
// Two schemes from the paper's evaluation:
//  - k^m-anonymity [Terrovitis et al., VLDB'08]: *global* recoding — if a
//    generalized node is used, every descendant item is replaced by it in
//    every transaction; every m-subset of an output transaction must appear
//    in at least k transactions.
//  - k-anonymity for itemsets [He & Naughton, VLDB'09]: *local* recoding —
//    transactions are grouped and each group is generalized to a single
//    common representation, so each output transaction has at least k-1
//    exact duplicates.
//
// Both are reimplemented from their published definitions (the paper used
// the original authors' code, which is not redistributable): the recoding
// machinery is faithful; the search for a minimal recoding is greedy, which
// affects utility, not the structure of the uncertainty LICM encodes.
#ifndef LICM_ANONYMIZE_GENERALIZE_H_
#define LICM_ANONYMIZE_GENERALIZE_H_

#include "anonymize/hierarchy.h"
#include "data/transactions.h"

namespace licm::anonymize {

/// One anonymized transaction: an antichain of hierarchy nodes (leaves are
/// exact items, internal nodes are generalized items).
struct GeneralizedTransaction {
  int64_t tid = 0;
  int64_t location = 0;
  std::vector<NodeId> nodes;  // sorted, pairwise non-overlapping
};

struct GeneralizedDataset {
  std::vector<GeneralizedTransaction> transactions;

  struct Stats {
    size_t generalized_nodes = 0;  // output entries that are internal nodes
    size_t exact_items = 0;        // output entries that are leaves
    /// Sum over generalized entries of (leaf count - 1): how many extra
    /// possibilities the anonymization introduced (the LICM blowup).
    size_t expansion = 0;
  };
  Stats ComputeStats(const Hierarchy& h) const;
};

struct KmConfig {
  uint32_t k = 2;
  uint32_t m = 2;  // subset size to protect; m in {1, 2} supported
};

/// Global-recoding k^m-anonymization: repeatedly lifts under-supported
/// nodes (and members of under-supported pairs when m == 2) to their
/// parents until every m-subset of every output transaction occurs in at
/// least k transactions.
Result<GeneralizedDataset> KmAnonymize(const data::TransactionDataset& data,
                                       const Hierarchy& hierarchy,
                                       const KmConfig& config);

struct KAnonConfig {
  uint32_t k = 2;
};

/// Local-recoding k-anonymization: transactions are sorted by itemset,
/// chunked into groups of >= k, and each group is generalized to the
/// lowest common antichain all members share. Every output transaction is
/// identical to its >= k-1 group mates.
Result<GeneralizedDataset> KAnonymize(const data::TransactionDataset& data,
                                      const Hierarchy& hierarchy,
                                      const KAnonConfig& config);

/// Verifies the k^m guarantee on an anonymized dataset (m in {1,2}):
/// every node (and node pair when m >= 2) appearing in a transaction
/// appears in >= k transactions. Used by tests.
Status CheckKmAnonymity(const GeneralizedDataset& out, uint32_t k,
                        uint32_t m);

/// Verifies the k-anonymity guarantee: every output transaction's node set
/// is shared by >= k transactions. Used by tests.
Status CheckKAnonymity(const GeneralizedDataset& out, uint32_t k);

/// Checks the antichain invariant of every transaction and that each
/// original item is covered by exactly one output node of its transaction.
Status CheckRecodingValid(const data::TransactionDataset& original,
                          const GeneralizedDataset& out,
                          const Hierarchy& hierarchy);

}  // namespace licm::anonymize

#endif  // LICM_ANONYMIZE_GENERALIZE_H_
