#include "anonymize/suppress.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace licm::anonymize {

Result<SuppressedDataset> SuppressRareItems(
    const data::TransactionDataset& data, const SuppressConfig& config) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  std::unordered_map<data::ItemId, uint32_t> support;
  for (const auto& t : data.transactions) {
    for (data::ItemId i : t.items) ++support[i];
  }
  std::unordered_set<data::ItemId> suppressed;
  for (const auto& [item, sup] : support) {
    if (sup < config.k) suppressed.insert(item);
  }
  SuppressedDataset out;
  out.transactions.reserve(data.transactions.size());
  for (const auto& t : data.transactions) {
    data::Transaction nt{t.tid, t.location, {}};
    for (data::ItemId i : t.items) {
      if (!suppressed.contains(i)) nt.items.push_back(i);
    }
    out.transactions.push_back(std::move(nt));
  }
  out.suppressed_items.assign(suppressed.begin(), suppressed.end());
  std::sort(out.suppressed_items.begin(), out.suppressed_items.end());
  return out;
}

Status CheckSuppression(const SuppressedDataset& out, uint32_t k) {
  std::unordered_set<data::ItemId> suppressed(out.suppressed_items.begin(),
                                              out.suppressed_items.end());
  std::unordered_map<data::ItemId, uint32_t> support;
  for (const auto& t : out.transactions) {
    for (data::ItemId i : t.items) {
      if (suppressed.contains(i)) {
        return Status::Internal("suppressed item survives in output");
      }
      ++support[i];
    }
  }
  for (const auto& [item, sup] : support) {
    if (sup < k) {
      return Status::Internal("remaining item " + std::to_string(item) +
                              " has support " + std::to_string(sup));
    }
  }
  return Status::OK();
}

}  // namespace licm::anonymize
