// Permutation-based anonymization: bipartite safe (k, l)-grouping
// (Appendix B; Cormode et al., VLDB'08).
//
// The transaction-item bipartite graph is published exactly, but the
// mapping from transactions (items) to their graph nodes is hidden inside
// groups of size >= k (>= l): within each group only "some bijection"
// is known. A grouping is *safe* when any two members of a group share no
// neighbor group, which defeats density-based re-identification.
#ifndef LICM_ANONYMIZE_GROUPING_H_
#define LICM_ANONYMIZE_GROUPING_H_

#include "common/rng.h"
#include "data/transactions.h"

namespace licm::anonymize {

struct BipartiteGroups {
  /// Groups of transaction indices into `dataset.transactions`.
  std::vector<std::vector<uint32_t>> txn_groups;
  /// Groups of item ids.
  std::vector<std::vector<data::ItemId>> item_groups;
  /// Pairs whose grouping violates safety because no safe slot existed
  /// (the greedy algorithm places them anyway and reports).
  size_t safety_violations = 0;
};

struct GroupingConfig {
  uint32_t k = 2;  // minimum transaction-group size
  uint32_t l = 2;  // minimum item-group size
  uint64_t seed = 7;
};

/// Greedy first-fit safe grouping. Only items that occur in at least one
/// transaction are grouped (absent items carry no uncertainty).
Result<BipartiteGroups> SafeGrouping(const data::TransactionDataset& data,
                                     const GroupingConfig& config);

/// Verifies group sizes and counts safety violations (two members of one
/// group adjacent to the same opposite-side group).
Status CheckGrouping(const data::TransactionDataset& data,
                     const BipartiteGroups& groups, uint32_t k, uint32_t l,
                     size_t* violations_out = nullptr);

}  // namespace licm::anonymize

#endif  // LICM_ANONYMIZE_GROUPING_H_
