#include "anonymize/licm_encode.h"

#include <algorithm>
#include <unordered_map>

#include "common/telemetry.h"
#include "data/transactions.h"

namespace licm::anonymize {

namespace {

rel::Schema TransGroupSchema() {
  return rel::Schema({{"tid", rel::ValueType::kInt},
                      {"loc", rel::ValueType::kInt},
                      {"lnode", rel::ValueType::kInt}});
}
rel::Schema GraphSchema() {
  return rel::Schema(
      {{"lnode", rel::ValueType::kInt}, {"rnode", rel::ValueType::kInt}});
}
rel::Schema ItemGroupSchema() {
  return rel::Schema({{"item", rel::ValueType::kInt},
                      {"price", rel::ValueType::kInt},
                      {"rnode", rel::ValueType::kInt}});
}

}  // namespace

namespace {
// tid -> item set of the original data, for original-world reconstruction.
std::unordered_map<int64_t, const data::Transaction*> ByTid(
    const data::TransactionDataset& original) {
  std::unordered_map<int64_t, const data::Transaction*> m;
  for (const auto& t : original.transactions) m[t.tid] = &t;
  return m;
}

bool HasItem(const data::Transaction* t, data::ItemId item) {
  if (t == nullptr) return false;
  return std::find(t->items.begin(), t->items.end(), item) != t->items.end();
}
}  // namespace

Result<EncodedDb> EncodeGeneralized(
    const GeneralizedDataset& anon, const Hierarchy& hierarchy,
    const data::TransactionDataset& original) {
  LICM_TRACE_SPAN("anonymize", "encode");
  EncodedDb out;
  auto by_tid = ByTid(original);
  LicmRelation r(data::TransItemSchema());
  for (const auto& t : anon.transactions) {
    const data::Transaction* orig =
        by_tid.contains(t.tid) ? by_tid.at(t.tid) : nullptr;
    for (NodeId n : t.nodes) {
      if (hierarchy.IsLeaf(n)) {
        if (n >= original.price.size()) {
          return Status::InvalidArgument("leaf outside item domain");
        }
        r.AppendUnchecked({t.tid, t.location, static_cast<int64_t>(n),
                           original.price[n]},
                          Ext::Certain());
      } else {
        sampler::CardinalityBlock block;
        for (uint32_t leaf = hierarchy.LeafBegin(n);
             leaf < hierarchy.LeafEnd(n); ++leaf) {
          if (leaf >= original.price.size()) {
            return Status::InvalidArgument(
                "generalized node covers leaves outside the item domain");
          }
          const BVar b = out.db.pool().New();
          block.vars.push_back(b);
          out.original_world.push_back(HasItem(orig, leaf) ? 1 : 0);
          r.AppendUnchecked({t.tid, t.location, static_cast<int64_t>(leaf),
                             original.price[leaf]},
                            Ext::Maybe(b));
        }
        // "at least one of the covered items was present".
        out.db.constraints().AddCardinality(
            block.vars, 1, static_cast<int64_t>(block.vars.size()));
        block.z1 = 1;
        block.z2 = -1;
        out.structure.cardinality_blocks.push_back(std::move(block));
      }
    }
  }
  out.structure.num_vars = out.db.pool().size();
  LICM_RETURN_NOT_OK(out.db.AddRelation("trans_item", std::move(r)));
  LICM_RETURN_NOT_OK(out.structure.Validate());
  return out;
}

Result<EncodedDb> EncodeBipartite(const BipartiteGroups& groups,
                                  const data::TransactionDataset& original) {
  LICM_TRACE_SPAN("anonymize", "encode");
  EncodedDb out;

  // The published graph: lnode = transaction index, rnode = item id (both
  // opaque labels; the hidden part is which tid/item owns which node).
  rel::Relation graph(GraphSchema());
  for (uint32_t t = 0; t < original.transactions.size(); ++t) {
    for (data::ItemId i : original.transactions[t].items) {
      graph.AppendUnchecked(
          {static_cast<int64_t>(t), static_cast<int64_t>(i)});
    }
  }
  {
    LicmRelation g(GraphSchema());
    for (const auto& row : graph.rows()) {
      g.AppendUnchecked(row, Ext::Certain());
    }
    LICM_RETURN_NOT_OK(out.db.AddRelation("graph", std::move(g)));
  }

  // trans_group: all (tid_i, lnode_j) pairs of each group, bijection
  // constrained. Row-major (i over tids, j over nodes); identity = truth.
  LicmRelation tg(TransGroupSchema());
  for (const auto& group : groups.txn_groups) {
    const uint32_t k = static_cast<uint32_t>(group.size());
    sampler::PermutationBlock block;
    block.k = k;
    block.vars.resize(static_cast<size_t>(k) * k);
    std::vector<std::vector<BVar>> b(k, std::vector<BVar>(k));
    for (uint32_t i = 0; i < k; ++i) {
      const auto& txn = original.transactions[group[i]];
      for (uint32_t j = 0; j < k; ++j) {
        b[i][j] = out.db.pool().New();
        block.vars[static_cast<size_t>(i) * k + j] = b[i][j];
        out.original_world.push_back(i == j ? 1 : 0);  // truth = identity
        tg.AppendUnchecked(
            {txn.tid, txn.location, static_cast<int64_t>(group[j])},
            Ext::Maybe(b[i][j]));
      }
    }
    for (uint32_t i = 0; i < k; ++i) {
      std::vector<BVar> row(k), col(k);
      for (uint32_t j = 0; j < k; ++j) {
        row[j] = b[i][j];
        col[j] = b[j][i];
      }
      out.db.constraints().AddCardinality(row, 1, 1);
      out.db.constraints().AddCardinality(col, 1, 1);
    }
    out.structure.permutation_blocks.push_back(std::move(block));
  }
  LICM_RETURN_NOT_OK(out.db.AddRelation("trans_group", std::move(tg)));

  // item_group: same construction on the item side.
  LicmRelation ig(ItemGroupSchema());
  for (const auto& group : groups.item_groups) {
    const uint32_t l = static_cast<uint32_t>(group.size());
    sampler::PermutationBlock block;
    block.k = l;
    block.vars.resize(static_cast<size_t>(l) * l);
    std::vector<std::vector<BVar>> b(l, std::vector<BVar>(l));
    for (uint32_t i = 0; i < l; ++i) {
      const data::ItemId item = group[i];
      if (item >= original.price.size()) {
        return Status::InvalidArgument("grouped item outside domain");
      }
      for (uint32_t j = 0; j < l; ++j) {
        b[i][j] = out.db.pool().New();
        block.vars[static_cast<size_t>(i) * l + j] = b[i][j];
        out.original_world.push_back(i == j ? 1 : 0);
        ig.AppendUnchecked({static_cast<int64_t>(item),
                            original.price[item],
                            static_cast<int64_t>(group[j])},
                           Ext::Maybe(b[i][j]));
      }
    }
    for (uint32_t i = 0; i < l; ++i) {
      std::vector<BVar> row(l), col(l);
      for (uint32_t j = 0; j < l; ++j) {
        row[j] = b[i][j];
        col[j] = b[j][i];
      }
      out.db.constraints().AddCardinality(row, 1, 1);
      out.db.constraints().AddCardinality(col, 1, 1);
    }
    out.structure.permutation_blocks.push_back(std::move(block));
  }
  LICM_RETURN_NOT_OK(out.db.AddRelation("item_group", std::move(ig)));

  out.structure.num_vars = out.db.pool().size();
  LICM_RETURN_NOT_OK(out.structure.Validate());
  return out;
}

Result<EncodedDb> EncodeSuppressed(const SuppressedDataset& anon,
                                   const data::TransactionDataset& original) {
  LICM_TRACE_SPAN("anonymize", "encode");
  EncodedDb out;
  auto by_tid = ByTid(original);
  LicmRelation r(data::TransItemSchema());
  for (const auto& t : anon.transactions) {
    const data::Transaction* orig =
        by_tid.contains(t.tid) ? by_tid.at(t.tid) : nullptr;
    for (data::ItemId i : t.items) {
      if (i >= original.price.size()) {
        return Status::InvalidArgument("item outside domain");
      }
      r.AppendUnchecked(
          {t.tid, t.location, static_cast<int64_t>(i), original.price[i]},
          Ext::Certain());
    }
    // Appendix C: any transaction could contain any globally suppressed
    // item; the variables are unconstrained.
    for (data::ItemId i : anon.suppressed_items) {
      const BVar b = out.db.pool().New();
      out.original_world.push_back(HasItem(orig, i) ? 1 : 0);
      r.AppendUnchecked(
          {t.tid, t.location, static_cast<int64_t>(i), original.price[i]},
          Ext::Maybe(b));
    }
  }
  out.structure.num_vars = out.db.pool().size();
  LICM_RETURN_NOT_OK(out.db.AddRelation("trans_item", std::move(r)));
  return out;
}

rel::QueryNodePtr BipartiteTransItemView(
    std::vector<rel::Predicate> txn_predicates,
    std::vector<rel::Predicate> item_predicates) {
  rel::QueryNodePtr tg = rel::Scan("trans_group");
  if (!txn_predicates.empty()) {
    tg = rel::Select(tg, std::move(txn_predicates));
  }
  rel::QueryNodePtr ig = rel::Scan("item_group");
  if (!item_predicates.empty()) {
    ig = rel::Select(ig, std::move(item_predicates));
  }
  auto joined = rel::Join(rel::Join(tg, rel::Scan("graph"),
                                    {{"lnode", "lnode"}}),
                          ig, {{"rnode", "rnode"}});
  return rel::Project(joined, {"tid", "loc", "item", "price"});
}

}  // namespace licm::anonymize
