// Seeded structured generator for differential fuzzing (DESIGN.md §9).
//
// Produces small random LICM instances: one TRANSITEM-style relation with
// certain and maybe tuples (maybe-variables sometimes shared between
// tuples), a constraint set drawn from the paper's correlation vocabulary
// (cardinality, mutual exclusion, co-existence, implication, and k x k
// permutation bijections), and a random conjunctive query tree with a
// COUNT or SUM head. The size knobs keep every instance inside the
// possible-world oracle's enumeration budget (<= ~20 binary variables), so
// brute-force enumeration stays the ground truth for every case.
#ifndef LICM_TESTING_GENERATOR_H_
#define LICM_TESTING_GENERATOR_H_

#include <cstdint>

#include "licm/licm_relation.h"
#include "relational/query.h"

namespace licm::testing {

/// Name of the single base relation every fuzz case queries.
inline constexpr const char* kFuzzRelation = "t";

struct GeneratorOptions {
  /// Hard cap on binary variables (enumeration is 2^vars; keep <= ~20).
  uint32_t max_vars = 12;
  /// Transactions and items-per-transaction of the base relation.
  uint32_t max_tids = 4;
  uint32_t max_items_per_tid = 4;
  /// Random constraints over the tuple variables (on top of any
  /// permutation block's structural constraints).
  uint32_t max_constraints = 3;
  /// Probability a tuple is certain (Ext = '1').
  double certain_prob = 0.2;
  /// Probability a maybe tuple reuses an existing variable (correlation).
  double shared_var_prob = 0.2;
  /// Probability of appending a 2x2 permutation bijection block when the
  /// variable budget allows (the bipartite-encoding shape that stresses
  /// the solver's permutation reasoning).
  double permutation_prob = 0.3;
};

/// One self-contained differential-testing instance.
struct FuzzCase {
  /// Seed it was generated from (0 for parsed repro files).
  uint64_t seed = 0;
  /// Database with the single relation kFuzzRelation over schema
  /// (tid:int, item:string, val:int); constraints range over the base
  /// variables only.
  LicmDatabase db;
  /// Pool size at generation time. Query evaluation appends derived
  /// variables past this; the oracle enumerates exactly these.
  uint32_t num_base_vars = 0;
  /// Aggregate query (kCountStar or kSum root) over kFuzzRelation.
  rel::QueryNodePtr query;
};

/// Deterministically generates the case for `seed`.
FuzzCase GenerateCase(uint64_t seed, const GeneratorOptions& options = {});

}  // namespace licm::testing

#endif  // LICM_TESTING_GENERATOR_H_
