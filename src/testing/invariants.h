// Metamorphic invariants for differential fuzzing (DESIGN.md §9).
//
// Every invariant is a property a correct pipeline must satisfy on *every*
// instance: agreement with the possible-world oracle, bit-identical bounds
// across feature toggles (pruning, presolve, cache, decomposition, thread
// count), SolveMinMax vs two single-sense solves, LP-format round-trips,
// Monte-Carlo containment, and valid timeout semantics under deadlines.
// Invariants report failures as data (not Status): a Status error from
// CheckCase means the case itself is structurally invalid (e.g. a reducer
// step produced a schema-incompatible query), which the reducer treats as
// "does not reproduce".
#ifndef LICM_TESTING_INVARIANTS_H_
#define LICM_TESTING_INVARIANTS_H_

#include <string>
#include <vector>

#include "solver/linear_program.h"
#include "testing/generator.h"
#include "testing/oracle.h"

namespace licm::testing {

enum class Verdict { kPass, kSkip, kFail };

const char* VerdictName(Verdict v);

struct InvariantReport {
  std::string name;
  Verdict verdict = Verdict::kPass;
  /// Failure explanation or skip reason; empty on pass. Failure details
  /// always include the numbers that disagreed.
  std::string detail;
};

/// Per-case state shared by all invariants: the enumerated ground truth
/// and the baseline LICM answer (default options, sequential).
struct CaseContext {
  /// Outcome of one AnswerAggregate run, flattened for comparison.
  /// `ok == false` carries the error code (kInfeasible for "no world").
  struct AnswerSummary {
    bool ok = false;
    StatusCode code = StatusCode::kOk;
    double min = 0.0, max = 0.0;
    bool min_exact = false, max_exact = false;
    double min_proved = 0.0, max_proved = 0.0;

    bool operator==(const AnswerSummary&) const = default;
    std::string ToString() const;
  };

  const FuzzCase* c = nullptr;
  OracleResult oracle;
  AnswerSummary baseline;
};

/// Enumerates the oracle and computes the baseline answer. Errors mean the
/// case is not checkable (oversized, or structurally invalid query).
Result<CaseContext> MakeContext(const FuzzCase& c);

struct Invariant {
  const char* name;
  const char* description;
  InvariantReport (*check)(const CaseContext&);
};

/// The registry, in execution order.
const std::vector<Invariant>& AllInvariants();

/// Runs every invariant whose name contains `filter` (all when empty) and
/// returns one report per invariant run.
Result<std::vector<InvariantReport>> CheckCase(const FuzzCase& c,
                                               const std::string& filter = "");

/// The BIP of a fuzz case with pruning disabled: evaluates the query
/// against a copy of the database and builds the program over the full
/// variable pool — the solver-level view shared by the minmax, LP
/// round-trip, and timeout invariants (and exported as the `.lp` half of a
/// repro).
Result<solver::LinearProgram> BuildCaseLp(const FuzzCase& c);

}  // namespace licm::testing

#endif  // LICM_TESTING_INVARIANTS_H_
