#include "testing/generator.h"

#include <string>
#include <vector>

#include "common/rng.h"

namespace licm::testing {
namespace {

using rel::CmpOp;
using rel::QueryNodePtr;
using rel::Value;
using rel::ValueType;

constexpr const char* kItems[] = {"ale", "brie", "cola", "dill", "eggs"};
constexpr uint32_t kNumItems = 5;

Value Item(Rng* rng) { return Value(std::string(kItems[rng->Uniform(kNumItems)])); }

// The base relation: a few transactions, each item a certain or maybe
// tuple; maybe-variables sometimes shared (correlated tuples). `vars`
// collects the fresh tuple variables for constraint generation.
LicmRelation MakeRelation(Rng* rng, const GeneratorOptions& opt,
                          LicmDatabase* db, std::vector<BVar>* vars) {
  LicmRelation r(rel::Schema({{"tid", ValueType::kInt},
                              {"item", ValueType::kString},
                              {"val", ValueType::kInt}}));
  const int num_tids = 2 + static_cast<int>(rng->Uniform(opt.max_tids - 1));
  for (int tid = 1; tid <= num_tids; ++tid) {
    const int num_items =
        1 + static_cast<int>(rng->Uniform(opt.max_items_per_tid));
    for (int k = 0; k < num_items; ++k) {
      rel::Tuple t{static_cast<int64_t>(tid),
                   std::string(kItems[rng->Uniform(kNumItems)]),
                   rng->UniformInt(0, 9)};
      // Keep the base relation a set over (tid, item): duplicate-merge
      // semantics are exercised downstream by projections and joins.
      bool dup = false;
      for (const auto& existing : r.tuples()) {
        dup |= existing[0] == t[0] && existing[1] == t[1];
      }
      if (dup) continue;
      if (rng->Bernoulli(opt.certain_prob)) {
        r.AppendUnchecked(std::move(t), Ext::Certain());
      } else if (!vars->empty() && rng->Bernoulli(opt.shared_var_prob)) {
        r.AppendUnchecked(std::move(t),
                          Ext::Maybe((*vars)[rng->Uniform(vars->size())]));
      } else if (db->pool().size() < opt.max_vars) {
        BVar b = db->pool().New();
        vars->push_back(b);
        r.AppendUnchecked(std::move(t), Ext::Maybe(b));
      } else {
        r.AppendUnchecked(std::move(t), Ext::Certain());
      }
    }
  }
  return r;
}

// A k x k permutation bijection over fresh variables: k*k maybe tuples in
// distinct transactions, with row-sum and column-sum = 1 constraints (the
// bipartite anonymization shape). Only added when the variable budget
// allows a 2x2 block.
void MaybeAddPermutationBlock(Rng* rng, const GeneratorOptions& opt,
                              LicmDatabase* db, LicmRelation* r) {
  constexpr uint32_t k = 2;
  if (db->pool().size() + k * k > opt.max_vars) return;
  if (!rng->Bernoulli(opt.permutation_prob)) return;
  BVar block[k][k];
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = 0; j < k; ++j) {
      block[i][j] = db->pool().New();
      // Slot j of element i: transaction 100+i may contain item j with a
      // value that identifies the slot.
      r->AppendUnchecked(
          rel::Tuple{static_cast<int64_t>(100 + i),
                     std::string(kItems[j]), static_cast<int64_t>(j)},
          Ext::Maybe(block[i][j]));
    }
  }
  for (uint32_t i = 0; i < k; ++i) {
    std::vector<BVar> row, col;
    for (uint32_t j = 0; j < k; ++j) {
      row.push_back(block[i][j]);
      col.push_back(block[j][i]);
    }
    db->constraints().AddCardinality(row, 1, 1);
    db->constraints().AddCardinality(col, 1, 1);
  }
}

// Random correlations over the tuple variables (Example 5 vocabulary).
void AddRandomConstraints(Rng* rng, const GeneratorOptions& opt,
                          LicmDatabase* db, const std::vector<BVar>& vars) {
  const int num = static_cast<int>(rng->Uniform(opt.max_constraints + 1));
  for (int c = 0; c < num && vars.size() >= 2; ++c) {
    std::vector<BVar> subset;
    for (BVar v : vars) {
      if (rng->Bernoulli(0.5)) subset.push_back(v);
    }
    if (subset.size() < 2) continue;
    switch (rng->Uniform(4)) {
      case 0: {
        int64_t z1 = rng->UniformInt(0, 1);
        int64_t z2 = rng->UniformInt(z1, static_cast<int64_t>(subset.size()));
        db->constraints().AddCardinality(subset, z1, z2);
        break;
      }
      case 1:
        db->constraints().AddImplication(subset[0], subset[1]);
        break;
      case 2:
        db->constraints().AddMutualExclusion(subset[0], subset[1]);
        break;
      case 3:
        db->constraints().AddCoexistence(subset[0], subset[1]);
        break;
    }
  }
}

// A random aggregate query over t(tid, item, val). Shapes cover every
// operator the LICM evaluator implements: selection, projection,
// intersection, join, mid-tree COUNT/SUM predicates, COUNT(*)/SUM heads.
QueryNodePtr MakeQuery(Rng* rng) {
  using namespace rel;
  QueryNodePtr base = Scan(kFuzzRelation);
  const CmpOp cmp3[] = {CmpOp::kGe, CmpOp::kLe, CmpOp::kEq};
  switch (rng->Uniform(8)) {
    case 0:
      return CountStar(Select(base, {{"item", CmpOp::kGe, Item(rng)}}));
    case 1:
      return CountStar(Project(
          Select(base, {{"item", CmpOp::kLe, Item(rng)}}), {"tid"}));
    case 2:
      // Transactions with (>=|<=|=) d selected items (Query-1 shape).
      return CountStar(CountPredicate(
          Select(base, {{"item", CmpOp::kNe, Item(rng)}}), "tid",
          cmp3[rng->Uniform(3)], rng->UniformInt(1, 3)));
    case 3:
      // Intersection of two COUNT predicates (Query-2 shape).
      return CountStar(Intersect(
          CountPredicate(
              Select(base, {{"item", CmpOp::kGe, Value(std::string("b"))}}),
              "tid", CmpOp::kGe, rng->UniformInt(1, 2)),
          CountPredicate(
              Select(base, {{"item", CmpOp::kLe, Value(std::string("d"))}}),
              "tid", CmpOp::kGe, 1)));
    case 4:
      // Join shape (Query-3 flavour): transactions sharing an item with a
      // popular item set.
      return CountStar(Project(
          Join(base,
               CountPredicate(base, "item", CmpOp::kGe,
                              rng->UniformInt(1, 2)),
               {{"item", "item"}}),
          {"tid"}));
    case 5:
      return Sum(Select(base, {{"item", CmpOp::kGe, Item(rng)}}), "val");
    case 6:
      // SUM over the surviving group keys of a COUNT predicate.
      return Sum(CountPredicate(base, "tid", cmp3[rng->Uniform(3)],
                                rng->UniformInt(1, 3)),
                 "tid");
    default:
      // Mid-tree SUM predicate (weighted Algorithm 4).
      return CountStar(SumPredicate(base, "tid", "val",
                                    cmp3[rng->Uniform(3)],
                                    rng->UniformInt(2, 12)));
  }
}

}  // namespace

FuzzCase GenerateCase(uint64_t seed, const GeneratorOptions& options) {
  Rng rng(seed);
  FuzzCase out;
  out.seed = seed;
  std::vector<BVar> vars;
  LicmRelation r = MakeRelation(&rng, options, &out.db, &vars);
  MaybeAddPermutationBlock(&rng, options, &out.db, &r);
  AddRandomConstraints(&rng, options, &out.db, vars);
  out.num_base_vars = out.db.pool().size();
  LICM_CHECK_OK(out.db.AddRelation(kFuzzRelation, std::move(r)));
  out.query = MakeQuery(&rng);
  return out;
}

}  // namespace licm::testing
