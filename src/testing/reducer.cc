#include "testing/reducer.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "testing/invariants.h"

namespace licm::testing {
namespace {

using rel::QueryNodePtr;

const LicmRelation& Rel(const FuzzCase& c) {
  auto r = c.db.GetRelation(kFuzzRelation);
  LICM_CHECK(r.ok());
  return **r;
}

// Rebuilds a case from parts; the pool is recreated at `num_vars`.
FuzzCase Rebuild(const FuzzCase& base, LicmRelation relation,
                 std::vector<LinearConstraint> constraints,
                 uint32_t num_vars, QueryNodePtr query) {
  FuzzCase out;
  out.seed = base.seed;
  out.num_base_vars = num_vars;
  for (uint32_t v = 0; v < num_vars; ++v) out.db.pool().New();
  for (LinearConstraint& lc : constraints) {
    out.db.constraints().Add(std::move(lc));
  }
  LICM_CHECK_OK(out.db.AddRelation(kFuzzRelation, std::move(relation)));
  out.query = std::move(query);
  return out;
}

FuzzCase DropTuple(const FuzzCase& c, size_t index) {
  const LicmRelation& r = Rel(c);
  LicmRelation out(r.schema());
  for (size_t i = 0; i < r.size(); ++i) {
    if (i != index) out.AppendUnchecked(r.tuple(i), r.ext(i));
  }
  return Rebuild(c, std::move(out), c.db.constraints().constraints(),
                 c.num_base_vars, c.query);
}

FuzzCase DropConstraint(const FuzzCase& c, size_t index) {
  std::vector<LinearConstraint> kept;
  const auto& all = c.db.constraints().constraints();
  for (size_t i = 0; i < all.size(); ++i) {
    if (i != index) kept.push_back(all[i]);
  }
  LicmRelation r = Rel(c);
  return Rebuild(c, std::move(r), std::move(kept), c.num_base_vars, c.query);
}

// Shrinks constraint `index` by removing its `term`-th term — the
// within-constraint analogue of DropConstraint, so a failure needing only
// part of a wide cardinality row ends up with just that part.
FuzzCase DropConstraintTerm(const FuzzCase& c, size_t index, size_t term) {
  std::vector<LinearConstraint> all = c.db.constraints().constraints();
  all[index].terms.erase(all[index].terms.begin() +
                         static_cast<ptrdiff_t>(term));
  LicmRelation r = Rel(c);
  return Rebuild(c, std::move(r), std::move(all), c.num_base_vars, c.query);
}

// Renumbers the variables actually referenced (by Ext attributes or
// constraint terms) densely from 0 and shrinks the pool accordingly — a
// semantics-preserving bijection that keeps the oracle's 2^vars
// enumeration proportional to what the shrunk instance really uses.
FuzzCase CompactVariables(const FuzzCase& c) {
  std::unordered_map<BVar, BVar> remap;
  auto map = [&](BVar v) {
    auto [it, fresh] = remap.emplace(v, static_cast<BVar>(remap.size()));
    (void)fresh;
    return it->second;
  };
  const LicmRelation& r = Rel(c);
  LicmRelation out(r.schema());
  for (size_t i = 0; i < r.size(); ++i) {
    out.AppendUnchecked(r.tuple(i), r.ext(i).certain()
                                        ? Ext::Certain()
                                        : Ext::Maybe(map(r.ext(i).var())));
  }
  std::vector<LinearConstraint> constraints;
  for (const LinearConstraint& lc : c.db.constraints().constraints()) {
    LinearConstraint nc;
    nc.op = lc.op;
    nc.rhs = lc.rhs;
    for (const auto& t : lc.terms) nc.terms.push_back({map(t.var), t.coef});
    constraints.push_back(std::move(nc));
  }
  return Rebuild(c, std::move(out), std::move(constraints),
                 static_cast<uint32_t>(remap.size()), c.query);
}

// Clones the query tree with `target` replaced by `replacement`.
QueryNodePtr Replace(const QueryNodePtr& node, const rel::QueryNode* target,
                     const QueryNodePtr& replacement) {
  if (node == nullptr) return nullptr;
  if (node.get() == target) return replacement;
  QueryNodePtr left = Replace(node->left, target, replacement);
  QueryNodePtr right = Replace(node->right, target, replacement);
  if (left == node->left && right == node->right) return node;
  auto copy = std::make_shared<rel::QueryNode>(*node);
  copy->left = std::move(left);
  copy->right = std::move(right);
  return copy;
}

// Candidate hoists: every non-root node replaced by one of its children.
// The root (the aggregate) is kept; hoisting can produce schema-invalid
// trees, which the predicate rejects via CheckCase's Status error.
std::vector<QueryNodePtr> HoistCandidates(const QueryNodePtr& root) {
  std::vector<const rel::QueryNode*> nodes;
  std::function<void(const rel::QueryNode*)> walk =
      [&](const rel::QueryNode* n) {
        if (n == nullptr) return;
        nodes.push_back(n);
        walk(n->left.get());
        walk(n->right.get());
      };
  walk(root->left.get());
  std::vector<QueryNodePtr> out;
  for (const rel::QueryNode* n : nodes) {
    for (const QueryNodePtr& child : {n->left, n->right}) {
      if (child != nullptr) out.push_back(Replace(root, n, child));
    }
  }
  return out;
}

}  // namespace

bool InvariantStillFails(const FuzzCase& c, const std::string& name) {
  auto reports = CheckCase(c, name);
  if (!reports.ok()) return false;
  for (const InvariantReport& r : *reports) {
    if (r.name == name && r.verdict == Verdict::kFail) return true;
  }
  return false;
}

ReduceResult ReduceCase(const FuzzCase& c,
                        const FailurePredicate& still_fails) {
  ReduceResult out;
  out.tuples_before = Rel(c).size();
  out.constraints_before = c.db.constraints().size();
  out.vars_before = c.num_base_vars;
  out.reduced = c;
  if (!still_fails(c)) {
    out.tuples_after = out.tuples_before;
    out.constraints_after = out.constraints_before;
    out.vars_after = out.vars_before;
    return out;
  }

  FuzzCase cur = c;
  bool changed = true;
  // Greedy single-deletion to a fixpoint. Instances are tiny (tens of
  // tuples/constraints), so O(n) probes per round beat the bookkeeping of
  // chunked ddmin.
  while (changed && out.rounds < 64) {
    ++out.rounds;
    changed = false;
    for (size_t i = cur.db.constraints().size(); i-- > 0;) {
      FuzzCase cand = DropConstraint(cur, i);
      if (still_fails(cand)) {
        cur = std::move(cand);
        changed = true;
      }
    }
    for (size_t i = cur.db.constraints().size(); i-- > 0;) {
      for (size_t t = cur.db.constraints().constraints()[i].terms.size();
           t-- > 0;) {
        FuzzCase cand = DropConstraintTerm(cur, i, t);
        if (still_fails(cand)) {
          cur = std::move(cand);
          changed = true;
        }
      }
    }
    for (size_t i = Rel(cur).size(); i-- > 0;) {
      FuzzCase cand = DropTuple(cur, i);
      if (still_fails(cand)) {
        cur = std::move(cand);
        changed = true;
      }
    }
    bool hoisted = true;
    while (hoisted) {
      hoisted = false;
      for (const QueryNodePtr& q : HoistCandidates(cur.query)) {
        FuzzCase cand = cur;
        cand.query = q;
        if (still_fails(cand)) {
          cur = std::move(cand);
          changed = hoisted = true;
          break;  // tree changed; recompute candidates
        }
      }
    }
    FuzzCase compacted = CompactVariables(cur);
    if (compacted.num_base_vars < cur.num_base_vars &&
        still_fails(compacted)) {
      cur = std::move(compacted);
      changed = true;
    }
  }

  out.tuples_after = Rel(cur).size();
  out.constraints_after = cur.db.constraints().size();
  out.vars_after = cur.num_base_vars;
  out.reduced = std::move(cur);
  return out;
}

ReduceResult ReduceForInvariant(const FuzzCase& c, const std::string& name) {
  return ReduceCase(
      c, [&name](const FuzzCase& cand) {
        return InvariantStillFails(cand, name);
      });
}

}  // namespace licm::testing
