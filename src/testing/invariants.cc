#include "testing/invariants.h"

#include <cmath>
#include <condition_variable>
#include <mutex>
#include <sstream>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "licm/aggregate.h"
#include "licm/evaluator.h"
#include "licm/mutable_instance.h"
#include "licm/ops.h"
#include "net/wire.h"
#include "sampler/monte_carlo.h"
#include "service/json.h"
#include "service/query_service.h"
#include "service/server.h"
#include "solver/lp_format.h"
#include "solver/mip_solver.h"

namespace licm::testing {
namespace {

using Summary = CaseContext::AnswerSummary;

// Default options for every fuzz solve: fully sequential so the baseline
// is deterministic; the threads invariant owns the parallel comparison.
AnswerOptions BaselineOptions() {
  AnswerOptions opt;
  opt.bounds.mip.num_threads = 1;
  return opt;
}

// Runs AnswerAggregate and flattens the outcome. Structural invalidity
// (InvalidArgument / NotFound, e.g. from a reducer-mangled query)
// propagates as a Status; solver-reported infeasibility and limits come
// back as data for the invariants to judge.
Result<Summary> Answer(const FuzzCase& c, const AnswerOptions& opt) {
  auto ans = AnswerAggregate(*c.query, c.db, opt);
  Summary s;
  if (!ans.ok()) {
    const StatusCode code = ans.status().code();
    if (code == StatusCode::kInvalidArgument || code == StatusCode::kNotFound) {
      return ans.status();
    }
    s.ok = false;
    s.code = code;
    return s;
  }
  s.ok = true;
  s.min = ans->bounds.min.value;
  s.max = ans->bounds.max.value;
  s.min_exact = ans->bounds.min.exact;
  s.max_exact = ans->bounds.max.exact;
  s.min_proved = ans->bounds.min.proved;
  s.max_proved = ans->bounds.max.proved;
  return s;
}

InvariantReport Pass(const char* name) { return {name, Verdict::kPass, ""}; }
InvariantReport Skip(const char* name, std::string why) {
  return {name, Verdict::kSkip, std::move(why)};
}
InvariantReport Fail(const char* name, std::string detail) {
  return {name, Verdict::kFail, std::move(detail)};
}

std::string Num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

// Compares a re-solve against the baseline; used by every feature-toggle
// invariant ("bounds are bit-identical across X on/off").
InvariantReport CompareWithBaseline(const char* name, const CaseContext& ctx,
                                    const AnswerOptions& opt,
                                    const char* what) {
  auto other = Answer(*ctx.c, opt);
  if (!other.ok()) {
    return Fail(name, std::string(what) + " run errored: " +
                          other.status().ToString());
  }
  if (!(*other == ctx.baseline)) {
    return Fail(name, std::string("bounds differ with ") + what +
                          ": baseline=" + ctx.baseline.ToString() +
                          " vs " + other->ToString());
  }
  return Pass(name);
}

InvariantReport CheckOracle(const CaseContext& ctx) {
  const char* name = "oracle";
  if (!ctx.oracle.feasible) {
    if (ctx.baseline.ok || ctx.baseline.code != StatusCode::kInfeasible) {
      return Fail(name,
                  "oracle found no valid world but the solver answered " +
                      ctx.baseline.ToString());
    }
    return Pass(name);
  }
  if (!ctx.baseline.ok) {
    return Fail(name, "oracle found " +
                          std::to_string(ctx.oracle.num_assignments) +
                          " valid assignments but the solver reported " +
                          std::string(Status::CodeName(ctx.baseline.code)));
  }
  if (!ctx.baseline.min_exact || !ctx.baseline.max_exact) {
    return Fail(name, "bounds inexact on an oracle-sized instance: " +
                          ctx.baseline.ToString());
  }
  if (ctx.baseline.min != ctx.oracle.min ||
      ctx.baseline.max != ctx.oracle.max) {
    return Fail(name, "bounds [" + Num(ctx.baseline.min) + ", " +
                          Num(ctx.baseline.max) + "] != enumerated [" +
                          Num(ctx.oracle.min) + ", " + Num(ctx.oracle.max) +
                          "]");
  }
  return Pass(name);
}

InvariantReport CheckOrder(const CaseContext& ctx) {
  const char* name = "order";
  if (!ctx.baseline.ok) return Skip(name, "no baseline bounds");
  const Summary& b = ctx.baseline;
  if (b.min > b.max) {
    return Fail(name, "MIN " + Num(b.min) + " > MAX " + Num(b.max));
  }
  if (b.min_proved > b.min || b.max_proved < b.max) {
    return Fail(name, "proved bounds do not envelope values: " + b.ToString());
  }
  if (ctx.oracle.feasible &&
      (b.min_proved > ctx.oracle.min || b.max_proved < ctx.oracle.max)) {
    return Fail(name, "proved [" + Num(b.min_proved) + ", " +
                          Num(b.max_proved) + "] excludes oracle range [" +
                          Num(ctx.oracle.min) + ", " + Num(ctx.oracle.max) +
                          "]");
  }
  return Pass(name);
}

InvariantReport CheckColumnar(const CaseContext& ctx) {
  // The baseline runs the columnar batch pipeline (the default engine);
  // this re-solve runs the row-at-a-time reference. Both must allocate the
  // same lineage variables and emit the same constraints, so the final
  // bounds are bit-identical — no tolerance.
  AnswerOptions opt = BaselineOptions();
  opt.engine = rel::EvalEngine::kRow;
  return CompareWithBaseline("columnar", ctx, opt, "row engine");
}

InvariantReport CheckPrune(const CaseContext& ctx) {
  AnswerOptions opt = BaselineOptions();
  opt.bounds.prune = false;
  return CompareWithBaseline("prune", ctx, opt, "pruning off");
}

InvariantReport CheckPresolve(const CaseContext& ctx) {
  AnswerOptions opt = BaselineOptions();
  opt.bounds.mip.use_presolve = false;
  return CompareWithBaseline("presolve", ctx, opt, "presolve off");
}

InvariantReport CheckCache(const CaseContext& ctx) {
  AnswerOptions opt = BaselineOptions();
  opt.bounds.mip.use_cache = false;
  return CompareWithBaseline("cache", ctx, opt, "solve cache off");
}

InvariantReport CheckDecompose(const CaseContext& ctx) {
  AnswerOptions opt = BaselineOptions();
  opt.bounds.mip.use_decomposition = false;
  return CompareWithBaseline("decompose", ctx, opt, "decomposition off");
}

InvariantReport CheckThreads(const CaseContext& ctx) {
  AnswerOptions opt = BaselineOptions();
  opt.bounds.mip.num_threads = 4;
  // Force the subtree-donation path even on tiny searches so the parallel
  // code actually runs (and TSan sees it).
  opt.bounds.mip.split_node_threshold = 1;
  return CompareWithBaseline("threads", ctx, opt, "4 threads");
}

InvariantReport CheckSolverFeatures(const CaseContext& ctx) {
  // The baseline runs with the incremental LP core fully enabled (warm
  // dual simplex, reduced-cost fixing, cardinality cuts, pseudo-cost
  // branching); this re-solve turns all of it off at once.
  AnswerOptions opt = BaselineOptions();
  opt.bounds.mip.use_warm_lp = false;
  opt.bounds.mip.use_rc_fixing = false;
  opt.bounds.mip.use_cuts = false;
  opt.bounds.mip.use_pseudo_cost = false;
  opt.bounds.mip.use_adaptive_prologue = false;
  return CompareWithBaseline(
      "solver_features", ctx, opt,
      "warm LP / RC fixing / cuts / pseudo-cost / adaptive prologue off");
}

InvariantReport CheckMinMaxBatch(const CaseContext& ctx) {
  const char* name = "minmax";
  auto lp = BuildCaseLp(*ctx.c);
  if (!lp.ok()) return Fail(name, "BuildCaseLp: " + lp.status().ToString());
  solver::MipOptions mip;
  mip.num_threads = 1;
  const solver::MipSolver s({mip});
  const solver::MinMaxMipResult both = s.SolveMinMax(*lp);
  const solver::MipResult lo = s.Solve(*lp, solver::Sense::kMinimize);
  const solver::MipResult hi = s.Solve(*lp, solver::Sense::kMaximize);
  auto same = [&](const solver::MipResult& a, const solver::MipResult& b,
                  const char* side) -> std::string {
    if (a.status != b.status) {
      return std::string(side) + " status differs";
    }
    if (a.has_solution != b.has_solution) {
      return std::string(side) + " has_solution differs";
    }
    if (a.has_solution && a.objective != b.objective) {
      return std::string(side) + " objective " + Num(a.objective) +
             " != " + Num(b.objective);
    }
    if (a.status == solver::SolveStatus::kOptimal &&
        a.best_bound != b.best_bound) {
      return std::string(side) + " best_bound " + Num(a.best_bound) +
             " != " + Num(b.best_bound);
    }
    return "";
  };
  std::string d = same(both.min, lo, "min");
  if (d.empty()) d = same(both.max, hi, "max");
  if (!d.empty()) {
    return Fail(name, "SolveMinMax vs single-sense solves: " + d);
  }
  return Pass(name);
}

InvariantReport CheckSampler(const CaseContext& ctx) {
  const char* name = "sampler";
  if (!ctx.oracle.feasible) return Skip(name, "infeasible instance");
  if (!ctx.baseline.ok || !ctx.baseline.min_exact || !ctx.baseline.max_exact) {
    return Skip(name, "no exact LICM bounds to contain samples");
  }
  Rng rng(ctx.c->seed ^ 0x5a5a5a5a5a5a5a5aULL);
  rel::Database world;
  for (int k = 0; k < 8; ++k) {
    auto a = sampler::SampleValidAssignment(ctx.c->db.constraints(),
                                            ctx.c->num_base_vars, &rng);
    if (!a.ok()) {
      // Rejection sampling can starve on tightly constrained systems; the
      // oracle said feasible, so this is a budget issue, not a bug.
      return Skip(name, "rejection sampling found no world");
    }
    world = ctx.c->db.Instantiate(*a);
    auto v = rel::EvaluateAggregate(*ctx.c->query, world);
    if (!v.ok()) return Fail(name, "world evaluation: " + v.status().ToString());
    if (*v < ctx.baseline.min || *v > ctx.baseline.max) {
      return Fail(name, "sampled world answer " + Num(*v) +
                            " outside exact LICM bounds [" +
                            Num(ctx.baseline.min) + ", " +
                            Num(ctx.baseline.max) + "]");
    }
  }
  return Pass(name);
}

InvariantReport CheckLpRoundTrip(const CaseContext& ctx) {
  const char* name = "lp_roundtrip";
  auto lp = BuildCaseLp(*ctx.c);
  if (!lp.ok()) return Fail(name, "BuildCaseLp: " + lp.status().ToString());
  for (solver::Sense sense :
       {solver::Sense::kMinimize, solver::Sense::kMaximize}) {
    const char* sname = sense == solver::Sense::kMinimize ? "min" : "max";
    const std::string text1 = solver::ToLpFormat(*lp, sense);
    auto parsed = solver::ParseLpFormat(text1);
    if (!parsed.ok()) {
      return Fail(name, std::string(sname) + ": parse of own export failed: " +
                            parsed.status().ToString());
    }
    if (parsed->sense != sense) {
      return Fail(name, std::string(sname) + ": sense not preserved");
    }
    // Idempotence: one parse/export cycle is a fixpoint. (text1 itself may
    // differ from text2 only by the objective-constant comment, which the
    // format cannot represent as data.)
    const std::string text2 = solver::ToLpFormat(parsed->program, sense);
    auto parsed2 = solver::ParseLpFormat(text2);
    if (!parsed2.ok()) {
      return Fail(name, std::string(sname) + ": re-parse failed: " +
                            parsed2.status().ToString());
    }
    const std::string text3 = solver::ToLpFormat(parsed2->program, sense);
    if (text2 != text3) {
      return Fail(name, std::string(sname) +
                            ": export-parse-export not idempotent");
    }
    // The parser numbers variables by first appearance, so text1 and text2
    // may differ by a relabeling; the structure must survive unchanged.
    if (parsed->program.num_vars() != lp->num_vars() ||
        parsed->program.num_rows() != lp->num_rows()) {
      return Fail(name, std::string(sname) + ": round-trip changed " +
                            "variable or row count");
    }
    // Solving the re-parsed program gives identical bounds (modulo the
    // objective constant the format drops).
    solver::MipOptions mip;
    mip.num_threads = 1;
    const solver::MipSolver s({mip});
    const solver::MipResult orig = s.Solve(*lp, sense);
    const solver::MipResult rt = s.Solve(parsed->program, sense);
    if (orig.status != rt.status) {
      return Fail(name, std::string(sname) + ": status differs after "
                                             "round-trip");
    }
    if (orig.has_solution &&
        rt.objective + lp->objective_constant() != orig.objective) {
      return Fail(name, std::string(sname) + ": objective " +
                            Num(orig.objective) + " != round-tripped " +
                            Num(rt.objective + lp->objective_constant()));
    }
  }
  return Pass(name);
}

InvariantReport CheckTimeout(const CaseContext& ctx) {
  const char* name = "timeout";
  // An already-expired deadline: the solve must stop immediately, yet
  // still return a *valid* (possibly loose) answer — kTimeLimit or
  // kOptimal, never a wrong kInfeasible.
  const Deadline expired = Deadline::After(0.0);
  AnswerOptions opt = BaselineOptions();
  opt.bounds.mip.deadline = &expired;
  auto capped = Answer(*ctx.c, opt);
  if (!capped.ok()) {
    return Fail(name, "deadline-capped run errored: " +
                          capped.status().ToString());
  }
  if (ctx.oracle.feasible) {
    if (!capped->ok) {
      return Fail(name, "deadline-capped solve reported " +
                            std::string(Status::CodeName(capped->code)) +
                            " on a feasible instance");
    }
    if (capped->min_proved > ctx.oracle.min ||
        capped->max_proved < ctx.oracle.max) {
      return Fail(name, "capped proved bounds [" + Num(capped->min_proved) +
                            ", " + Num(capped->max_proved) +
                            "] exclude oracle range [" +
                            Num(ctx.oracle.min) + ", " +
                            Num(ctx.oracle.max) + "]");
    }
  } else if (capped->ok && (capped->min_exact || capped->max_exact)) {
    return Fail(name, "exact bounds claimed on an infeasible instance");
  }

  // Solver-level Gap consistency under the same deadline.
  auto lp = BuildCaseLp(*ctx.c);
  if (!lp.ok()) return Fail(name, "BuildCaseLp: " + lp.status().ToString());
  solver::MipOptions mip;
  mip.num_threads = 1;
  mip.deadline = &expired;
  for (solver::Sense sense :
       {solver::Sense::kMinimize, solver::Sense::kMaximize}) {
    const solver::MipResult r = solver::MipSolver(mip).Solve(*lp, sense);
    if (r.status == solver::SolveStatus::kUnbounded) {
      return Fail(name, "binary program reported unbounded");
    }
    if (ctx.oracle.feasible &&
        r.status == solver::SolveStatus::kInfeasible) {
      return Fail(name, "capped solver call reported kInfeasible on a "
                        "feasible instance");
    }
    if (r.has_solution) {
      if (!lp->IsFeasible(r.solution)) {
        return Fail(name, "capped incumbent is not feasible");
      }
      const double claimed = lp->EvalObjective(r.solution);
      if (std::abs(claimed - r.objective) > 1e-6) {
        return Fail(name, "objective " + Num(r.objective) +
                              " != incumbent's value " + Num(claimed));
      }
      const bool maximize = sense == solver::Sense::kMaximize;
      if (maximize ? r.best_bound < r.objective - 1e-9
                   : r.best_bound > r.objective + 1e-9) {
        return Fail(name, "best_bound on the wrong side of the incumbent");
      }
      if (r.status == solver::SolveStatus::kOptimal && r.Gap() > 1e-6) {
        return Fail(name, "kOptimal with gap " + Num(r.Gap()));
      }
    } else if (r.Gap() != solver::kInfinity) {
      return Fail(name, "no incumbent but finite gap " + Num(r.Gap()));
    }
  }
  return Pass(name);
}

InvariantReport CheckService(const CaseContext& ctx) {
  const char* name = "service";
  service::ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.solver_threads = 1;
  cfg.degraded_worlds = 8;
  service::QueryService svc(cfg);
  // No sampling structure: the degraded path exercises the generic
  // rejection sampler against the case's constraint set.
  Status added = svc.AddInstance("case", ctx.c->db);
  if (!added.ok()) {
    return Fail(name, "AddInstance: " + added.ToString());
  }

  // A generous deadline must reproduce the offline baseline exactly —
  // same bounds bit-for-bit, or the same error code.
  service::QueryRequest req;
  req.instance = "case";
  req.query = ctx.c->query;
  req.deadline_s = 1e9;  // effectively unlimited
  auto exact = svc.Execute(req);
  if (!ctx.baseline.ok) {
    if (exact.ok()) {
      return Fail(name, "service answered " + Num(exact->min) + ".." +
                            Num(exact->max) + " but offline reported " +
                            std::string(Status::CodeName(ctx.baseline.code)));
    }
    if (exact.status().code() != ctx.baseline.code) {
      return Fail(name, std::string("service error ") +
                            Status::CodeName(exact.status().code()) +
                            " != offline " +
                            Status::CodeName(ctx.baseline.code));
    }
  } else {
    if (!exact.ok()) {
      return Fail(name,
                  "service errored on a solvable case: " +
                      exact.status().ToString());
    }
    if (exact->degraded) {
      return Fail(name, "service degraded under an unlimited deadline");
    }
    Summary got;
    got.ok = true;
    got.min = exact->min;
    got.max = exact->max;
    got.min_exact = exact->min_exact;
    got.max_exact = exact->max_exact;
    got.min_proved = exact->proved_min;
    got.max_proved = exact->proved_max;
    if (!(got == ctx.baseline)) {
      return Fail(name, "service response " + got.ToString() +
                            " != offline baseline " +
                            ctx.baseline.ToString());
    }
  }

  // A zero deadline must either still be exact (trivial instances solve
  // without search) — then bit-identical again — or come back degraded
  // with an interval containing the exact bounds.
  req.deadline_s = 0.0;
  req.mc_worlds = 8;
  req.mc_seed = ctx.c->seed + 1;
  auto capped = svc.Execute(req);
  if (!ctx.baseline.ok) {
    // Infeasibility may or may not be proved in zero time; both an error
    // and a degraded interval are valid. Nothing further to contain.
    return Pass(name);
  }
  if (!capped.ok()) {
    return Fail(name, "zero-deadline request errored on a solvable case: " +
                          capped.status().ToString());
  }
  if (!capped->degraded) {
    if (capped->min != ctx.baseline.min || capped->max != ctx.baseline.max) {
      return Fail(name, "zero-deadline exact response [" +
                            Num(capped->min) + ", " + Num(capped->max) +
                            "] != baseline [" + Num(ctx.baseline.min) +
                            ", " + Num(ctx.baseline.max) + "]");
    }
    return Pass(name);
  }
  if (capped->min_exact && capped->max_exact) {
    return Fail(name, "degraded response claims both bounds exact");
  }
  if (capped->min > ctx.baseline.min || capped->max < ctx.baseline.max) {
    return Fail(name, "degraded interval [" + Num(capped->min) + ", " +
                          Num(capped->max) + "] does not contain exact [" +
                          Num(ctx.baseline.min) + ", " +
                          Num(ctx.baseline.max) + "]");
  }
  if (capped->has_samples &&
      (capped->sample_min < capped->min ||
       capped->sample_max > capped->max)) {
    return Fail(name, "sampled band [" + Num(capped->sample_min) + ", " +
                          Num(capped->sample_max) +
                          "] escapes the served interval");
  }
  return Pass(name);
}

// Flattens an Answer run against an arbitrary database (the incremental
// invariant compares a mutated instance to a from-scratch rebuild, so it
// cannot go through the FuzzCase-based Answer above).
Summary Summarize(const Result<AggregateAnswer>& ans) {
  Summary s;
  if (!ans.ok()) {
    s.ok = false;
    s.code = ans.status().code();
    return s;
  }
  s.ok = true;
  s.min = ans->bounds.min.value;
  s.max = ans->bounds.max.value;
  s.min_exact = ans->bounds.min.exact;
  s.max_exact = ans->bounds.max.exact;
  s.min_proved = ans->bounds.min.proved;
  s.max_proved = ans->bounds.max.proved;
  return s;
}

InvariantReport CheckIncremental(const CaseContext& ctx) {
  const char* name = "incremental";
  // A MutableInstance seeded from the case and an independently maintained
  // shadow database receive the same seeded mutation sequence; after every
  // step the instance's warm answer (per-instance cache + incumbent pool
  // carried across versions) must be bit-identical to a cold
  // AnswerAggregate on the shadow — including error codes, since random
  // constraint edits can make the instance infeasible.
  MutableInstance inst(ctx.c->db);
  LicmDatabase shadow = ctx.c->db;
  Rng rng(ctx.c->seed ^ 0xa11ce5eedULL);
  uint64_t expect_version = 1;

  constexpr int kSteps = 7;
  for (int step = 0; step < kSteps; ++step) {
    auto shadow_rel = shadow.GetMutableRelation(kFuzzRelation);
    if (!shadow_rel.ok()) {
      return Fail(name, "shadow relation: " + shadow_rel.status().ToString());
    }
    LicmRelation* srel = *shadow_rel;
    const uint32_t nvars = shadow.pool().size();
    const size_t ncons = shadow.constraints().size();

    int action = static_cast<int>(rng.Uniform(5));
    if (action == 2 && srel->size() == 0) action = 0;  // nothing to retract
    if (action == 3 && ncons == 0) action = 0;         // nothing to edit
    if (action == 4 && nvars == 0) action = 0;         // no vars to constrain

    Result<MutationResult> r = Status::Internal("no action ran");
    switch (action) {
      case 0: {  // append a certain row
        RowSpec row;
        row.tuple = {rng.UniformInt(0, 5),
                     std::string("x") + std::to_string(rng.Uniform(4)),
                     rng.UniformInt(-3, 3)};
        srel->AppendUnchecked(row.tuple, Ext::Certain());
        r = inst.AppendTuples(kFuzzRelation, {row});
        break;
      }
      case 1: {  // append a maybe row (fresh var, sometimes reused)
        RowSpec row;
        row.tuple = {rng.UniformInt(0, 5),
                     std::string("y") + std::to_string(rng.Uniform(4)),
                     rng.UniformInt(-3, 3)};
        row.maybe = true;
        const bool reuse = nvars > 0 && rng.Bernoulli(0.3);
        BVar expect_var;
        if (reuse) {
          row.reuse_var = static_cast<BVar>(rng.Uniform(nvars));
          expect_var = *row.reuse_var;
        } else {
          expect_var = shadow.pool().New();
        }
        srel->AppendUnchecked(row.tuple, Ext::Maybe(expect_var));
        r = inst.AppendTuples(kFuzzRelation, {row});
        if (r.ok() && !reuse) {
          if (r->new_vars.size() != 1 || r->new_vars[0] != expect_var) {
            return Fail(name,
                        "step " + std::to_string(step) +
                            ": fresh variable diverged from the shadow "
                            "pool (instance allocated " +
                            (r->new_vars.empty()
                                 ? std::string("none")
                                 : std::to_string(r->new_vars[0])) +
                            ", shadow b" + std::to_string(expect_var) + ")");
          }
        }
        break;
      }
      case 2: {  // retract a random existing row (first-match semantics)
        const size_t pick = rng.Uniform(srel->size());
        const rel::Tuple victim = srel->tuple(pick);
        size_t first = 0;
        while (srel->tuple(first) != victim) ++first;
        srel->RemoveAt(first);
        r = inst.RetractTuples(kFuzzRelation, {victim});
        break;
      }
      case 3: {  // rewrite a random constraint's comparison
        const size_t index = rng.Uniform(ncons);
        const ConstraintOp op =
            static_cast<ConstraintOp>(rng.Uniform(3));
        const int64_t rhs = rng.UniformInt(0, nvars);
        LinearConstraint edited = shadow.constraints().constraints()[index];
        edited.op = op;
        edited.rhs = rhs;
        shadow.constraints().Replace(index, std::move(edited));
        r = inst.EditConstraintRhs(index, op, rhs);
        break;
      }
      default: {  // add a cardinality constraint over a random var subset
        LinearConstraint c;
        const uint32_t width =
            static_cast<uint32_t>(rng.UniformInt(1, std::min(nvars, 3u)));
        for (uint32_t j = 0; j < width; ++j) {
          c.terms.push_back({static_cast<BVar>(rng.Uniform(nvars)), 1});
        }
        c.op = ConstraintOp::kLe;
        c.rhs = rng.UniformInt(0, width);
        shadow.constraints().Add(c);
        r = inst.AddConstraint(c);
        break;
      }
    }

    if (!r.ok()) {
      return Fail(name, "step " + std::to_string(step) + " (action " +
                            std::to_string(action) +
                            ") failed: " + r.status().ToString());
    }
    ++expect_version;
    if (r->version != expect_version) {
      return Fail(name, "step " + std::to_string(step) + ": version " +
                            std::to_string(r->version) + " != expected " +
                            std::to_string(expect_version));
    }

    const Summary warm =
        Summarize(inst.Answer(*ctx.c->query, BaselineOptions()));
    const Summary cold =
        Summarize(AnswerAggregate(*ctx.c->query, shadow, BaselineOptions()));
    if (!(warm == cold)) {
      return Fail(name, "step " + std::to_string(step) + " (action " +
                            std::to_string(action) +
                            "): incremental answer " + warm.ToString() +
                            " != from-scratch " + cold.ToString());
    }
  }
  return Pass(name);
}

// Compares every WireRequest field, returning the first mismatch name.
std::string FirstRequestMismatch(const service::WireRequest& a,
                                 const service::WireRequest& b) {
  if (a.id != b.id) return "id";
  if (a.op != b.op) return "op";
  if (a.instance != b.instance) return "instance";
  if (a.qnum != b.qnum) return "qnum";
  if (a.deadline_ms != b.deadline_ms) return "deadline_ms";
  if (a.mc_worlds != b.mc_worlds) return "mc_worlds";
  if (a.seed != b.seed) return "seed";
  if (a.action != b.action) return "action";
  if (a.relation != b.relation) return "relation";
  if (a.row != b.row) return "row";
  if (a.maybe != b.maybe) return "maybe";
  if (a.cindex != b.cindex) return "cindex";
  if (a.cop != b.cop) return "cop";
  if (a.rhs != b.rhs) return "rhs";
  if (a.var != b.var) return "var";
  if (a.value != b.value) return "value";
  if (a.spec != b.spec) return "spec";
  if (a.replace != b.replace) return "replace";
  return "";
}

InvariantReport CheckWire(const CaseContext& ctx) {
  const char* name = "wire";

  // A query request with case-derived (thus varied) field values.
  service::WireRequest req;
  req.op = "query";
  req.id = static_cast<int64_t>(ctx.c->seed % 100000);
  req.instance = "case";
  req.qnum = 1 + static_cast<int>(ctx.c->seed % 3);
  req.deadline_ms = 1e12;
  req.mc_worlds = static_cast<int>(ctx.c->seed % 16);
  req.seed = ctx.c->seed;

  // Binary round trip: decode(encode(req)) == req, and re-encoding the
  // decoded request reproduces the exact bytes (canonical encoding).
  const std::string payload = net::EncodeRequestPayload(req);
  auto decoded = net::DecodeRequestPayload(payload);
  if (!decoded.ok()) {
    return Fail(name, "payload decode: " + decoded.status().ToString());
  }
  std::string mismatch = FirstRequestMismatch(req, *decoded);
  if (!mismatch.empty()) {
    return Fail(name, "binary round trip changed field " + mismatch);
  }
  if (net::EncodeRequestPayload(*decoded) != payload) {
    return Fail(name, "re-encoding the decoded request changed the bytes");
  }

  // Codec agreement: the JSON line expressing the same request parses to
  // the WireRequest the binary codec decoded.
  {
    std::ostringstream line;
    line << "{\"op\":\"query\",\"id\":" << req.id
         << ",\"instance\":\"case\",\"qnum\":" << req.qnum
         << ",\"deadline_ms\":1e12,\"mc_worlds\":" << req.mc_worlds
         << ",\"seed\":" << req.seed << "}";
    auto parsed = service::ParseRequestLine(line.str());
    if (!parsed.ok()) {
      return Fail(name, "JSON parse: " + parsed.status().ToString());
    }
    mismatch = FirstRequestMismatch(*parsed, *decoded);
    if (!mismatch.empty()) {
      return Fail(name,
                  "JSON and binary codecs disagree on field " + mismatch);
    }
  }

  // Framing: every strict prefix asks for more bytes; flipping any byte
  // under the checksum (everything but the magic and length prefix)
  // never yields a successful decode.
  const std::string frame_bytes = net::EncodeRequestFrame(req);
  for (size_t cut = 0; cut < frame_bytes.size(); ++cut) {
    size_t consumed = 0;
    net::Frame frame;
    auto got =
        net::TryDecodeFrame(frame_bytes.substr(0, cut), &consumed, &frame);
    if (!got.ok() || *got) {
      return Fail(name, "prefix of " + std::to_string(cut) +
                            " bytes did not ask for more input");
    }
  }
  const size_t header = 3;  // magic + version + type
  size_t len_bytes = 1;
  while ((static_cast<uint8_t>(frame_bytes[header + len_bytes - 1]) & 0x80) !=
         0) {
    ++len_bytes;
  }
  for (size_t i = 1; i < frame_bytes.size(); ++i) {
    if (i >= header && i < header + len_bytes) continue;
    std::string bad = frame_bytes;
    bad[i] = static_cast<char>(bad[i] ^ (1u << (i % 8)));
    size_t consumed = 0;
    net::Frame frame;
    auto got = net::TryDecodeFrame(bad, &consumed, &frame);
    if (got.ok() && *got) {
      return Fail(name, "corrupting byte " + std::to_string(i) +
                            " still decoded a frame");
    }
  }

  // Response parity through a live service. The sync line path and the
  // async binary path must agree on every answer field; the binary
  // response frame must carry the JSON text byte-for-byte.
  service::ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.solver_threads = 1;
  service::QueryService svc(cfg);
  Status added = svc.AddInstance("case", ctx.c->db);
  if (!added.ok()) {
    return Fail(name, "AddInstance: " + added.ToString());
  }
  service::RequestRouter router(
      &svc, [&ctx](const service::WireRequest&) -> Result<rel::QueryNodePtr> {
        return ctx.c->query;
      });

  std::ostringstream line;
  line << "{\"op\":\"query\",\"id\":" << req.id
       << ",\"instance\":\"case\",\"deadline_ms\":1e12}";
  bool shutdown = false;
  const std::string json_response = router.Handle(line.str(), &shutdown);

  std::string async_response;
  {
    std::mutex mu;
    std::condition_variable cv;
    bool delivered = false;
    service::WireRequest async_req = req;
    async_req.mc_worlds = 0;
    async_req.seed = 0;
    async_req.qnum = 1;
    router.HandleAsync(async_req, [&](std::string response, bool) {
      std::lock_guard<std::mutex> lock(mu);
      async_response = std::move(response);
      delivered = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return delivered; });
  }

  auto sync_parsed = service::ParseJson(json_response);
  auto async_parsed = service::ParseJson(async_response);
  if (!sync_parsed.ok() || !async_parsed.ok()) {
    return Fail(name, "a response failed to parse back");
  }
  auto sync_ok_field = sync_parsed->GetBool("ok", false);
  auto async_ok_field = async_parsed->GetBool("ok", false);
  const bool sync_ok = sync_ok_field.ok() && *sync_ok_field;
  const bool async_ok = async_ok_field.ok() && *async_ok_field;
  if (sync_ok != async_ok) {
    return Fail(name, "sync ok=" + std::to_string(sync_ok) +
                          " != async ok=" + std::to_string(async_ok));
  }
  if (sync_ok) {
    for (const char* field : {"min", "max", "proved_min", "proved_max"}) {
      auto s = sync_parsed->GetNumber(field, -1e300);
      auto a = async_parsed->GetNumber(field, -1e300);
      if (!s.ok() || !a.ok() || *s != *a) {
        return Fail(name, std::string("sync/async disagree on ") + field +
                              ": " + (s.ok() ? Num(*s) : "<missing>") +
                              " vs " + (a.ok() ? Num(*a) : "<missing>"));
      }
    }
  } else {
    auto s = sync_parsed->GetString("status", "");
    auto a = async_parsed->GetString("status", "");
    if (!s.ok() || !a.ok() || *s != *a) {
      return Fail(name, "sync/async disagree on the error status");
    }
  }

  // Frame the async response exactly as the binary front end would and
  // check the payload is the JSON text verbatim.
  size_t consumed = 0;
  net::Frame frame;
  auto got = net::TryDecodeFrame(net::EncodeResponseFrame(async_response),
                                 &consumed, &frame);
  if (!got.ok() || !*got) {
    return Fail(name, "response frame failed to decode");
  }
  if (frame.payload != async_response) {
    return Fail(name, "response framing altered the JSON text");
  }
  return Pass(name);
}

}  // namespace

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "pass";
    case Verdict::kSkip: return "skip";
    case Verdict::kFail: return "FAIL";
  }
  return "?";
}

std::string CaseContext::AnswerSummary::ToString() const {
  if (!ok) return std::string("<") + Status::CodeName(code) + ">";
  std::ostringstream os;
  os << "[" << min << (min_exact ? "" : "~") << ", " << max
     << (max_exact ? "" : "~") << "] proved [" << min_proved << ", "
     << max_proved << "]";
  return os.str();
}

Result<CaseContext> MakeContext(const FuzzCase& c) {
  CaseContext ctx;
  ctx.c = &c;
  LICM_ASSIGN_OR_RETURN(ctx.oracle, OracleAggregate(c));
  LICM_ASSIGN_OR_RETURN(ctx.baseline, Answer(c, BaselineOptions()));
  return ctx;
}

const std::vector<Invariant>& AllInvariants() {
  static const std::vector<Invariant> kAll = {
      {"oracle", "bounds equal exhaustive possible-world enumeration",
       CheckOracle},
      {"order", "MIN <= MAX and proved bounds envelope values and oracle",
       CheckOrder},
      {"columnar", "bit-identical bounds from the columnar and row engines",
       CheckColumnar},
      {"prune", "bit-identical bounds with pruning off", CheckPrune},
      {"presolve", "bit-identical bounds with presolve off", CheckPresolve},
      {"cache", "bit-identical bounds with the solve cache off", CheckCache},
      {"decompose", "bit-identical bounds with decomposition off",
       CheckDecompose},
      {"threads", "bit-identical bounds with 1 vs 4 worker threads",
       CheckThreads},
      {"solver_features", "bit-identical bounds with warm LP, RC fixing, "
                          "cuts, pseudo-cost branching, and the adaptive "
                          "prologue off",
       CheckSolverFeatures},
      {"minmax", "SolveMinMax equals two single-sense solves",
       CheckMinMaxBatch},
      {"sampler", "Monte-Carlo world answers land inside exact bounds",
       CheckSampler},
      {"lp_roundtrip", "LP export/parse round-trip preserves the program",
       CheckLpRoundTrip},
      {"timeout", "deadline-capped solves stay valid and Gap-consistent",
       CheckTimeout},
      {"wire", "binary request codec round-trips and agrees with the "
               "JSON parser; frames reject truncation/corruption; sync and "
               "async router paths answer identically",
       CheckWire},
      {"service", "service responses match offline bounds; degraded "
                  "intervals contain them",
       CheckService},
      {"incremental", "after every random mutation step, the versioned "
                      "instance's warm answer is bit-identical to a "
                      "from-scratch rebuild",
       CheckIncremental},
  };
  return kAll;
}

Result<std::vector<InvariantReport>> CheckCase(const FuzzCase& c,
                                               const std::string& filter) {
  LICM_ASSIGN_OR_RETURN(CaseContext ctx, MakeContext(c));
  std::vector<InvariantReport> out;
  for (const Invariant& inv : AllInvariants()) {
    if (!filter.empty() &&
        std::string(inv.name).find(filter) == std::string::npos) {
      continue;
    }
    out.push_back(inv.check(ctx));
  }
  return out;
}

Result<solver::LinearProgram> BuildCaseLp(const FuzzCase& c) {
  if (c.query == nullptr || !rel::IsAggregate(*c.query)) {
    return Status::InvalidArgument("fuzz case query is not an aggregate");
  }
  LicmDatabase db = c.db;
  LICM_ASSIGN_OR_RETURN(LicmRelation result, EvaluateLicm(*c.query->left, &db));
  OpContext ctx{&db.pool(), &db.constraints()};
  LICM_ASSIGN_OR_RETURN(result, MergeDuplicates(result, ctx));
  Objective obj;
  if (c.query->kind == rel::QueryKind::kCountStar) {
    obj = CountObjective(result);
  } else if (c.query->kind == rel::QueryKind::kSum) {
    LICM_ASSIGN_OR_RETURN(obj, SumObjective(result, c.query->sum_column));
  } else {
    return Status::InvalidArgument("BuildCaseLp: MIN/MAX roots have no "
                                   "single-program form");
  }
  // Identity prune: every pool variable and every constraint stays, the
  // same program ComputeBounds builds with options.prune == false.
  solver::LinearProgram lp;
  for (uint32_t v = 0; v < db.pool().size(); ++v) lp.AddBinary();
  for (const LinearConstraint& lc : db.constraints().constraints()) {
    solver::Row row;
    row.terms.reserve(lc.terms.size());
    for (const auto& t : lc.terms) {
      row.terms.push_back({t.var, static_cast<double>(t.coef)});
    }
    switch (lc.op) {
      case ConstraintOp::kLe: row.op = solver::RowOp::kLe; break;
      case ConstraintOp::kGe: row.op = solver::RowOp::kGe; break;
      case ConstraintOp::kEq: row.op = solver::RowOp::kEq; break;
    }
    row.rhs = static_cast<double>(lc.rhs);
    lp.AddRow(std::move(row));
  }
  for (const auto& [v, coef] : obj.coefs) lp.SetObjectiveCoef(v, coef);
  lp.AddObjectiveConstant(obj.constant);
  return lp;
}

}  // namespace licm::testing
