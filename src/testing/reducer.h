// Delta-debugging reducer for failing fuzz cases (DESIGN.md §9).
//
// Given a case and a predicate "does the failure still reproduce", the
// reducer greedily drops tuples and constraints, hoists query subtrees
// over their parents, and compacts the variable space, iterating to a
// fixpoint. Every candidate is validated by re-running the predicate, so
// any semantics-changing step that loses the failure is simply rejected.
// The result is the small, self-contained instance a human can debug —
// written out via repro.h next to its `.lp` export.
#ifndef LICM_TESTING_REDUCER_H_
#define LICM_TESTING_REDUCER_H_

#include <functional>
#include <string>

#include "testing/generator.h"

namespace licm::testing {

/// Returns true when the (possibly reduced) case still exhibits the
/// failure being chased. Predicates must treat structurally invalid cases
/// (Status errors from CheckCase) as "does not reproduce".
using FailurePredicate = std::function<bool(const FuzzCase&)>;

struct ReduceResult {
  FuzzCase reduced;
  /// Fixpoint rounds executed.
  int rounds = 0;
  size_t tuples_before = 0, tuples_after = 0;
  size_t constraints_before = 0, constraints_after = 0;
  uint32_t vars_before = 0, vars_after = 0;
};

/// Shrinks `c` under `still_fails`. Requires still_fails(c) (callers
/// should only reduce cases they have already seen fail); if it does not
/// hold, the input is returned unchanged.
ReduceResult ReduceCase(const FuzzCase& c, const FailurePredicate& still_fails);

/// Convenience wrapper: reduces against "invariant `name` still reports
/// kFail on this case" (exact name match against the registry).
ReduceResult ReduceForInvariant(const FuzzCase& c, const std::string& name);

/// The predicate ReduceForInvariant uses, exposed for the fuzz CLI.
bool InvariantStillFails(const FuzzCase& c, const std::string& name);

}  // namespace licm::testing

#endif  // LICM_TESTING_REDUCER_H_
