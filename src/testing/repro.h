// Self-contained repro files for fuzz failures (DESIGN.md §9).
//
// A repro file captures one FuzzCase completely — seed, variable count,
// relation schema + tuples + Ext attributes, constraint set, and the query
// tree as an s-expression — in a line-oriented text format that
// `licm_fuzz --repro <file>` replays without regenerating. The reducer
// writes these (next to the `.lp` export of the same case) for every
// shrunk failure.
#ifndef LICM_TESTING_REPRO_H_
#define LICM_TESTING_REPRO_H_

#include <string>

#include "testing/generator.h"

namespace licm::testing {

/// Renders `c` in the repro text format. Serialization is canonical:
/// parsing and re-serializing yields the identical string.
std::string SerializeCase(const FuzzCase& c);

/// Parses a repro file body. Validates variable ids, schema/tuple
/// consistency, and that the query root is an aggregate.
Result<FuzzCase> ParseCase(const std::string& text);

Status WriteReproFile(const FuzzCase& c, const std::string& path);
Result<FuzzCase> ReadReproFile(const std::string& path);

/// Query tree as a one-line s-expression, e.g.
///   (count_star (select (scan t) (pred ge item "brie")))
std::string SerializeQuery(const rel::QueryNode& q);
Result<rel::QueryNodePtr> ParseQuery(const std::string& text);

}  // namespace licm::testing

#endif  // LICM_TESTING_REPRO_H_
