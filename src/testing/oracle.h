// Possible-world oracle for fuzz cases (DESIGN.md §9).
//
// Theorem 1 makes brute-force world enumeration a complete ground truth:
// every finite world-set is LICM-encodable, so for any instance small
// enough to enumerate, the exact aggregate range is simply the min/max of
// the deterministic engine's answer over all valid assignments. This
// generalizes the sketch in src/licm/worlds.cc into the reference the
// whole differential harness checks against.
#ifndef LICM_TESTING_ORACLE_H_
#define LICM_TESTING_ORACLE_H_

#include "testing/generator.h"

namespace licm::testing {

/// Exact aggregate range of a fuzz case, by exhaustive enumeration.
struct OracleResult {
  /// False when the constraint set admits no valid assignment (no world).
  bool feasible = false;
  /// Valid assignments of the base variables (worlds before tuple-level
  /// deduplication; what the solver's feasible region contains).
  size_t num_assignments = 0;
  /// Exact extrema of the query answer over all worlds (valid iff
  /// feasible).
  double min = 0.0;
  double max = 0.0;
};

/// Enumerates every valid assignment of `c.num_base_vars` variables,
/// instantiates the database in each world, and evaluates the query with
/// the deterministic engine. Errors only on oversized instances
/// (num_base_vars > 24) or structurally invalid queries.
Result<OracleResult> OracleAggregate(const FuzzCase& c);

}  // namespace licm::testing

#endif  // LICM_TESTING_ORACLE_H_
