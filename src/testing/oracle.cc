#include "testing/oracle.h"

#include <algorithm>

#include "licm/worlds.h"
#include "relational/engine.h"

namespace licm::testing {

Result<OracleResult> OracleAggregate(const FuzzCase& c) {
  LICM_ASSIGN_OR_RETURN(
      auto assignments,
      EnumerateValidAssignments(c.db.constraints(), c.num_base_vars));
  OracleResult out;
  out.num_assignments = assignments.size();
  out.feasible = !assignments.empty();
  out.min = 1e300;
  out.max = -1e300;
  for (const auto& a : assignments) {
    rel::Database world = c.db.Instantiate(a);
    LICM_ASSIGN_OR_RETURN(double v, rel::EvaluateAggregate(*c.query, world));
    out.min = std::min(out.min, v);
    out.max = std::max(out.max, v);
  }
  return out;
}

}  // namespace licm::testing
