#include "testing/repro.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace licm::testing {
namespace {

using rel::CmpOp;
using rel::QueryKind;
using rel::QueryNodePtr;
using rel::Value;
using rel::ValueType;

constexpr const char* kMagic = "licm_fuzz_repro v1";

// ---------------------------------------------------------------------------
// Lexical layer shared by the header lines and the query s-expression.

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

struct Token {
  enum Kind { kLParen, kRParen, kAtom, kString } kind;
  std::string text;
};

Result<std::vector<Token>> Tokenize(const std::string& s) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '(') {
      out.push_back({Token::kLParen, "("});
      ++i;
    } else if (c == ')') {
      out.push_back({Token::kRParen, ")"});
      ++i;
    } else if (c == '"') {
      std::string text;
      ++i;
      for (; i < s.size() && s[i] != '"'; ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) ++i;
        text.push_back(s[i]);
      }
      if (i >= s.size()) {
        return Status::InvalidArgument("repro: unterminated string");
      }
      ++i;  // closing quote
      out.push_back({Token::kString, std::move(text)});
    } else {
      std::string text;
      for (; i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])) &&
             s[i] != '(' && s[i] != ')' && s[i] != '"';
           ++i) {
        text.push_back(s[i]);
      }
      out.push_back({Token::kAtom, std::move(text)});
    }
  }
  return out;
}

std::string ValueToken(const Value& v) {
  switch (rel::TypeOf(v)) {
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(v));
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(v));
      std::string s = buf;
      // Keep doubles lexically distinct from ints.
      if (s.find_first_of(".eEni") == std::string::npos) s += ".0";
      return s;
    }
    case ValueType::kString:
      return Quote(std::get<std::string>(v));
  }
  return "";
}

Result<Value> ParseValue(const Token& t) {
  if (t.kind == Token::kString) return Value(t.text);
  if (t.kind != Token::kAtom) {
    return Status::InvalidArgument("repro: expected a value, got '" + t.text +
                                   "'");
  }
  if (t.text.find_first_of(".eEni") != std::string::npos) {
    return Value(std::stod(t.text));
  }
  return Value(static_cast<int64_t>(std::stoll(t.text)));
}

const char* CmpToken(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "eq";
    case CmpOp::kNe: return "ne";
    case CmpOp::kLt: return "lt";
    case CmpOp::kLe: return "le";
    case CmpOp::kGt: return "gt";
    case CmpOp::kGe: return "ge";
  }
  return "?";
}

Result<CmpOp> ParseCmp(const std::string& s) {
  if (s == "eq") return CmpOp::kEq;
  if (s == "ne") return CmpOp::kNe;
  if (s == "lt") return CmpOp::kLt;
  if (s == "le") return CmpOp::kLe;
  if (s == "gt") return CmpOp::kGt;
  if (s == "ge") return CmpOp::kGe;
  return Status::InvalidArgument("repro: unknown comparison '" + s + "'");
}

// ---------------------------------------------------------------------------
// Query s-expressions.

void SerializeQueryTo(const rel::QueryNode& q, std::ostringstream* os) {
  auto child = [&](const QueryNodePtr& n) {
    *os << " ";
    SerializeQueryTo(*n, os);
  };
  *os << "(";
  switch (q.kind) {
    case QueryKind::kScan:
      *os << "scan " << Quote(q.relation_name);
      break;
    case QueryKind::kSelect:
      *os << "select";
      child(q.left);
      for (const rel::Predicate& p : q.predicates) {
        *os << " (pred " << CmpToken(p.op) << " " << p.column << " "
            << ValueToken(p.operand) << ")";
      }
      break;
    case QueryKind::kProject:
      *os << "project";
      child(q.left);
      for (const std::string& c : q.columns) *os << " " << c;
      break;
    case QueryKind::kIntersect:
      *os << "intersect";
      child(q.left);
      child(q.right);
      break;
    case QueryKind::kProduct:
      *os << "product";
      child(q.left);
      child(q.right);
      break;
    case QueryKind::kJoin:
      *os << "join";
      child(q.left);
      child(q.right);
      for (const auto& [l, r] : q.join_on) {
        *os << " (on " << l << " " << r << ")";
      }
      break;
    case QueryKind::kCountPredicate:
      *os << "count_pred";
      child(q.left);
      *os << " " << q.group_column << " " << CmpToken(q.count_op) << " "
          << q.count_d;
      break;
    case QueryKind::kSumPredicate:
      *os << "sum_pred";
      child(q.left);
      *os << " " << q.group_column << " " << q.sum_column << " "
          << CmpToken(q.count_op) << " " << q.count_d;
      break;
    case QueryKind::kCountStar:
      *os << "count_star";
      child(q.left);
      break;
    case QueryKind::kSum:
      *os << "sum";
      child(q.left);
      *os << " " << q.sum_column;
      break;
    case QueryKind::kMin:
      *os << "min";
      child(q.left);
      *os << " " << q.sum_column;
      break;
    case QueryKind::kMax:
      *os << "max";
      child(q.left);
      *os << " " << q.sum_column;
      break;
  }
  *os << ")";
}

// Recursive-descent parser over the token stream.
class QueryParser {
 public:
  explicit QueryParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<QueryNodePtr> Parse() {
    LICM_ASSIGN_OR_RETURN(QueryNodePtr q, Expr());
    if (pos_ != tokens_.size()) {
      return Status::InvalidArgument("repro: trailing tokens after query");
    }
    return q;
  }

 private:
  Status Expect(Token::Kind kind, const char* what) {
    if (pos_ >= tokens_.size() || tokens_[pos_].kind != kind) {
      return Status::InvalidArgument(std::string("repro: expected ") + what);
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> Atom(const char* what) {
    if (pos_ >= tokens_.size() || tokens_[pos_].kind != Token::kAtom) {
      return Status::InvalidArgument(std::string("repro: expected ") + what);
    }
    return tokens_[pos_++].text;
  }

  Result<int64_t> Int(const char* what) {
    LICM_ASSIGN_OR_RETURN(std::string a, Atom(what));
    return static_cast<int64_t>(std::stoll(a));
  }

  bool AtRParen() const {
    return pos_ < tokens_.size() && tokens_[pos_].kind == Token::kRParen;
  }

  Result<QueryNodePtr> Expr() {
    LICM_RETURN_NOT_OK(Expect(Token::kLParen, "'('"));
    LICM_ASSIGN_OR_RETURN(std::string head, Atom("operator name"));
    QueryNodePtr out;
    if (head == "scan") {
      if (pos_ >= tokens_.size() || tokens_[pos_].kind != Token::kString) {
        return Status::InvalidArgument("repro: scan needs a quoted name");
      }
      out = rel::Scan(tokens_[pos_++].text);
    } else if (head == "select") {
      LICM_ASSIGN_OR_RETURN(QueryNodePtr c, Expr());
      std::vector<rel::Predicate> preds;
      while (!AtRParen()) {
        LICM_RETURN_NOT_OK(Expect(Token::kLParen, "'(pred'"));
        LICM_ASSIGN_OR_RETURN(std::string kw, Atom("pred"));
        if (kw != "pred") {
          return Status::InvalidArgument("repro: expected (pred ...)");
        }
        LICM_ASSIGN_OR_RETURN(std::string opname, Atom("cmp op"));
        LICM_ASSIGN_OR_RETURN(CmpOp op, ParseCmp(opname));
        LICM_ASSIGN_OR_RETURN(std::string col, Atom("column"));
        if (pos_ >= tokens_.size()) {
          return Status::InvalidArgument("repro: pred needs a value");
        }
        LICM_ASSIGN_OR_RETURN(Value v, ParseValue(tokens_[pos_]));
        ++pos_;
        preds.push_back({std::move(col), op, std::move(v)});
        LICM_RETURN_NOT_OK(Expect(Token::kRParen, "')' after pred"));
      }
      out = rel::Select(std::move(c), std::move(preds));
    } else if (head == "project") {
      LICM_ASSIGN_OR_RETURN(QueryNodePtr c, Expr());
      std::vector<std::string> cols;
      while (!AtRParen()) {
        LICM_ASSIGN_OR_RETURN(std::string col, Atom("column"));
        cols.push_back(std::move(col));
      }
      out = rel::Project(std::move(c), std::move(cols));
    } else if (head == "intersect" || head == "product") {
      LICM_ASSIGN_OR_RETURN(QueryNodePtr l, Expr());
      LICM_ASSIGN_OR_RETURN(QueryNodePtr r, Expr());
      out = head == "intersect" ? rel::Intersect(std::move(l), std::move(r))
                                : rel::Product(std::move(l), std::move(r));
    } else if (head == "join") {
      LICM_ASSIGN_OR_RETURN(QueryNodePtr l, Expr());
      LICM_ASSIGN_OR_RETURN(QueryNodePtr r, Expr());
      std::vector<std::pair<std::string, std::string>> on;
      while (!AtRParen()) {
        LICM_RETURN_NOT_OK(Expect(Token::kLParen, "'(on'"));
        LICM_ASSIGN_OR_RETURN(std::string kw, Atom("on"));
        if (kw != "on") return Status::InvalidArgument("repro: expected (on ...)");
        LICM_ASSIGN_OR_RETURN(std::string lc, Atom("left column"));
        LICM_ASSIGN_OR_RETURN(std::string rc, Atom("right column"));
        on.emplace_back(std::move(lc), std::move(rc));
        LICM_RETURN_NOT_OK(Expect(Token::kRParen, "')' after on"));
      }
      out = rel::Join(std::move(l), std::move(r), std::move(on));
    } else if (head == "count_pred") {
      LICM_ASSIGN_OR_RETURN(QueryNodePtr c, Expr());
      LICM_ASSIGN_OR_RETURN(std::string group, Atom("group column"));
      LICM_ASSIGN_OR_RETURN(std::string opname, Atom("cmp op"));
      LICM_ASSIGN_OR_RETURN(CmpOp op, ParseCmp(opname));
      LICM_ASSIGN_OR_RETURN(int64_t d, Int("threshold"));
      out = rel::CountPredicate(std::move(c), std::move(group), op, d);
    } else if (head == "sum_pred") {
      LICM_ASSIGN_OR_RETURN(QueryNodePtr c, Expr());
      LICM_ASSIGN_OR_RETURN(std::string group, Atom("group column"));
      LICM_ASSIGN_OR_RETURN(std::string sumcol, Atom("sum column"));
      LICM_ASSIGN_OR_RETURN(std::string opname, Atom("cmp op"));
      LICM_ASSIGN_OR_RETURN(CmpOp op, ParseCmp(opname));
      LICM_ASSIGN_OR_RETURN(int64_t d, Int("threshold"));
      out = rel::SumPredicate(std::move(c), std::move(group),
                              std::move(sumcol), op, d);
    } else if (head == "count_star") {
      LICM_ASSIGN_OR_RETURN(QueryNodePtr c, Expr());
      out = rel::CountStar(std::move(c));
    } else if (head == "sum" || head == "min" || head == "max") {
      LICM_ASSIGN_OR_RETURN(QueryNodePtr c, Expr());
      LICM_ASSIGN_OR_RETURN(std::string col, Atom("column"));
      out = head == "sum"   ? rel::Sum(std::move(c), std::move(col))
            : head == "min" ? rel::Min(std::move(c), std::move(col))
                            : rel::Max(std::move(c), std::move(col));
    } else {
      return Status::InvalidArgument("repro: unknown operator '" + head + "'");
    }
    LICM_RETURN_NOT_OK(Expect(Token::kRParen, "')'"));
    return out;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

const char* TypeToken(ValueType t) {
  switch (t) {
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

Result<ValueType> ParseType(const std::string& s) {
  if (s == "int") return ValueType::kInt;
  if (s == "double") return ValueType::kDouble;
  if (s == "string") return ValueType::kString;
  return Status::InvalidArgument("repro: unknown column type '" + s + "'");
}

}  // namespace

std::string SerializeQuery(const rel::QueryNode& q) {
  std::ostringstream os;
  SerializeQueryTo(q, &os);
  return os.str();
}

Result<rel::QueryNodePtr> ParseQuery(const std::string& text) {
  LICM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return QueryParser(std::move(tokens)).Parse();
}

std::string SerializeCase(const FuzzCase& c) {
  std::ostringstream os;
  os << kMagic << "\n";
  os << "seed " << c.seed << "\n";
  os << "num_vars " << c.num_base_vars << "\n";
  auto rel_ptr = c.db.GetRelation(kFuzzRelation);
  LICM_CHECK(rel_ptr.ok());
  const LicmRelation& r = **rel_ptr;
  os << "schema";
  for (const rel::Column& col : r.schema().columns()) {
    os << " " << col.name << ":" << TypeToken(col.type);
  }
  os << "\n";
  for (size_t i = 0; i < r.size(); ++i) {
    os << "tuple";
    for (const Value& v : r.tuple(i)) os << " " << ValueToken(v);
    os << " " << (r.ext(i).certain()
                      ? std::string("certain")
                      : "b" + std::to_string(r.ext(i).var()));
    os << "\n";
  }
  for (const LinearConstraint& lc : c.db.constraints().constraints()) {
    os << "constraint " << ConstraintOpName(lc.op) << " " << lc.rhs;
    for (const auto& t : lc.terms) os << " " << t.coef << " b" << t.var;
    os << "\n";
  }
  os << "query " << SerializeQuery(*c.query) << "\n";
  os << "end\n";
  return os.str();
}

Result<FuzzCase> ParseCase(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };
  if (!next_line() || line != kMagic) {
    return Status::InvalidArgument("repro: missing header '" +
                                   std::string(kMagic) + "'");
  }
  FuzzCase c;
  rel::Schema schema;
  LicmRelation relation;
  bool have_schema = false, have_query = false, saw_end = false;
  auto parse_ext = [&](const std::string& tok) -> Result<Ext> {
    if (tok == "certain") return Ext::Certain();
    if (tok.size() < 2 || tok[0] != 'b') {
      return Status::InvalidArgument("repro: bad ext '" + tok + "'");
    }
    const uint64_t v = std::stoull(tok.substr(1));
    if (v >= c.num_base_vars) {
      return Status::InvalidArgument("repro: variable b" + std::to_string(v) +
                                     " out of range");
    }
    return Ext::Maybe(static_cast<BVar>(v));
  };
  while (next_line()) {
    LICM_ASSIGN_OR_RETURN(std::vector<Token> toks, Tokenize(line));
    if (toks.empty()) continue;
    const std::string& key = toks[0].text;
    if (key == "seed" && toks.size() == 2) {
      c.seed = std::stoull(toks[1].text);
    } else if (key == "num_vars" && toks.size() == 2) {
      c.num_base_vars = static_cast<uint32_t>(std::stoul(toks[1].text));
    } else if (key == "schema") {
      std::vector<rel::Column> cols;
      for (size_t i = 1; i < toks.size(); ++i) {
        const std::string& spec = toks[i].text;
        const size_t colon = spec.find(':');
        if (colon == std::string::npos) {
          return Status::InvalidArgument("repro: schema entry '" + spec +
                                         "' is not name:type");
        }
        LICM_ASSIGN_OR_RETURN(ValueType t, ParseType(spec.substr(colon + 1)));
        cols.push_back({spec.substr(0, colon), t});
      }
      schema = rel::Schema(std::move(cols));
      relation = LicmRelation(schema);
      have_schema = true;
    } else if (key == "tuple") {
      if (!have_schema) {
        return Status::InvalidArgument("repro: tuple before schema");
      }
      if (toks.size() != schema.size() + 2) {
        return Status::InvalidArgument("repro: tuple arity mismatch: " + line);
      }
      rel::Tuple t;
      for (size_t i = 0; i < schema.size(); ++i) {
        LICM_ASSIGN_OR_RETURN(Value v, ParseValue(toks[1 + i]));
        t.push_back(std::move(v));
      }
      LICM_ASSIGN_OR_RETURN(Ext ext, parse_ext(toks.back().text));
      LICM_RETURN_NOT_OK(relation.Append(std::move(t), ext));
    } else if (key == "constraint") {
      if (toks.size() < 3 || (toks.size() - 3) % 2 != 0) {
        return Status::InvalidArgument("repro: bad constraint line: " + line);
      }
      LinearConstraint lc;
      if (toks[1].text == "<=") lc.op = ConstraintOp::kLe;
      else if (toks[1].text == ">=") lc.op = ConstraintOp::kGe;
      else if (toks[1].text == "=") lc.op = ConstraintOp::kEq;
      else {
        return Status::InvalidArgument("repro: bad constraint op '" +
                                       toks[1].text + "'");
      }
      lc.rhs = std::stoll(toks[2].text);
      for (size_t i = 3; i + 1 < toks.size(); i += 2) {
        const std::string& vtok = toks[i + 1].text;
        if (vtok.size() < 2 || vtok[0] != 'b') {
          return Status::InvalidArgument("repro: bad term variable '" + vtok +
                                         "'");
        }
        const uint64_t v = std::stoull(vtok.substr(1));
        if (v >= c.num_base_vars) {
          return Status::InvalidArgument("repro: variable b" +
                                         std::to_string(v) + " out of range");
        }
        lc.terms.push_back(
            {static_cast<BVar>(v), std::stoll(toks[i].text)});
      }
      c.db.constraints().Add(std::move(lc));
    } else if (key == "query") {
      const size_t at = line.find("query");
      LICM_ASSIGN_OR_RETURN(c.query, ParseQuery(line.substr(at + 5)));
      have_query = true;
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      return Status::InvalidArgument("repro: unknown line: " + line);
    }
  }
  if (!have_schema || !have_query || !saw_end) {
    return Status::InvalidArgument("repro: incomplete file");
  }
  if (!rel::IsAggregate(*c.query)) {
    return Status::InvalidArgument("repro: query root is not an aggregate");
  }
  for (uint32_t v = 0; v < c.num_base_vars; ++v) c.db.pool().New();
  LICM_RETURN_NOT_OK(c.db.AddRelation(kFuzzRelation, std::move(relation)));
  return c;
}

Status WriteReproFile(const FuzzCase& c, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << SerializeCase(c);
  out.close();
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<FuzzCase> ReadReproFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCase(buf.str());
}

}  // namespace licm::testing
