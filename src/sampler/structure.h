// Uncertainty structure of a base LICM database, for world sampling.
//
// Monte-Carlo baselines sample possible worlds directly from the shape of
// the uncertainty (which items a generalized node may expand to, which
// permutation a group hides) rather than from raw linear constraints —
// exactly what the paper's MC baseline does against SQL Server. Encoders in
// src/anonymize return this structure alongside the LicmDatabase.
#ifndef LICM_SAMPLER_STRUCTURE_H_
#define LICM_SAMPLER_STRUCTURE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "licm/constraint.h"

namespace licm::sampler {

/// Z1 <= (number of true vars) <= Z2, all other combinations free. Sampled
/// uniformly over the valid subsets (sizes weighted binomially).
struct CardinalityBlock {
  std::vector<BVar> vars;
  int64_t z1 = 1;
  int64_t z2 = -1;  // -1 => no upper bound (all of them may be true)
};

/// A k x k bijection: vars[i*k + j] = 1 iff element i maps to slot j.
/// Sampled as a uniformly random permutation.
struct PermutationBlock {
  uint32_t k = 0;
  std::vector<BVar> vars;  // row-major, size k * k
};

/// Free variables (no constraint): each sampled independently with
/// probability 1/2, the uniform-over-worlds choice.
struct WorldStructure {
  uint32_t num_vars = 0;
  std::vector<CardinalityBlock> cardinality_blocks;
  std::vector<PermutationBlock> permutation_blocks;

  /// Draws one valid assignment uniformly-at-random per block.
  std::vector<uint8_t> Sample(Rng* rng) const;

  /// Structural sanity: blocks reference valid, pairwise-disjoint vars.
  Status Validate() const;
};

}  // namespace licm::sampler

#endif  // LICM_SAMPLER_STRUCTURE_H_
