// The Monte-Carlo baseline (Section IV-D "Expected Value" / Section V).
//
// Samples possible worlds of an LICM database, evaluates the query on each
// with the deterministic engine, and reports the observed min/max/mean.
// The paper uses this baseline (20 sampled worlds on SQL Server) to show
// that sampling explores only a narrow band of the possible answers, while
// LICM finds the exact extremes.
#ifndef LICM_SAMPLER_MONTE_CARLO_H_
#define LICM_SAMPLER_MONTE_CARLO_H_

#include "licm/licm_relation.h"
#include "relational/query.h"
#include "sampler/structure.h"

namespace licm::sampler {

struct MonteCarloResult {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::vector<double> samples;
  double total_ms = 0.0;  // wall-clock for all samples (instantiate + query)
};

struct MonteCarloOptions {
  int num_worlds = 20;  // the paper's sample size
  uint64_t seed = 1;
};

/// Runs the MC baseline for an aggregate query over `db`, drawing worlds
/// from `structure`.
Result<MonteCarloResult> MonteCarloBounds(const licm::LicmDatabase& db,
                                          const WorldStructure& structure,
                                          const rel::QueryNode& query,
                                          const MonteCarloOptions& options);

/// Generic constraint-driven sampler: rejection sampling of assignments
/// against an arbitrary constraint set. Exponentially slow for tightly
/// constrained systems — provided for small databases and as a test
/// reference; real workloads use WorldStructure.
Result<std::vector<uint8_t>> SampleValidAssignment(
    const licm::ConstraintSet& constraints, uint32_t num_vars, Rng* rng,
    int max_tries = 100000);

}  // namespace licm::sampler

#endif  // LICM_SAMPLER_MONTE_CARLO_H_
