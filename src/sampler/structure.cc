#include "sampler/structure.h"

#include <algorithm>
#include <unordered_set>

namespace licm::sampler {

namespace {

// Uniformly samples a subset of {0..m-1} with size in [z1, z2]: pick the
// size with probability proportional to C(m, s), then a uniform subset of
// that size. Binomials are computed in doubles with running normalization,
// which is exact enough for sampling (m is a group size, not huge).
std::vector<uint32_t> SampleSubset(uint32_t m, int64_t z1, int64_t z2,
                                   Rng* rng) {
  z1 = std::max<int64_t>(z1, 0);
  z2 = z2 < 0 ? m : std::min<int64_t>(z2, m);
  LICM_CHECK(z1 <= z2);
  // weights[s - z1] = C(m, s), scaled.
  std::vector<double> weights;
  double c = 1.0;  // C(m, 0)
  for (int64_t s = 0; s <= z2; ++s) {
    if (s >= z1) weights.push_back(c);
    c *= static_cast<double>(m - s) / static_cast<double>(s + 1);
    // Rescale to avoid overflow for large m; relative weights survive
    // within the retained window because we rescale everything kept.
    if (c > 1e250) {
      for (double& w : weights) w /= 1e250;
      c /= 1e250;
    }
  }
  double total = 0.0;
  for (double w : weights) total += w;
  double pick = rng->UniformDouble() * total;
  size_t chosen = weights.size() - 1;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (pick < weights[i]) {
      chosen = i;
      break;
    }
    pick -= weights[i];
  }
  const auto size = static_cast<uint32_t>(z1 + static_cast<int64_t>(chosen));
  std::vector<uint32_t> idx(m);
  for (uint32_t i = 0; i < m; ++i) idx[i] = i;
  rng->Shuffle(&idx);
  idx.resize(size);
  return idx;
}

}  // namespace

std::vector<uint8_t> WorldStructure::Sample(Rng* rng) const {
  std::vector<uint8_t> a(num_vars, 0);
  std::vector<bool> in_block(num_vars, false);

  for (const CardinalityBlock& b : cardinality_blocks) {
    for (BVar v : b.vars) in_block[v] = true;
    for (uint32_t i :
         SampleSubset(static_cast<uint32_t>(b.vars.size()), b.z1, b.z2,
                      rng)) {
      a[b.vars[i]] = 1;
    }
  }
  for (const PermutationBlock& b : permutation_blocks) {
    for (BVar v : b.vars) in_block[v] = true;
    std::vector<uint32_t> perm = rng->Permutation(b.k);
    for (uint32_t i = 0; i < b.k; ++i) {
      a[b.vars[i * b.k + perm[i]]] = 1;
    }
  }
  // Unconstrained variables: fair coin (uniform over their worlds).
  for (BVar v = 0; v < num_vars; ++v) {
    if (!in_block[v]) a[v] = rng->Bernoulli(0.5) ? 1 : 0;
  }
  return a;
}

Status WorldStructure::Validate() const {
  std::unordered_set<BVar> seen;
  auto check = [&](const std::vector<BVar>& vars) -> Status {
    for (BVar v : vars) {
      if (v >= num_vars) {
        return Status::InvalidArgument("block references variable " +
                                       std::to_string(v) + " >= num_vars");
      }
      if (!seen.insert(v).second) {
        return Status::InvalidArgument("variable " + std::to_string(v) +
                                       " appears in two blocks");
      }
    }
    return Status::OK();
  };
  for (const auto& b : cardinality_blocks) {
    if (b.vars.empty()) {
      return Status::InvalidArgument("empty cardinality block");
    }
    const auto n = static_cast<int64_t>(b.vars.size());
    const int64_t hi = b.z2 < 0 ? n : b.z2;
    if (b.z1 > hi || b.z1 > n) {
      return Status::InvalidArgument("cardinality block bounds invalid");
    }
    LICM_RETURN_NOT_OK(check(b.vars));
  }
  for (const auto& b : permutation_blocks) {
    if (b.vars.size() != static_cast<size_t>(b.k) * b.k || b.k == 0) {
      return Status::InvalidArgument("permutation block must hold k*k vars");
    }
    LICM_RETURN_NOT_OK(check(b.vars));
  }
  return Status::OK();
}

}  // namespace licm::sampler
