#include "sampler/monte_carlo.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "relational/engine.h"

namespace licm::sampler {

Result<MonteCarloResult> MonteCarloBounds(const licm::LicmDatabase& db,
                                          const WorldStructure& structure,
                                          const rel::QueryNode& query,
                                          const MonteCarloOptions& options) {
  if (options.num_worlds <= 0) {
    return Status::InvalidArgument("num_worlds must be positive");
  }
  LICM_RETURN_NOT_OK(structure.Validate());
  if (structure.num_vars < db.pool().size()) {
    return Status::InvalidArgument(
        "structure covers fewer variables than the database pool");
  }
  Rng rng(options.seed);
  MonteCarloResult out;
  StopWatch watch;
  for (int i = 0; i < options.num_worlds; ++i) {
    std::vector<uint8_t> a = structure.Sample(&rng);
    rel::Database world = db.Instantiate(a);
    LICM_ASSIGN_OR_RETURN(double v, rel::EvaluateAggregate(query, world));
    out.samples.push_back(v);
  }
  out.total_ms = watch.ElapsedMs();
  out.min = *std::min_element(out.samples.begin(), out.samples.end());
  out.max = *std::max_element(out.samples.begin(), out.samples.end());
  double sum = 0.0;
  for (double v : out.samples) sum += v;
  out.mean = sum / static_cast<double>(out.samples.size());
  return out;
}

Result<std::vector<uint8_t>> SampleValidAssignment(
    const licm::ConstraintSet& constraints, uint32_t num_vars, Rng* rng,
    int max_tries) {
  std::vector<uint8_t> a(num_vars);
  for (int t = 0; t < max_tries; ++t) {
    for (auto& v : a) v = rng->Bernoulli(0.5) ? 1 : 0;
    if (constraints.Satisfied(a)) return a;
  }
  return Status::OutOfRange(
      "rejection sampling failed after " + std::to_string(max_tries) +
      " tries; constraint set too tight for the generic sampler");
}

}  // namespace licm::sampler
