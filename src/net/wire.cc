#include "net/wire.h"

#include <array>
#include <cstring>

#include "common/metrics.h"

namespace licm::net {

namespace {

struct WireMetrics {
  metrics::Counter* frames_encoded;
  metrics::Counter* frames_decoded;
  metrics::Counter* frames_rejected;

  static const WireMetrics& Get() {
    static const WireMetrics m;
    return m;
  }

 private:
  WireMetrics() {
    auto& reg = metrics::MetricsRegistry::Default();
    frames_encoded = reg.GetCounter("licm_wire_frames_encoded_total");
    frames_decoded = reg.GetCounter("licm_wire_frames_decoded_total");
    frames_rejected = reg.GetCounter("licm_wire_frames_rejected_total");
  }
};

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// Request payload field numbers. Wiretypes: 0 varint (zigzag where the
// field is signed), 1 length-prefixed bytes, 2 fixed64.
enum Field : uint32_t {
  kId = 1,          // zigzag (default -1)
  kOp = 2,          // bytes
  kInstance = 3,    // bytes
  kQnum = 4,        // zigzag (default 1)
  kDeadlineMs = 5,  // fixed64 double (default -1.0)
  kMcWorlds = 6,    // zigzag
  kSeed = 7,        // plain varint
  kAction = 8,      // bytes
  kRelation = 9,    // bytes
  kRow = 10,        // bytes
  kMaybe = 11,      // varint bool
  kCindex = 12,     // zigzag (default -1)
  kCop = 13,        // bytes
  kRhs = 14,        // zigzag
  kVar = 15,        // zigzag (default -1)
  kValue = 16,      // zigzag
  kSpec = 17,       // bytes
  kReplace = 18,    // varint bool
};

enum WireType : uint32_t { kVarint = 0, kBytes = 1, kFixed64 = 2 };

void AppendTag(std::string* out, uint32_t field, uint32_t wiretype) {
  AppendVarint(out, (static_cast<uint64_t>(field) << 2) | wiretype);
}

void AppendSigned(std::string* out, uint32_t field, int64_t v) {
  AppendTag(out, field, kVarint);
  AppendVarint(out, ZigzagEncode(v));
}

void AppendUnsigned(std::string* out, uint32_t field, uint64_t v) {
  AppendTag(out, field, kVarint);
  AppendVarint(out, v);
}

void AppendBytes(std::string* out, uint32_t field, const std::string& s) {
  AppendTag(out, field, kBytes);
  AppendVarint(out, s.size());
  out->append(s);
}

void AppendDouble(std::string* out, uint32_t field, double v) {
  AppendTag(out, field, kFixed64);
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

/// Reads one LEB128 varint from buf[*pos..); false on truncation or a
/// value wider than 64 bits.
bool ReadVarint(const std::string& buf, size_t* pos, uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  while (*pos < buf.size()) {
    const uint8_t byte = static_cast<uint8_t>(buf[*pos]);
    ++*pos;
    if (shift >= 64 || (shift == 63 && (byte & 0x7E) != 0)) return false;
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

bool ReadFixed64(const std::string& buf, size_t* pos, uint64_t* out) {
  if (buf.size() - *pos < 8) return false;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(buf[*pos + i]))
            << (8 * i);
  }
  *pos += 8;
  *out = bits;
  return true;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

std::string EncodeRequestPayload(const service::WireRequest& req) {
  std::string out;
  if (req.id != -1) AppendSigned(&out, kId, req.id);
  if (!req.op.empty()) AppendBytes(&out, kOp, req.op);
  if (!req.instance.empty()) AppendBytes(&out, kInstance, req.instance);
  if (req.qnum != 1) AppendSigned(&out, kQnum, req.qnum);
  if (req.deadline_ms != -1.0) AppendDouble(&out, kDeadlineMs, req.deadline_ms);
  if (req.mc_worlds != 0) AppendSigned(&out, kMcWorlds, req.mc_worlds);
  if (req.seed != 0) AppendUnsigned(&out, kSeed, req.seed);
  if (!req.action.empty()) AppendBytes(&out, kAction, req.action);
  if (!req.relation.empty()) AppendBytes(&out, kRelation, req.relation);
  if (!req.row.empty()) AppendBytes(&out, kRow, req.row);
  if (req.maybe) AppendUnsigned(&out, kMaybe, 1);
  if (req.cindex != -1) AppendSigned(&out, kCindex, req.cindex);
  if (!req.cop.empty()) AppendBytes(&out, kCop, req.cop);
  if (req.rhs != 0) AppendSigned(&out, kRhs, req.rhs);
  if (req.var != -1) AppendSigned(&out, kVar, req.var);
  if (req.value != 0) AppendSigned(&out, kValue, req.value);
  if (!req.spec.empty()) AppendBytes(&out, kSpec, req.spec);
  if (req.replace) AppendUnsigned(&out, kReplace, 1);
  return out;
}

Result<service::WireRequest> DecodeRequestPayload(const std::string& payload) {
  service::WireRequest req;
  size_t pos = 0;
  while (pos < payload.size()) {
    uint64_t tag;
    if (!ReadVarint(payload, &pos, &tag)) {
      return Status::InvalidArgument("binary request: truncated field tag");
    }
    const uint32_t field = static_cast<uint32_t>(tag >> 2);
    const uint32_t wiretype = static_cast<uint32_t>(tag & 0x3);

    uint64_t uval = 0;
    std::string sval;
    if (wiretype == kVarint || wiretype == kFixed64) {
      const bool ok = wiretype == kVarint ? ReadVarint(payload, &pos, &uval)
                                          : ReadFixed64(payload, &pos, &uval);
      if (!ok) {
        return Status::InvalidArgument("binary request: truncated field " +
                                       std::to_string(field));
      }
    } else if (wiretype == kBytes) {
      uint64_t len;
      if (!ReadVarint(payload, &pos, &len) || payload.size() - pos < len) {
        return Status::InvalidArgument("binary request: truncated bytes in field " +
                                       std::to_string(field));
      }
      sval = payload.substr(pos, len);
      pos += len;
    } else {
      return Status::InvalidArgument("binary request: unknown wiretype " +
                                     std::to_string(wiretype));
    }

    switch (field) {
      case kId: req.id = ZigzagDecode(uval); break;
      case kOp: req.op = std::move(sval); break;
      case kInstance: req.instance = std::move(sval); break;
      case kQnum: req.qnum = static_cast<int>(ZigzagDecode(uval)); break;
      case kDeadlineMs: {
        double d;
        std::memcpy(&d, &uval, sizeof(d));
        req.deadline_ms = d;
        break;
      }
      case kMcWorlds: req.mc_worlds = static_cast<int>(ZigzagDecode(uval)); break;
      case kSeed: req.seed = uval; break;
      case kAction: req.action = std::move(sval); break;
      case kRelation: req.relation = std::move(sval); break;
      case kRow: req.row = std::move(sval); break;
      case kMaybe: req.maybe = uval != 0; break;
      case kCindex: req.cindex = ZigzagDecode(uval); break;
      case kCop: req.cop = std::move(sval); break;
      case kRhs: req.rhs = ZigzagDecode(uval); break;
      case kVar: req.var = ZigzagDecode(uval); break;
      case kValue: req.value = ZigzagDecode(uval); break;
      case kSpec: req.spec = std::move(sval); break;
      case kReplace: req.replace = uval != 0; break;
      default: break;  // unknown field: skipped (forward compatibility)
    }
  }
  return req;
}

std::string EncodeFrame(uint8_t type, const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 16);
  out.push_back(static_cast<char>(kWireMagic));
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  AppendVarint(&out, payload.size());
  out.append(payload);
  // CRC covers version..payload: everything whose corruption the magic
  // byte can't catch.
  const uint32_t crc = Crc32(out.data() + 1, out.size() - 1);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  WireMetrics::Get().frames_encoded->Increment();
  return out;
}

Result<bool> TryDecodeFrame(const std::string& buf, size_t* consumed,
                            Frame* frame) {
  *consumed = 0;
  if (buf.empty()) return false;
  if (static_cast<uint8_t>(buf[0]) != kWireMagic) {
    WireMetrics::Get().frames_rejected->Increment();
    return Status::InvalidArgument("wire: bad frame magic");
  }
  if (buf.size() < 2) return false;
  if (static_cast<uint8_t>(buf[1]) != kWireVersion) {
    WireMetrics::Get().frames_rejected->Increment();
    return Status::InvalidArgument(
        "wire: unsupported protocol version " +
        std::to_string(static_cast<unsigned>(static_cast<uint8_t>(buf[1]))));
  }
  if (buf.size() < 3) return false;
  const uint8_t type = static_cast<uint8_t>(buf[2]);
  if (type != kFrameRequest && type != kFrameResponse) {
    WireMetrics::Get().frames_rejected->Increment();
    return Status::InvalidArgument("wire: unknown frame type " +
                                   std::to_string(static_cast<unsigned>(type)));
  }

  size_t pos = 3;
  uint64_t len = 0;
  // Distinguish "varint truncated by buffer end" (need more bytes) from
  // a malformed varint inside a complete prefix.
  {
    uint64_t value = 0;
    int shift = 0;
    bool done = false;
    while (pos < buf.size()) {
      const uint8_t byte = static_cast<uint8_t>(buf[pos]);
      ++pos;
      if (shift > 28) {  // 5 bytes cap the length at 2^35 > kMaxFramePayload
        WireMetrics::Get().frames_rejected->Increment();
        return Status::InvalidArgument("wire: oversized length varint");
      }
      value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        done = true;
        break;
      }
      shift += 7;
    }
    if (!done) return false;
    len = value;
  }
  if (len > kMaxFramePayload) {
    WireMetrics::Get().frames_rejected->Increment();
    return Status::InvalidArgument("wire: frame payload " +
                                   std::to_string(len) + " exceeds limit");
  }
  if (buf.size() - pos < len + 4) return false;

  const uint32_t expect = Crc32(buf.data() + 1, pos - 1 + len);
  uint32_t got = 0;
  for (int i = 0; i < 4; ++i) {
    got |= static_cast<uint32_t>(static_cast<uint8_t>(buf[pos + len + i]))
           << (8 * i);
  }
  if (expect != got) {
    WireMetrics::Get().frames_rejected->Increment();
    return Status::InvalidArgument("wire: frame CRC mismatch");
  }

  frame->type = type;
  frame->payload = buf.substr(pos, len);
  *consumed = pos + len + 4;
  WireMetrics::Get().frames_decoded->Increment();
  return true;
}

}  // namespace licm::net
