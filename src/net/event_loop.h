// Non-blocking epoll event loop (DESIGN.md §14).
//
// One loop = one thread = one epoll instance plus an eventfd for
// cross-thread wakeups. Fd handlers and the connection registry built on
// top are confined to the loop thread; the only thread-safe entry points
// are Post() and Stop(), which queue work / signal the eventfd. Worker
// threads finishing a solve never touch connection state directly — they
// Post() a completion closure that the loop runs between epoll waits.
//
// Registration uses edge-triggered epoll (EPOLLET): handlers must drain
// their fd to EAGAIN on every event, in exchange for one wakeup per
// readiness transition instead of per poll.
#ifndef LICM_NET_EVENT_LOOP_H_
#define LICM_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace licm::net {

class EventLoop {
 public:
  /// Receives the epoll event mask for the registered fd.
  using FdHandler = std::function<void(uint32_t)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creation status (epoll_create1/eventfd can fail under fd pressure).
  const Status& status() const { return status_; }

  /// Registers `fd` with the given epoll event mask (callers add EPOLLET
  /// themselves — the loop does not second-guess the trigger mode).
  /// Loop-thread only (or before Run()).
  Status Add(int fd, uint32_t events, FdHandler handler);
  Status Mod(int fd, uint32_t events);
  /// Unregisters; safe to call from inside the fd's own handler.
  void Remove(int fd);

  /// Queues `fn` to run on the loop thread and wakes the loop. Safe from
  /// any thread, including the loop thread itself (fn runs on the next
  /// iteration, never reentrantly).
  void Post(std::function<void()> fn);

  /// Blocks dispatching events until Stop(). Runs at most one Run() at a
  /// time.
  void Run();

  /// Signals the loop to exit after the current iteration. Any thread.
  /// Sticky: a Stop() that lands before Run() makes Run() return
  /// immediately instead of being lost to the startup race.
  void Stop();

  bool IsInLoopThread() const {
    return std::this_thread::get_id() == loop_tid_;
  }

  /// Counter bumped once per epoll_wait return (a "wakeup"); optional.
  void set_wakeup_counter(metrics::Counter* c) { wakeups_ = c; }

 private:
  void DrainPosted();

  Status status_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread::id loop_tid_;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  // fd -> handler; loop-thread confined. The indirection through a map
  // (instead of epoll_event.data.ptr) makes Remove()-during-dispatch
  // safe: stale events for an already-removed fd find no handler.
  std::unordered_map<int, FdHandler> handlers_;

  metrics::Counter* wakeups_ = nullptr;
};

}  // namespace licm::net

#endif  // LICM_NET_EVENT_LOOP_H_
