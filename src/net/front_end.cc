#include "net/front_end.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace licm::net {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

NetFrontEnd::NetFrontEnd(service::RequestRouter* router, Options options)
    : router_(router), options_(options) {
  if (options_.num_loops < 1) options_.num_loops = 1;
  auto& reg = metrics::MetricsRegistry::Default();
  accepted_total_ = reg.GetCounter("licm_net_accepted_total");
  bytes_read_binary_ =
      reg.GetCounter("licm_net_bytes_read_total", {{"codec", "binary"}});
  bytes_read_json_ =
      reg.GetCounter("licm_net_bytes_read_total", {{"codec", "json"}});
  bytes_written_binary_ =
      reg.GetCounter("licm_net_bytes_written_total", {{"codec", "binary"}});
  bytes_written_json_ =
      reg.GetCounter("licm_net_bytes_written_total", {{"codec", "json"}});
  for (int i = 0; i < options_.num_loops; ++i) {
    auto state = std::make_unique<LoopState>();
    const std::string label = std::to_string(i);
    state->open_connections =
        reg.GetGauge("licm_net_open_connections", {{"loop", label}});
    state->loop.set_wakeup_counter(
        reg.GetCounter("licm_net_epoll_wakeups_total", {{"loop", label}}));
    loops_.push_back(std::move(state));
  }
}

NetFrontEnd::~NetFrontEnd() {
  Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status NetFrontEnd::Listen(const std::string& host, int port) {
  for (auto& state : loops_) LICM_RETURN_NOT_OK(state->loop.status());
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 1024) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  LICM_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Status NetFrontEnd::Serve() {
  if (listen_fd_ < 0) return Status::Internal("Serve() before Listen()");
  LICM_RETURN_NOT_OK(loops_[0]->loop.Add(
      listen_fd_, EPOLLIN | EPOLLET, [this](uint32_t) { AcceptReady(); }));

  std::vector<std::thread> threads;
  for (size_t i = 1; i < loops_.size(); ++i) {
    threads.emplace_back([loop = &loops_[i]->loop] { loop->Run(); });
  }
  loops_[0]->loop.Run();

  // Loop 0 exited (Stop() or a shutdown request already ran) — bring the
  // rest down and release every connection.
  for (auto& state : loops_) state->loop.Stop();
  for (std::thread& t : threads) t.join();
  for (auto& state : loops_) {
    for (auto& [id, conn] : state->conns) {
      state->loop.Remove(conn->fd);
      ::close(conn->fd);
      state->open_connections->Add(-1.0);
    }
    state->conns.clear();
  }
  return Status::OK();
}

void NetFrontEnd::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& state : loops_) state->loop.Stop();
}

void NetFrontEnd::AcceptReady() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained; anything else: retried on next event
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_total_->Increment();
    const size_t target = next_loop_;
    next_loop_ = (next_loop_ + 1) % loops_.size();
    if (target == 0) {
      AdoptConnection(0, fd);
    } else {
      loops_[target]->loop.Post(
          [this, target, fd] { AdoptConnection(target, fd); });
    }
  }
}

void NetFrontEnd::AdoptConnection(size_t loop_index, int fd) {
  LoopState& state = *loops_[loop_index];
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->loop_index = loop_index;
  const uint64_t id = conn->id;
  Status added = state.loop.Add(
      fd, EPOLLIN | EPOLLRDHUP | EPOLLET,
      [this, loop_index, id](uint32_t events) {
        ConnReady(loop_index, id, events);
      });
  if (!added.ok()) {
    ::close(fd);
    return;
  }
  state.open_connections->Add(1.0);
  state.conns.emplace(id, std::move(conn));
}

void NetFrontEnd::ConnReady(size_t loop_index, uint64_t conn_id,
                            uint32_t events) {
  LoopState& state = *loops_[loop_index];
  auto it = state.conns.find(conn_id);
  if (it == state.conns.end()) return;  // raced with close
  Conn& conn = *it->second;
  if (events & EPOLLERR) {
    CloseConn(state, conn);
    return;
  }
  if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) {
    ReadReady(state, conn);
    if (state.conns.find(conn_id) == state.conns.end()) return;
  }
  if (events & EPOLLOUT) TryFlush(state, conn);
}

void NetFrontEnd::ReadReady(LoopState& state, Conn& conn) {
  char chunk[16384];
  size_t got = 0;
  while (true) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // ET: drained
      CloseConn(state, conn);
      return;
    }
    if (n == 0) {
      conn.peer_closed = true;
      break;
    }
    conn.in.append(chunk, static_cast<size_t>(n));
    got += static_cast<size_t>(n);
  }
  if (conn.codec == Codec::kUnknown && !conn.in.empty()) {
    conn.codec = static_cast<uint8_t>(conn.in[0]) == kWireMagic
                     ? Codec::kBinary
                     : Codec::kLineJson;
  }
  if (got > 0) {
    (conn.codec == Codec::kBinary ? bytes_read_binary_ : bytes_read_json_)
        ->Increment(static_cast<int64_t>(got));
    DrainInput(state, conn);
  }
  MaybeFinish(state, conn);
}

void NetFrontEnd::DrainInput(LoopState& state, Conn& conn) {
  (void)state;
  if (conn.codec == Codec::kBinary) {
    while (!conn.dead) {
      size_t consumed = 0;
      Frame frame;
      auto decoded = TryDecodeFrame(conn.in, &consumed, &frame);
      if (!decoded.ok()) {
        // Framing is broken — there is no resync point in the stream, so
        // the connection dies (after flushing responses already queued).
        conn.dead = true;
        break;
      }
      if (!*decoded) break;  // partial frame: wait for more bytes
      conn.in.erase(0, consumed);
      if (frame.type != kFrameRequest) {
        conn.dead = true;
        break;
      }
      auto req = DecodeRequestPayload(frame.payload);
      if (!req.ok()) {
        // The frame itself was intact (CRC passed): answer the malformed
        // payload like the JSON codec answers a malformed line.
        DispatchError(conn, -1, req.status());
        continue;
      }
      DispatchRequest(conn, *req);
    }
    return;
  }
  // Line-JSON codec: identical line discipline to the legacy TcpServer.
  size_t start = 0;
  for (size_t nl = conn.in.find('\n', start); nl != std::string::npos;
       nl = conn.in.find('\n', start)) {
    std::string line = conn.in.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    auto parsed = service::ParseRequestLine(line);
    if (!parsed.ok()) {
      DispatchError(conn, -1, parsed.status());
      continue;
    }
    DispatchRequest(conn, *parsed);
  }
  conn.in.erase(0, start);
}

void NetFrontEnd::DispatchRequest(Conn& conn, const service::WireRequest& req) {
  ++conn.inflight;
  const size_t loop_index = conn.loop_index;
  const uint64_t conn_id = conn.id;
  auto done = [this, loop_index, conn_id](std::string response,
                                          bool shutdown) {
    CompleteOnLoop(loop_index, conn_id, std::move(response), shutdown);
  };
  if (dispatch_) {
    dispatch_(req, std::move(done));
  } else {
    router_->HandleAsync(req, std::move(done));
  }
}

void NetFrontEnd::DispatchError(Conn& conn, int64_t id, const Status& error) {
  ++conn.inflight;
  CompleteOnLoop(conn.loop_index, conn.id, service::RenderError(id, error),
                 false);
}

void NetFrontEnd::CompleteOnLoop(size_t loop_index, uint64_t conn_id,
                                 std::string response, bool shutdown) {
  // Always a Post, even from the loop thread itself: completions never
  // run reentrantly under DrainInput.
  loops_[loop_index]->loop.Post(
      [this, loop_index, conn_id, response = std::move(response), shutdown] {
        LoopState& state = *loops_[loop_index];
        auto it = state.conns.find(conn_id);
        if (it == state.conns.end()) return;  // connection died first
        Conn& conn = *it->second;
        --conn.inflight;
        if (shutdown) conn.shutdown_after = true;
        SendResponse(state, conn, response);
      });
}

void NetFrontEnd::SendResponse(LoopState& state, Conn& conn,
                               const std::string& response) {
  if (conn.codec == Codec::kBinary) {
    conn.out.append(EncodeResponseFrame(response));
  } else {
    conn.out.append(response);
    conn.out.push_back('\n');
  }
  TryFlush(state, conn);
}

void NetFrontEnd::TryFlush(LoopState& state, Conn& conn) {
  size_t sent = 0;
  while (sent < conn.out.size()) {
    const ssize_t w = ::send(conn.fd, conn.out.data() + sent,
                             conn.out.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        (conn.codec == Codec::kBinary ? bytes_written_binary_
                                      : bytes_written_json_)
            ->Increment(static_cast<int64_t>(sent));
        conn.out.erase(0, sent);
        if (!conn.want_write) {
          conn.want_write = true;
          state.loop.Mod(conn.fd, EPOLLIN | EPOLLRDHUP | EPOLLOUT | EPOLLET);
        }
        return;
      }
      CloseConn(state, conn);
      return;
    }
    sent += static_cast<size_t>(w);
  }
  (conn.codec == Codec::kBinary ? bytes_written_binary_ : bytes_written_json_)
      ->Increment(static_cast<int64_t>(sent));
  conn.out.clear();
  if (conn.want_write) {
    conn.want_write = false;
    state.loop.Mod(conn.fd, EPOLLIN | EPOLLRDHUP | EPOLLET);
  }
  MaybeFinish(state, conn);
}

void NetFrontEnd::MaybeFinish(LoopState& state, Conn& conn) {
  if (!conn.out.empty()) return;
  if (conn.shutdown_after && conn.inflight == 0) {
    const int fd = conn.fd;
    CloseConn(state, conn);
    (void)fd;
    Stop();
    return;
  }
  if (conn.dead || (conn.peer_closed && conn.inflight == 0)) {
    CloseConn(state, conn);
  }
}

void NetFrontEnd::CloseConn(LoopState& state, Conn& conn) {
  state.loop.Remove(conn.fd);
  ::close(conn.fd);
  state.open_connections->Add(-1.0);
  state.conns.erase(conn.id);  // frees `conn` — must be the last touch
}

}  // namespace licm::net
