#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace licm::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    status_ = Status::IOError(std::string("epoll_create1: ") +
                              std::strerror(errno));
    return;
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    status_ = Status::IOError(std::string("eventfd: ") + std::strerror(errno));
    return;
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    status_ = Status::IOError(std::string("epoll_ctl(wake): ") +
                              std::strerror(errno));
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Add(int fd, uint32_t events, FdHandler handler) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(add): ") +
                           std::strerror(errno));
  }
  handlers_[fd] = std::move(handler);
  return Status::OK();
}

Status EventLoop::Mod(int fd, uint32_t events) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(mod): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& fn : tasks) fn();
}

void EventLoop::Run() {
  loop_tid_ = std::this_thread::get_id();
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (wakeups_ != nullptr) wakeups_->Increment();
    bool woken = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        woken = true;
        continue;
      }
      // Look the handler up per event: an earlier handler in this batch
      // may have Remove()d this fd.
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      FdHandler handler = it->second;  // copy: handler may Remove(fd)
      handler(events[i].events);
    }
    if (woken) DrainPosted();
  }
  // Posted work that raced with Stop() still runs (completion closures
  // must not be dropped on shutdown).
  DrainPosted();
  loop_tid_ = std::thread::id();
}

void EventLoop::Stop() {
  stopping_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace licm::net
