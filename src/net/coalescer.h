// In-flight request coalescing (DESIGN.md §14).
//
// Many clients ask the same aggregate over the same instance version —
// the workload shape of the paper's setting. The ComponentCache already
// collapses *sequential* duplicates; the coalescer collapses
// *concurrent* ones: the first request with a given key (the leader)
// submits the solve, every identical request arriving before it
// completes (followers) just parks a callback, and the one result fans
// out to all of them. N identical concurrent requests cost one queue
// slot and one solve.
//
// Key = (instance, instance version at submit, canonical query text,
// deadline budget, Monte-Carlo worlds + seed). The version pin makes
// coalescing MVCC-correct: a mutation commit publishes a new version, so
// requests that must see it get a fresh key and never join a stale
// solve. (A follower that arrives after a commit but keys the leader's
// version would be a staleness bug — that cannot happen, because the key
// samples VersionOf at arrival.) Deadline and sampling parameters are in
// the key because they change the answer a degraded request gets.
#ifndef LICM_NET_COALESCER_H_
#define LICM_NET_COALESCER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/query_service.h"

namespace licm::net {

class RequestCoalescer {
 public:
  explicit RequestCoalescer(service::QueryService* service);

  /// Drop-in for QueryService::ExecuteAsync (plugs into
  /// RequestRouter::set_async_executor). The callback runs exactly once,
  /// on a service worker thread (or inline on admission failure).
  void Execute(service::QueryRequest request,
               service::QueryService::ResponseCallback done);

  /// Followers served from a leader's in-flight solve.
  int64_t hits() const;
  /// Leaders (solves actually submitted to the service).
  int64_t misses() const;

 private:
  struct InFlight {
    std::vector<service::QueryService::ResponseCallback> waiters;
  };

  service::QueryService* service_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace licm::net

#endif  // LICM_NET_COALESCER_H_
