#include "net/shard_router.h"

#include <algorithm>

namespace licm::net {

uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  // splitmix64 finisher: FNV alone clusters on short ASCII keys.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

HashRing::HashRing(int num_shards, int vnodes_per_shard)
    : num_shards_(num_shards < 1 ? 1 : num_shards) {
  points_.reserve(static_cast<size_t>(num_shards_) * vnodes_per_shard);
  for (int s = 0; s < num_shards_; ++s) {
    for (int v = 0; v < vnodes_per_shard; ++v) {
      points_.push_back(
          {HashKey(std::to_string(s) + "/" + std::to_string(v)), s});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) { return a.hash < b.hash; });
}

int HashRing::ShardFor(const std::string& key) const {
  if (num_shards_ == 1 || points_.empty()) return 0;
  const uint64_t h = HashKey(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, uint64_t hash) { return p.hash < hash; });
  if (it == points_.end()) it = points_.begin();  // wrap: the ring closes
  return it->shard;
}

}  // namespace licm::net
