#include "net/proxy.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <utility>

#include "net/wire.h"
#include "service/protocol.h"

namespace licm::net {

namespace {

Status WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("backplane send: ") +
                             std::strerror(errno));
    }
    if (w == 0) return Status::IOError("backplane send: peer closed");
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Extracts the correlation id from a response document. Every renderer
/// begins with `{"id":N,` (protocol.cc Begin), so this is a prefix scan,
/// not a JSON parse.
bool ParseResponseId(const std::string& response, int64_t* id,
                     size_t* id_end) {
  constexpr const char kPrefix[] = "{\"id\":";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (response.compare(0, kPrefixLen, kPrefix) != 0) return false;
  size_t pos = kPrefixLen;
  bool neg = false;
  if (pos < response.size() && response[pos] == '-') {
    neg = true;
    ++pos;
  }
  int64_t value = 0;
  bool any = false;
  while (pos < response.size() && response[pos] >= '0' &&
         response[pos] <= '9') {
    value = value * 10 + (response[pos] - '0');
    any = true;
    ++pos;
  }
  if (!any) return false;
  *id = neg ? -value : value;
  *id_end = pos;
  return true;
}

std::string RewriteResponseId(const std::string& response, size_t id_end,
                              int64_t new_id) {
  return "{\"id\":" + std::to_string(new_id) + response.substr(id_end);
}

}  // namespace

ShardProxy::ShardProxy(std::vector<int> shard_fds)
    : ring_(static_cast<int>(shard_fds.size())) {
  for (int fd : shard_fds) {
    auto shard = std::make_unique<Shard>();
    shard->fd = fd;
    shards_.push_back(std::move(shard));
  }
}

ShardProxy::~ShardProxy() {
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->fd >= 0) ::shutdown(shard->fd, SHUT_RDWR);
  }
  for (auto& shard : shards_) {
    if (shard->reader.joinable()) shard->reader.join();
    if (shard->fd >= 0) ::close(shard->fd);
  }
}

void ShardProxy::Start() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->reader =
        std::thread([this, i] { ReaderLoop(static_cast<int>(i)); });
  }
}

Status ShardProxy::WriteFrame(Shard& shard, const std::string& frame) {
  std::lock_guard<std::mutex> lock(shard.write_mu);
  return WriteAll(shard.fd, frame);
}

void ShardProxy::Forward(const service::WireRequest& req,
                         std::function<void(std::string, bool)> done) {
  if (req.op == "shutdown") {
    service::WireRequest broadcast = req;
    broadcast.id = -1;  // children ack to nobody; the parent acks below
    const std::string frame = EncodeRequestFrame(broadcast);
    for (auto& shard : shards_) {
      if (shard->up.load(std::memory_order_acquire)) {
        (void)WriteFrame(*shard, frame);
      }
    }
    done(service::RenderShutdownAck(req.id), true);
    return;
  }

  const int shard_index =
      req.instance.empty() ? 0 : ring_.ShardFor(req.instance);
  Shard& shard = *shards_[shard_index];
  if (!shard.up.load(std::memory_order_acquire)) {
    done(service::RenderError(
             req.id, Status::Internal("shard " + std::to_string(shard_index) +
                                      " is down")),
         false);
    return;
  }

  const int64_t backplane_id =
      next_backplane_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    waiters_[backplane_id] = Waiter{req.id, shard_index, std::move(done)};
  }
  service::WireRequest routed = req;
  routed.id = backplane_id;
  const Status wrote = WriteFrame(shard, EncodeRequestFrame(routed));
  if (!wrote.ok()) {
    Waiter waiter;
    {
      std::lock_guard<std::mutex> lock(waiters_mu_);
      auto it = waiters_.find(backplane_id);
      if (it == waiters_.end()) return;  // reader already resolved it
      waiter = std::move(it->second);
      waiters_.erase(it);
    }
    waiter.done(service::RenderError(waiter.client_id, wrote), false);
  }
}

void ShardProxy::ReaderLoop(int shard_index) {
  Shard& shard = *shards_[shard_index];
  std::string buffer;
  char chunk[16384];
  while (true) {
    const ssize_t n = ::recv(shard.fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // shard exited (or we are stopping)
    buffer.append(chunk, static_cast<size_t>(n));
    while (true) {
      size_t consumed = 0;
      Frame frame;
      auto decoded = TryDecodeFrame(buffer, &consumed, &frame);
      if (!decoded.ok() || !*decoded) {
        if (!decoded.ok()) {
          // Corrupt backplane stream: treat the shard as gone.
          shard.up.store(false, std::memory_order_release);
          FailShardWaiters(shard_index);
          return;
        }
        break;
      }
      buffer.erase(0, consumed);
      if (frame.type != kFrameResponse) continue;
      int64_t backplane_id;
      size_t id_end;
      if (!ParseResponseId(frame.payload, &backplane_id, &id_end)) continue;
      Waiter waiter;
      {
        std::lock_guard<std::mutex> lock(waiters_mu_);
        auto it = waiters_.find(backplane_id);
        if (it == waiters_.end()) continue;  // broadcast ack etc.
        waiter = std::move(it->second);
        waiters_.erase(it);
      }
      waiter.done(RewriteResponseId(frame.payload, id_end, waiter.client_id),
                  false);
    }
  }
  shard.up.store(false, std::memory_order_release);
  if (!stopping_.load(std::memory_order_acquire)) FailShardWaiters(shard_index);
}

void ShardProxy::FailShardWaiters(int shard_index) {
  std::vector<Waiter> failed;
  {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    for (auto it = waiters_.begin(); it != waiters_.end();) {
      if (it->second.shard == shard_index) {
        failed.push_back(std::move(it->second));
        it = waiters_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& waiter : failed) {
    waiter.done(
        service::RenderError(
            waiter.client_id,
            Status::Internal("shard " + std::to_string(shard_index) +
                             " died with the request in flight")),
        false);
  }
}

Status RunShardWorker(int fd, service::RequestRouter* router) {
  std::mutex write_mu;
  std::mutex state_mu;
  std::condition_variable drained_cv;
  int64_t inflight = 0;
  bool shutdown = false;

  std::string buffer;
  char chunk[16384];
  while (true) {
    {
      std::lock_guard<std::mutex> lock(state_mu);
      if (shutdown) break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // parent closed the backplane
    buffer.append(chunk, static_cast<size_t>(n));
    while (true) {
      size_t consumed = 0;
      Frame frame;
      auto decoded = TryDecodeFrame(buffer, &consumed, &frame);
      if (!decoded.ok()) return decoded.status();
      if (!*decoded) break;
      buffer.erase(0, consumed);
      if (frame.type != kFrameRequest) continue;

      auto req = DecodeRequestPayload(frame.payload);
      std::function<void(std::string, bool)> reply =
          [fd, &write_mu, &state_mu, &drained_cv, &inflight, &shutdown](
              std::string response, bool stop) {
            {
              std::lock_guard<std::mutex> lock(write_mu);
              (void)WriteAll(fd, EncodeResponseFrame(response));
            }
            std::lock_guard<std::mutex> lock(state_mu);
            --inflight;
            if (stop) shutdown = true;
            drained_cv.notify_all();
          };
      {
        std::lock_guard<std::mutex> lock(state_mu);
        ++inflight;
      }
      if (!req.ok()) {
        reply(service::RenderError(-1, req.status()), false);
        continue;
      }
      router->HandleAsync(*req, std::move(reply));
    }
  }
  // Outstanding solves still write their responses; only then may the
  // process tear the service down.
  std::unique_lock<std::mutex> lock(state_mu);
  drained_cv.wait(lock, [&] { return inflight == 0; });
  return Status::OK();
}

}  // namespace licm::net
