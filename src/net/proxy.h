// Shard backplane (DESIGN.md §14).
//
// `licm_serve --shards=N` forks N worker processes before any service
// threads exist. Each child builds the full instance set (deterministic
// from the shared specs) and serves binary frames over its end of a unix
// socketpair via RunShardWorker(). The parent keeps no QueryService at
// all: its epoll front end decodes client requests (either codec) and
// hands them to ShardProxy::Forward, which
//
//   1. routes by consistent hash of the instance name (instance-less
//      control ops go to shard 0),
//   2. rewrites the correlation id to a parent-unique backplane id
//      (every response document begins `{"id":N,` — see
//      protocol.cc's Begin — so the reverse rewrite is a prefix splice),
//   3. writes one binary frame to the shard, and
//   4. resolves the waiter when the shard's reader thread sees the
//      response frame come back.
//
// `shutdown` is intercepted: the parent broadcasts it to every shard,
// acks the client itself, and stops the front end. A shard that dies
// mid-flight fails its outstanding requests with kInternal instead of
// hanging them.
#ifndef LICM_NET_PROXY_H_
#define LICM_NET_PROXY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/shard_router.h"
#include "service/server.h"

namespace licm::net {

class ShardProxy {
 public:
  /// Takes ownership of one connected (blocking) backplane fd per shard.
  explicit ShardProxy(std::vector<int> shard_fds);
  ~ShardProxy();
  ShardProxy(const ShardProxy&) = delete;
  ShardProxy& operator=(const ShardProxy&) = delete;

  /// Starts one reader thread per shard.
  void Start();

  /// NetFrontEnd::Dispatch-compatible entry point. `done` runs exactly
  /// once — from a reader thread, or inline on routing/write failure.
  void Forward(const service::WireRequest& req,
               std::function<void(std::string, bool)> done);

 private:
  struct Waiter {
    int64_t client_id = -1;
    int shard = 0;
    std::function<void(std::string, bool)> done;
  };
  struct Shard {
    int fd = -1;
    std::mutex write_mu;
    std::thread reader;
    std::atomic<bool> up{true};
  };

  void ReaderLoop(int shard_index);
  /// Fails every waiter parked on `shard_index` (the shard died).
  void FailShardWaiters(int shard_index);
  Status WriteFrame(Shard& shard, const std::string& frame);

  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> next_backplane_id_{1};
  std::atomic<bool> stopping_{false};
  std::mutex waiters_mu_;
  std::unordered_map<int64_t, Waiter> waiters_;  // by backplane id
};

/// Child-process side: serves binary request frames from `fd` until a
/// shutdown request or EOF, executing against `router` with the same
/// async path as the public front end. Responses may interleave in solve
/// order; the parent correlates by id. Drains in-flight requests before
/// returning.
Status RunShardWorker(int fd, service::RequestRouter* router);

}  // namespace licm::net

#endif  // LICM_NET_PROXY_H_
