#include "net/coalescer.h"

#include <utility>

#include "common/metrics.h"
#include "relational/query.h"

namespace licm::net {

namespace {

struct CoalescerMetrics {
  metrics::Counter* hits;
  metrics::Counter* misses;

  static const CoalescerMetrics& Get() {
    static const CoalescerMetrics m;
    return m;
  }

 private:
  CoalescerMetrics() {
    auto& reg = metrics::MetricsRegistry::Default();
    hits = reg.GetCounter("licm_coalesce_hits_total");
    misses = reg.GetCounter("licm_coalesce_misses_total");
  }
};

}  // namespace

RequestCoalescer::RequestCoalescer(service::QueryService* service)
    : service_(service) {}

void RequestCoalescer::Execute(service::QueryRequest request,
                               service::QueryService::ResponseCallback done) {
  auto version = service_->VersionOf(request.instance);
  if (!version.ok() || request.query == nullptr) {
    // Unknown instance / malformed request: let the service produce its
    // usual typed error. Nothing to coalesce with.
    service_->ExecuteAsync(std::move(request), std::move(done));
    return;
  }

  // The full canonical query text goes into the key (not a hash of it):
  // a collision here would silently serve one query's bounds to another.
  std::string key = request.instance;
  key += '\x1f';
  key += std::to_string(*version);
  key += '\x1f';
  key += std::to_string(request.deadline_s);
  key += '\x1f';
  key += std::to_string(request.mc_worlds);
  key += '\x1f';
  key += std::to_string(request.mc_seed);
  key += '\x1f';
  key += request.query->ToString();

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      it->second->waiters.push_back(std::move(done));
      ++hits_;
      CoalescerMetrics::Get().hits->Increment();
      return;
    }
    auto entry = std::make_shared<InFlight>();
    entry->waiters.push_back(std::move(done));
    inflight_.emplace(key, std::move(entry));
    ++misses_;
    CoalescerMetrics::Get().misses->Increment();
  }

  service_->ExecuteAsync(
      std::move(request),
      [this, key = std::move(key)](
          const Result<service::QueryResponse>& outcome) {
        std::shared_ptr<InFlight> entry;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = inflight_.find(key);
          if (it != inflight_.end()) {
            entry = std::move(it->second);
            inflight_.erase(it);
          }
        }
        if (!entry) return;
        // Fan out off the lock: a waiter's callback may re-enter
        // Execute() (e.g. a retry) without deadlocking.
        for (auto& waiter : entry->waiters) waiter(outcome);
      });
}

int64_t RequestCoalescer::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t RequestCoalescer::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace licm::net
