// Epoll front end for the query service (DESIGN.md §14).
//
// Architecture: one listen socket on loop 0, accepted connections
// assigned round-robin across N event loops. Each loop owns a private
// connection registry (id -> Conn); a connection's buffers and codec
// state are only ever touched from its loop thread. Request execution is
// asynchronous: the loop hands the decoded request to a Dispatch
// function (default RequestRouter::HandleAsync) and continues serving
// other connections; the completion closure Post()s the rendered
// response back to the owning loop, which looks the connection up by id
// — a connection that died meanwhile simply drops its responses.
//
// Codec auto-detection: the first byte of a connection decides. 0xB5
// (kWireMagic, never valid leading JSON) selects the binary framing from
// net/wire.h; anything else selects the legacy line-JSON codec. Both
// codecs produce byte-identical response documents because the binary
// response payload *is* the line-JSON text.
//
// Responses complete in solve order, not arrival order — pipelined
// clients correlate by the echoed `id` field.
#ifndef LICM_NET_FRONT_END_H_
#define LICM_NET_FRONT_END_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/event_loop.h"
#include "net/wire.h"
#include "service/server.h"

namespace licm::net {

class NetFrontEnd {
 public:
  /// Receives one decoded request; must call `done(response, shutdown)`
  /// exactly once (any thread). The default dispatch is
  /// router->HandleAsync; licm_serve swaps in a coalescing wrapper or a
  /// shard proxy here.
  using Dispatch = std::function<void(
      const service::WireRequest&, std::function<void(std::string, bool)>)>;

  struct Options {
    /// Event loop count (>=1); loop 0 also runs the acceptor.
    int num_loops = 1;
  };

  explicit NetFrontEnd(service::RequestRouter* router)
      : NetFrontEnd(router, Options()) {}
  NetFrontEnd(service::RequestRouter* router, Options options);
  ~NetFrontEnd();
  NetFrontEnd(const NetFrontEnd&) = delete;
  NetFrontEnd& operator=(const NetFrontEnd&) = delete;

  void set_dispatch(Dispatch dispatch) { dispatch_ = std::move(dispatch); }

  /// Binds and listens (port 0 = ephemeral, see port()).
  Status Listen(const std::string& host, int port);
  int port() const { return port_; }

  /// Runs loop 0 on the calling thread and loops 1..N-1 on background
  /// threads; returns after Stop() or a shutdown request, with all
  /// loops joined and all connections closed.
  Status Serve();

  void Stop();

 private:
  enum class Codec { kUnknown, kBinary, kLineJson };

  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    size_t loop_index = 0;
    Codec codec = Codec::kUnknown;
    std::string in;
    std::string out;
    bool want_write = false;    // EPOLLOUT armed
    bool peer_closed = false;   // read side saw EOF
    bool dead = false;          // codec error — close once out drains
    bool shutdown_after = false;  // stop the server once out drains
    int64_t inflight = 0;       // dispatched, response not yet delivered
  };

  struct LoopState {
    EventLoop loop;
    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
    metrics::Gauge* open_connections = nullptr;
  };

  void AcceptReady();
  void AdoptConnection(size_t loop_index, int fd);
  void ConnReady(size_t loop_index, uint64_t conn_id, uint32_t events);
  void ReadReady(LoopState& state, Conn& conn);
  /// Decodes every complete frame/line in conn.in and dispatches it.
  void DrainInput(LoopState& state, Conn& conn);
  void DispatchRequest(Conn& conn, const service::WireRequest& req);
  void DispatchError(Conn& conn, int64_t id, const Status& error);
  /// Delivers a rendered response on the owning loop thread.
  void CompleteOnLoop(size_t loop_index, uint64_t conn_id,
                      std::string response, bool shutdown);
  void SendResponse(LoopState& state, Conn& conn, const std::string& response);
  void TryFlush(LoopState& state, Conn& conn);
  void CloseConn(LoopState& state, Conn& conn);
  void MaybeFinish(LoopState& state, Conn& conn);

  service::RequestRouter* router_;
  Options options_;
  Dispatch dispatch_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<std::unique_ptr<LoopState>> loops_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_conn_id_{1};
  size_t next_loop_ = 0;  // round-robin cursor; loop-0 thread only

  metrics::Counter* accepted_total_ = nullptr;
  metrics::Counter* bytes_read_binary_ = nullptr;
  metrics::Counter* bytes_read_json_ = nullptr;
  metrics::Counter* bytes_written_binary_ = nullptr;
  metrics::Counter* bytes_written_json_ = nullptr;
};

}  // namespace licm::net

#endif  // LICM_NET_FRONT_END_H_
