// Compact length-prefixed binary protocol for the service data plane.
//
// Frame layout (DESIGN.md §14):
//
//   offset  size      field
//   ------  --------  -----------------------------------------------
//   0       1         magic 0xB5 (never a valid JSON first byte, so a
//                     connection's codec is detected from byte one)
//   1       1         version (kWireVersion = 0x01)
//   2       1         type (0x01 request, 0x02 response)
//   3       varint    payload length in bytes (LEB128, max 5 bytes)
//   ...     len       payload
//   ...     4         CRC32 (little-endian) over [version..payload]
//
// Request payloads are tag-length-value records: each field is a varint
// tag `(field_number << 2) | wiretype` followed by its value, where
// wiretype 0 = varint (zigzag for signed fields), 1 = length-prefixed
// bytes, 2 = fixed64 (doubles). Unknown fields are skippable by
// wiretype, so old servers tolerate new clients. Absent fields keep the
// WireRequest defaults — encoders omit default values.
//
// Response payloads carry the *exact* line-JSON response text (without
// trailing newline). This makes JSON<->binary response parity hold by
// construction — the binary codec adds framing + integrity, never a
// second serialization of the answer.
#ifndef LICM_NET_WIRE_H_
#define LICM_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "service/protocol.h"

namespace licm::net {

inline constexpr uint8_t kWireMagic = 0xB5;
inline constexpr uint8_t kWireVersion = 0x01;
inline constexpr uint8_t kFrameRequest = 0x01;
inline constexpr uint8_t kFrameResponse = 0x02;

/// Largest accepted payload (guards against hostile/corrupt length
/// prefixes allocating unbounded buffers).
inline constexpr size_t kMaxFramePayload = 16u << 20;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Appends a LEB128 varint to `out`.
void AppendVarint(std::string* out, uint64_t value);

/// Zigzag mapping for signed fields (small negatives stay small).
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

struct Frame {
  uint8_t type = 0;
  std::string payload;
};

/// Serializes a request payload (TLV fields, defaults omitted).
std::string EncodeRequestPayload(const service::WireRequest& req);

/// Parses a request payload produced by EncodeRequestPayload (or any
/// forward-compatible superset; unknown fields are skipped).
Result<service::WireRequest> DecodeRequestPayload(const std::string& payload);

/// Wraps a payload in a full frame (magic/version/type/len/payload/CRC).
std::string EncodeFrame(uint8_t type, const std::string& payload);

inline std::string EncodeRequestFrame(const service::WireRequest& req) {
  return EncodeFrame(kFrameRequest, EncodeRequestPayload(req));
}
/// A response frame carries the line-JSON response text verbatim.
inline std::string EncodeResponseFrame(const std::string& json_response) {
  return EncodeFrame(kFrameResponse, json_response);
}

/// Incremental frame extraction from a connection buffer.
/// Returns:
///   - ok(true):  one frame extracted into *frame; *consumed bytes of
///                `buf` (from offset 0) are done with.
///   - ok(false): `buf` holds a frame prefix; read more bytes
///                (*consumed == 0).
///   - error:     the stream is corrupt (bad magic/version/type, length
///                over kMaxFramePayload, or CRC mismatch) — the caller
///                should drop the connection; byte-stream resync is not
///                attempted.
Result<bool> TryDecodeFrame(const std::string& buf, size_t* consumed,
                            Frame* frame);

}  // namespace licm::net

#endif  // LICM_NET_WIRE_H_
