// Consistent-hash shard routing (DESIGN.md §14).
//
// Requests are routed by instance name so each shard's ComponentCache
// and IncumbentPool stay hot for the instances it owns. A hash ring with
// virtual nodes keeps the assignment stable under shard-count changes:
// each shard contributes `vnodes` points (hash of "shard/replica"), and
// a key maps to the first point clockwise from its own hash.
#ifndef LICM_NET_SHARD_ROUTER_H_
#define LICM_NET_SHARD_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace licm::net {

/// 64-bit FNV-1a, finished with a splitmix64 avalanche so short keys
/// spread over the whole ring.
uint64_t HashKey(const std::string& key);

class HashRing {
 public:
  /// Builds a ring for shards 0..num_shards-1.
  explicit HashRing(int num_shards, int vnodes_per_shard = 64);

  /// Shard owning `key`; 0 when the ring has a single shard.
  int ShardFor(const std::string& key) const;

  int num_shards() const { return num_shards_; }

 private:
  struct Point {
    uint64_t hash;
    int shard;
  };
  int num_shards_;
  std::vector<Point> points_;  // sorted by hash
};

}  // namespace licm::net

#endif  // LICM_NET_SHARD_ROUTER_H_
