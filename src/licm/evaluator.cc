#include "licm/evaluator.h"

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "licm/ops.h"

namespace licm {

Result<LicmRelation> EvaluateLicm(const rel::QueryNode& node,
                                  LicmDatabase* db) {
  OpContext ctx{&db->pool(), &db->constraints()};
  switch (node.kind) {
    case rel::QueryKind::kScan: {
      LICM_ASSIGN_OR_RETURN(const LicmRelation* r,
                            db->GetRelation(node.relation_name));
      // Set semantics on base relations, mirroring the deterministic
      // engine's dedup-on-scan.
      return MergeDuplicates(*r, ctx);
    }
    case rel::QueryKind::kSelect: {
      LICM_ASSIGN_OR_RETURN(LicmRelation in, EvaluateLicm(*node.left, db));
      return SelectOp(in, node.predicates);
    }
    case rel::QueryKind::kProject: {
      LICM_ASSIGN_OR_RETURN(LicmRelation in, EvaluateLicm(*node.left, db));
      return ProjectOp(in, node.columns, ctx);
    }
    case rel::QueryKind::kIntersect: {
      LICM_ASSIGN_OR_RETURN(LicmRelation l, EvaluateLicm(*node.left, db));
      LICM_ASSIGN_OR_RETURN(LicmRelation r, EvaluateLicm(*node.right, db));
      return IntersectOp(l, r, ctx);
    }
    case rel::QueryKind::kProduct: {
      LICM_ASSIGN_OR_RETURN(LicmRelation l, EvaluateLicm(*node.left, db));
      LICM_ASSIGN_OR_RETURN(LicmRelation r, EvaluateLicm(*node.right, db));
      return ProductOp(l, r, ctx);
    }
    case rel::QueryKind::kJoin: {
      LICM_ASSIGN_OR_RETURN(LicmRelation l, EvaluateLicm(*node.left, db));
      LICM_ASSIGN_OR_RETURN(LicmRelation r, EvaluateLicm(*node.right, db));
      return JoinOp(l, r, node.join_on, ctx);
    }
    case rel::QueryKind::kCountPredicate: {
      LICM_ASSIGN_OR_RETURN(LicmRelation in, EvaluateLicm(*node.left, db));
      return CountPredicateOp(in, node.group_column, node.count_op,
                              node.count_d, ctx);
    }
    case rel::QueryKind::kSumPredicate: {
      LICM_ASSIGN_OR_RETURN(LicmRelation in, EvaluateLicm(*node.left, db));
      return SumPredicateOp(in, node.group_column, node.sum_column,
                            node.count_op, node.count_d, ctx);
    }
    case rel::QueryKind::kCountStar:
    case rel::QueryKind::kSum:
    case rel::QueryKind::kMin:
    case rel::QueryKind::kMax:
      return Status::InvalidArgument(
          "aggregate root: use AnswerAggregate()");
  }
  return Status::Internal("unknown query kind");
}

Result<AggregateAnswer> AnswerAggregate(const rel::QueryNode& query,
                                        LicmDatabase db,
                                        const AnswerOptions& options) {
  if (!rel::IsAggregate(query)) {
    return Status::InvalidArgument(
        "AnswerAggregate requires kCountStar or kSum at the root");
  }
  AggregateAnswer out;
  StopWatch watch;

  telemetry::ScopedSpan eval_span("licm", "query_eval");
  LICM_ASSIGN_OR_RETURN(LicmRelation result, EvaluateLicm(*query.left, &db));
  // Aggregates count each distinct tuple once per world.
  OpContext ctx{&db.pool(), &db.constraints()};
  LICM_ASSIGN_OR_RETURN(result, MergeDuplicates(result, ctx));
  eval_span.End();
  telemetry::ScopedSpan solve_span("licm", "solve");

  if (query.kind == rel::QueryKind::kMin ||
      query.kind == rel::QueryKind::kMax) {
    out.vars_at_query = db.pool().size();
    out.constraints_at_query = db.constraints().size();
    out.query_ms = watch.ElapsedMs();
    watch.Restart();
    LICM_ASSIGN_OR_RETURN(
        out.minmax,
        ComputeMinMaxBounds(result, query.sum_column, db.constraints(),
                            db.pool().size(),
                            query.kind == rel::QueryKind::kMax,
                            options.bounds));
    out.is_minmax = true;
    out.bounds.min.value = out.bounds.min.proved = out.minmax.lo;
    out.bounds.min.exact = out.minmax.exact_lo;
    out.bounds.max.value = out.bounds.max.proved = out.minmax.hi;
    out.bounds.max.exact = out.minmax.exact_hi;
    out.bounds.stats = out.minmax.stats;
    out.solve_ms = watch.ElapsedMs();
    return out;
  }

  Objective obj;
  if (query.kind == rel::QueryKind::kCountStar) {
    obj = CountObjective(result);
  } else {
    LICM_ASSIGN_OR_RETURN(obj, SumObjective(result, query.sum_column));
  }
  out.vars_at_query = db.pool().size();
  out.constraints_at_query = db.constraints().size();
  out.query_ms = watch.ElapsedMs();

  watch.Restart();
  LICM_ASSIGN_OR_RETURN(
      out.bounds,
      ComputeBounds(obj, db.constraints(), db.pool().size(),
                    options.bounds));
  out.solve_ms = watch.ElapsedMs();
  return out;
}

}  // namespace licm
