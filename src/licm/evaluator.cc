#include "licm/evaluator.h"

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "licm/columnar_ops.h"
#include "licm/ops.h"

namespace licm {

namespace {

// Batch-path totals, flushed once per aggregate answer (DESIGN.md §12):
// base-relation rows fed into the operator pipeline, lineage constraints
// the evaluation appended, and arena bytes the batch views consumed.
void RecordQueryMetrics(const char* engine, size_t rows_scanned,
                        size_t constraints_emitted, size_t arena_bytes) {
  auto& reg = metrics::MetricsRegistry::Default();
  const metrics::Labels labels{{"engine", engine}};
  reg.GetCounter("licm_query_rows_scanned_total", labels)
      ->Increment(static_cast<int64_t>(rows_scanned));
  reg.GetCounter("licm_query_constraints_emitted_total", labels)
      ->Increment(static_cast<int64_t>(constraints_emitted));
  if (arena_bytes > 0) {
    reg.GetCounter("licm_query_arena_bytes_total", labels)
        ->Increment(static_cast<int64_t>(arena_bytes));
  }
}

}  // namespace

Result<LicmRelation> EvaluateLicm(const rel::QueryNode& node,
                                  LicmDatabase* db) {
  OpContext ctx{&db->pool(), &db->constraints()};
  switch (node.kind) {
    case rel::QueryKind::kScan: {
      LICM_ASSIGN_OR_RETURN(const LicmRelation* r,
                            db->GetRelation(node.relation_name));
      // Set semantics on base relations, mirroring the deterministic
      // engine's dedup-on-scan.
      return MergeDuplicates(*r, ctx);
    }
    case rel::QueryKind::kSelect: {
      LICM_ASSIGN_OR_RETURN(LicmRelation in, EvaluateLicm(*node.left, db));
      return SelectOp(in, node.predicates);
    }
    case rel::QueryKind::kProject: {
      LICM_ASSIGN_OR_RETURN(LicmRelation in, EvaluateLicm(*node.left, db));
      return ProjectOp(in, node.columns, ctx);
    }
    case rel::QueryKind::kIntersect: {
      LICM_ASSIGN_OR_RETURN(LicmRelation l, EvaluateLicm(*node.left, db));
      LICM_ASSIGN_OR_RETURN(LicmRelation r, EvaluateLicm(*node.right, db));
      return IntersectOp(l, r, ctx);
    }
    case rel::QueryKind::kProduct: {
      LICM_ASSIGN_OR_RETURN(LicmRelation l, EvaluateLicm(*node.left, db));
      LICM_ASSIGN_OR_RETURN(LicmRelation r, EvaluateLicm(*node.right, db));
      return ProductOp(l, r, ctx);
    }
    case rel::QueryKind::kJoin: {
      LICM_ASSIGN_OR_RETURN(LicmRelation l, EvaluateLicm(*node.left, db));
      LICM_ASSIGN_OR_RETURN(LicmRelation r, EvaluateLicm(*node.right, db));
      return JoinOp(l, r, node.join_on, ctx);
    }
    case rel::QueryKind::kCountPredicate: {
      LICM_ASSIGN_OR_RETURN(LicmRelation in, EvaluateLicm(*node.left, db));
      return CountPredicateOp(in, node.group_column, node.count_op,
                              node.count_d, ctx);
    }
    case rel::QueryKind::kSumPredicate: {
      LICM_ASSIGN_OR_RETURN(LicmRelation in, EvaluateLicm(*node.left, db));
      return SumPredicateOp(in, node.group_column, node.sum_column,
                            node.count_op, node.count_d, ctx);
    }
    case rel::QueryKind::kCountStar:
    case rel::QueryKind::kSum:
    case rel::QueryKind::kMin:
    case rel::QueryKind::kMax:
      return Status::InvalidArgument(
          "aggregate root: use AnswerAggregate()");
  }
  return Status::Internal("unknown query kind");
}

namespace {

// Columnar twin of the row-path AnswerAggregate body below. Both walk the
// merged result in the same row order, so the objective accumulation (a
// float-order-sensitive sum) and the MIN/MAX case analysis see identical
// inputs and the bounds match bit for bit.
Result<AggregateAnswer> AnswerAggregateColumnar(const rel::QueryNode& query,
                                                LicmDatabase db,
                                                const AnswerOptions& options) {
  AggregateAnswer out;
  StopWatch watch;
  const size_t cons_before = db.constraints().size();

  telemetry::ScopedSpan eval_span("licm", "query_eval");
  ColumnarLicmContext ctx(OpContext{&db.pool(), &db.constraints()});
  LICM_ASSIGN_OR_RETURN(LicmBatch result,
                        EvaluateLicmBatch(*query.left, &db, &ctx));
  // Aggregates count each distinct tuple once per world.
  LICM_ASSIGN_OR_RETURN(result, MergeDuplicatesBatch(result, &ctx));
  eval_span.End();
  size_t rows_scanned = 0;
  for (const auto& t : ctx.base_tables) rows_scanned += t->num_rows();
  RecordQueryMetrics("columnar", rows_scanned,
                     db.constraints().size() - cons_before,
                     ctx.arena.bytes_allocated());
  telemetry::ScopedSpan solve_span("licm", "solve");

  if (query.kind == rel::QueryKind::kMin ||
      query.kind == rel::QueryKind::kMax) {
    out.vars_at_query = db.pool().size();
    out.constraints_at_query = db.constraints().size();
    out.query_ms = watch.ElapsedMs();
    watch.Restart();
    LICM_ASSIGN_OR_RETURN(size_t col,
                          result.view.schema.IndexOf(query.sum_column));
    if (result.view.schema.column(col).type == rel::ValueType::kString) {
      return Status::InvalidArgument("MIN/MAX over string column '" +
                                     query.sum_column + "'");
    }
    std::vector<double> values;
    std::vector<Ext> exts;
    NumericColumnBatch(result, col, &ctx, &values, &exts);
    LICM_ASSIGN_OR_RETURN(
        out.minmax,
        ComputeMinMaxBounds(values, exts, db.constraints(), db.pool().size(),
                            query.kind == rel::QueryKind::kMax,
                            options.bounds));
    out.is_minmax = true;
    out.bounds.min.value = out.bounds.min.proved = out.minmax.lo;
    out.bounds.min.exact = out.minmax.exact_lo;
    out.bounds.max.value = out.bounds.max.proved = out.minmax.hi;
    out.bounds.max.exact = out.minmax.exact_hi;
    out.bounds.stats = out.minmax.stats;
    out.solve_ms = watch.ElapsedMs();
    return out;
  }

  const uint32_t* rows = rel::ActiveRows(result.view, &ctx.arena);
  Objective obj;
  if (query.kind == rel::QueryKind::kCountStar) {
    for (size_t i = 0; i < result.view.active; ++i) {
      const Ext e = result.exts[rows[i]];
      if (e.certain()) {
        obj.constant += 1.0;
      } else {
        obj.coefs[e.var()] += 1.0;
      }
    }
  } else {
    LICM_ASSIGN_OR_RETURN(size_t idx,
                          result.view.schema.IndexOf(query.sum_column));
    const rel::ValueType t = result.view.schema.column(idx).type;
    if (t == rel::ValueType::kString) {
      return Status::InvalidArgument("SUM over string column '" +
                                     query.sum_column + "'");
    }
    for (size_t i = 0; i < result.view.active; ++i) {
      const uint32_t row = rows[i];
      const double x = t == rel::ValueType::kInt
                           ? static_cast<double>(result.view.cols[idx].i64[row])
                           : result.view.cols[idx].f64[row];
      const Ext e = result.exts[row];
      if (e.certain()) {
        obj.constant += x;
      } else {
        obj.coefs[e.var()] += x;
      }
    }
  }
  out.vars_at_query = db.pool().size();
  out.constraints_at_query = db.constraints().size();
  out.query_ms = watch.ElapsedMs();

  watch.Restart();
  LICM_ASSIGN_OR_RETURN(
      out.bounds,
      ComputeBounds(obj, db.constraints(), db.pool().size(),
                    options.bounds));
  out.solve_ms = watch.ElapsedMs();
  return out;
}

}  // namespace

Result<AggregateAnswer> AnswerAggregate(const rel::QueryNode& query,
                                        LicmDatabase db,
                                        const AnswerOptions& options) {
  if (!rel::IsAggregate(query)) {
    return Status::InvalidArgument(
        "AnswerAggregate requires kCountStar or kSum at the root");
  }
  if (options.engine == rel::EvalEngine::kColumnar) {
    return AnswerAggregateColumnar(query, std::move(db), options);
  }
  AggregateAnswer out;
  StopWatch watch;
  const size_t cons_before = db.constraints().size();

  telemetry::ScopedSpan eval_span("licm", "query_eval");
  LICM_ASSIGN_OR_RETURN(LicmRelation result, EvaluateLicm(*query.left, &db));
  // Aggregates count each distinct tuple once per world.
  OpContext ctx{&db.pool(), &db.constraints()};
  LICM_ASSIGN_OR_RETURN(result, MergeDuplicates(result, ctx));
  eval_span.End();
  // The row path has no batch arena and does not track base-scan rows.
  RecordQueryMetrics("row", 0, db.constraints().size() - cons_before, 0);
  telemetry::ScopedSpan solve_span("licm", "solve");

  if (query.kind == rel::QueryKind::kMin ||
      query.kind == rel::QueryKind::kMax) {
    out.vars_at_query = db.pool().size();
    out.constraints_at_query = db.constraints().size();
    out.query_ms = watch.ElapsedMs();
    watch.Restart();
    LICM_ASSIGN_OR_RETURN(
        out.minmax,
        ComputeMinMaxBounds(result, query.sum_column, db.constraints(),
                            db.pool().size(),
                            query.kind == rel::QueryKind::kMax,
                            options.bounds));
    out.is_minmax = true;
    out.bounds.min.value = out.bounds.min.proved = out.minmax.lo;
    out.bounds.min.exact = out.minmax.exact_lo;
    out.bounds.max.value = out.bounds.max.proved = out.minmax.hi;
    out.bounds.max.exact = out.minmax.exact_hi;
    out.bounds.stats = out.minmax.stats;
    out.solve_ms = watch.ElapsedMs();
    return out;
  }

  Objective obj;
  if (query.kind == rel::QueryKind::kCountStar) {
    obj = CountObjective(result);
  } else {
    LICM_ASSIGN_OR_RETURN(obj, SumObjective(result, query.sum_column));
  }
  out.vars_at_query = db.pool().size();
  out.constraints_at_query = db.constraints().size();
  out.query_ms = watch.ElapsedMs();

  watch.Restart();
  LICM_ASSIGN_OR_RETURN(
      out.bounds,
      ComputeBounds(obj, db.constraints(), db.pool().size(),
                    options.bounds));
  out.solve_ms = watch.ElapsedMs();
  return out;
}

}  // namespace licm
