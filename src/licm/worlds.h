// Possible-world enumeration and the Theorem-1 completeness construction.
//
// Enumeration is exponential by design — it exists as the ground-truth
// oracle for tests and for the paper's toy examples, exactly the
// "explicit representation ... is usually not feasible" strawman LICM
// replaces. The completeness encoder realizes Theorem 1: any finite set of
// worlds becomes an LICM database (one blocking clause per excluded
// assignment, the linearized CNF of the proof).
#ifndef LICM_LICM_WORLDS_H_
#define LICM_LICM_WORLDS_H_

#include <cstdint>
#include <vector>

#include "licm/licm_relation.h"

namespace licm {

/// Enumerates every valid 0/1 assignment of `num_vars` variables under the
/// constraint set (at most `limit` results; exceeding it is an error since
/// a truncated enumeration would silently corrupt oracle tests).
/// Requires num_vars <= 24.
Result<std::vector<std::vector<uint8_t>>> EnumerateValidAssignments(
    const ConstraintSet& constraints, uint32_t num_vars,
    size_t limit = 1u << 22);

/// All possible worlds of a single-relation database: instantiates
/// `relation` under every valid assignment and deduplicates identical
/// worlds.
Result<std::vector<rel::Relation>> EnumerateWorlds(
    const LicmRelation& relation, const ConstraintSet& constraints,
    uint32_t num_vars);

/// Theorem 1: builds an LICM database whose possible worlds are exactly
/// `worlds` (each a set of tuples over `schema`). The returned database
/// contains one relation `relation_name` with a variable per distinct
/// tuple, plus blocking constraints that exclude every non-world
/// assignment. Requires the tuple universe to have <= 20 tuples.
Result<LicmDatabase> EncodeWorlds(const std::vector<rel::Relation>& worlds,
                                  const std::string& relation_name);

}  // namespace licm

#endif  // LICM_LICM_WORLDS_H_
