#include "licm/prune.h"

#include <deque>

#include "common/telemetry.h"

namespace licm {

PruneResult Prune(const ConstraintSet& constraints,
                  const std::vector<BVar>& seeds, uint32_t num_vars) {
  LICM_TRACE_SPAN("licm", "prune");
  PruneResult out;
  const auto& cs = constraints.constraints();
  out.stats.vars_before = num_vars;
  out.stats.constraints_before = cs.size();

  // var -> constraints mentioning it.
  std::vector<std::vector<uint32_t>> var_cons(num_vars);
  for (uint32_t c = 0; c < cs.size(); ++c) {
    for (const auto& t : cs[c].terms) {
      LICM_CHECK(t.var < num_vars);
      var_cons[t.var].push_back(c);
    }
  }

  std::vector<bool> con_live(cs.size(), false);
  std::deque<BVar> queue;
  for (BVar s : seeds) {
    if (out.live.insert(s).second) queue.push_back(s);
  }
  while (!queue.empty()) {
    const BVar v = queue.front();
    queue.pop_front();
    for (uint32_t c : var_cons[v]) {
      if (con_live[c]) continue;
      con_live[c] = true;
      for (const auto& t : cs[c].terms) {
        if (out.live.insert(t.var).second) queue.push_back(t.var);
      }
    }
  }

  for (uint32_t c = 0; c < cs.size(); ++c) {
    if (con_live[c]) out.kept.push_back(cs[c]);
  }
  out.stats.vars_after = out.live.size();
  out.stats.constraints_after = out.kept.size();
  return out;
}

}  // namespace licm
