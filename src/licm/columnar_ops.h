// Columnar LICM operators: the batch-execution counterpart of ops.cc.
//
// An LicmBatch is a relational BatchView plus an Ext array parallel to the
// physical rows; operators filter by selection bitmap and group by
// contiguous runs (batch.h) instead of per-tuple hash-map inserts, and
// bulk-emit Algorithm 4's cardinality rows per run. The lineage case
// analyses themselves are shared with the row path (lineage.h), and every
// operator walks rows in the row engine's order, so both paths allocate
// the SAME variable ids and emit the SAME constraints — the `columnar`
// fuzz invariant and the differential tests check this structurally.
#ifndef LICM_LICM_COLUMNAR_OPS_H_
#define LICM_LICM_COLUMNAR_OPS_H_

#include <memory>
#include <vector>

#include "licm/licm_relation.h"
#include "licm/ops.h"
#include "relational/arena.h"
#include "relational/batch.h"
#include "relational/column.h"
#include "relational/query.h"

namespace licm {

/// A batch of LICM tuples: normal attributes as column spans + selection,
/// Ext attributes in an array parallel to the physical rows (only active
/// rows' entries are meaningful).
struct LicmBatch {
  rel::BatchView view;
  const Ext* exts = nullptr;
};

/// Per-evaluation columnar state: the arena owning all transient buffers
/// (columns, bitmaps, Ext arrays), the string dictionary, the converted
/// base tables, and the database's pool/constraint context.
struct ColumnarLicmContext {
  explicit ColumnarLicmContext(OpContext ops) : ops(ops) {}

  OpContext ops;
  rel::Arena arena;
  rel::StringDictionary dict;
  std::vector<std::unique_ptr<rel::ColumnTable>> base_tables;
};

/// Evaluates a non-aggregate query tree over `db` into a batch, appending
/// lineage variables/constraints exactly as EvaluateLicm would.
Result<LicmBatch> EvaluateLicmBatch(const rel::QueryNode& node,
                                    LicmDatabase* db,
                                    ColumnarLicmContext* ctx);

/// Batch counterpart of MergeDuplicates: OR-merges duplicate tuples,
/// returning the input unchanged when the active rows are already a set.
Result<LicmBatch> MergeDuplicatesBatch(const LicmBatch& in,
                                       ColumnarLicmContext* ctx);

/// Gathers column `col` of the active rows as doubles plus the parallel
/// Ext attributes (MIN/MAX case analysis input). The column must be
/// numeric.
void NumericColumnBatch(const LicmBatch& in, size_t col,
                        ColumnarLicmContext* ctx, std::vector<double>* values,
                        std::vector<Ext>* exts);

/// Materializes the batch as an LicmRelation, in row order (tests and
/// debugging; the hot path never converts).
LicmRelation BatchToLicmRelation(const LicmBatch& in,
                                 ColumnarLicmContext* ctx);

}  // namespace licm

#endif  // LICM_LICM_COLUMNAR_OPS_H_
