// LICM query evaluation: walks the same logical query trees as the
// deterministic engine, but over LICM relations — producing a result
// relation whose constraints encode the answer in every possible world
// (Section IV), and answering aggregate roots with exact bounds
// (Section IV-D).
#ifndef LICM_LICM_EVALUATOR_H_
#define LICM_LICM_EVALUATOR_H_

#include "licm/aggregate.h"
#include "licm/licm_relation.h"
#include "relational/engine.h"
#include "relational/query.h"

namespace licm {

/// Evaluates a non-aggregate query tree against `db`, appending lineage
/// variables/constraints to it. The result is an LICM relation that
/// instantiates, world by world, to the deterministic answer.
Result<LicmRelation> EvaluateLicm(const rel::QueryNode& node,
                                  LicmDatabase* db);

struct AnswerOptions {
  BoundsOptions bounds;
  /// Operator pipeline implementation. Both allocate identical variable
  /// ids, emit identical constraints, and produce bit-identical bounds;
  /// kRow is the straightforward tuple-at-a-time reference, kColumnar the
  /// batch engine (columnar_ops.h).
  rel::EvalEngine engine = rel::EvalEngine::kColumnar;
};

/// Full answer to an aggregate query, with the phase instrumentation the
/// paper reports (L-query / L-solve timings, Figure 7 problem sizes).
struct AggregateAnswer {
  AggregateBounds bounds;

  /// Set for MIN/MAX roots: the full case-analysis result (bounds.min/max
  /// mirror lo/hi for uniform consumption; emptiness flags live here).
  bool is_minmax = false;
  MinMaxBounds minmax;

  /// Problem size right after query processing (Figure 7 "Querying").
  size_t vars_at_query = 0;
  size_t constraints_at_query = 0;

  double query_ms = 0.0;  // operator evaluation (L-query)
  double solve_ms = 0.0;  // both BIP solves (L-solve)
};

/// Answers a query tree rooted at kCountStar or kSum: runs the operator
/// pipeline, formulates the BIP, and computes exact (or time-limited)
/// lower/upper bounds. `db` is taken by value: evaluation appends derived
/// variables and constraints that the caller's database should not keep.
Result<AggregateAnswer> AnswerAggregate(const rel::QueryNode& query,
                                        LicmDatabase db,
                                        const AnswerOptions& options = {});

}  // namespace licm

#endif  // LICM_LICM_EVALUATOR_H_
