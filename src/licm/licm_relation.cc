#include "licm/licm_relation.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace licm {

rel::Relation LicmRelation::Instantiate(
    const std::vector<uint8_t>& assignment) const {
  rel::Relation out(schema_);
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (exts_[i].Eval(assignment) == 1) out.AppendUnchecked(tuples_[i]);
  }
  out.Deduplicate();
  return out;
}

std::vector<BVar> LicmRelation::Variables() const {
  std::unordered_set<BVar> seen;
  std::vector<BVar> out;
  for (const Ext& e : exts_) {
    if (!e.certain() && seen.insert(e.var()).second) out.push_back(e.var());
  }
  return out;
}

std::string LicmRelation::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " + Ext [" << tuples_.size() << " tuples]\n";
  for (size_t i = 0; i < tuples_.size() && i < max_rows; ++i) {
    os << "  (";
    for (size_t c = 0; c < tuples_[i].size(); ++c) {
      if (c) os << ", ";
      os << rel::ToString(tuples_[i][c]);
    }
    os << " | Ext=" << exts_[i].ToString() << ")\n";
  }
  if (tuples_.size() > max_rows) os << "  ...\n";
  return os.str();
}

Status LicmDatabase::AddRelation(std::string name, LicmRelation r) {
  auto [it, inserted] = relations_.emplace(std::move(name), std::move(r));
  if (!inserted) {
    return Status::AlreadyExists("LICM relation '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

Result<const LicmRelation*> LicmDatabase::GetRelation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no LICM relation '" + name + "'");
  }
  return &it->second;
}

Result<LicmRelation*> LicmDatabase::GetMutableRelation(
    const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no LICM relation '" + name + "'");
  }
  return &it->second;
}

rel::Database LicmDatabase::Instantiate(
    const std::vector<uint8_t>& assignment) const {
  rel::Database db;
  for (const auto& [name, r] : relations_) {
    LICM_CHECK_OK(db.Add(name, r.Instantiate(assignment)));
  }
  return db;
}

}  // namespace licm
