#include "licm/mutable_instance.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/telemetry.h"

namespace licm {

namespace {

std::vector<BVar> ConstraintVars(const LinearConstraint& c) {
  std::vector<BVar> vars;
  vars.reserve(c.terms.size());
  for (const auto& t : c.terms) vars.push_back(t.var);
  return vars;
}

}  // namespace

MutableInstance::MutableInstance(LicmDatabase db, size_t cache_capacity)
    : cache_(cache_capacity) {
  auto snap = std::make_shared<Snapshot>();
  snap->version = 1;
  snap->db = std::move(db);
  RebuildConnectivity(snap->db);
  snap_ = std::move(snap);
}

std::shared_ptr<const MutableInstance::Snapshot> MutableInstance::snapshot()
    const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return snap_;
}

void MutableInstance::RebuildConnectivity(const LicmDatabase& db) {
  connectivity_.Reset(db.pool().size());
  for (const LinearConstraint& c : db.constraints().constraints()) {
    connectivity_.UnionAll(ConstraintVars(c));
  }
}

void MutableInstance::FillDirtySet(const std::vector<BVar>& vars,
                                   MutationResult* r) {
  r->total_components = connectivity_.NumComponents();
  std::unordered_set<uint32_t> roots;
  for (BVar v : vars) roots.insert(connectivity_.Find(v));
  r->dirty_components = roots.size();
  size_t dirty_vars = 0;
  for (size_t v = 0; v < connectivity_.num_nodes(); ++v) {
    if (roots.count(connectivity_.Find(static_cast<uint32_t>(v))))
      ++dirty_vars;
  }
  r->dirty_vars = dirty_vars;
}

MutationResult MutableInstance::Publish(LicmDatabase db, MutationResult r,
                                        double dirty_ms,
                                        const StopWatch& commit_clock) {
  // New fingerprints of touched components will simply miss; bumping the
  // epoch makes every later hit on a pre-commit entry count as a
  // cross-version hit — the proof that untouched components kept their
  // cached results.
  cache_.BumpEpoch();
  auto next = std::make_shared<Snapshot>();
  next->db = std::move(db);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    next->version = snap_->version + 1;
    snap_ = next;
  }
  r.version = next->version;
  r.dirty_ms = dirty_ms;
  r.commit_ms = commit_clock.ElapsedMs();
  return r;
}

Result<MutationResult> MutableInstance::AppendTuples(
    const std::string& relation, const std::vector<RowSpec>& rows) {
  std::lock_guard<std::mutex> commit(commit_mu_);
  StopWatch commit_clock;
  LicmDatabase db = snapshot()->db;
  LICM_ASSIGN_OR_RETURN(LicmRelation * rel, db.GetMutableRelation(relation));

  // Validate everything before mutating anything.
  for (const RowSpec& row : rows) {
    LICM_RETURN_NOT_OK(rel->schema().Check(row.tuple));
    if (row.reuse_var.has_value() && *row.reuse_var >= db.pool().size()) {
      return Status::InvalidArgument(
          "append reuses unknown variable b" + std::to_string(*row.reuse_var));
    }
  }

  MutationResult r;
  StopWatch dirty_clock;
  {
    LICM_TRACE_SPAN("incremental", "dirty_set");
    std::vector<BVar> reused;
    for (const RowSpec& row : rows) {
      if (row.reuse_var.has_value()) reused.push_back(*row.reuse_var);
    }
    FillDirtySet(reused, &r);
  }
  const double dirty_ms = dirty_clock.ElapsedMs();

  {
    LICM_TRACE_SPAN("incremental", "re_encode");
    for (const RowSpec& row : rows) {
      Ext ext = Ext::Certain();
      if (row.reuse_var.has_value()) {
        ext = Ext::Maybe(*row.reuse_var);
      } else if (row.maybe) {
        const BVar fresh = db.pool().New();
        r.new_vars.push_back(fresh);
        // A fresh maybe-variable is a brand-new singleton component: it is
        // part of the dirty set (it has never been solved) but was not a
        // component of the pre-mutation instance.
        ++r.dirty_components;
        ++r.dirty_vars;
        ext = Ext::Maybe(fresh);
      }
      rel->AppendUnchecked(row.tuple, ext);
    }
    connectivity_.EnsureNodes(db.pool().size());
  }
  r.appended = rows.size();
  return Publish(std::move(db), std::move(r), dirty_ms, commit_clock);
}

Result<MutationResult> MutableInstance::RetractTuples(
    const std::string& relation, const std::vector<rel::Tuple>& rows) {
  std::lock_guard<std::mutex> commit(commit_mu_);
  StopWatch commit_clock;
  LicmDatabase db = snapshot()->db;
  LICM_ASSIGN_OR_RETURN(LicmRelation * rel, db.GetMutableRelation(relation));

  // Resolve every requested row to a distinct position before touching the
  // relation, so a half-matching batch fails without committing.
  std::vector<size_t> victims;
  for (const rel::Tuple& row : rows) {
    bool found = false;
    for (size_t i = 0; i < rel->size(); ++i) {
      if (rel->tuple(i) != row) continue;
      if (std::find(victims.begin(), victims.end(), i) != victims.end())
        continue;
      victims.push_back(i);
      found = true;
      break;
    }
    if (!found) {
      return Status::NotFound("retract: no matching tuple in '" + relation +
                              "'");
    }
  }

  MutationResult r;
  StopWatch dirty_clock;
  {
    LICM_TRACE_SPAN("incremental", "dirty_set");
    std::vector<BVar> touched;
    for (size_t i : victims) {
      if (!rel->ext(i).certain()) touched.push_back(rel->ext(i).var());
    }
    FillDirtySet(touched, &r);
  }
  const double dirty_ms = dirty_clock.ElapsedMs();

  {
    LICM_TRACE_SPAN("incremental", "re_encode");
    // Remove back to front so earlier positions stay valid. Connectivity
    // is untouched: hyperedges come from constraints, not tuples.
    std::sort(victims.begin(), victims.end());
    for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
      rel->RemoveAt(*it);
    }
  }
  r.retracted = victims.size();
  return Publish(std::move(db), std::move(r), dirty_ms, commit_clock);
}

Result<MutationResult> MutableInstance::EditConstraint(
    size_t index, LinearConstraint replacement) {
  std::lock_guard<std::mutex> commit(commit_mu_);
  return EditConstraintImpl(index, std::move(replacement));
}

Result<MutationResult> MutableInstance::EditConstraintRhs(size_t index,
                                                          ConstraintOp op,
                                                          int64_t rhs) {
  std::lock_guard<std::mutex> commit(commit_mu_);
  const auto& constraints = snapshot()->db.constraints();
  if (index >= constraints.size()) {
    return Status::InvalidArgument("edit: constraint index " +
                                   std::to_string(index) + " out of range");
  }
  LinearConstraint replacement = constraints.constraints()[index];
  replacement.op = op;
  replacement.rhs = rhs;
  return EditConstraintImpl(index, std::move(replacement));
}

Result<MutationResult> MutableInstance::EditConstraintImpl(
    size_t index, LinearConstraint replacement) {
  StopWatch commit_clock;
  LicmDatabase db = snapshot()->db;
  if (index >= db.constraints().size()) {
    return Status::InvalidArgument("edit: constraint index " +
                                   std::to_string(index) + " out of range");
  }
  for (const auto& t : replacement.terms) {
    if (t.var >= db.pool().size()) {
      return Status::InvalidArgument("edit references unknown variable b" +
                                     std::to_string(t.var));
    }
  }

  MutationResult r;
  StopWatch dirty_clock;
  {
    LICM_TRACE_SPAN("incremental", "dirty_set");
    // Both the old and the new hyperedge are dirty: the old components
    // may split, the new ones merge.
    std::vector<BVar> touched =
        ConstraintVars(db.constraints().constraints()[index]);
    for (const auto& t : replacement.terms) touched.push_back(t.var);
    FillDirtySet(touched, &r);
  }
  const double dirty_ms = dirty_clock.ElapsedMs();

  {
    LICM_TRACE_SPAN("incremental", "re_encode");
    db.constraints().Replace(index, std::move(replacement));
    // Edits can split components; rebuild from the surviving hyperedges.
    RebuildConnectivity(db);
  }
  r.constraint_index = index;
  return Publish(std::move(db), std::move(r), dirty_ms, commit_clock);
}

Result<MutationResult> MutableInstance::AddConstraint(LinearConstraint c) {
  std::lock_guard<std::mutex> commit(commit_mu_);
  StopWatch commit_clock;
  LicmDatabase db = snapshot()->db;
  for (const auto& t : c.terms) {
    if (t.var >= db.pool().size()) {
      return Status::InvalidArgument(
          "constraint references unknown variable b" + std::to_string(t.var));
    }
  }

  MutationResult r;
  StopWatch dirty_clock;
  {
    LICM_TRACE_SPAN("incremental", "dirty_set");
    FillDirtySet(ConstraintVars(c), &r);
  }
  const double dirty_ms = dirty_clock.ElapsedMs();

  {
    LICM_TRACE_SPAN("incremental", "re_encode");
    connectivity_.UnionAll(ConstraintVars(c));
    db.constraints().Add(std::move(c));
  }
  r.constraint_index = db.constraints().size() - 1;
  return Publish(std::move(db), std::move(r), dirty_ms, commit_clock);
}

MutationResult MutableInstance::Replace(LicmDatabase db) {
  std::lock_guard<std::mutex> commit(commit_mu_);
  StopWatch commit_clock;
  MutationResult r;
  StopWatch dirty_clock;
  {
    LICM_TRACE_SPAN("incremental", "dirty_set");
    // A wholesale replace dirties everything the old version had.
    r.total_components = connectivity_.NumComponents();
    r.dirty_components = r.total_components;
    r.dirty_vars = connectivity_.num_nodes();
  }
  const double dirty_ms = dirty_clock.ElapsedMs();
  {
    LICM_TRACE_SPAN("incremental", "re_encode");
    RebuildConnectivity(db);
  }
  return Publish(std::move(db), std::move(r), dirty_ms, commit_clock);
}

Result<AggregateAnswer> MutableInstance::Answer(const rel::QueryNode& query,
                                                AnswerOptions options) const {
  auto snap = snapshot();
  if (options.bounds.mip.cache == nullptr) {
    options.bounds.mip.cache = &cache_;
  }
  if (options.bounds.mip.incumbent_pool == nullptr) {
    options.bounds.mip.incumbent_pool = &incumbents_;
  }
  LICM_TRACE_SPAN("incremental", "re_solve");
  return AnswerAggregate(query, snap->db, options);
}

}  // namespace licm
