#include "licm/constraint.h"

#include <algorithm>
#include <sstream>

namespace licm {

const char* ConstraintOpName(ConstraintOp op) {
  switch (op) {
    case ConstraintOp::kLe: return "<=";
    case ConstraintOp::kGe: return ">=";
    case ConstraintOp::kEq: return "=";
  }
  return "?";
}

std::string LinearConstraint::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < terms.size(); ++i) {
    const auto& t = terms[i];
    if (i == 0) {
      if (t.coef == -1) os << "-";
      else if (t.coef != 1) os << t.coef << " ";
    } else {
      os << (t.coef < 0 ? " - " : " + ");
      const int64_t a = std::abs(t.coef);
      if (a != 1) os << a << " ";
    }
    os << "b" << t.var;
  }
  if (terms.empty()) os << "0";
  os << " " << ConstraintOpName(op) << " " << rhs;
  return os.str();
}

bool LinearConstraint::Satisfied(
    const std::vector<uint8_t>& assignment) const {
  int64_t lhs = 0;
  for (const Term& t : terms) {
    LICM_CHECK(t.var < assignment.size());
    lhs += t.coef * assignment[t.var];
  }
  switch (op) {
    case ConstraintOp::kLe: return lhs <= rhs;
    case ConstraintOp::kGe: return lhs >= rhs;
    case ConstraintOp::kEq: return lhs == rhs;
  }
  return false;
}

namespace {
LinearConstraint SumConstraint(const std::vector<BVar>& vars,
                               ConstraintOp op, int64_t rhs) {
  LinearConstraint c;
  c.terms.reserve(vars.size());
  for (BVar v : vars) c.terms.push_back({v, 1});
  c.op = op;
  c.rhs = rhs;
  return c;
}
}  // namespace

void ConstraintSet::AddCardinality(const std::vector<BVar>& vars, int64_t z1,
                                   int64_t z2) {
  const int64_t n = static_cast<int64_t>(vars.size());
  LICM_CHECK(z1 <= z2);
  if (z1 > 0) Add(SumConstraint(vars, ConstraintOp::kGe, z1));
  if (z2 < n) Add(SumConstraint(vars, ConstraintOp::kLe, z2));
}

void ConstraintSet::AddMutualExclusion(BVar b1, BVar b2) {
  Add(LinearConstraint{{{b1, 1}, {b2, 1}}, ConstraintOp::kEq, 1});
}

void ConstraintSet::AddCoexistence(BVar b1, BVar b2) {
  Add(LinearConstraint{{{b1, 1}, {b2, -1}}, ConstraintOp::kEq, 0});
}

void ConstraintSet::AddImplication(BVar b1, BVar b2) {
  Add(LinearConstraint{{{b1, 1}, {b2, -1}}, ConstraintOp::kLe, 0});
}

void ConstraintSet::AddAnd(BVar out, BVar a, BVar b) {
  Add(LinearConstraint{{{out, 1}, {a, -1}}, ConstraintOp::kLe, 0});
  Add(LinearConstraint{{{out, 1}, {b, -1}}, ConstraintOp::kLe, 0});
  Add(LinearConstraint{{{out, 1}, {a, -1}, {b, -1}}, ConstraintOp::kGe, -1});
}

void ConstraintSet::AddOr(BVar out, const std::vector<BVar>& in) {
  LICM_CHECK(!in.empty());
  LinearConstraint upper;
  for (BVar v : in) {
    Add(LinearConstraint{{{out, 1}, {v, -1}}, ConstraintOp::kGe, 0});
    upper.terms.push_back({v, -1});
  }
  upper.terms.push_back({out, 1});
  // Merge duplicated input vars (coefficients add).
  std::sort(upper.terms.begin(), upper.terms.end(),
            [](const auto& x, const auto& y) { return x.var < y.var; });
  std::vector<LinearConstraint::Term> merged;
  for (const auto& t : upper.terms) {
    if (!merged.empty() && merged.back().var == t.var)
      merged.back().coef += t.coef;
    else
      merged.push_back(t);
  }
  upper.terms = std::move(merged);
  upper.op = ConstraintOp::kLe;
  upper.rhs = 0;
  Add(std::move(upper));
}

void ConstraintSet::AddFix(BVar b, int64_t value) {
  LICM_CHECK(value == 0 || value == 1);
  Add(LinearConstraint{{{b, 1}}, ConstraintOp::kEq, value});
}

bool ConstraintSet::Satisfied(const std::vector<uint8_t>& assignment) const {
  for (const LinearConstraint& c : constraints_) {
    if (!c.Satisfied(assignment)) return false;
  }
  return true;
}

}  // namespace licm
