// LICM relations and databases (Definitions 2 and 3).
//
// An LICM relation is a collection of tuples over normal attributes plus
// the special Ext attribute: '1' for certain tuples, or a binary variable
// for maybe-tuples. An LICM database bundles named relations with the
// shared variable pool and constraint set; query operators grow all three.
#ifndef LICM_LICM_LICM_RELATION_H_
#define LICM_LICM_LICM_RELATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "licm/constraint.h"
#include "relational/engine.h"
#include "relational/relation.h"

namespace licm {

/// The Ext attribute of one tuple: certain ('1') or a maybe-variable b.
class Ext {
 public:
  static Ext Certain() { return Ext(kCertainTag); }
  static Ext Maybe(BVar v) { return Ext(v); }

  bool certain() const { return value_ == kCertainTag; }
  BVar var() const {
    LICM_CHECK(!certain());
    return value_;
  }

  /// 0/1 value under an assignment (certain tuples are always 1).
  uint8_t Eval(const std::vector<uint8_t>& assignment) const {
    if (certain()) return 1;
    LICM_CHECK(value_ < assignment.size());
    return assignment[value_];
  }

  bool operator==(const Ext&) const = default;

  std::string ToString() const {
    return certain() ? "1" : "b" + std::to_string(value_);
  }

 private:
  static constexpr BVar kCertainTag = 0xffffffffu;
  explicit Ext(BVar v) : value_(v) {}
  BVar value_;
};

/// A relation of schema {A1..Ak, Ext}. Normal attributes live in `tuples`,
/// the parallel `exts` array holds each tuple's Ext attribute.
class LicmRelation {
 public:
  LicmRelation() = default;
  explicit LicmRelation(rel::Schema schema) : schema_(std::move(schema)) {}

  const rel::Schema& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<rel::Tuple>& tuples() const { return tuples_; }
  const std::vector<Ext>& exts() const { return exts_; }
  const rel::Tuple& tuple(size_t i) const { return tuples_[i]; }
  Ext ext(size_t i) const { return exts_[i]; }

  Status Append(rel::Tuple t, Ext ext) {
    LICM_RETURN_NOT_OK(schema_.Check(t));
    AppendUnchecked(std::move(t), ext);
    return Status::OK();
  }
  void AppendUnchecked(rel::Tuple t, Ext ext) {
    tuples_.push_back(std::move(t));
    exts_.push_back(ext);
  }

  /// Removes the tuple (and its Ext) at position `i`; later tuples shift
  /// down. Used by MutableInstance retractions.
  void RemoveAt(size_t i) {
    LICM_CHECK(i < tuples_.size());
    tuples_.erase(tuples_.begin() + static_cast<ptrdiff_t>(i));
    exts_.erase(exts_.begin() + static_cast<ptrdiff_t>(i));
  }

  /// Instantiates this relation in the possible world selected by
  /// `assignment` (Section III): keeps tuples whose Ext evaluates to 1,
  /// deduplicated under set semantics.
  rel::Relation Instantiate(const std::vector<uint8_t>& assignment) const;

  /// The set of distinct binary variables appearing in Ext attributes.
  std::vector<BVar> Variables() const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  rel::Schema schema_;
  std::vector<rel::Tuple> tuples_;
  std::vector<Ext> exts_;
};

/// An LICM database D = (R, C): named relations, the variable pool B and
/// the constraint set C (Definition 3).
class LicmDatabase {
 public:
  Status AddRelation(std::string name, LicmRelation r);
  Result<const LicmRelation*> GetRelation(const std::string& name) const;
  /// Mutable lookup for the mutation layer (licm/mutable_instance.h);
  /// query evaluation only ever uses the const accessor.
  Result<LicmRelation*> GetMutableRelation(const std::string& name);

  VariablePool& pool() { return pool_; }
  const VariablePool& pool() const { return pool_; }
  ConstraintSet& constraints() { return constraints_; }
  const ConstraintSet& constraints() const { return constraints_; }

  const std::unordered_map<std::string, LicmRelation>& relations() const {
    return relations_;
  }

  /// Instantiates every relation in the world selected by `assignment`;
  /// the assignment must be valid (satisfy all constraints) for the result
  /// to be a possible world.
  rel::Database Instantiate(const std::vector<uint8_t>& assignment) const;

 private:
  std::unordered_map<std::string, LicmRelation> relations_;
  VariablePool pool_;
  ConstraintSet constraints_;
};

}  // namespace licm

#endif  // LICM_LICM_LICM_RELATION_H_
