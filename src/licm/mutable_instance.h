// Versioned, mutable LICM instances: the streaming layer over the static
// LicmDatabase of Definition 3.
//
// A MutableInstance holds an immutable Snapshot (version + database)
// behind a shared_ptr and serializes mutations — AppendTuples /
// RetractTuples / EditConstraint / AddConstraint / Replace — through a
// copy-on-write commit: writers copy the current database, apply the
// change, and atomically publish a new snapshot with version+1. Readers
// take a shared_ptr to whatever snapshot was current at admission and keep
// answering against it while later commits land (MVCC; DESIGN.md §13).
//
// Incremental re-solve falls out of content addressing rather than
// explicit invalidation: the instance owns a ComponentCache and an
// IncumbentPool keyed by canonical component fingerprints, so after a
// mutation the untouched components re-canonicalize to their old keys and
// are answered from cache (counted by ComponentCacheStats::
// cross_epoch_hits — commits bump the cache epoch), while the touched
// components' new fingerprints miss and are searched, warm-started from
// pooled incumbents where a feasible point for the same form is known.
//
// Dirty-set tracking: constraints are hyperedges over BVars, and a
// ConnectivityIndex (data/connectivity.h) over those hyperedges tells each
// mutation which connected components it perturbs. MutationResult reports
// the dirty set's size so callers (and telemetry) can verify that a local
// edit stays local. Tuple retraction never changes connectivity (edges
// come from constraints alone); constraint edits rebuild the index.
#ifndef LICM_LICM_MUTABLE_INSTANCE_H_
#define LICM_LICM_MUTABLE_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "data/connectivity.h"
#include "licm/evaluator.h"
#include "licm/licm_relation.h"
#include "solver/solve_cache.h"

namespace licm {

/// Outcome of one committed mutation.
struct MutationResult {
  /// Version of the snapshot the mutation produced (first snapshot is 1).
  uint64_t version = 0;
  /// Fresh maybe-variables allocated by an append, in row order (certain
  /// rows and reused-variable rows contribute none).
  std::vector<BVar> new_vars;
  size_t appended = 0;
  size_t retracted = 0;
  /// Dirty set over the pre-mutation connectivity: variables in touched
  /// components, touched component count, and the total component count of
  /// the pre-mutation variable pool. Appends of fresh variables touch only
  /// their own new singletons.
  size_t dirty_vars = 0;
  size_t dirty_components = 0;
  size_t total_components = 0;
  double dirty_ms = 0.0;
  double commit_ms = 0.0;
  /// For constraint mutations: the index the constraint landed at (edits
  /// report the edited slot, AddConstraint the appended one) — clients
  /// address later edits with it. kNoConstraint for tuple mutations.
  static constexpr size_t kNoConstraint = static_cast<size_t>(-1);
  size_t constraint_index = kNoConstraint;
};

/// One row of an append: the tuple plus its Ext disposition. `maybe`
/// allocates a fresh variable unless `reuse_var` names an existing one
/// (correlated maybe-tuples share a variable).
struct RowSpec {
  rel::Tuple tuple;
  bool maybe = false;
  std::optional<BVar> reuse_var;
};

class MutableInstance {
 public:
  /// An immutable published version. Queries hold the shared_ptr for as
  /// long as they need a consistent view.
  struct Snapshot {
    uint64_t version = 1;
    LicmDatabase db;
  };

  explicit MutableInstance(
      LicmDatabase db,
      size_t cache_capacity = solver::ComponentCache::kDefaultCapacity);

  MutableInstance(const MutableInstance&) = delete;
  MutableInstance& operator=(const MutableInstance&) = delete;

  /// The current snapshot; never null. O(1), safe against concurrent
  /// commits.
  std::shared_ptr<const Snapshot> snapshot() const;
  uint64_t version() const { return snapshot()->version; }

  /// Appends rows to `relation`. All rows are schema-checked before any
  /// state changes; on error nothing commits.
  Result<MutationResult> AppendTuples(const std::string& relation,
                                      const std::vector<RowSpec>& rows);

  /// Retracts the first tuple matching each of `rows` (by normal-attribute
  /// equality) from `relation`. Fails without committing if any row has no
  /// match. Retracted maybe-variables stay allocated: constraints may
  /// still mention them, and variable ids are never reused.
  Result<MutationResult> RetractTuples(const std::string& relation,
                                       const std::vector<rel::Tuple>& rows);

  /// Replaces constraint `index` with `replacement` (indices are stable
  /// across edits). Replacing with a vacuous constraint retires the slot.
  Result<MutationResult> EditConstraint(size_t index,
                                        LinearConstraint replacement);

  /// Edits only the comparison of constraint `index`, keeping its terms
  /// (the wire protocol's rhs-only edit).
  Result<MutationResult> EditConstraintRhs(size_t index, ConstraintOp op,
                                           int64_t rhs);

  /// Appends a new constraint.
  Result<MutationResult> AddConstraint(LinearConstraint c);

  /// Replaces the whole database (the service's `load replace=true` path).
  /// Bumps the version like any other commit.
  MutationResult Replace(LicmDatabase db);

  /// Answers `query` against the current snapshot, wiring this instance's
  /// component cache and incumbent pool into the solve unless the caller
  /// already supplied their own. Callers may still set deadline, scheduler
  /// and thread count in `options`.
  Result<AggregateAnswer> Answer(const rel::QueryNode& query,
                                 AnswerOptions options = {}) const;

  solver::ComponentCache* cache() const { return &cache_; }
  solver::IncumbentPool* incumbents() const { return &incumbents_; }

 private:
  // EditConstraint body; callers hold commit_mu_.
  Result<MutationResult> EditConstraintImpl(size_t index,
                                            LinearConstraint replacement);
  // Commits `db` as the next version; callers hold commit_mu_.
  MutationResult Publish(LicmDatabase db, MutationResult r, double dirty_ms,
                         const StopWatch& commit_clock);
  // Folds the components of `vars` (over the pre-mutation index) into `r`.
  void FillDirtySet(const std::vector<BVar>& vars, MutationResult* r);
  // Rebuilds connectivity_ from the constraint hyperedges of `db`.
  void RebuildConnectivity(const LicmDatabase& db);

  // commit_mu_ serializes writers end to end; state_mu_ only guards the
  // snapshot pointer swap (and connectivity_, which writers alone touch).
  mutable std::mutex state_mu_;
  std::mutex commit_mu_;
  std::shared_ptr<const Snapshot> snap_;
  data::ConnectivityIndex connectivity_;

  mutable solver::ComponentCache cache_;
  mutable solver::IncumbentPool incumbents_;
};

}  // namespace licm

#endif  // LICM_LICM_MUTABLE_INSTANCE_H_
