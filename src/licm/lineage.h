// Lineage-encoding primitives shared by the row (ops.cc) and columnar
// (columnar_ops.cc) LICM operators.
//
// Both engines must emit EXACTLY the same pool.New() sequence and
// constraint rows for a given logical input — that is what makes their
// bounds bit-identical and lets the differential tests compare encodings
// structurally. Keeping the case analyses (OR/AND lineage linking,
// Algorithm 4's two-constraint cardinality encodings) in one place makes
// divergence impossible rather than merely unlikely.
#ifndef LICM_LICM_LINEAGE_H_
#define LICM_LICM_LINEAGE_H_

#include <algorithm>
#include <optional>
#include <vector>

#include "licm/ops.h"

namespace licm {

/// Collects the distinct maybe-variables of a tuple group; `any_certain` is
/// set when at least one group member is certain.
struct GroupExt {
  bool any_certain = false;
  std::vector<BVar> vars;  // distinct, first-seen order
};

inline void Accumulate(GroupExt* g, Ext e) {
  if (e.certain()) {
    g->any_certain = true;
  } else if (std::find(g->vars.begin(), g->vars.end(), e.var()) ==
             g->vars.end()) {
    g->vars.push_back(e.var());
  }
}

/// Existence of "at least one member of the group": certain, a reused
/// single variable (Example 7's optimization), or a fresh OR-linked
/// variable.
inline Ext GroupOrExt(const GroupExt& g, OpContext ctx) {
  if (g.any_certain) return Ext::Certain();
  LICM_CHECK(!g.vars.empty());
  if (g.vars.size() == 1) return Ext::Maybe(g.vars[0]);
  const BVar out = ctx.pool->New();
  ctx.constraints->AddOr(out, g.vars);
  return Ext::Maybe(out);
}

/// AND of two tuple existences (Algorithm 2/3 case analysis).
inline Ext AndExt(Ext a, Ext b, OpContext ctx) {
  if (a == b || b.certain()) return a;
  if (a.certain()) return b;
  const BVar out = ctx.pool->New();
  ctx.constraints->AddAnd(out, a.var(), b.var());
  return Ext::Maybe(out);
}

/// One group of Algorithm 4: n certain tuples and maybe-terms B = sum of
/// existence variables (with multiplicity when several group members share
/// a variable).
struct CountGroup {
  int64_t n = 0;
  std::vector<LinearConstraint::Term> terms;  // merged by variable
  int64_t m = 0;  // number of maybe tuples (sum of coefficients)
  // Group existence (set semantics: a group value only appears in the
  // output when at least one of its tuples is present). Tracked over ALL
  // group tuples, including zero-weight ones.
  bool any_certain = false;
  std::vector<BVar> existence_vars;  // distinct
};

/// Folds one tuple of weight `w` into the group. Mirrors the accumulation
/// loop of GroupPredicateImpl: existence is tracked for every tuple, the
/// cardinality terms only for non-zero weights.
inline void AccumulateCount(CountGroup* cg, Ext e, int64_t w) {
  if (e.certain()) {
    cg->any_certain = true;
  } else {
    const BVar v = e.var();
    if (std::find(cg->existence_vars.begin(), cg->existence_vars.end(), v) ==
        cg->existence_vars.end()) {
      cg->existence_vars.push_back(v);
    }
  }
  if (w == 0) return;  // zero-weight tuples cannot affect the sum
  if (e.certain()) {
    cg->n += w;
  } else {
    cg->m += w;
    const BVar v = e.var();
    auto term = std::find_if(cg->terms.begin(), cg->terms.end(),
                             [v](const auto& x) { return x.var == v; });
    if (term == cg->terms.end()) {
      cg->terms.push_back({v, w});
    } else {
      term->coef += w;
    }
  }
}

/// Existence outcome for a group under one one-sided count predicate.
struct CountCase {
  enum Kind { kCertain, kExcluded, kVariable } kind;
  BVar var = 0;
};

/// COUNT <= d over the group (Algorithm 4, case 1).
inline CountCase EncodeLe(const CountGroup& g, int64_t d, OpContext ctx) {
  if (g.m + g.n <= d) return {CountCase::kCertain, 0};
  if (g.n > d) return {CountCase::kExcluded, 0};
  const BVar b = ctx.pool->New();
  // (d - n + 1) b + B >= d - n + 1
  LinearConstraint c1;
  c1.terms = g.terms;
  c1.terms.push_back({b, d - g.n + 1});
  c1.op = ConstraintOp::kGe;
  c1.rhs = d - g.n + 1;
  ctx.constraints->Add(std::move(c1));
  // (m - d + n) b + B <= m
  LinearConstraint c2;
  c2.terms = g.terms;
  c2.terms.push_back({b, g.m - d + g.n});
  c2.op = ConstraintOp::kLe;
  c2.rhs = g.m;
  ctx.constraints->Add(std::move(c2));
  return {CountCase::kVariable, b};
}

/// COUNT >= d over the group (Algorithm 4, case 2).
inline CountCase EncodeGe(const CountGroup& g, int64_t d, OpContext ctx) {
  if (g.n >= d) return {CountCase::kCertain, 0};
  if (g.m + g.n < d) return {CountCase::kExcluded, 0};
  const BVar b = ctx.pool->New();
  // (d - n) b <= B
  LinearConstraint c1;
  c1.terms = g.terms;
  for (auto& t : c1.terms) t.coef = -t.coef;
  c1.terms.push_back({b, d - g.n});
  c1.op = ConstraintOp::kLe;
  c1.rhs = 0;
  ctx.constraints->Add(std::move(c1));
  // B <= d - n - 1 + (m - d + n + 1) b
  LinearConstraint c2;
  c2.terms = g.terms;
  c2.terms.push_back({b, -(g.m - d + g.n + 1)});
  c2.op = ConstraintOp::kLe;
  c2.rhs = d - g.n - 1;
  ctx.constraints->Add(std::move(c2));
  return {CountCase::kVariable, b};
}

/// `COUNT op d` normalized onto the <= / >= sides Algorithm 4 encodes.
struct CountOpSides {
  bool want_le = false, want_ge = false;
  int64_t d_le = 0, d_ge = 0;
};

inline Result<CountOpSides> NormalizeCountOp(rel::CmpOp op, int64_t d) {
  CountOpSides s;
  switch (op) {
    case rel::CmpOp::kLe: s.want_le = true; s.d_le = d; break;
    case rel::CmpOp::kLt: s.want_le = true; s.d_le = d - 1; break;
    case rel::CmpOp::kGe: s.want_ge = true; s.d_ge = d; break;
    case rel::CmpOp::kGt: s.want_ge = true; s.d_ge = d + 1; break;
    case rel::CmpOp::kEq:
      s.want_le = s.want_ge = true;
      s.d_le = s.d_ge = d;
      break;
    case rel::CmpOp::kNe:
      return Status::Unimplemented(
          "COUNT != d requires disjunctive lineage, which LICM encodes only "
          "via the completeness construction");
  }
  return s;
}

/// Lineage of one emitted group row of Algorithm 4: ANDs the per-side
/// existence variables and, when needed, the group's set-semantics
/// existence. Returns nullopt when the group is excluded (can never
/// satisfy the predicate, or can never exist).
inline std::optional<Ext> GroupRowExt(const CountGroup& cg,
                                      const CountOpSides& sides, OpContext ctx,
                                      CountCase le, CountCase ge) {
  if (le.kind == CountCase::kExcluded || ge.kind == CountCase::kExcluded) {
    return std::nullopt;
  }
  Ext e = Ext::Certain();
  if (le.kind == CountCase::kVariable && ge.kind == CountCase::kVariable) {
    e = AndExt(Ext::Maybe(le.var), Ext::Maybe(ge.var), ctx);
  } else if (le.kind == CountCase::kVariable) {
    e = Ext::Maybe(le.var);
  } else if (ge.kind == CountCase::kVariable) {
    e = Ext::Maybe(ge.var);
  }
  // Set semantics: the group value only exists in the output when some
  // group tuple is present. A satisfied >= d side with d >= 1 already
  // implies this; otherwise (pure <=, or thresholds <= 0) AND it in.
  const bool existence_implied = sides.want_ge && sides.d_ge >= 1;
  if (!existence_implied && !cg.any_certain) {
    if (cg.existence_vars.empty()) return std::nullopt;  // cannot ever exist
    GroupExt gext;
    gext.vars = cg.existence_vars;
    e = AndExt(e, GroupOrExt(gext, ctx), ctx);
  }
  return e;
}

}  // namespace licm

#endif  // LICM_LICM_LINEAGE_H_
