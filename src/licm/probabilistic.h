// Probabilistic extension of LICM (the paper's Concluding Remarks):
// independent prior probabilities on the binary existence variables,
// conditioned on the constraint set. Query answering then returns the
// expected value of an aggregate and tail estimates instead of (or in
// addition to) the possibilistic bounds.
//
// Exact conditioning is exponential in the number of variables, so small
// databases are enumerated exactly and larger ones fall back to rejection
// sampling with a normal-approximation confidence interval. Dropping the
// priors recovers the paper's possibilistic bounds unchanged.
#ifndef LICM_LICM_PROBABILISTIC_H_
#define LICM_LICM_PROBABILISTIC_H_

#include <vector>

#include "licm/licm_relation.h"
#include "relational/query.h"

namespace licm {

/// Independent prior P(b = 1) per variable, indexed by BVar. Variables
/// beyond the vector's size default to 1/2.
struct Priors {
  std::vector<double> p;

  double Of(BVar v) const {
    return v < p.size() ? p[v] : 0.5;
  }
  static Priors Uniform(uint32_t num_vars) {
    Priors pr;
    pr.p.assign(num_vars, 0.5);
    return pr;
  }
};

struct ProbabilisticOptions {
  /// Exhaustive enumeration cutoff (2^n weighted terms).
  uint32_t exact_var_limit = 18;
  /// Accepted Monte-Carlo samples to draw past the cutoff.
  int num_samples = 2000;
  /// Rejection-sampling attempt budget (tight constraints reject a lot).
  int64_t max_tries = 2'000'000;
  uint64_t seed = 1;
};

struct ProbabilisticAnswer {
  double expected = 0.0;
  double variance = 0.0;
  /// True when computed by exact enumeration; false for sampling.
  bool exact = false;
  /// 95% normal-approximation half-width of `expected` (0 when exact).
  double ci_halfwidth = 0.0;
  /// Exact mode only: the full answer distribution as (value, probability)
  /// pairs, ascending by value.
  std::vector<std::pair<double, double>> distribution;
  /// Sampling mode only: accepted / attempted ratio.
  double acceptance_rate = 1.0;
};

/// Expected value (and distribution / CI) of an aggregate query under
/// independent priors conditioned on the constraint set. The query must be
/// rooted at kCountStar / kSum / kMin / kMax. Returns Status::Infeasible
/// when no valid assignment exists, and Status::OutOfRange when rejection
/// sampling cannot find valid worlds within the attempt budget.
Result<ProbabilisticAnswer> ExpectedAggregate(
    const rel::QueryNode& query, const LicmDatabase& db, const Priors& priors,
    const ProbabilisticOptions& options = {});

}  // namespace licm

#endif  // LICM_LICM_PROBABILISTIC_H_
