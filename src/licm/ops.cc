#include "licm/ops.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "licm/lineage.h"
#include "relational/engine.h"

namespace licm {

Result<LicmRelation> SelectOp(
    const LicmRelation& in, const std::vector<rel::Predicate>& predicates) {
  std::vector<size_t> idx(predicates.size());
  for (size_t i = 0; i < predicates.size(); ++i) {
    LICM_ASSIGN_OR_RETURN(idx[i],
                          in.schema().IndexOf(predicates[i].column));
  }
  LicmRelation out(in.schema());
  for (size_t t = 0; t < in.size(); ++t) {
    bool pass = true;
    for (size_t i = 0; i < predicates.size() && pass; ++i) {
      pass = rel::CmpApply(predicates[i].op, in.tuple(t)[idx[i]],
                           predicates[i].operand);
    }
    if (pass) out.AppendUnchecked(in.tuple(t), in.ext(t));
  }
  return out;
}

Result<LicmRelation> ProjectOp(const LicmRelation& in,
                               const std::vector<std::string>& columns,
                               OpContext ctx) {
  std::vector<size_t> idx(columns.size());
  std::vector<rel::Column> cols(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    LICM_ASSIGN_OR_RETURN(idx[i], in.schema().IndexOf(columns[i]));
    cols[i] = in.schema().column(idx[i]);
  }
  // Group source tuples by their projected image, keeping first-seen order.
  std::unordered_map<rel::Tuple, GroupExt, rel::TupleHash> groups;
  std::vector<rel::Tuple> order;
  for (size_t t = 0; t < in.size(); ++t) {
    rel::Tuple key(idx.size());
    for (size_t i = 0; i < idx.size(); ++i) key[i] = in.tuple(t)[idx[i]];
    auto [it, inserted] = groups.emplace(std::move(key), GroupExt{});
    if (inserted) order.push_back(it->first);
    Accumulate(&it->second, in.ext(t));
  }
  LicmRelation out{rel::Schema(std::move(cols))};
  for (const rel::Tuple& key : order) {
    out.AppendUnchecked(key, GroupOrExt(groups.at(key), ctx));
  }
  return out;
}

Result<LicmRelation> MergeDuplicates(const LicmRelation& in, OpContext ctx) {
  std::unordered_set<rel::Tuple, rel::TupleHash> seen;
  bool has_dup = false;
  for (const auto& t : in.tuples()) {
    if (!seen.insert(t).second) {
      has_dup = true;
      break;
    }
  }
  if (!has_dup) return in;
  std::vector<std::string> all;
  for (const auto& c : in.schema().columns()) all.push_back(c.name);
  return ProjectOp(in, all, ctx);
}

Result<LicmRelation> IntersectOp(const LicmRelation& a, const LicmRelation& b,
                                 OpContext ctx) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("intersect schema mismatch: " +
                                   a.schema().ToString() + " vs " +
                                   b.schema().ToString());
  }
  LICM_ASSIGN_OR_RETURN(LicmRelation left, MergeDuplicates(a, ctx));
  LICM_ASSIGN_OR_RETURN(LicmRelation right, MergeDuplicates(b, ctx));

  std::unordered_map<rel::Tuple, Ext, rel::TupleHash> rmap;
  for (size_t t = 0; t < right.size(); ++t) {
    rmap.emplace(right.tuple(t), right.ext(t));
  }
  LicmRelation out(left.schema());
  for (size_t t = 0; t < left.size(); ++t) {
    auto it = rmap.find(left.tuple(t));
    if (it == rmap.end()) continue;
    out.AppendUnchecked(left.tuple(t), AndExt(left.ext(t), it->second, ctx));
  }
  return out;
}

Result<LicmRelation> ProductOp(const LicmRelation& a, const LicmRelation& b,
                               OpContext ctx) {
  LICM_ASSIGN_OR_RETURN(LicmRelation left, MergeDuplicates(a, ctx));
  LICM_ASSIGN_OR_RETURN(LicmRelation right, MergeDuplicates(b, ctx));
  LicmRelation out(rel::ProductSchema(left.schema(), right.schema()));
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      rel::Tuple nt = left.tuple(i);
      nt.insert(nt.end(), right.tuple(j).begin(), right.tuple(j).end());
      out.AppendUnchecked(std::move(nt),
                          AndExt(left.ext(i), right.ext(j), ctx));
    }
  }
  return out;
}

Result<LicmRelation> JoinOp(
    const LicmRelation& a, const LicmRelation& b,
    const std::vector<std::pair<std::string, std::string>>& on,
    OpContext ctx) {
  if (on.empty()) {
    return Status::InvalidArgument("join requires at least one key pair");
  }
  LICM_ASSIGN_OR_RETURN(LicmRelation left, MergeDuplicates(a, ctx));
  LICM_ASSIGN_OR_RETURN(LicmRelation right, MergeDuplicates(b, ctx));

  std::vector<size_t> lkeys, rkeys;
  for (const auto& [ln, rn] : on) {
    LICM_ASSIGN_OR_RETURN(size_t li, left.schema().IndexOf(ln));
    LICM_ASSIGN_OR_RETURN(size_t ri, right.schema().IndexOf(rn));
    lkeys.push_back(li);
    rkeys.push_back(ri);
  }
  std::unordered_set<size_t> rdrop(rkeys.begin(), rkeys.end());

  std::unordered_map<rel::Tuple, std::vector<size_t>, rel::TupleHash> index;
  for (size_t j = 0; j < right.size(); ++j) {
    rel::Tuple key(rkeys.size());
    for (size_t i = 0; i < rkeys.size(); ++i) key[i] = right.tuple(j)[rkeys[i]];
    index[std::move(key)].push_back(j);
  }
  LicmRelation out(rel::JoinSchema(left.schema(), right.schema(), on));
  for (size_t i = 0; i < left.size(); ++i) {
    rel::Tuple key(lkeys.size());
    for (size_t k = 0; k < lkeys.size(); ++k) key[k] = left.tuple(i)[lkeys[k]];
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (size_t j : it->second) {
      rel::Tuple nt = left.tuple(i);
      for (size_t c = 0; c < right.tuple(j).size(); ++c) {
        if (!rdrop.contains(c)) nt.push_back(right.tuple(j)[c]);
      }
      out.AppendUnchecked(std::move(nt),
                          AndExt(left.ext(i), right.ext(j), ctx));
    }
  }
  // Dropping key columns cannot merge distinct pairs when inputs are sets,
  // but merge defensively so downstream set semantics never break.
  return MergeDuplicates(out, ctx);
}

namespace {

// Shared engine of CountPredicateOp / SumPredicateOp: groups the merged
// relation by `gidx`, weighting each tuple by 1 (count) or by its value in
// column `vidx` (sum), and emits Algorithm 4's encoding per group.
Result<LicmRelation> GroupPredicateImpl(const LicmRelation& merged,
                                        size_t gidx, size_t vidx,
                                        bool weighted, rel::CmpOp op,
                                        int64_t d, OpContext ctx);

}  // namespace

Result<LicmRelation> CountPredicateOp(const LicmRelation& in,
                                      const std::string& group_column,
                                      rel::CmpOp op, int64_t d,
                                      OpContext ctx) {
  LICM_ASSIGN_OR_RETURN(size_t gidx, in.schema().IndexOf(group_column));
  // Set semantics: each distinct tuple counts once per world.
  LICM_ASSIGN_OR_RETURN(LicmRelation merged, MergeDuplicates(in, ctx));
  return GroupPredicateImpl(merged, gidx, 0, /*weighted=*/false, op, d, ctx);
}

Result<LicmRelation> SumPredicateOp(const LicmRelation& in,
                                    const std::string& group_column,
                                    const std::string& sum_column,
                                    rel::CmpOp op, int64_t d, OpContext ctx) {
  LICM_ASSIGN_OR_RETURN(size_t gidx, in.schema().IndexOf(group_column));
  LICM_ASSIGN_OR_RETURN(size_t vidx, in.schema().IndexOf(sum_column));
  if (in.schema().column(vidx).type != rel::ValueType::kInt) {
    return Status::InvalidArgument(
        "SUM predicate needs an int column, got " +
        std::string(rel::TypeName(in.schema().column(vidx).type)));
  }
  LICM_ASSIGN_OR_RETURN(LicmRelation merged, MergeDuplicates(in, ctx));
  return GroupPredicateImpl(merged, gidx, vidx, /*weighted=*/true, op, d,
                            ctx);
}

namespace {

Result<LicmRelation> GroupPredicateImpl(const LicmRelation& merged,
                                        size_t gidx, size_t vidx,
                                        bool weighted, rel::CmpOp op,
                                        int64_t d, OpContext ctx) {
  LICM_ASSIGN_OR_RETURN(CountOpSides sides, NormalizeCountOp(op, d));

  // Group tuples by the group column value, weighting by the summed
  // column (or 1 for COUNT).
  std::unordered_map<rel::Value, CountGroup, rel::ValueHash> groups;
  std::vector<rel::Value> order;
  for (size_t t = 0; t < merged.size(); ++t) {
    int64_t w = 1;
    if (weighted) {
      w = std::get<int64_t>(merged.tuple(t)[vidx]);
      if (w < 0) {
        return Status::Unimplemented(
            "SUM predicate requires non-negative values (Algorithm 4's "
            "case analysis assumes monotone activity)");
      }
    }
    const rel::Value& g = merged.tuple(t)[gidx];
    auto [it, inserted] = groups.emplace(g, CountGroup{});
    if (inserted) order.push_back(g);
    AccumulateCount(&it->second, merged.ext(t), w);
  }

  LicmRelation out{rel::Schema({merged.schema().column(gidx)})};
  for (const rel::Value& g : order) {
    const CountGroup& cg = groups.at(g);
    CountCase le{CountCase::kCertain, 0}, ge{CountCase::kCertain, 0};
    if (sides.want_le) le = EncodeLe(cg, sides.d_le, ctx);
    if (sides.want_ge) ge = EncodeGe(cg, sides.d_ge, ctx);
    const std::optional<Ext> e = GroupRowExt(cg, sides, ctx, le, ge);
    if (!e.has_value()) continue;
    out.AppendUnchecked(rel::Tuple{g}, *e);
  }
  return out;
}

}  // namespace

}  // namespace licm
