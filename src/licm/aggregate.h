// Aggregate query answering (Section IV-D).
//
// The final LICM relation of a query plus the accumulated constraint set
// define a binary integer program: objective = sum of Ext attributes
// (COUNT) or sum of value * Ext (SUM); constraints = the lineage-encoding
// constraint set. Minimizing/maximizing yields the exact lower/upper bound
// over all possible worlds, and the solution vector names an extreme world.
#ifndef LICM_LICM_AGGREGATE_H_
#define LICM_LICM_AGGREGATE_H_

#include <unordered_map>
#include <vector>

#include "licm/licm_relation.h"
#include "licm/prune.h"
#include "solver/mip_solver.h"

namespace licm {

/// Linear objective over existence variables: constant (from certain
/// tuples) + sum of coef * b.
struct Objective {
  double constant = 0.0;
  std::unordered_map<BVar, double> coefs;
};

/// COUNT(*) objective: each tuple contributes its Ext.
Objective CountObjective(const LicmRelation& relation);

/// SUM(column) objective: each tuple contributes value(column) * Ext.
/// The column must be numeric.
Result<Objective> SumObjective(const LicmRelation& relation,
                               const std::string& column);

struct BoundsOptions {
  /// Remove variables/constraints unreachable from the objective before
  /// solving (Section V-C).
  bool prune = true;
  /// Solver configuration. `mip.cache` may point at a shared
  /// solver::ComponentCache to memoize isomorphic-component solves across
  /// calls; by default every bound computation uses a private cache that
  /// still dedupes the (typically thousands of) isomorphic group
  /// components within the call.
  solver::MipOptions mip;
};

/// One side of the answer range.
struct BoundSide {
  /// Best possible-world answer found. Always achievable by a world when
  /// `has_world`; equals the true extremum when `exact`.
  double value = 0.0;
  bool exact = false;
  bool has_world = false;
  /// Proved outer bound: <= true min (for the min side), >= true max (for
  /// the max side). Equals `value` when exact.
  double proved = 0.0;
  /// Assignment of the live (unpruned) variables achieving `value`. Pruned
  /// variables are unconstrained by the objective and can be completed by
  /// any satisfying assignment of the pruned remainder.
  std::unordered_map<BVar, uint8_t> world;
};

struct AggregateBounds {
  BoundSide min;
  BoundSide max;
  PruneResult::Stats prune_stats;
  /// Solver statistics for the whole computation. Both sides are solved in
  /// one pass (presolve + decomposition run exactly once; see
  /// solver::MipSolver::SolveMinMax), so the stats are shared rather than
  /// per side.
  solver::MipStats stats;
};

/// Computes [min, max] of `objective` subject to `constraints` over
/// variables 0..num_vars-1 (the database's pool). Returns
/// Status::Infeasible when the constraint set admits no world.
Result<AggregateBounds> ComputeBounds(const Objective& objective,
                                      const ConstraintSet& constraints,
                                      uint32_t num_vars,
                                      const BoundsOptions& options = {});

/// Bounds of a MIN or MAX aggregate over a numeric column (the paper's
/// "MIN and MAX can be handled ... using case based reasoning"). The range
/// is taken over the worlds where the result relation is non-empty.
struct MinMaxBounds {
  double lo = 0.0;
  double hi = 0.0;
  /// Feasibility subproblems that hit the solver's limits make the
  /// corresponding side conservative (outer) rather than exact.
  bool exact_lo = true;
  bool exact_hi = true;
  /// Some world instantiates the relation to empty (aggregate undefined
  /// there); when every world is empty, `always_empty` is set and lo/hi
  /// are meaningless.
  bool may_be_empty = false;
  bool always_empty = false;
  /// Merged solver statistics over the whole probe sequence (the probes
  /// share one constraint-graph decomposition and one solve cache).
  solver::MipStats stats;
};

/// Case-based MIN/MAX bounds: a sequence of solver feasibility probes over
/// the distinct column values. `is_max` selects MAX (else MIN).
Result<MinMaxBounds> ComputeMinMaxBounds(const LicmRelation& relation,
                                         const std::string& column,
                                         const ConstraintSet& constraints,
                                         uint32_t num_vars, bool is_max,
                                         const BoundsOptions& options = {});

/// Core of the MIN/MAX case analysis over pre-extracted parallel
/// value/lineage vectors (one entry per tuple, in relation order). The
/// relation overload delegates here; the columnar path calls it directly
/// with the gathered column.
Result<MinMaxBounds> ComputeMinMaxBounds(const std::vector<double>& values,
                                         const std::vector<Ext>& exts,
                                         const ConstraintSet& constraints,
                                         uint32_t num_vars, bool is_max,
                                         const BoundsOptions& options = {});

}  // namespace licm

#endif  // LICM_LICM_AGGREGATE_H_
