#include "licm/probabilistic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/rng.h"
#include "relational/engine.h"

namespace licm {

namespace {

// MIN/MAX of an empty world relation is undefined; those worlds are
// excluded from the conditional distribution (consistent with
// ComputeMinMaxBounds' non-empty-world semantics).
Result<ProbabilisticAnswer> ExactEnumeration(const rel::QueryNode& query,
                                             const LicmDatabase& db,
                                             const Priors& priors) {
  const uint32_t n = db.pool().size();
  ProbabilisticAnswer out;
  out.exact = true;
  std::map<double, double> dist;
  double total_weight = 0.0;
  const uint64_t limit = 1ull << n;
  std::vector<uint8_t> a(n);
  for (uint64_t mask = 0; mask < limit; ++mask) {
    for (uint32_t v = 0; v < n; ++v) a[v] = (mask >> v) & 1;
    if (!db.constraints().Satisfied(a)) continue;
    double w = 1.0;
    for (uint32_t v = 0; v < n; ++v) {
      const double p = priors.Of(v);
      w *= a[v] ? p : (1.0 - p);
    }
    if (w == 0.0) continue;
    rel::Database world = db.Instantiate(a);
    auto val = rel::EvaluateAggregate(query, world);
    if (!val.ok()) continue;  // undefined (empty MIN/MAX world)
    dist[*val] += w;
    total_weight += w;
  }
  if (total_weight == 0.0) {
    return Status::Infeasible(
        "no possible world has positive prior probability");
  }
  double mean = 0.0, second = 0.0;
  for (auto& [value, w] : dist) {
    w /= total_weight;
    mean += value * w;
    second += value * value * w;
  }
  out.expected = mean;
  out.variance = std::max(0.0, second - mean * mean);
  out.distribution.assign(dist.begin(), dist.end());
  return out;
}

Result<ProbabilisticAnswer> RejectionSampling(
    const rel::QueryNode& query, const LicmDatabase& db, const Priors& priors,
    const ProbabilisticOptions& options) {
  const uint32_t n = db.pool().size();
  Rng rng(options.seed);
  ProbabilisticAnswer out;
  out.exact = false;
  std::vector<uint8_t> a(n);
  double sum = 0.0, sum_sq = 0.0;
  int accepted = 0;
  int64_t tries = 0;
  while (accepted < options.num_samples) {
    if (++tries > options.max_tries) {
      if (accepted == 0) {
        return Status::OutOfRange(
            "rejection sampling exhausted its attempt budget without "
            "finding a valid world; constraints too tight for priors");
      }
      break;
    }
    for (uint32_t v = 0; v < n; ++v) {
      a[v] = rng.Bernoulli(priors.Of(v)) ? 1 : 0;
    }
    if (!db.constraints().Satisfied(a)) continue;
    rel::Database world = db.Instantiate(a);
    auto val = rel::EvaluateAggregate(query, world);
    if (!val.ok()) continue;  // undefined world for MIN/MAX
    sum += *val;
    sum_sq += *val * *val;
    ++accepted;
  }
  const double m = static_cast<double>(accepted);
  out.expected = sum / m;
  out.variance = std::max(0.0, sum_sq / m - out.expected * out.expected);
  out.ci_halfwidth = accepted > 1
                         ? 1.96 * std::sqrt(out.variance / m)
                         : std::numeric_limits<double>::infinity();
  out.acceptance_rate = m / static_cast<double>(tries);
  return out;
}

}  // namespace

Result<ProbabilisticAnswer> ExpectedAggregate(
    const rel::QueryNode& query, const LicmDatabase& db, const Priors& priors,
    const ProbabilisticOptions& options) {
  if (!rel::IsAggregate(query)) {
    return Status::InvalidArgument(
        "ExpectedAggregate requires an aggregate root");
  }
  for (double p : priors.p) {
    if (p < 0.0 || p > 1.0 || !std::isfinite(p)) {
      return Status::InvalidArgument("priors must lie in [0, 1]");
    }
  }
  if (db.pool().size() <= options.exact_var_limit) {
    return ExactEnumeration(query, db, priors);
  }
  return RejectionSampling(query, db, priors, options);
}

}  // namespace licm
