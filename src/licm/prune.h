// Lineage pruning (Section V-C "Pruning").
//
// Variables and constraints not reachable from the aggregate objective
// cannot affect the optimum, so they are removed before the BIP is handed
// to the solver. The paper exploits sequential variable creation to prune
// in a single reverse pass; we run a worklist fixpoint over the
// variable/constraint incidence graph, which costs the same asymptotically
// and stays correct even for constraint orders that interleave groups
// (e.g. permutation row/column constraints).
//
// Soundness caveat (shared with the paper): pruning assumes the pruned-away
// remainder is satisfiable — true whenever the LICM database describes at
// least one possible world, which holds for every encoding of real data
// (the original data is a world).
#ifndef LICM_LICM_PRUNE_H_
#define LICM_LICM_PRUNE_H_

#include <unordered_set>
#include <vector>

#include "licm/constraint.h"

namespace licm {

struct PruneResult {
  /// Constraints reachable from the seed variables.
  std::vector<LinearConstraint> kept;
  /// Variables reachable from the seeds (includes the seeds).
  std::unordered_set<BVar> live;

  struct Stats {
    size_t vars_before = 0;
    size_t vars_after = 0;
    size_t constraints_before = 0;
    size_t constraints_after = 0;
  } stats;
};

/// Keeps exactly the constraints/variables reachable from `seeds`.
PruneResult Prune(const ConstraintSet& constraints,
                  const std::vector<BVar>& seeds, uint32_t num_vars);

}  // namespace licm

#endif  // LICM_LICM_PRUNE_H_
