#include "licm/aggregate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "common/telemetry.h"
#include "solver/scheduler.h"
#include "solver/solve_cache.h"

namespace licm {

Objective CountObjective(const LicmRelation& relation) {
  Objective obj;
  for (size_t i = 0; i < relation.size(); ++i) {
    const Ext e = relation.ext(i);
    if (e.certain()) {
      obj.constant += 1.0;
    } else {
      obj.coefs[e.var()] += 1.0;
    }
  }
  return obj;
}

Result<Objective> SumObjective(const LicmRelation& relation,
                               const std::string& column) {
  LICM_ASSIGN_OR_RETURN(size_t idx, relation.schema().IndexOf(column));
  const rel::ValueType t = relation.schema().column(idx).type;
  if (t == rel::ValueType::kString) {
    return Status::InvalidArgument("SUM over string column '" + column + "'");
  }
  Objective obj;
  for (size_t i = 0; i < relation.size(); ++i) {
    const rel::Value& v = relation.tuple(i)[idx];
    const double x = t == rel::ValueType::kInt
                         ? static_cast<double>(std::get<int64_t>(v))
                         : std::get<double>(v);
    const Ext e = relation.ext(i);
    if (e.certain()) {
      obj.constant += x;
    } else {
      obj.coefs[e.var()] += x;
    }
  }
  return obj;
}

namespace {

solver::RowOp ToRowOp(ConstraintOp op) {
  switch (op) {
    case ConstraintOp::kLe: return solver::RowOp::kLe;
    case ConstraintOp::kGe: return solver::RowOp::kGe;
    case ConstraintOp::kEq: return solver::RowOp::kEq;
  }
  return solver::RowOp::kEq;
}

// Feasibility of the constraints pruning dropped. The dropped rows share no
// variable with the live set (any shared variable would have made them
// live), so their satisfiability is independent of the kept LP — and
// pruning's soundness caveat (prune.h) is exactly that this remainder
// admits a world. One zero-objective solve settles it.
//
// Returns Infeasible when no world satisfies the remainder, OK otherwise;
// `*exact` is cleared when the probe hit a limit and the answer is unknown.
Status CheckPrunedRemainder(const ConstraintSet& constraints,
                            const PruneResult& pruned,
                            const solver::MipOptions& mip, bool* exact) {
  std::vector<const LinearConstraint*> dropped;
  for (const LinearConstraint& c : constraints.constraints()) {
    bool live = false;
    for (const auto& t : c.terms) live |= pruned.live.count(t.var) > 0;
    if (live) continue;
    if (c.terms.empty()) {  // constant row: evaluate 0 op rhs directly
      const bool ok = c.op == ConstraintOp::kLe   ? 0 <= c.rhs
                      : c.op == ConstraintOp::kGe ? 0 >= c.rhs
                                                  : c.rhs == 0;
      if (!ok) {
        return Status::Infeasible(
            "LICM constraint set admits no possible world");
      }
      continue;
    }
    dropped.push_back(&c);
  }
  if (dropped.empty()) return Status::OK();

  solver::LinearProgram lp;
  // Dense BVar -> VarId map: ids are contiguous and small, and the hash
  // lookups of a map dominate construction time on large remainders.
  constexpr solver::VarId kUnmapped =
      std::numeric_limits<solver::VarId>::max();
  std::vector<solver::VarId> to_lp;
  for (const LinearConstraint* c : dropped) {
    solver::Row row;
    row.terms.reserve(c->terms.size());
    for (const auto& t : c->terms) {
      if (t.var >= to_lp.size()) to_lp.resize(t.var + 1, kUnmapped);
      if (to_lp[t.var] == kUnmapped) to_lp[t.var] = lp.AddBinary();
      row.terms.push_back({to_lp[t.var], static_cast<double>(t.coef)});
    }
    row.op = ToRowOp(c->op);
    row.rhs = static_cast<double>(c->rhs);
    lp.AddRow(std::move(row));
  }
  // Witness fast path: LICM remainders are overwhelmingly disjoint
  // cardinality blocks ("between lo and hi of this group set"), where
  // raising the minimum number of variables per >=/== row yields a
  // possible world. Build that assignment greedily, then verify it against
  // EVERY row exactly — all quantities are small integers, so the checks
  // are exact and a verified witness proves feasibility outright, skipping
  // the solver (whose canonicalization pass dominates this probe on
  // monolithic-component workloads). Verification failure falls through to
  // the exact zero-objective solve, so the heuristic cannot affect
  // soundness in either direction.
  std::vector<uint8_t> x(lp.num_vars(), 0);
  for (const solver::Row& row : lp.rows()) {
    if (row.op == solver::RowOp::kLe) continue;
    double act = 0.0;
    for (const auto& t : row.terms) act += t.coef * x[t.var];
    for (const auto& t : row.terms) {
      if (act >= row.rhs) break;
      if (t.coef > 0 && x[t.var] == 0) {
        x[t.var] = 1;
        act += t.coef;
      }
    }
  }
  bool witness_ok = true;
  for (const solver::Row& row : lp.rows()) {
    double act = 0.0;
    for (const auto& t : row.terms) act += t.coef * x[t.var];
    const bool sat = row.op == solver::RowOp::kLe   ? act <= row.rhs
                     : row.op == solver::RowOp::kGe ? act >= row.rhs
                                                    : act == row.rhs;
    if (!sat) {
      witness_ok = false;
      break;
    }
  }
  if (witness_ok) return Status::OK();

  const solver::MipResult r =
      solver::MipSolver(mip).Solve(lp, solver::Sense::kMaximize);
  if (r.status == solver::SolveStatus::kInfeasible) {
    return Status::Infeasible("LICM constraint set admits no possible world");
  }
  if (r.status != solver::SolveStatus::kOptimal) *exact = false;
  return Status::OK();
}

}  // namespace

Result<AggregateBounds> ComputeBounds(const Objective& objective,
                                      const ConstraintSet& constraints,
                                      uint32_t num_vars,
                                      const BoundsOptions& options) {
  telemetry::ScopedSpan bip_span("licm", "build_bip");
  // Determine the variable/constraint subsystem to hand to the solver.
  std::vector<BVar> seeds;
  seeds.reserve(objective.coefs.size());
  for (const auto& [v, c] : objective.coefs) seeds.push_back(v);

  PruneResult pruned;
  bool remainder_exact = true;
  if (options.prune) {
    pruned = Prune(constraints, seeds, num_vars);
    if (pruned.kept.size() < constraints.size()) {
      LICM_RETURN_NOT_OK(CheckPrunedRemainder(constraints, pruned,
                                              options.mip, &remainder_exact));
    }
  } else {
    // Identity "prune": everything stays live.
    pruned.kept = constraints.constraints();
    for (BVar v = 0; v < num_vars; ++v) pruned.live.insert(v);
    pruned.stats = {num_vars, num_vars, constraints.size(),
                    constraints.size()};
  }

  // Build the BIP over live variables. BVar -> VarId uses a dense vector:
  // ids are contiguous, and at Query-3 scale (hundreds of thousands of
  // terms) map hashing dominates construction otherwise.
  solver::LinearProgram lp;
  constexpr solver::VarId kUnmapped =
      std::numeric_limits<solver::VarId>::max();
  std::vector<solver::VarId> to_lp(num_vars, kUnmapped);
  // Deterministic order: sort live variables.
  std::vector<BVar> live_sorted(pruned.live.begin(), pruned.live.end());
  std::sort(live_sorted.begin(), live_sorted.end());
  for (BVar v : live_sorted) to_lp[v] = lp.AddBinary();
  for (const LinearConstraint& c : pruned.kept) {
    solver::Row row;
    row.terms.reserve(c.terms.size());
    for (const auto& t : c.terms) {
      row.terms.push_back(
          {to_lp[t.var], static_cast<double>(t.coef)});
    }
    row.op = ToRowOp(c.op);
    row.rhs = static_cast<double>(c.rhs);
    lp.AddRow(std::move(row));
  }
  for (const auto& [v, coef] : objective.coefs) {
    lp.SetObjectiveCoef(to_lp[v], coef);
  }
  lp.AddObjectiveConstant(objective.constant);

  bip_span.AddArg("vars", static_cast<double>(lp.num_vars()));
  bip_span.AddArg("rows", static_cast<double>(lp.num_rows()));
  bip_span.End();

  // One shared pass: presolve and decomposition run once, and every
  // component is solved for both senses through one batch (thread pool and
  // solve cache shared; isomorphic group components deduplicated).
  const solver::MipSolver solver(options.mip);
  solver::MinMaxMipResult r = solver.SolveMinMax(lp);

  AggregateBounds out;
  out.prune_stats = pruned.stats;
  out.stats = r.stats;

  auto to_side = [&](const solver::MipResult& side_result,
                     BoundSide* side) -> Status {
    switch (side_result.status) {
      case solver::SolveStatus::kInfeasible:
        return Status::Infeasible(
            "LICM constraint set admits no possible world");
      case solver::SolveStatus::kUnbounded:
        return Status::Unbounded("aggregate objective unbounded (bug: "
                                 "binary programs are always bounded)");
      case solver::SolveStatus::kOptimal:
        side->exact = true;
        break;
      case solver::SolveStatus::kTimeLimit:
        side->exact = false;
        break;
    }
    side->proved = side_result.best_bound;
    side->has_world = side_result.has_solution;
    side->value = side_result.has_solution ? side_result.objective
                                           : side_result.best_bound;
    if (side_result.has_solution) {
      for (BVar v : live_sorted) {
        side->world.emplace(
            v, static_cast<uint8_t>(
                   std::lround(side_result.solution[to_lp.at(v)])));
      }
    }
    return Status::OK();
  };

  LICM_RETURN_NOT_OK(to_side(r.min, &out.min));
  LICM_RETURN_NOT_OK(to_side(r.max, &out.max));
  if (!remainder_exact) {
    // The dropped remainder's feasibility is unresolved, so the bounds are
    // valid for a superset of the worlds and cannot be claimed exact.
    out.min.exact = false;
    out.max.exact = false;
  }
  return out;
}

namespace {

// Feasibility of `constraints` + `extras`: kFixpoint-style tri-state.
enum class Feas { kYes, kNo, kUnknown };

// Shared machinery for the MIN/MAX case analysis: a sequence of
// feasibility probes against the same base constraint set, each with a
// couple of extra rows. The constraint graph is decomposed into connected
// components once; every probe then solves only the components its extra
// rows touch (the transitive region Prune() would have kept), instead of
// re-copying and re-pruning the whole constraint set per distinct value.
// All probes share one solve cache, so a probe whose touched region is
// isomorphic to an earlier one (the common case across values under group
// anonymization) is answered without a search.
class FeasibilityProber {
 public:
  FeasibilityProber(const ConstraintSet& constraints, uint32_t num_vars,
                    const BoundsOptions& options)
      : constraints_(constraints), num_vars_(num_vars), options_(options) {
    mip_ = options.mip;
    if (mip_.use_cache && mip_.cache == nullptr) mip_.cache = &cache_;
    // Share one thread pool and one wall-clock budget across the whole
    // probe sequence: the time limit bounds the MIN/MAX case analysis as
    // a unit (sticky expiry stops every later probe immediately), and
    // worker threads are spawned once instead of per probe.
    if (mip_.deadline == nullptr) {
      deadline_ = Deadline::After(mip_.time_limit_seconds);
      mip_.deadline = &deadline_;
    }
    if (mip_.scheduler == nullptr &&
        solver::Scheduler::ResolveThreads(mip_.num_threads) > 1) {
      scheduler_.emplace(mip_.num_threads);
      mip_.scheduler = &*scheduler_;
    }

    // Connected components of the constraint graph (vars connected when
    // they share a constraint), computed once for the probe sequence.
    parent_.resize(num_vars);
    for (BVar v = 0; v < num_vars; ++v) parent_[v] = v;
    const auto& rows = constraints_.constraints();
    for (const LinearConstraint& c : rows) {
      for (size_t i = 1; i < c.terms.size(); ++i) {
        Union(c.terms[0].var, c.terms[i].var);
      }
    }
    for (size_t k = 0; k < rows.size(); ++k) {
      if (rows[k].terms.empty()) continue;
      rows_of_root_[Find(rows[k].terms[0].var)].push_back(k);
    }
  }

  /// Feasibility of the base constraint set alone (every component, no
  /// pruning) — the global "does any world exist" check. Solved once and
  /// memoized.
  Feas CheckBase() {
    if (!base_checked_) {
      std::vector<size_t> all(constraints_.constraints().size());
      for (size_t k = 0; k < all.size(); ++k) all[k] = k;
      base_result_ = SolveFeasibility(all, {});
      base_checked_ = true;
    }
    return base_result_;
  }

  /// Feasibility of base + `extras`. With pruning enabled this solves only
  /// the components touched by the extras (exactly the region reachable
  /// from the extras' variables, matching the paper's pruning semantics);
  /// otherwise the full system is included.
  Feas Check(const std::vector<LinearConstraint>& extras) {
    std::vector<size_t> indices;
    if (!options_.prune) {
      indices.resize(constraints_.constraints().size());
      for (size_t k = 0; k < indices.size(); ++k) indices[k] = k;
    } else {
      std::vector<BVar> roots;
      for (const LinearConstraint& c : extras) {
        for (const auto& t : c.terms) roots.push_back(Find(t.var));
      }
      std::sort(roots.begin(), roots.end());
      roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
      for (BVar root : roots) {
        auto it = rows_of_root_.find(root);
        if (it == rows_of_root_.end()) continue;
        indices.insert(indices.end(), it->second.begin(), it->second.end());
      }
      std::sort(indices.begin(), indices.end());
    }
    return SolveFeasibility(indices, extras);
  }

  const solver::MipStats& stats() const { return stats_; }

 private:
  BVar Find(BVar x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(BVar a, BVar b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

  Feas SolveFeasibility(const std::vector<size_t>& indices,
                        const std::vector<LinearConstraint>& extras) {
    telemetry::ScopedSpan span("licm", "feasibility_probe");
    span.AddArg("probe", static_cast<double>(++probe_count_));
    span.AddArg("extra_rows", static_cast<double>(extras.size()));
    // Variables of the selected region; vars outside any constraint are
    // free and cannot affect feasibility.
    std::vector<BVar> vars;
    const auto& rows = constraints_.constraints();
    for (size_t k : indices) {
      for (const auto& t : rows[k].terms) vars.push_back(t.var);
    }
    for (const LinearConstraint& c : extras) {
      for (const auto& t : c.terms) vars.push_back(t.var);
    }
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());

    solver::LinearProgram lp;
    std::unordered_map<BVar, solver::VarId> to_lp;
    to_lp.reserve(vars.size());
    for (BVar v : vars) to_lp.emplace(v, lp.AddBinary());
    auto add_row = [&](const LinearConstraint& c) {
      solver::Row row;
      row.terms.reserve(c.terms.size());
      for (const auto& t : c.terms) {
        row.terms.push_back({to_lp.at(t.var), static_cast<double>(t.coef)});
      }
      row.op = ToRowOp(c.op);
      row.rhs = static_cast<double>(c.rhs);
      lp.AddRow(std::move(row));
    };
    for (size_t k : indices) add_row(rows[k]);
    for (const LinearConstraint& c : extras) add_row(c);

    solver::MipResult r =
        solver::MipSolver(mip_).Solve(lp, solver::Sense::kMaximize);
    // Probes run one after another, so their walls are disjoint intervals
    // that must add up — MergeFrom alone would keep only the longest
    // probe (its max semantics target concurrent strands).
    const double wall_total = stats_.solve_seconds + r.stats.solve_seconds;
    stats_.MergeFrom(r.stats);
    stats_.solve_seconds = wall_total;
    switch (r.status) {
      case solver::SolveStatus::kOptimal: return Feas::kYes;
      case solver::SolveStatus::kInfeasible: return Feas::kNo;
      default: return Feas::kUnknown;
    }
  }

  const ConstraintSet& constraints_;
  const uint32_t num_vars_;
  const BoundsOptions& options_;
  solver::MipOptions mip_;
  solver::ComponentCache cache_;
  Deadline deadline_ = Deadline::Never();
  std::optional<solver::Scheduler> scheduler_;
  solver::MipStats stats_;
  std::vector<BVar> parent_;
  std::unordered_map<BVar, std::vector<size_t>> rows_of_root_;
  int64_t probe_count_ = 0;
  bool base_checked_ = false;
  Feas base_result_ = Feas::kUnknown;
};

double NumericAt(const LicmRelation& r, size_t row, size_t col) {
  const rel::Value& v = r.tuple(row)[col];
  return rel::TypeOf(v) == rel::ValueType::kInt
             ? static_cast<double>(std::get<int64_t>(v))
             : std::get<double>(v);
}

// Constraint "at least one of `vars` is present" / "none are present".
LinearConstraint AtLeastOne(const std::vector<BVar>& vars) {
  LinearConstraint c;
  for (BVar v : vars) c.terms.push_back({v, 1});
  c.op = ConstraintOp::kGe;
  c.rhs = 1;
  return c;
}
LinearConstraint None(const std::vector<BVar>& vars) {
  LinearConstraint c;
  for (BVar v : vars) c.terms.push_back({v, 1});
  c.op = ConstraintOp::kLe;
  c.rhs = 0;
  return c;
}

}  // namespace

Result<MinMaxBounds> ComputeMinMaxBounds(const LicmRelation& relation,
                                         const std::string& column,
                                         const ConstraintSet& constraints,
                                         uint32_t num_vars, bool is_max,
                                         const BoundsOptions& options) {
  LICM_ASSIGN_OR_RETURN(size_t col, relation.schema().IndexOf(column));
  if (relation.schema().column(col).type == rel::ValueType::kString) {
    return Status::InvalidArgument("MIN/MAX over string column '" + column +
                                   "'");
  }
  std::vector<double> vals;
  std::vector<Ext> exts;
  vals.reserve(relation.size());
  exts.reserve(relation.size());
  for (size_t i = 0; i < relation.size(); ++i) {
    vals.push_back(NumericAt(relation, i, col));
    exts.push_back(relation.ext(i));
  }
  return ComputeMinMaxBounds(vals, exts, constraints, num_vars, is_max,
                             options);
}

Result<MinMaxBounds> ComputeMinMaxBounds(const std::vector<double>& vals,
                                         const std::vector<Ext>& tuple_exts,
                                         const ConstraintSet& constraints,
                                         uint32_t num_vars, bool is_max,
                                         const BoundsOptions& options) {
  LICM_CHECK(vals.size() == tuple_exts.size());
  MinMaxBounds out;
  if (vals.empty()) {
    out.always_empty = true;
    out.may_be_empty = true;
    return out;
  }

  // Distinct values ascending, with the variables / certainty per value.
  std::map<double, std::pair<bool, std::vector<BVar>>> by_value;
  bool any_certain = false;
  for (size_t i = 0; i < vals.size(); ++i) {
    auto& entry = by_value[vals[i]];
    if (tuple_exts[i].certain()) {
      entry.first = true;
      any_certain = true;
    } else {
      entry.second.push_back(tuple_exts[i].var());
    }
  }
  std::vector<double> values;
  for (const auto& [v, e] : by_value) values.push_back(v);

  // All probes below share one constraint-graph decomposition and one
  // solve cache; each solves only the region its extra rows touch. That
  // pruning is blind to components none of the relation's variables reach,
  // so an infeasible one would let a pruned probe report a world that
  // cannot exist (and the extreme/tame scans contradict each other). Check
  // global feasibility once up front: the component solves land in the
  // shared cache, so later probes get them back for free.
  FeasibilityProber prober(constraints, num_vars, options);
  {
    Feas base = prober.CheckBase();
    if (base == Feas::kNo) {
      return Status::Infeasible(
          "LICM constraint set admits no possible world");
    }
    if (base == Feas::kUnknown) out.exact_lo = out.exact_hi = false;
  }

  // Emptiness: feasible to drop every tuple?
  if (any_certain) {
    out.may_be_empty = false;
  } else {
    std::vector<BVar> all_vars;
    for (const auto& [v, e] : by_value) {
      all_vars.insert(all_vars.end(), e.second.begin(), e.second.end());
    }
    Feas f = prober.Check({None(all_vars)});
    out.may_be_empty = f != Feas::kNo;
    if (f == Feas::kUnknown) out.exact_lo = out.exact_hi = false;
  }

  // For MIN, mirror the values so the MAX logic below applies unchanged.
  auto key = [&](double v) { return is_max ? v : -v; };
  std::sort(values.begin(), values.end(),
            [&](double a, double b) { return key(a) < key(b); });
  // values is now ascending in "goodness": the extreme side (hi for MAX,
  // lo for MIN) is the largest-key value that can be present.

  // Extreme side: scan from the best value down; the first value whose
  // tuple-set can be non-empty bounds the aggregate.
  double extreme = values.front();
  bool extreme_exact = true;
  bool extreme_found = false;
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    const auto& entry = by_value.at(*it);
    if (entry.first) {  // certain tuple: always present
      extreme = *it;
      extreme_found = true;
      break;
    }
    Feas f = prober.Check({AtLeastOne(entry.second)});
    if (f == Feas::kYes) {
      extreme = *it;
      extreme_found = true;
      break;
    }
    if (f == Feas::kUnknown) {
      extreme = *it;  // conservative outer bound
      extreme_exact = false;
      extreme_found = true;
      break;
    }
  }
  if (!extreme_found) {
    // No tuple can ever be present; the up-front base check already ruled
    // out a contradictory constraint system, so the relation is simply
    // empty in every world.
    out.always_empty = true;
    out.may_be_empty = true;
    out.stats = prober.stats();
    return out;
  }

  // Tame side: the smallest-key value v such that a world exists with all
  // better-than-v tuples absent and some tuple (value-key <= v) present.
  double tame = values.back();
  bool tame_exact = true;
  for (double v : values) {
    // Certain tuple better than v => infeasible immediately.
    bool certain_better = false;
    std::vector<BVar> better, not_better;
    bool tame_has_certain = false;
    for (const auto& [val, entry] : by_value) {
      if (key(val) > key(v)) {
        certain_better |= entry.first;
        better.insert(better.end(), entry.second.begin(),
                      entry.second.end());
      } else {
        tame_has_certain |= entry.first;
        not_better.insert(not_better.end(), entry.second.begin(),
                          entry.second.end());
      }
    }
    if (certain_better) continue;
    std::vector<LinearConstraint> extras;
    if (!better.empty()) extras.push_back(None(better));
    if (!tame_has_certain) {
      if (not_better.empty()) continue;
      extras.push_back(AtLeastOne(not_better));
    }
    Feas f = prober.Check(extras);
    if (f == Feas::kYes) {
      tame = v;
      break;
    }
    if (f == Feas::kUnknown) {
      tame = v;  // conservative outer bound
      tame_exact = false;
      break;
    }
  }

  if (is_max) {
    out.hi = extreme;
    out.exact_hi = out.exact_hi && extreme_exact;
    out.lo = tame;
    out.exact_lo = out.exact_lo && tame_exact;
  } else {
    out.lo = extreme;
    out.exact_lo = out.exact_lo && extreme_exact;
    out.hi = tame;
    out.exact_hi = out.exact_hi && tame_exact;
  }
  out.stats = prober.stats();
  LICM_CHECK(out.lo <= out.hi);
  return out;
}

}  // namespace licm
