#include "licm/aggregate.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace licm {

Objective CountObjective(const LicmRelation& relation) {
  Objective obj;
  for (size_t i = 0; i < relation.size(); ++i) {
    const Ext e = relation.ext(i);
    if (e.certain()) {
      obj.constant += 1.0;
    } else {
      obj.coefs[e.var()] += 1.0;
    }
  }
  return obj;
}

Result<Objective> SumObjective(const LicmRelation& relation,
                               const std::string& column) {
  LICM_ASSIGN_OR_RETURN(size_t idx, relation.schema().IndexOf(column));
  const rel::ValueType t = relation.schema().column(idx).type;
  if (t == rel::ValueType::kString) {
    return Status::InvalidArgument("SUM over string column '" + column + "'");
  }
  Objective obj;
  for (size_t i = 0; i < relation.size(); ++i) {
    const rel::Value& v = relation.tuple(i)[idx];
    const double x = t == rel::ValueType::kInt
                         ? static_cast<double>(std::get<int64_t>(v))
                         : std::get<double>(v);
    const Ext e = relation.ext(i);
    if (e.certain()) {
      obj.constant += x;
    } else {
      obj.coefs[e.var()] += x;
    }
  }
  return obj;
}

namespace {

solver::RowOp ToRowOp(ConstraintOp op) {
  switch (op) {
    case ConstraintOp::kLe: return solver::RowOp::kLe;
    case ConstraintOp::kGe: return solver::RowOp::kGe;
    case ConstraintOp::kEq: return solver::RowOp::kEq;
  }
  return solver::RowOp::kEq;
}

}  // namespace

Result<AggregateBounds> ComputeBounds(const Objective& objective,
                                      const ConstraintSet& constraints,
                                      uint32_t num_vars,
                                      const BoundsOptions& options) {
  // Determine the variable/constraint subsystem to hand to the solver.
  std::vector<BVar> seeds;
  seeds.reserve(objective.coefs.size());
  for (const auto& [v, c] : objective.coefs) seeds.push_back(v);

  PruneResult pruned;
  if (options.prune) {
    pruned = Prune(constraints, seeds, num_vars);
  } else {
    // Identity "prune": everything stays live.
    pruned.kept = constraints.constraints();
    for (BVar v = 0; v < num_vars; ++v) pruned.live.insert(v);
    pruned.stats = {num_vars, num_vars, constraints.size(),
                    constraints.size()};
  }

  // Build the BIP over live variables.
  solver::LinearProgram lp;
  std::unordered_map<BVar, solver::VarId> to_lp;
  to_lp.reserve(pruned.live.size());
  // Deterministic order: sort live variables.
  std::vector<BVar> live_sorted(pruned.live.begin(), pruned.live.end());
  std::sort(live_sorted.begin(), live_sorted.end());
  for (BVar v : live_sorted) to_lp.emplace(v, lp.AddBinary());
  for (const LinearConstraint& c : pruned.kept) {
    solver::Row row;
    row.terms.reserve(c.terms.size());
    for (const auto& t : c.terms) {
      row.terms.push_back(
          {to_lp.at(t.var), static_cast<double>(t.coef)});
    }
    row.op = ToRowOp(c.op);
    row.rhs = static_cast<double>(c.rhs);
    lp.AddRow(std::move(row));
  }
  for (const auto& [v, coef] : objective.coefs) {
    lp.SetObjectiveCoef(to_lp.at(v), coef);
  }
  lp.AddObjectiveConstant(objective.constant);

  const solver::MipSolver solver(options.mip);
  AggregateBounds out;
  out.prune_stats = pruned.stats;

  auto solve_side = [&](solver::Sense sense) -> Result<BoundSide> {
    BoundSide side;
    solver::MipResult r = solver.Solve(lp, sense);
    side.stats = r.stats;
    switch (r.status) {
      case solver::SolveStatus::kInfeasible:
        return Status::Infeasible(
            "LICM constraint set admits no possible world");
      case solver::SolveStatus::kUnbounded:
        return Status::Unbounded("aggregate objective unbounded (bug: "
                                 "binary programs are always bounded)");
      case solver::SolveStatus::kOptimal:
        side.exact = true;
        break;
      case solver::SolveStatus::kTimeLimit:
        side.exact = false;
        break;
    }
    side.proved = r.best_bound;
    side.has_world = r.has_solution;
    side.value = r.has_solution ? r.objective : r.best_bound;
    if (r.has_solution) {
      for (BVar v : live_sorted) {
        side.world.emplace(
            v, static_cast<uint8_t>(std::lround(r.solution[to_lp.at(v)])));
      }
    }
    return side;
  };

  LICM_ASSIGN_OR_RETURN(out.min, solve_side(solver::Sense::kMinimize));
  LICM_ASSIGN_OR_RETURN(out.max, solve_side(solver::Sense::kMaximize));
  return out;
}

namespace {

// Feasibility of `constraints` + `extras`: kFixpoint-style tri-state.
enum class Feas { kYes, kNo, kUnknown };

Feas CheckFeasible(const ConstraintSet& constraints,
                   const std::vector<LinearConstraint>& extras,
                   uint32_t num_vars, const BoundsOptions& options) {
  ConstraintSet all = constraints;
  std::vector<BVar> seeds;
  for (const LinearConstraint& c : extras) {
    for (const auto& t : c.terms) seeds.push_back(t.var);
    all.Add(c);
  }
  PruneResult pruned;
  if (options.prune) {
    pruned = Prune(all, seeds, num_vars);
  } else {
    pruned.kept = all.constraints();
    for (BVar v = 0; v < num_vars; ++v) pruned.live.insert(v);
  }
  solver::LinearProgram lp;
  std::unordered_map<BVar, solver::VarId> to_lp;
  std::vector<BVar> live(pruned.live.begin(), pruned.live.end());
  std::sort(live.begin(), live.end());
  for (BVar v : live) to_lp.emplace(v, lp.AddBinary());
  for (const LinearConstraint& c : pruned.kept) {
    solver::Row row;
    for (const auto& t : c.terms) {
      row.terms.push_back({to_lp.at(t.var), static_cast<double>(t.coef)});
    }
    row.op = ToRowOp(c.op);
    row.rhs = static_cast<double>(c.rhs);
    lp.AddRow(std::move(row));
  }
  solver::MipResult r =
      solver::MipSolver(options.mip).Solve(lp, solver::Sense::kMaximize);
  switch (r.status) {
    case solver::SolveStatus::kOptimal: return Feas::kYes;
    case solver::SolveStatus::kInfeasible: return Feas::kNo;
    default: return Feas::kUnknown;
  }
}

double NumericAt(const LicmRelation& r, size_t row, size_t col) {
  const rel::Value& v = r.tuple(row)[col];
  return rel::TypeOf(v) == rel::ValueType::kInt
             ? static_cast<double>(std::get<int64_t>(v))
             : std::get<double>(v);
}

// Constraint "at least one of `vars` is present" / "none are present".
LinearConstraint AtLeastOne(const std::vector<BVar>& vars) {
  LinearConstraint c;
  for (BVar v : vars) c.terms.push_back({v, 1});
  c.op = ConstraintOp::kGe;
  c.rhs = 1;
  return c;
}
LinearConstraint None(const std::vector<BVar>& vars) {
  LinearConstraint c;
  for (BVar v : vars) c.terms.push_back({v, 1});
  c.op = ConstraintOp::kLe;
  c.rhs = 0;
  return c;
}

}  // namespace

Result<MinMaxBounds> ComputeMinMaxBounds(const LicmRelation& relation,
                                         const std::string& column,
                                         const ConstraintSet& constraints,
                                         uint32_t num_vars, bool is_max,
                                         const BoundsOptions& options) {
  LICM_ASSIGN_OR_RETURN(size_t col, relation.schema().IndexOf(column));
  if (relation.schema().column(col).type == rel::ValueType::kString) {
    return Status::InvalidArgument("MIN/MAX over string column '" + column +
                                   "'");
  }
  MinMaxBounds out;
  if (relation.empty()) {
    out.always_empty = true;
    out.may_be_empty = true;
    return out;
  }

  // Distinct values ascending, with the variables / certainty per value.
  std::map<double, std::pair<bool, std::vector<BVar>>> by_value;
  bool any_certain = false;
  for (size_t i = 0; i < relation.size(); ++i) {
    auto& entry = by_value[NumericAt(relation, i, col)];
    if (relation.ext(i).certain()) {
      entry.first = true;
      any_certain = true;
    } else {
      entry.second.push_back(relation.ext(i).var());
    }
  }
  std::vector<double> values;
  for (const auto& [v, e] : by_value) values.push_back(v);

  // Emptiness: feasible to drop every tuple?
  if (any_certain) {
    out.may_be_empty = false;
  } else {
    std::vector<BVar> all_vars;
    for (const auto& [v, e] : by_value) {
      all_vars.insert(all_vars.end(), e.second.begin(), e.second.end());
    }
    Feas f = CheckFeasible(constraints, {None(all_vars)}, num_vars, options);
    out.may_be_empty = f != Feas::kNo;
    if (f == Feas::kUnknown) out.exact_lo = out.exact_hi = false;
  }

  // For MIN, mirror the values so the MAX logic below applies unchanged.
  auto key = [&](double v) { return is_max ? v : -v; };
  std::sort(values.begin(), values.end(),
            [&](double a, double b) { return key(a) < key(b); });
  // values is now ascending in "goodness": the extreme side (hi for MAX,
  // lo for MIN) is the largest-key value that can be present.

  // Extreme side: scan from the best value down; the first value whose
  // tuple-set can be non-empty bounds the aggregate.
  double extreme = values.front();
  bool extreme_exact = true;
  bool extreme_found = false;
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    const auto& entry = by_value.at(*it);
    if (entry.first) {  // certain tuple: always present
      extreme = *it;
      extreme_found = true;
      break;
    }
    Feas f = CheckFeasible(constraints, {AtLeastOne(entry.second)}, num_vars,
                           options);
    if (f == Feas::kYes) {
      extreme = *it;
      extreme_found = true;
      break;
    }
    if (f == Feas::kUnknown) {
      extreme = *it;  // conservative outer bound
      extreme_exact = false;
      extreme_found = true;
      break;
    }
  }
  if (!extreme_found) {
    // No tuple can ever be present: either the whole constraint system is
    // contradictory, or the relation is empty in every world. The global
    // feasibility check must see every constraint, so pruning is off.
    BoundsOptions full = options;
    full.prune = false;
    if (CheckFeasible(constraints, {}, num_vars, full) == Feas::kNo) {
      return Status::Infeasible(
          "LICM constraint set admits no possible world");
    }
    out.always_empty = true;
    out.may_be_empty = true;
    return out;
  }

  // Tame side: the smallest-key value v such that a world exists with all
  // better-than-v tuples absent and some tuple (value-key <= v) present.
  double tame = values.back();
  bool tame_exact = true;
  for (double v : values) {
    // Certain tuple better than v => infeasible immediately.
    bool certain_better = false;
    std::vector<BVar> better, not_better;
    bool tame_has_certain = false;
    for (const auto& [val, entry] : by_value) {
      if (key(val) > key(v)) {
        certain_better |= entry.first;
        better.insert(better.end(), entry.second.begin(),
                      entry.second.end());
      } else {
        tame_has_certain |= entry.first;
        not_better.insert(not_better.end(), entry.second.begin(),
                          entry.second.end());
      }
    }
    if (certain_better) continue;
    std::vector<LinearConstraint> extras;
    if (!better.empty()) extras.push_back(None(better));
    if (!tame_has_certain) {
      if (not_better.empty()) continue;
      extras.push_back(AtLeastOne(not_better));
    }
    Feas f = CheckFeasible(constraints, extras, num_vars, options);
    if (f == Feas::kYes) {
      tame = v;
      break;
    }
    if (f == Feas::kUnknown) {
      tame = v;  // conservative outer bound
      tame_exact = false;
      break;
    }
  }

  if (is_max) {
    out.hi = extreme;
    out.exact_hi = out.exact_hi && extreme_exact;
    out.lo = tame;
    out.exact_lo = out.exact_lo && tame_exact;
  } else {
    out.lo = extreme;
    out.exact_lo = out.exact_lo && extreme_exact;
    out.hi = tame;
    out.exact_hi = out.exact_hi && tame_exact;
  }
  LICM_CHECK(out.lo <= out.hi);
  return out;
}

}  // namespace licm
