#include "licm/worlds.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace licm {

Result<std::vector<std::vector<uint8_t>>> EnumerateValidAssignments(
    const ConstraintSet& constraints, uint32_t num_vars, size_t limit) {
  if (num_vars > 24) {
    return Status::InvalidArgument(
        "EnumerateValidAssignments: too many variables (" +
        std::to_string(num_vars) + " > 24); use the solver instead");
  }
  std::vector<std::vector<uint8_t>> out;
  const uint64_t total = 1ull << num_vars;
  for (uint64_t mask = 0; mask < total; ++mask) {
    std::vector<uint8_t> a(num_vars);
    for (uint32_t v = 0; v < num_vars; ++v) a[v] = (mask >> v) & 1;
    if (constraints.Satisfied(a)) {
      if (out.size() >= limit) {
        return Status::OutOfRange("valid assignment count exceeds limit");
      }
      out.push_back(std::move(a));
    }
  }
  return out;
}

Result<std::vector<rel::Relation>> EnumerateWorlds(
    const LicmRelation& relation, const ConstraintSet& constraints,
    uint32_t num_vars) {
  LICM_ASSIGN_OR_RETURN(auto assignments,
                        EnumerateValidAssignments(constraints, num_vars));
  std::vector<rel::Relation> worlds;
  for (const auto& a : assignments) {
    rel::Relation w = relation.Instantiate(a);
    bool dup = false;
    for (const rel::Relation& seen : worlds) {
      if (seen.SetEquals(w)) {
        dup = true;
        break;
      }
    }
    if (!dup) worlds.push_back(std::move(w));
  }
  return worlds;
}

Result<LicmDatabase> EncodeWorlds(const std::vector<rel::Relation>& worlds,
                                  const std::string& relation_name) {
  if (worlds.empty()) {
    return Status::InvalidArgument("EncodeWorlds: need at least one world");
  }
  const rel::Schema& schema = worlds[0].schema();
  for (const rel::Relation& w : worlds) {
    if (!(w.schema() == schema)) {
      return Status::InvalidArgument("EncodeWorlds: schema mismatch");
    }
  }

  // Tuple universe T: every tuple appearing in any world, in first-seen
  // order; each gets an existence variable (Theorem 1 proof).
  std::unordered_map<rel::Tuple, uint32_t, rel::TupleHash> tuple_index;
  std::vector<rel::Tuple> universe;
  for (const rel::Relation& w : worlds) {
    for (const rel::Tuple& t : w.rows()) {
      if (tuple_index.emplace(t, universe.size()).second) {
        universe.push_back(t);
      }
    }
  }
  if (universe.size() > 20) {
    return Status::InvalidArgument(
        "EncodeWorlds: universe of " + std::to_string(universe.size()) +
        " tuples needs 2^n CNF clauses; refuse above 20");
  }

  // Which assignments correspond to worlds?
  const uint32_t n = static_cast<uint32_t>(universe.size());
  std::unordered_set<uint64_t> world_masks;
  for (const rel::Relation& w : worlds) {
    uint64_t mask = 0;
    std::unordered_set<rel::Tuple, rel::TupleHash> tuples(w.rows().begin(),
                                                          w.rows().end());
    for (const rel::Tuple& t : tuples) {
      mask |= 1ull << tuple_index.at(t);
    }
    world_masks.insert(mask);
  }

  LicmDatabase db;
  std::vector<BVar> vars(n);
  LicmRelation r(schema);
  for (uint32_t i = 0; i < n; ++i) {
    vars[i] = db.pool().New();
    r.AppendUnchecked(universe[i], Ext::Maybe(vars[i]));
  }

  // DNF over worlds -> CNF: one clause per excluded assignment, linearized
  // as sum(b_i : a_i = 0) + sum(1 - b_i : a_i = 1) >= 1, i.e.
  // sum(+-b_i) >= 1 - (#ones in a).
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    if (world_masks.contains(mask)) continue;
    LinearConstraint c;
    int64_t ones = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        c.terms.push_back({vars[i], -1});
        ++ones;
      } else {
        c.terms.push_back({vars[i], 1});
      }
    }
    c.op = ConstraintOp::kGe;
    c.rhs = 1 - ones;
    db.constraints().Add(std::move(c));
  }

  LICM_RETURN_NOT_OK(db.AddRelation(relation_name, std::move(r)));
  return db;
}

}  // namespace licm
