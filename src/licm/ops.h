// Relational operators over LICM relations (Section IV, Algorithms 1-4).
//
// Each operator consumes LICM relations and produces an LICM relation,
// appending any new lineage variables and linking constraints to the
// enclosing database's pool/constraint set (passed as OpContext). The
// operators are deterministic in the paper's sense: given an assignment to
// the input variables, the constraints admit exactly one assignment to the
// output variables.
#ifndef LICM_LICM_OPS_H_
#define LICM_LICM_OPS_H_

#include "licm/licm_relation.h"
#include "relational/query.h"

namespace licm {

/// Mutable variable pool + constraint set of the database being queried.
struct OpContext {
  VariablePool* pool;
  ConstraintSet* constraints;
};

/// Selection (Section IV-B): keeps tuples whose normal attributes satisfy
/// the conjunctive predicates; constraints pass through untouched.
/// Predicates may not reference the Ext attribute (it is not part of the
/// schema, so this holds by construction).
Result<LicmRelation> SelectOp(const LicmRelation& in,
                              const std::vector<rel::Predicate>& predicates);

/// Projection with set semantics (Algorithm 1, generalized to any column
/// list). Distinct projected tuples backed by a certain source tuple are
/// certain; single-source maybe tuples reuse their variable (the Example 7
/// optimization); multi-source tuples get a fresh OR-linked variable.
Result<LicmRelation> ProjectOp(const LicmRelation& in,
                               const std::vector<std::string>& columns,
                               OpContext ctx);

/// Intersection (Algorithm 2): tuples present in both inputs; existence is
/// the AND of the inputs' existence.
Result<LicmRelation> IntersectOp(const LicmRelation& a,
                                 const LicmRelation& b, OpContext ctx);

/// Cartesian product (Algorithm 3). Output schema follows
/// rel::ProductSchema (clashing right columns get an "r_" prefix).
Result<LicmRelation> ProductOp(const LicmRelation& a, const LicmRelation& b,
                               OpContext ctx);

/// Equi-join: product restricted to key-equal pairs, dropping the right key
/// columns (the paper builds join from product + selection + projection;
/// this fuses them). Output schema follows rel::JoinSchema. Duplicate
/// output tuples are merged with OR lineage so downstream set semantics
/// hold.
Result<LicmRelation> JoinOp(
    const LicmRelation& a, const LicmRelation& b,
    const std::vector<std::pair<std::string, std::string>>& on,
    OpContext ctx);

/// Mid-tree COUNT predicate (Algorithm 4): emits one tuple per group value
/// whose group cardinality can satisfy `COUNT op d` in some world, with
/// existence variable linked by the paper's two linear constraints.
/// Supports <=, <, >=, >, and = (encoded as the AND of <= and >=).
/// Output schema: (group_column).
Result<LicmRelation> CountPredicateOp(const LicmRelation& in,
                                      const std::string& group_column,
                                      rel::CmpOp op, int64_t d,
                                      OpContext ctx);

/// Mid-tree SUM predicate: like CountPredicateOp but the group condition
/// is `SUM(sum_column) op d`. The summed column must hold non-negative
/// integers (the paper's "SUM over a constant numeric attribute" case);
/// Algorithm 4's two constraints generalize verbatim with weighted terms.
Result<LicmRelation> SumPredicateOp(const LicmRelation& in,
                                    const std::string& group_column,
                                    const std::string& sum_column,
                                    rel::CmpOp op, int64_t d, OpContext ctx);

/// Merges duplicate normal-attribute tuples into one tuple whose existence
/// is the OR of the duplicates' (projection onto all columns). Needed
/// before aggregates so that summed Ext values count each distinct tuple
/// once per world.
Result<LicmRelation> MergeDuplicates(const LicmRelation& in, OpContext ctx);

}  // namespace licm

#endif  // LICM_LICM_OPS_H_
