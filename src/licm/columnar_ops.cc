#include "licm/columnar_ops.h"

#include <cstring>
#include <numeric>

#include "licm/lineage.h"
#include "relational/columnar_engine.h"
#include "relational/engine.h"

namespace licm {

namespace {

using rel::ActiveRows;
using rel::AllocBitmap;
using rel::BatchView;
using rel::BitmapSet;
using rel::GatherColumn;
using rel::Grouping;
using rel::RowHashIndex;

std::vector<size_t> AllColumns(const BatchView& view) {
  std::vector<size_t> all(view.schema.size());
  std::iota(all.begin(), all.end(), size_t{0});
  return all;
}

// OR-merges the groups of identical active rows (all columns), replacing
// the selection with the group representatives. The columnar body of
// MergeDuplicates/ProjectOp: per-group lineage goes through the shared
// GroupOrExt, in first-seen group order with members accumulated in row
// order — the exact pool.New()/AddOr sequence of the row path. When the
// active rows are already distinct every group is a singleton, GroupOrExt
// returns each row's own Ext, and the input passes through untouched
// (matching the row MergeDuplicates fast path: no allocation either way).
LicmBatch OrMergeGroups(const LicmBatch& in, ColumnarLicmContext* ctx) {
  const Grouping g = rel::GroupBy(in.view, AllColumns(in.view), &ctx->arena);
  if (g.num_groups == g.n) return in;
  Ext* exts = ctx->arena.AllocArray<Ext>(in.view.rows);
  uint64_t* sel = AllocBitmap(in.view.rows, &ctx->arena);
  for (uint32_t gid = 0; gid < g.num_groups; ++gid) {
    GroupExt ge;
    for (uint32_t p = g.run_begin[gid]; p < g.run_begin[gid + 1]; ++p) {
      Accumulate(&ge, in.exts[g.run_rows[p]]);
    }
    exts[g.rep_row[gid]] = GroupOrExt(ge, ctx->ops);
    BitmapSet(sel, g.rep_row[gid]);
  }
  LicmBatch out = in;
  out.view.sel = sel;
  out.view.active = g.num_groups;
  out.exts = exts;
  return out;
}

Result<LicmBatch> ScanBatch(const rel::QueryNode& node, LicmDatabase* db,
                            ColumnarLicmContext* ctx) {
  LICM_ASSIGN_OR_RETURN(const LicmRelation* r,
                        db->GetRelation(node.relation_name));
  ctx->base_tables.push_back(
      std::make_unique<rel::ColumnTable>(rel::ColumnTable::FromTuples(
          r->schema(), r->tuples(), &ctx->dict)));
  LicmBatch b;
  b.view = rel::TableView(*ctx->base_tables.back());
  Ext* exts = ctx->arena.AllocArray<Ext>(r->size());
  if (r->size() != 0) {
    std::memcpy(exts, r->exts().data(), r->size() * sizeof(Ext));
  }
  b.exts = exts;
  // Set semantics on base relations, mirroring dedup-on-scan.
  return OrMergeGroups(b, ctx);
}

Result<LicmBatch> SelectBatch(const rel::QueryNode& node, LicmDatabase* db,
                              ColumnarLicmContext* ctx) {
  LICM_ASSIGN_OR_RETURN(LicmBatch in, EvaluateLicmBatch(*node.left, db, ctx));
  std::vector<size_t> idx(node.predicates.size());
  for (size_t i = 0; i < node.predicates.size(); ++i) {
    LICM_ASSIGN_OR_RETURN(idx[i],
                          in.view.schema.IndexOf(node.predicates[i].column));
  }
  uint64_t* sel = rel::CopySelection(in.view, &ctx->arena);
  for (size_t i = 0; i < node.predicates.size(); ++i) {
    LICM_RETURN_NOT_OK(rel::AndPredicateBits(in.view, idx[i],
                                             node.predicates[i], ctx->dict,
                                             &ctx->arena, sel));
  }
  LicmBatch out = in;
  out.view.sel = sel;
  out.view.active = rel::BitmapCount(sel, out.view.rows);
  return out;
}

Result<LicmBatch> ProjectBatch(const rel::QueryNode& node, LicmDatabase* db,
                               ColumnarLicmContext* ctx) {
  LICM_ASSIGN_OR_RETURN(LicmBatch in, EvaluateLicmBatch(*node.left, db, ctx));
  std::vector<rel::Column> cols(node.columns.size());
  LicmBatch mid;
  mid.view.rows = in.view.rows;
  mid.view.sel = in.view.sel;
  mid.view.active = in.view.active;
  mid.view.cols.reserve(node.columns.size());
  for (size_t i = 0; i < node.columns.size(); ++i) {
    LICM_ASSIGN_OR_RETURN(size_t idx, in.view.schema.IndexOf(node.columns[i]));
    cols[i] = in.view.schema.column(idx);
    mid.view.cols.push_back(in.view.cols[idx]);  // zero-copy
  }
  mid.view.schema = rel::Schema(std::move(cols));
  mid.exts = in.exts;
  return OrMergeGroups(mid, ctx);
}

Result<LicmBatch> IntersectBatch(const rel::QueryNode& node, LicmDatabase* db,
                                 ColumnarLicmContext* ctx) {
  LICM_ASSIGN_OR_RETURN(LicmBatch a, EvaluateLicmBatch(*node.left, db, ctx));
  LICM_ASSIGN_OR_RETURN(LicmBatch b, EvaluateLicmBatch(*node.right, db, ctx));
  if (!(a.view.schema == b.view.schema)) {
    return Status::InvalidArgument("intersect schema mismatch: " +
                                   a.view.schema.ToString() + " vs " +
                                   b.view.schema.ToString());
  }
  const LicmBatch l = OrMergeGroups(a, ctx);
  const LicmBatch r = OrMergeGroups(b, ctx);

  const std::vector<size_t> all = AllColumns(l.view);
  const RowHashIndex index(r.view, all, &ctx->arena);
  uint64_t* sel = AllocBitmap(l.view.rows, &ctx->arena);
  Ext* exts = ctx->arena.AllocArray<Ext>(l.view.rows);
  const uint32_t* lrows = ActiveRows(l.view, &ctx->arena);
  size_t kept = 0;
  for (size_t i = 0; i < l.view.active; ++i) {
    const uint32_t row = lrows[i];
    const uint32_t gid = index.Find(l.view, all, row);
    if (gid == RowHashIndex::kNone) continue;
    // The right side is merged, so each group is one active row.
    const uint32_t rrow = index.grouping().rep_row[gid];
    exts[row] = AndExt(l.exts[row], r.exts[rrow], ctx->ops);
    BitmapSet(sel, row);
    ++kept;
  }
  LicmBatch out = l;
  out.view.sel = sel;
  out.view.active = kept;
  out.exts = exts;
  return out;
}

Result<LicmBatch> ProductBatch(const rel::QueryNode& node, LicmDatabase* db,
                               ColumnarLicmContext* ctx) {
  LICM_ASSIGN_OR_RETURN(LicmBatch a, EvaluateLicmBatch(*node.left, db, ctx));
  LICM_ASSIGN_OR_RETURN(LicmBatch b, EvaluateLicmBatch(*node.right, db, ctx));
  const LicmBatch l = OrMergeGroups(a, ctx);
  const LicmBatch r = OrMergeGroups(b, ctx);
  const uint32_t* lrows = ActiveRows(l.view, &ctx->arena);
  const uint32_t* rrows = ActiveRows(r.view, &ctx->arena);
  const size_t n = l.view.active * r.view.active;
  uint32_t* lsrc = ctx->arena.AllocArray<uint32_t>(n);
  uint32_t* rsrc = ctx->arena.AllocArray<uint32_t>(n);
  size_t k = 0;
  for (size_t i = 0; i < l.view.active; ++i) {
    for (size_t j = 0; j < r.view.active; ++j, ++k) {
      lsrc[k] = lrows[i];
      rsrc[k] = rrows[j];
    }
  }
  LicmBatch out;
  out.view.schema = rel::ProductSchema(l.view.schema, r.view.schema);
  out.view.rows = n;
  out.view.active = n;
  for (size_t c = 0; c < l.view.schema.size(); ++c) {
    out.view.cols.push_back(GatherColumn(l.view, c, lsrc, n, &ctx->arena));
  }
  for (size_t c = 0; c < r.view.schema.size(); ++c) {
    out.view.cols.push_back(GatherColumn(r.view, c, rsrc, n, &ctx->arena));
  }
  Ext* exts = ctx->arena.AllocArray<Ext>(n);
  for (size_t p = 0; p < n; ++p) {
    exts[p] = AndExt(l.exts[lsrc[p]], r.exts[rsrc[p]], ctx->ops);
  }
  out.exts = exts;
  return out;
}

Result<LicmBatch> JoinBatch(const rel::QueryNode& node, LicmDatabase* db,
                            ColumnarLicmContext* ctx) {
  LICM_ASSIGN_OR_RETURN(LicmBatch a, EvaluateLicmBatch(*node.left, db, ctx));
  LICM_ASSIGN_OR_RETURN(LicmBatch b, EvaluateLicmBatch(*node.right, db, ctx));
  if (node.join_on.empty()) {
    return Status::InvalidArgument("join requires at least one key pair");
  }
  const LicmBatch l = OrMergeGroups(a, ctx);
  const LicmBatch r = OrMergeGroups(b, ctx);

  std::vector<size_t> lkeys, rkeys;
  for (const auto& [ln, rn] : node.join_on) {
    LICM_ASSIGN_OR_RETURN(size_t li, l.view.schema.IndexOf(ln));
    LICM_ASSIGN_OR_RETURN(size_t ri, r.view.schema.IndexOf(rn));
    lkeys.push_back(li);
    rkeys.push_back(ri);
  }
  const RowHashIndex index(r.view, rkeys, &ctx->arena);
  const Grouping& rg = index.grouping();

  const uint32_t* lrows = ActiveRows(l.view, &ctx->arena);
  uint32_t* match = ctx->arena.AllocArray<uint32_t>(l.view.active);
  size_t total = 0;
  for (size_t i = 0; i < l.view.active; ++i) {
    const uint32_t gid = index.Find(l.view, lkeys, lrows[i]);
    match[i] = gid;
    if (gid != RowHashIndex::kNone) {
      total += rg.run_begin[gid + 1] - rg.run_begin[gid];
    }
  }
  uint32_t* lsrc = ctx->arena.AllocArray<uint32_t>(total);
  uint32_t* rsrc = ctx->arena.AllocArray<uint32_t>(total);
  size_t k = 0;
  for (size_t i = 0; i < l.view.active; ++i) {
    const uint32_t gid = match[i];
    if (gid == RowHashIndex::kNone) continue;
    for (uint32_t p = rg.run_begin[gid]; p < rg.run_begin[gid + 1]; ++p) {
      lsrc[k] = lrows[i];
      rsrc[k] = rg.run_rows[p];
      ++k;
    }
  }

  std::vector<bool> rdrop(r.view.schema.size(), false);
  for (const size_t ri : rkeys) rdrop[ri] = true;
  LicmBatch out;
  out.view.schema = rel::JoinSchema(l.view.schema, r.view.schema,
                                    node.join_on);
  out.view.rows = total;
  out.view.active = total;
  for (size_t c = 0; c < l.view.schema.size(); ++c) {
    out.view.cols.push_back(GatherColumn(l.view, c, lsrc, total, &ctx->arena));
  }
  for (size_t c = 0; c < r.view.schema.size(); ++c) {
    if (rdrop[c]) continue;
    out.view.cols.push_back(GatherColumn(r.view, c, rsrc, total, &ctx->arena));
  }
  LICM_CHECK(out.view.cols.size() == out.view.schema.size());
  Ext* exts = ctx->arena.AllocArray<Ext>(total);
  for (size_t p = 0; p < total; ++p) {
    exts[p] = AndExt(l.exts[lsrc[p]], r.exts[rsrc[p]], ctx->ops);
  }
  out.exts = exts;
  // Dropping key columns cannot merge distinct pairs when inputs are sets,
  // but merge defensively so downstream set semantics never break.
  return OrMergeGroups(out, ctx);
}

// Batch body of Count/SumPredicateOp over the already-merged input:
// Algorithm 4 per contiguous group run, emitting qualifying group values
// in first-seen order.
Result<LicmBatch> GroupPredicateBatch(const LicmBatch& merged, size_t gidx,
                                      size_t vidx, bool weighted,
                                      rel::CmpOp op, int64_t d,
                                      ColumnarLicmContext* ctx) {
  LICM_ASSIGN_OR_RETURN(CountOpSides sides, NormalizeCountOp(op, d));

  const Grouping g = rel::GroupBy(merged.view, {gidx}, &ctx->arena);
  std::vector<CountGroup> groups(g.num_groups);
  for (uint32_t gid = 0; gid < g.num_groups; ++gid) {
    CountGroup& cg = groups[gid];
    for (uint32_t p = g.run_begin[gid]; p < g.run_begin[gid + 1]; ++p) {
      const uint32_t row = g.run_rows[p];
      int64_t w = 1;
      if (weighted) {
        w = merged.view.cols[vidx].i64[row];
        if (w < 0) {
          return Status::Unimplemented(
              "SUM predicate requires non-negative values (Algorithm 4's "
              "case analysis assumes monotone activity)");
        }
      }
      AccumulateCount(&cg, merged.exts[row], w);
    }
  }

  const rel::Column gcol = merged.view.schema.column(gidx);
  const bool is_double = gcol.type == rel::ValueType::kDouble;
  int64_t* out_i64 =
      is_double ? nullptr : ctx->arena.AllocArray<int64_t>(g.num_groups);
  double* out_f64 =
      is_double ? ctx->arena.AllocArray<double>(g.num_groups) : nullptr;
  Ext* out_exts = ctx->arena.AllocArray<Ext>(g.num_groups);
  size_t n = 0;
  for (uint32_t gid = 0; gid < g.num_groups; ++gid) {
    const CountGroup& cg = groups[gid];
    CountCase le{CountCase::kCertain, 0}, ge{CountCase::kCertain, 0};
    if (sides.want_le) le = EncodeLe(cg, sides.d_le, ctx->ops);
    if (sides.want_ge) ge = EncodeGe(cg, sides.d_ge, ctx->ops);
    const std::optional<Ext> e = GroupRowExt(cg, sides, ctx->ops, le, ge);
    if (!e.has_value()) continue;
    const uint32_t rep = g.rep_row[gid];
    if (is_double) {
      out_f64[n] = merged.view.cols[gidx].f64[rep];
    } else {
      out_i64[n] = merged.view.cols[gidx].i64[rep];
    }
    out_exts[n] = *e;
    ++n;
  }
  LicmBatch out;
  out.view.schema = rel::Schema({gcol});
  out.view.rows = n;
  out.view.active = n;
  out.view.cols.resize(1);
  out.view.cols[0].i64 = out_i64;
  out.view.cols[0].f64 = out_f64;
  out.exts = out_exts;
  return out;
}

Result<LicmBatch> CountPredicateBatch(const rel::QueryNode& node,
                                      LicmDatabase* db,
                                      ColumnarLicmContext* ctx) {
  LICM_ASSIGN_OR_RETURN(LicmBatch in, EvaluateLicmBatch(*node.left, db, ctx));
  LICM_ASSIGN_OR_RETURN(size_t gidx,
                        in.view.schema.IndexOf(node.group_column));
  // Set semantics: each distinct tuple counts once per world.
  LICM_ASSIGN_OR_RETURN(LicmBatch merged, MergeDuplicatesBatch(in, ctx));
  return GroupPredicateBatch(merged, gidx, 0, /*weighted=*/false,
                             node.count_op, node.count_d, ctx);
}

Result<LicmBatch> SumPredicateBatch(const rel::QueryNode& node,
                                    LicmDatabase* db,
                                    ColumnarLicmContext* ctx) {
  LICM_ASSIGN_OR_RETURN(LicmBatch in, EvaluateLicmBatch(*node.left, db, ctx));
  LICM_ASSIGN_OR_RETURN(size_t gidx,
                        in.view.schema.IndexOf(node.group_column));
  LICM_ASSIGN_OR_RETURN(size_t vidx, in.view.schema.IndexOf(node.sum_column));
  if (in.view.schema.column(vidx).type != rel::ValueType::kInt) {
    return Status::InvalidArgument(
        "SUM predicate needs an int column, got " +
        std::string(rel::TypeName(in.view.schema.column(vidx).type)));
  }
  LICM_ASSIGN_OR_RETURN(LicmBatch merged, MergeDuplicatesBatch(in, ctx));
  return GroupPredicateBatch(merged, gidx, vidx, /*weighted=*/true,
                             node.count_op, node.count_d, ctx);
}

}  // namespace

Result<LicmBatch> MergeDuplicatesBatch(const LicmBatch& in,
                                       ColumnarLicmContext* ctx) {
  return OrMergeGroups(in, ctx);
}

Result<LicmBatch> EvaluateLicmBatch(const rel::QueryNode& node,
                                    LicmDatabase* db,
                                    ColumnarLicmContext* ctx) {
  switch (node.kind) {
    case rel::QueryKind::kScan: return ScanBatch(node, db, ctx);
    case rel::QueryKind::kSelect: return SelectBatch(node, db, ctx);
    case rel::QueryKind::kProject: return ProjectBatch(node, db, ctx);
    case rel::QueryKind::kIntersect: return IntersectBatch(node, db, ctx);
    case rel::QueryKind::kProduct: return ProductBatch(node, db, ctx);
    case rel::QueryKind::kJoin: return JoinBatch(node, db, ctx);
    case rel::QueryKind::kCountPredicate:
      return CountPredicateBatch(node, db, ctx);
    case rel::QueryKind::kSumPredicate:
      return SumPredicateBatch(node, db, ctx);
    case rel::QueryKind::kCountStar:
    case rel::QueryKind::kSum:
    case rel::QueryKind::kMin:
    case rel::QueryKind::kMax:
      return Status::InvalidArgument(
          "aggregate root: use AnswerAggregate()");
  }
  return Status::Internal("unknown query kind");
}

void NumericColumnBatch(const LicmBatch& in, size_t col,
                        ColumnarLicmContext* ctx, std::vector<double>* values,
                        std::vector<Ext>* exts) {
  const rel::ValueType t = in.view.schema.column(col).type;
  LICM_CHECK(t != rel::ValueType::kString);
  const uint32_t* rows = ActiveRows(in.view, &ctx->arena);
  values->reserve(in.view.active);
  exts->reserve(in.view.active);
  for (size_t i = 0; i < in.view.active; ++i) {
    const uint32_t row = rows[i];
    values->push_back(t == rel::ValueType::kInt
                          ? static_cast<double>(in.view.cols[col].i64[row])
                          : in.view.cols[col].f64[row]);
    exts->push_back(in.exts[row]);
  }
}

LicmRelation BatchToLicmRelation(const LicmBatch& in,
                                 ColumnarLicmContext* ctx) {
  LicmRelation out(in.view.schema);
  const uint32_t* rows = ActiveRows(in.view, &ctx->arena);
  const size_t num_cols = in.view.schema.size();
  for (size_t i = 0; i < in.view.active; ++i) {
    const uint32_t row = rows[i];
    rel::Tuple t(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      switch (in.view.schema.column(c).type) {
        case rel::ValueType::kInt: t[c] = in.view.cols[c].i64[row]; break;
        case rel::ValueType::kDouble: t[c] = in.view.cols[c].f64[row]; break;
        case rel::ValueType::kString:
          t[c] = ctx->dict.str(in.view.cols[c].i64[row]);
          break;
      }
    }
    out.AppendUnchecked(std::move(t), in.exts[row]);
  }
  return out;
}

}  // namespace licm
