// The constraint half of the Linear Integer Constraint Model.
//
// An LICM database (Definition 3) is a set of LICM relations plus a set of
// linear constraints over the binary existence variables that appear in
// those relations. This header defines the variables (BVar), linear
// constraints with integer coefficients, and the growable pool/set that an
// LicmDatabase owns. Query operators append new variables and constraints
// here; the aggregate layer lowers them to a solver::LinearProgram.
#ifndef LICM_LICM_CONSTRAINT_H_
#define LICM_LICM_CONSTRAINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace licm {

/// Id of a binary existence variable b in {0, 1}.
using BVar = uint32_t;

enum class ConstraintOp { kLe, kGe, kEq };

const char* ConstraintOpName(ConstraintOp op);

/// One linear constraint f(B) op Z with integer coefficients (Definition 3).
struct LinearConstraint {
  struct Term {
    BVar var;
    int64_t coef;
    bool operator==(const Term&) const = default;
  };
  std::vector<Term> terms;
  ConstraintOp op = ConstraintOp::kLe;
  int64_t rhs = 0;

  bool operator==(const LinearConstraint&) const = default;

  std::string ToString() const;

  /// Evaluates the constraint under a 0/1 assignment (indexed by BVar).
  bool Satisfied(const std::vector<uint8_t>& assignment) const;
};

/// Allocator for binary variables. Ids are dense and created sequentially,
/// which the paper exploits for its one-pass pruning; we keep the property
/// so instances stay compact.
class VariablePool {
 public:
  BVar New() { return count_++; }
  uint32_t size() const { return count_; }

 private:
  uint32_t count_ = 0;
};

/// The constraint set C of an LICM database, with convenience builders for
/// the correlations of Section III (Example 5) and cardinality constraints
/// (Definition 1).
class ConstraintSet {
 public:
  void Add(LinearConstraint c) { constraints_.push_back(std::move(c)); }

  /// Pre-sizes for a known batch of upcoming Add calls.
  void Reserve(size_t additional) {
    constraints_.reserve(constraints_.size() + additional);
  }

  /// Z1 <= sum(vars) <= Z2 (Definition 1). Bounds outside [0, n] are
  /// clamped; a vacuous side is omitted.
  void AddCardinality(const std::vector<BVar>& vars, int64_t z1, int64_t z2);

  /// Mutual exclusion: b1 + b2 = 1 (exactly one of the two).
  void AddMutualExclusion(BVar b1, BVar b2);
  /// Co-existence: b1 - b2 = 0.
  void AddCoexistence(BVar b1, BVar b2);
  /// Material implication t1 -> t2: b1 - b2 <= 0.
  void AddImplication(BVar b1, BVar b2);
  /// AND-link (lineage of intersection/product, Example 6):
  /// out <= a, out <= b, out >= a + b - 1.
  void AddAnd(BVar out, BVar a, BVar b);
  /// OR-link (lineage of projection, Algorithm 1):
  /// out >= in_i for all i, out <= sum(in).
  void AddOr(BVar out, const std::vector<BVar>& in);
  /// Fixes a variable to a constant (0 or 1).
  void AddFix(BVar b, int64_t value);

  size_t size() const { return constraints_.size(); }
  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }

  /// Replaces the constraint at `index` in place (MutableInstance edits:
  /// indices stay stable so later edits keep addressing the same slot).
  /// Replacing with a vacuous constraint — no terms, `0 <= 0` — retires a
  /// slot without renumbering the rest.
  void Replace(size_t index, LinearConstraint c) {
    constraints_.at(index) = std::move(c);
  }

  /// True if every constraint holds under the 0/1 assignment.
  bool Satisfied(const std::vector<uint8_t>& assignment) const;

 private:
  std::vector<LinearConstraint> constraints_;
};

}  // namespace licm

#endif  // LICM_LICM_CONSTRAINT_H_
