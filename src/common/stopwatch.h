// Wall-clock stopwatch used by the benchmark harnesses to report the
// paper's L-model / L-query / L-solve phase timings, and the shared
// Deadline all solver workers check against.
#ifndef LICM_COMMON_STOPWATCH_H_
#define LICM_COMMON_STOPWATCH_H_

#include <atomic>
#include <chrono>
#include <limits>

#include "common/telemetry.h"

namespace licm {

class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Absolute wall-clock cut-off shared by every worker of a solve (and, via
/// MipOptions::deadline, by a whole sequence of solver calls such as the
/// MIN/MAX feasibility probes). Expiry is sticky: once any thread observes
/// it — or Cancel() is called — every later check answers true, so all
/// workers stop at one consistent point instead of each re-reading its own
/// stopwatch against a relative limit.
class Deadline {
 public:
  /// Expires `seconds` from now. Limits of a billion seconds or more (the
  /// benches' "effectively unlimited") never expire.
  static Deadline After(double seconds) {
    if (!(seconds < 1e9)) return Never();
    return Deadline(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds)));
  }
  static Deadline Never() { return Deadline(Clock::time_point::max()); }

  Deadline(const Deadline& other)
      : at_(other.at_), cancelled_(other.cancelled_.load()) {}
  Deadline& operator=(const Deadline& other) {
    at_ = other.at_;
    cancelled_.store(other.cancelled_.load());
    return *this;
  }

  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (Clock::now() < at_) return false;
    // The exchange singles out the one observer that flips the flag, so
    // a traced run records exactly one expiry marker per deadline.
    if (!cancelled_.exchange(true, std::memory_order_relaxed)) {
      telemetry::Instant("deadline", "deadline_expired");
    }
    return true;
  }

  /// Cooperative cancellation: makes Expired() true for every holder.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Wall-clock seconds until expiry, clamped to zero once the deadline
  /// has passed or was cancelled; +infinity for Never(). Callers size
  /// follow-up budgets (e.g. a degraded sampling pass after a timed-out
  /// exact solve) off this value, so it must never go negative.
  double RemainingSeconds() const {
    if (cancelled_.load(std::memory_order_relaxed)) return 0.0;
    if (at_ == Clock::time_point::max()) {
      return std::numeric_limits<double>::infinity();
    }
    const double s = std::chrono::duration<double>(at_ - Clock::now()).count();
    return s > 0.0 ? s : 0.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  explicit Deadline(Clock::time_point at) : at_(at) {}

  Clock::time_point at_;
  mutable std::atomic<bool> cancelled_{false};
};

}  // namespace licm

#endif  // LICM_COMMON_STOPWATCH_H_
