// Wall-clock stopwatch used by the benchmark harnesses to report the
// paper's L-model / L-query / L-solve phase timings.
#ifndef LICM_COMMON_STOPWATCH_H_
#define LICM_COMMON_STOPWATCH_H_

#include <chrono>

namespace licm {

class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace licm

#endif  // LICM_COMMON_STOPWATCH_H_
