// Deterministic, seedable PRNG (xoshiro256**) plus distribution helpers.
//
// All randomized components (data generator, Monte-Carlo sampler, test
// fuzzers) take an explicit Rng so every run is reproducible from a seed.
#ifndef LICM_COMMON_RNG_H_
#define LICM_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace licm {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seed using splitmix64 expansion of `seed`.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& si : s_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    LICM_CHECK(n > 0);
    // Rejection to avoid modulo bias.
    uint64_t threshold = (-n) % n;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    LICM_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<uint32_t> Permutation(uint32_t n) {
    std::vector<uint32_t> p(n);
    for (uint32_t i = 0; i < n; ++i) p[i] = i;
    Shuffle(&p);
    return p;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

/// Base seed for randomized tests and fuzzers: the LICM_FUZZ_SEED
/// environment variable when set to an unsigned integer (decimal or 0x
/// hex), else `fallback`. Tests print the seed they used in every failure
/// message, so a failing randomized run is replayed with
///   LICM_FUZZ_SEED=<seed> ./the_test
/// without recompiling.
uint64_t FuzzSeedFromEnv(uint64_t fallback);

/// Zipf(s) sampler over ranks {0, ..., n-1} using precomputed CDF.
/// Rank 0 is the most frequent. Used by the synthetic BMS-POS-like
/// generator: real retail item frequencies are heavy-tailed.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double s);

  /// Sample a rank in [0, n).
  uint32_t Sample(Rng* rng) const;

  uint32_t n() const { return static_cast<uint32_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace licm

#endif  // LICM_COMMON_RNG_H_
