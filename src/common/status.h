// Status / Result error handling, in the style of Arrow/RocksDB.
//
// Library code never throws for anticipated failures (bad input, infeasible
// models, I/O errors); it returns Status or Result<T>. LICM_CHECK-style
// macros guard internal invariants and abort on programmer error.
#ifndef LICM_COMMON_STATUS_H_
#define LICM_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace licm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kInfeasible,    // constraint system has no valid assignment
  kUnbounded,     // optimization objective is unbounded
  kTimeLimit,     // solver stopped at its deadline with a bound gap
  kIOError,
  kOverloaded,    // service admission control rejected the request
};

/// Outcome of an operation that can fail without a payload.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Infeasible(std::string m) {
    return Status(StatusCode::kInfeasible, std::move(m));
  }
  static Status Unbounded(std::string m) {
    return Status(StatusCode::kUnbounded, std::move(m));
  }
  static Status TimeLimit(std::string m) {
    return Status(StatusCode::kTimeLimit, std::move(m));
  }
  static Status IOError(std::string m) {
    return Status(StatusCode::kIOError, std::move(m));
  }
  static Status Overloaded(std::string m) {
    return Status(StatusCode::kOverloaded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kInfeasible: return "Infeasible";
      case StatusCode::kUnbounded: return "Unbounded";
      case StatusCode::kTimeLimit: return "TimeLimit";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kOverloaded: return "Overloaded";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace licm

/// Propagate a non-OK Status from the current function.
#define LICM_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::licm::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define LICM_CONCAT_IMPL(a, b) a##b
#define LICM_CONCAT(a, b) LICM_CONCAT_IMPL(a, b)

/// ASSIGN_OR_RETURN: unwrap a Result<T> or propagate its error.
#define LICM_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  auto LICM_CONCAT(_res_, __LINE__) = (rexpr);                 \
  if (!LICM_CONCAT(_res_, __LINE__).ok())                      \
    return LICM_CONCAT(_res_, __LINE__).status();              \
  lhs = std::move(LICM_CONCAT(_res_, __LINE__)).value()

/// Internal invariant check; aborts on violation (programmer error).
#define LICM_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "LICM_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define LICM_CHECK_OK(expr)                                               \
  do {                                                                    \
    ::licm::Status _st = (expr);                                          \
    if (!_st.ok()) {                                                      \
      std::fprintf(stderr, "LICM_CHECK_OK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, _st.ToString().c_str());           \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // LICM_COMMON_STATUS_H_
