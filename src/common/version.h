// Build provenance: the git revision and CMake build type baked into the
// binaries at configure time. One definition point (src/common/CMakeLists
// injects the macros into version.cc) serves every consumer — BENCH_*.json
// rows, `--version` flags on the CLI tools, and the service's ping
// response — so artifacts from any layer can be tied back to one build.
#ifndef LICM_COMMON_VERSION_H_
#define LICM_COMMON_VERSION_H_

#include <string>

namespace licm {

/// Short git revision of the build ("unknown" outside a git checkout).
const char* BuildGitSha();

/// CMake build type ("RelWithDebInfo", "Debug", ...).
const char* BuildTypeName();

/// One-line version banner for a CLI tool: "<tool> <git_sha> (<build_type>)".
std::string VersionString(const char* tool);

}  // namespace licm

#endif  // LICM_COMMON_VERSION_H_
