// Always-on process metrics: named counters, gauges, and log-bucketed
// histograms, cheap enough to leave enabled in release builds.
//
// Design (mirrors the telemetry buffers in telemetry.h, but for scalar
// aggregates instead of event streams):
//
//   * Registration is slow-path: `MetricsRegistry::GetCounter("name",
//     labels)` takes a mutex, interns the (name, labels) series, and
//     returns a stable pointer. Call sites cache the pointer (function-
//     local static or member); after that the registry is never touched
//     on the hot path.
//   * Updates are lock-free: every metric holds a small fixed array of
//     cacheline-padded shards, and a thread increments the shard it was
//     assigned at first use with one relaxed atomic add. Readers sum the
//     shards; totals are exact, momentarily-torn views are acceptable
//     (monitoring semantics).
//   * Histograms are HDR-style: geometric octaves split into 8 linear
//     sub-buckets each, covering ~1e-6 .. ~8.8e12 (plus underflow and
//     overflow buckets). Counts are exact per bucket; quantiles are
//     extracted from the exact counts by linear interpolation inside the
//     landing bucket, so the relative quantile error is bounded by the
//     sub-bucket width (<= 12.5%).
//   * Labels are sorted key/value pairs baked into the series identity.
//     Cardinality discipline is the caller's job: label values must come
//     from a small closed set (instance names, query ids 1-3, engine,
//     degraded flag) — never raw user input.
//
// Compiling with -DLICM_METRICS_DISABLED turns every update into a no-op
// (the registry still renders, all zeros); the CMake option
// LICM_DISABLE_METRICS drives this for overhead A/B measurements.
#ifndef LICM_COMMON_METRICS_H_
#define LICM_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace licm::metrics {

/// Sorted (key, value) pairs identifying one series within a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

// Number of update shards per metric. Threads hash onto shards round-
// robin; 8 keeps false sharing rare at the worker-pool sizes we run
// (solver threads + service workers) without bloating histograms.
inline constexpr int kShards = 8;

struct alignas(64) PaddedCell {
  std::atomic<int64_t> v{0};
};

// Stable per-thread shard index, assigned round-robin on first use.
int AssignShard();
inline int ShardIndex() {
  thread_local const int shard = AssignShard();
  return shard;
}

// Relaxed add for doubles (atomic<double>::fetch_add is C++20; a CAS
// loop keeps us portable across the toolchains CI uses).
inline void AtomicAdd(std::atomic<double>* cell, double delta) {
  double cur = cell->load(std::memory_order_relaxed);
  while (!cell->compare_exchange_weak(cur, cur + delta,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic counter. One relaxed atomic add per hit.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
#if !defined(LICM_METRICS_DISABLED)
    shards_[detail::ShardIndex()].v.fetch_add(delta,
                                              std::memory_order_relaxed);
#endif
    (void)delta;
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  detail::PaddedCell shards_[detail::kShards];
};

/// Last-writer-wins level (queue depth, inflight). Set() stores; Add()
/// applies a relaxed delta so concurrent +1/-1 pairs cancel exactly.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
#if !defined(LICM_METRICS_DISABLED)
    value_.store(v, std::memory_order_relaxed);
#endif
    (void)v;
  }
  void Add(double delta) {
#if !defined(LICM_METRICS_DISABLED)
    detail::AtomicAdd(&value_, delta);
#endif
    (void)delta;
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only aggregate of a histogram at one instant: exact per-bucket
/// counts summed across shards, plus quantile/extreme extraction.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  std::vector<int64_t> buckets;  // size Histogram::kBuckets

  /// Quantile by exact-count rank walk + linear interpolation within the
  /// landing bucket. q in [0, 1]; returns 0 when empty.
  double Quantile(double q) const;
  double Min() const;  // lower bound of the lowest non-empty bucket
  double Max() const;  // upper bound of the highest non-empty bucket
  double Mean() const { return count > 0 ? sum / count : 0.0; }
};

/// Log-bucketed histogram of non-negative values (ms, counts, bytes).
/// Observe() is two relaxed atomic adds (bucket count + running sum).
class Histogram {
 public:
  // Octaves [2^(kFirstExp-1), 2^kLastExp) split into kSubBuckets linear
  // sub-buckets each, plus underflow (index 0) and overflow (last).
  static constexpr int kFirstExp = -19;  // lowest resolved ~9.5e-7
  static constexpr int kLastExp = 43;    // overflow above ~8.8e12
  static constexpr int kSubBuckets = 8;
  static constexpr int kOctaves = kLastExp - kFirstExp + 1;
  static constexpr int kBuckets = kOctaves * kSubBuckets + 2;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v) {
#if !defined(LICM_METRICS_DISABLED)
    Shard& s = shards_[detail::ShardIndex()];
    s.buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    detail::AtomicAdd(&s.sum, v);
#endif
    (void)v;
  }

  HistogramSnapshot Snapshot() const;
  double Quantile(double q) const { return Snapshot().Quantile(q); }
  int64_t Count() const { return Snapshot().count; }

  /// Bucket index for a value: 0 for v < 2^(kFirstExp-1) (including 0,
  /// negatives, NaN), kBuckets-1 for v >= 2^kLastExp (including +inf).
  static int BucketIndex(double v);
  /// Inclusive lower bound of bucket `idx` (0 for the underflow bucket).
  static double BucketLowerBound(int idx);
  /// Exclusive upper bound (+inf for the overflow bucket).
  static double BucketUpperBound(int idx);

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> buckets[kBuckets] = {};
    std::atomic<double> sum{0.0};
  };
  Shard shards_[detail::kShards];
};

/// Process-wide registry: families keyed by name, series keyed by label
/// set. Series pointers are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The global instance every instrumentation site uses. Leaked so
  /// detached threads may update metrics during static destruction.
  static MetricsRegistry& Default();

  /// Get-or-create. Aborts if `name` is already registered with a
  /// different metric type (programmer error, like telemetry's CHECKs).
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  /// Sum of a counter family across all label sets (0 if unregistered).
  int64_t CounterTotal(const std::string& name) const;

  /// Prometheus text exposition (version 0.0.4). Histograms render
  /// cumulative `_bucket{le=...}` lines at non-empty boundaries plus
  /// `+Inf`, `_sum`, and `_count`.
  std::string RenderPrometheus() const;

  /// JSON for the service `metrics` verb: {"counters":[...],
  /// "gauges":[...], "histograms":[...]} with p50/p90/p99/p999 per
  /// histogram. Self-contained (no trailing newline), parseable by
  /// service/json.h.
  std::string RenderJson() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Family {
    Type type;
    // Label set -> index into the typed deque below. Insertion order
    // kept for stable rendering.
    std::vector<std::pair<Labels, size_t>> series;
  };

  size_t* FindOrCreate(const std::string& name, const Labels& labels,
                       Type type);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace licm::metrics

#endif  // LICM_COMMON_METRICS_H_
