#include "common/trace_export.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

namespace licm::telemetry {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Microseconds with nanosecond precision, the unit Chrome/Perfetto expect.
std::string RenderMicros(int64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000 < 0 ? -(ns % 1000)
                                                     : ns % 1000));
  return buf;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  return ok ? Status::OK() : Status::IOError("error writing " + path);
}

}  // namespace

std::string ChromeTraceJson() {
  const std::vector<Event> events = Snapshot();
  const int64_t t0 = SessionStartNs();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(e.name == nullptr ? "?" : e.name);
    out += "\",\"cat\":\"";
    out += JsonEscape(e.category == nullptr ? "?" : e.category);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    out += RenderMicros(e.ts_ns - t0);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      out += RenderMicros(e.dur_ns);
    }
    // Instants: "s":"t" scopes the marker to its thread track.
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    bool any_arg = false;
    for (const Arg& a : e.args) {
      if (a.key == nullptr || !std::isfinite(a.value)) continue;
      out += any_arg ? "," : ",\"args\":{";
      any_arg = true;
      out += "\"";
      out += JsonEscape(a.key);
      out += "\":";
      out += RenderDouble(a.value);
    }
    if (any_arg) out += "}";
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  return WriteFile(path, ChromeTraceJson());
}

std::vector<PhaseSummary> SummarizeSpans(int64_t since_ns) {
  std::map<std::string, PhaseSummary> by_name;
  for (const Event& e : Snapshot()) {
    if (e.phase != 'X' || e.ts_ns < since_ns) continue;
    PhaseSummary& s = by_name[e.name];
    if (s.count == 0) {
      s.name = e.name;
      s.category = e.category == nullptr ? "" : e.category;
    }
    ++s.count;
    s.total_ms += static_cast<double>(e.dur_ns) / 1e6;
  }
  std::vector<PhaseSummary> out;
  out.reserve(by_name.size());
  for (auto& [name, s] : by_name) out.push_back(std::move(s));
  std::sort(out.begin(), out.end(),
            [](const PhaseSummary& a, const PhaseSummary& b) {
              return a.total_ms > b.total_ms;
            });
  return out;
}

std::string PhaseSummaryJson(int64_t since_ns) {
  std::string out = "[\n";
  const std::vector<PhaseSummary> phases = SummarizeSpans(since_ns);
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseSummary& p = phases[i];
    out += "{\"name\":\"" + JsonEscape(p.name) + "\",\"category\":\"" +
           JsonEscape(p.category) +
           "\",\"count\":" + std::to_string(p.count) +
           ",\"total_ms\":" + RenderDouble(p.total_ms) + "}";
    out += i + 1 < phases.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

Status WritePhaseSummary(const std::string& path, int64_t since_ns) {
  return WriteFile(path, PhaseSummaryJson(since_ns));
}

// ---------------------------------------------------------------------------
// Validation: a dependency-free JSON parser (just enough of RFC 8259 for
// trace files) plus the structural checks tests and CI gate on.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  Status Parse(JsonValue* out) {
    LICM_RETURN_NOT_OK(ParseValue(out, 0));
    SkipWs();
    if (p_ != end_) return Error("trailing content after JSON value");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(offset_) + ": " + msg);
  }

  void SkipWs() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      Advance();
    }
  }

  void Advance() {
    ++p_;
    ++offset_;
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      Advance();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (p_ == end_) return Error("unexpected end of input");
    switch (*p_) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
      case 'f': return ParseKeyword(out);
      case 'n':
        out->type = JsonValue::Type::kNull;
        return ParseLiteral("null");
      default: return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* lit) {
    for (const char* c = lit; *c != '\0'; ++c) {
      if (!Consume(*c)) return Error(std::string("expected '") + lit + "'");
    }
    return Status::OK();
  }

  Status ParseKeyword(JsonValue* out) {
    out->type = JsonValue::Type::kBool;
    out->boolean = *p_ == 't';
    return ParseLiteral(out->boolean ? "true" : "false");
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') Advance();
    auto digits = [&] {
      bool any = false;
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        Advance();
        any = true;
      }
      return any;
    };
    if (!digits()) return Error("invalid number");
    if (p_ != end_ && *p_ == '.') {
      Advance();
      if (!digits()) return Error("digits required after '.'");
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      Advance();
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) Advance();
      if (!digits()) return Error("digits required in exponent");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(std::string(start, p_).c_str(), nullptr);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      Advance();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (p_ == end_) return Error("dangling escape");
      char esc = *p_;
      Advance();
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (p_ == end_ ||
                !std::isxdigit(static_cast<unsigned char>(*p_))) {
              return Error("invalid \\u escape");
            }
            const char h = *p_;
            Advance();
            code = code * 16 +
                   (std::isdigit(static_cast<unsigned char>(h))
                        ? static_cast<unsigned>(h - '0')
                        : static_cast<unsigned>(std::tolower(h) - 'a') + 10);
          }
          // Validation only needs well-formedness, not UTF-8 re-encoding.
          *out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: return Error("invalid escape character");
      }
    }
    if (!Consume('"')) return Error("unterminated string");
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    Consume('[');
    SkipWs();
    if (Consume(']')) return Status::OK();
    for (;;) {
      out->array.emplace_back();
      LICM_RETURN_NOT_OK(ParseValue(&out->array.back(), depth + 1));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    Consume('{');
    SkipWs();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWs();
      std::string key;
      LICM_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      out->object.emplace_back(std::move(key), JsonValue());
      LICM_RETURN_NOT_OK(ParseValue(&out->object.back().second, depth + 1));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const char* p_;
  const char* end_;
  size_t offset_ = 0;
};

Status RequireField(const JsonValue& event, size_t index,
                    const std::string& key, JsonValue::Type type,
                    const JsonValue** out) {
  const JsonValue* v = event.Find(key);
  if (v == nullptr || v->type != type) {
    return Status::InvalidArgument("traceEvents[" + std::to_string(index) +
                                   "] missing or mistyped field '" + key +
                                   "'");
  }
  *out = v;
  return Status::OK();
}

}  // namespace

Status ValidateChromeTrace(const std::string& json) {
  JsonValue root;
  LICM_RETURN_NOT_OK(JsonParser(json).Parse(&root));
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("trace root is not a JSON object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing traceEvents array");
  }

  // (ts, end) of every complete span, per tid, for the nesting check.
  std::map<double, std::vector<std::pair<double, double>>> spans_by_tid;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    if (e.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("traceEvents[" + std::to_string(i) +
                                     "] is not an object");
    }
    const JsonValue* field = nullptr;
    LICM_RETURN_NOT_OK(
        RequireField(e, i, "name", JsonValue::Type::kString, &field));
    LICM_RETURN_NOT_OK(
        RequireField(e, i, "ph", JsonValue::Type::kString, &field));
    const std::string ph = field->str;
    if (ph.size() != 1) {
      return Status::InvalidArgument("traceEvents[" + std::to_string(i) +
                                     "] has multi-character ph");
    }
    // Metadata events ('M') carry pid/args only; all others need the
    // full timing block.
    if (ph == "M") continue;
    LICM_RETURN_NOT_OK(
        RequireField(e, i, "cat", JsonValue::Type::kString, &field));
    LICM_RETURN_NOT_OK(
        RequireField(e, i, "ts", JsonValue::Type::kNumber, &field));
    const double ts = field->number;
    LICM_RETURN_NOT_OK(
        RequireField(e, i, "pid", JsonValue::Type::kNumber, &field));
    LICM_RETURN_NOT_OK(
        RequireField(e, i, "tid", JsonValue::Type::kNumber, &field));
    const double tid = field->number;
    if (ph == "X") {
      LICM_RETURN_NOT_OK(
          RequireField(e, i, "dur", JsonValue::Type::kNumber, &field));
      if (field->number < 0) {
        return Status::InvalidArgument("traceEvents[" + std::to_string(i) +
                                       "] has negative dur");
      }
      spans_by_tid[tid].emplace_back(ts, ts + field->number);
    }
  }

  // Spans of one thread come from nested RAII scopes: after sorting by
  // (start, longest first), a span must close before the enclosing span
  // still on the stack does. Tolerance covers the microsecond rounding of
  // the export.
  constexpr double kEps = 2e-3;
  for (auto& [tid, spans] : spans_by_tid) {
    std::sort(spans.begin(), spans.end(),
              [](const std::pair<double, double>& a,
                 const std::pair<double, double>& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second > b.second;
              });
    std::vector<std::pair<double, double>> stack;
    for (const auto& span : spans) {
      while (!stack.empty() && stack.back().second <= span.first + kEps) {
        stack.pop_back();
      }
      if (!stack.empty() && span.second > stack.back().second + kEps) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "tid %g: span [%g, %g] overlaps but does not nest in "
                      "[%g, %g]",
                      tid, span.first, span.second, stack.back().first,
                      stack.back().second);
        return Status::InvalidArgument(buf);
      }
      stack.push_back(span);
    }
  }
  return Status::OK();
}

Status ValidateChromeTraceFile(const std::string& path, size_t* num_events) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  LICM_RETURN_NOT_OK(ValidateChromeTrace(content));
  if (num_events != nullptr) {
    // Re-parse cheaply: count top-level event objects via the validator's
    // parser to stay faithful to what was checked.
    JsonValue root;
    LICM_RETURN_NOT_OK(JsonParser(content).Parse(&root));
    const JsonValue* events = root.Find("traceEvents");
    *num_events = events == nullptr ? 0 : events->array.size();
  }
  return Status::OK();
}

}  // namespace licm::telemetry
