#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace licm {

uint64_t FuzzSeedFromEnv(uint64_t fallback) {
  const char* env = std::getenv("LICM_FUZZ_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(env, &end, 0);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

ZipfSampler::ZipfSampler(uint32_t n, double s) {
  LICM_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

uint32_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace licm
