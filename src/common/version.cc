#include "common/version.h"

// Injected by src/common/CMakeLists.txt; the fallbacks keep non-CMake
// build setups (and git-less source exports) alive.
#ifndef LICM_GIT_SHA
#define LICM_GIT_SHA "unknown"
#endif
#ifndef LICM_BUILD_TYPE
#define LICM_BUILD_TYPE "unknown"
#endif

namespace licm {

const char* BuildGitSha() { return LICM_GIT_SHA; }

const char* BuildTypeName() { return LICM_BUILD_TYPE; }

std::string VersionString(const char* tool) {
  return std::string(tool) + " " + BuildGitSha() + " (" + BuildTypeName() +
         ")";
}

}  // namespace licm
