// Process-wide tracing & metrics: spans, instant events, and counters
// recorded into lock-free per-thread buffers, exported as Chrome
// trace-event JSON (trace_export.h) and per-phase wall-time summaries.
//
// Overhead contract: every macro/inline record site compiles down to one
// relaxed atomic load when no trace session is active — no allocation, no
// lock, no clock read. With a session active, the recording thread appends
// to its own chunked buffer without taking any lock (the only
// synchronization is a release store of the buffer's event count, matched
// by an acquire load in the exporter), so tracing perturbs parallel solver
// runs as little as possible and stays ThreadSanitizer-clean.
//
// Usage:
//   telemetry::StartTracing();
//   { LICM_TRACE_SPAN("solver", "presolve"); ... }       // RAII span
//   telemetry::Instant("scheduler", "steal", {{"from", 2.0}});
//   telemetry::WriteChromeTrace("trace.json");            // trace_export.h
//
// `name` / `category` arguments must be string literals (or otherwise
// outlive the session): events store the pointers, not copies.
//
// Concurrency contract: recording is safe from any number of threads at
// any time. StartTracing() must not run concurrently with recording
// threads or with Snapshot() (start sessions from quiescent points, e.g.
// before solver calls); Snapshot()/export may run while recording threads
// are merely idle-but-alive.
#ifndef LICM_COMMON_TELEMETRY_H_
#define LICM_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace licm::telemetry {

/// Named numeric payload of an event. A null key marks an unused slot.
struct Arg {
  const char* key = nullptr;
  double value = 0.0;
};

inline constexpr int kMaxArgs = 6;

/// One trace event. `phase` follows the Chrome trace-event convention:
/// 'X' complete span (ts + dur), 'i' instant, 'C' counter.
struct Event {
  const char* name = nullptr;      // static-lifetime string
  const char* category = nullptr;  // static-lifetime string
  char phase = 'X';
  uint32_t tid = 0;    // registration-order thread id, stable per thread
  int64_t ts_ns = 0;   // steady-clock ns since the process trace anchor
  int64_t dur_ns = 0;  // 'X' spans only
  Arg args[kMaxArgs] = {};
};

namespace detail {
extern std::atomic<bool> g_enabled;
int64_t NowNs();
void Record(const Event& e);  // appends to this thread's buffer
}  // namespace detail

/// True while a trace session is recording. Single relaxed atomic load:
/// this is the only cost every instrumentation site pays when tracing is
/// off.
inline bool Enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Steady-clock nanoseconds since the process trace anchor — the timebase
/// of Event::ts_ns. Monotone across sessions; usable as a mark for
/// "events since" queries even while tracing is off.
int64_t NowNs();

/// Starts (or restarts) the process-wide trace session. A restart
/// logically clears previously recorded events.
void StartTracing();

/// Stops recording. Events recorded so far stay readable via Snapshot()
/// and the exporters until the next StartTracing().
void StopTracing();

/// All events of the current session, merged across threads and sorted by
/// (ts_ns, dur_ns descending) so enclosing spans precede their children.
std::vector<Event> Snapshot();

/// Events dropped because a thread exhausted its buffer capacity.
int64_t DroppedEvents();

/// Nanoseconds-since-anchor of the current session's start (0 when no
/// session was ever started). Exporters subtract this so traces start
/// near t=0.
int64_t SessionStartNs();

/// Records an instant event ('i').
inline void Instant(const char* category, const char* name,
                    std::initializer_list<Arg> args = {}) {
  if (!Enabled()) return;
  Event e;
  e.name = name;
  e.category = category;
  e.phase = 'i';
  e.ts_ns = detail::NowNs();
  int i = 0;
  for (const Arg& a : args) {
    if (i >= kMaxArgs) break;
    e.args[i++] = a;
  }
  detail::Record(e);
}

/// Records a counter sample ('C'); rendered as a track in Perfetto.
inline void Counter(const char* category, const char* name, double value) {
  if (!Enabled()) return;
  Event e;
  e.name = name;
  e.category = category;
  e.phase = 'C';
  e.ts_ns = detail::NowNs();
  e.args[0] = {name, value};
  detail::Record(e);
}

/// RAII span: measures construction-to-End() (or destruction) as one
/// complete 'X' event. Inert (one relaxed load, nothing else) when
/// tracing is off at construction time.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name) {
    if (!Enabled()) return;
    active_ = true;
    event_.name = name;
    event_.category = category;
    event_.ts_ns = detail::NowNs();
  }
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a named value to the span (up to kMaxArgs; extras ignored).
  void AddArg(const char* key, double value) {
    if (!active_) return;
    for (Arg& slot : event_.args) {
      if (slot.key == nullptr) {
        slot = {key, value};
        return;
      }
    }
  }

  /// Ends the span early; idempotent.
  void End() {
    if (!active_) return;
    active_ = false;
    event_.dur_ns = detail::NowNs() - event_.ts_ns;
    detail::Record(event_);
  }

 private:
  bool active_ = false;
  Event event_;
};

}  // namespace licm::telemetry

#define LICM_TELEMETRY_CONCAT_INNER(a, b) a##b
#define LICM_TELEMETRY_CONCAT(a, b) LICM_TELEMETRY_CONCAT_INNER(a, b)

/// Declares an RAII span covering the rest of the enclosing scope.
#define LICM_TRACE_SPAN(category, name)                                   \
  ::licm::telemetry::ScopedSpan LICM_TELEMETRY_CONCAT(licm_trace_span_,   \
                                                      __LINE__)(category, \
                                                                name)

#endif  // LICM_COMMON_TELEMETRY_H_
