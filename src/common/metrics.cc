#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/status.h"

namespace licm::metrics {

namespace detail {

int AssignShard() {
  static std::atomic<unsigned> next{0};
  return static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                          kShards);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram bucketing

int Histogram::BucketIndex(double v) {
  // NaN, negatives, zero, and sub-resolution values land in underflow.
  if (!(v >= std::ldexp(1.0, kFirstExp - 1))) return 0;
  if (v >= std::ldexp(1.0, kLastExp)) return kBuckets - 1;
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // frac in [0.5, 1)
  const int octave = exp - kFirstExp;
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + octave * kSubBuckets + sub;
}

double Histogram::BucketLowerBound(int idx) {
  if (idx <= 0) return 0.0;
  if (idx >= kBuckets - 1) return std::ldexp(1.0, kLastExp);
  const int octave = (idx - 1) / kSubBuckets;
  const int sub = (idx - 1) % kSubBuckets;
  // Octave `o` spans [2^(kFirstExp-1+o), 2^(kFirstExp+o)), split linearly.
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                    kFirstExp - 1 + octave);
}

double Histogram::BucketUpperBound(int idx) {
  if (idx >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return BucketLowerBound(idx + 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBuckets, 0);
  for (const Shard& s : shards_) {
    for (int b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (int64_t c : snap.buckets) snap.count += c;
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Exact-count rank walk: the q-quantile is the value at rank
  // q*(count-1) of the sorted observations; the landing bucket is known
  // exactly, the position inside it is interpolated linearly.
  const double rank = q * static_cast<double>(count - 1);
  int64_t before = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (static_cast<double>(before + buckets[b]) > rank) {
      const double lo = Histogram::BucketLowerBound(static_cast<int>(b));
      double hi = Histogram::BucketUpperBound(static_cast<int>(b));
      if (!std::isfinite(hi)) return lo;  // overflow bucket: clamp
      const double inside =
          (rank - static_cast<double>(before) + 0.5) /
          static_cast<double>(buckets[b]);
      return lo + inside * (hi - lo);
    }
    before += buckets[b];
  }
  return Max();
}

double HistogramSnapshot::Min() const {
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] > 0) return Histogram::BucketLowerBound(static_cast<int>(b));
  }
  return 0.0;
}

double HistogramSnapshot::Max() const {
  for (size_t b = buckets.size(); b-- > 0;) {
    if (buckets[b] > 0) {
      const double hi = Histogram::BucketUpperBound(static_cast<int>(b));
      return std::isfinite(hi) ? hi
                               : Histogram::BucketLowerBound(static_cast<int>(b));
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// Registry

namespace {

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

// {k="v",...} for Prometheus; empty string when unlabeled.
std::string PromLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first;
    out += "=\"";
    AppendEscaped(&out, labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

// Same, but with an extra label spliced in (for histogram `le`).
std::string PromLabelsWith(const Labels& labels, const char* key,
                           const std::string& value) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += k;
    out += "=\"";
    AppendEscaped(&out, v);
    out += "\",";
  }
  out += key;
  out += "=\"";
  out += value;
  out += "\"}";
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    AppendEscaped(&out, labels[i].first);
    out += "\":\"";
    AppendEscaped(&out, labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string Num(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "\"+Inf\"" : "\"-Inf\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked (like telemetry's Registry): detached worker threads may
  // still bump counters while static destructors run.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

size_t* MetricsRegistry::FindOrCreate(const std::string& name,
                                      const Labels& labels, Type type) {
  // Returns the slot for an existing series, or nullptr when a new series
  // was appended (with a placeholder index the caller must fill in after
  // allocating storage). Caller holds mu_.
  Family& fam = families_[name];
  if (fam.series.empty()) {
    fam.type = type;
  } else {
    LICM_CHECK(fam.type == type);  // one type per metric name
  }
  for (auto& [ls, idx] : fam.series) {
    if (ls == labels) return &idx;
  }
  fam.series.emplace_back(labels, 0);
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t* slot = FindOrCreate(name, SortedLabels(labels), Type::kCounter);
  if (slot != nullptr) return &counters_[*slot];
  counters_.emplace_back();
  families_[name].series.back().second = counters_.size() - 1;
  return &counters_.back();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t* slot = FindOrCreate(name, SortedLabels(labels), Type::kGauge);
  if (slot != nullptr) return &gauges_[*slot];
  gauges_.emplace_back();
  families_[name].series.back().second = gauges_.size() - 1;
  return &gauges_.back();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t* slot = FindOrCreate(name, SortedLabels(labels), Type::kHistogram);
  if (slot != nullptr) return &histograms_[*slot];
  histograms_.emplace_back();
  families_[name].series.back().second = histograms_.size() - 1;
  return &histograms_.back();
}

int64_t MetricsRegistry::CounterTotal(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.type != Type::kCounter) return 0;
  int64_t total = 0;
  for (const auto& [labels, idx] : it->second.series) {
    total += counters_[idx].Value();
  }
  return total;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, fam] : families_) {
    switch (fam.type) {
      case Type::kCounter: {
        out += "# TYPE " + name + " counter\n";
        for (const auto& [labels, idx] : fam.series) {
          out += name + PromLabels(labels) + " " +
                 std::to_string(counters_[idx].Value()) + "\n";
        }
        break;
      }
      case Type::kGauge: {
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [labels, idx] : fam.series) {
          out += name + PromLabels(labels) + " " +
                 Num(gauges_[idx].Value()) + "\n";
        }
        break;
      }
      case Type::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        for (const auto& [labels, idx] : fam.series) {
          const HistogramSnapshot snap = histograms_[idx].Snapshot();
          int64_t cum = 0;
          for (size_t b = 0; b < snap.buckets.size(); ++b) {
            if (snap.buckets[b] == 0) continue;
            cum += snap.buckets[b];
            const double hi =
                Histogram::BucketUpperBound(static_cast<int>(b));
            if (!std::isfinite(hi)) continue;  // folded into +Inf below
            char le[64];
            std::snprintf(le, sizeof(le), "%.9g", hi);
            out += name + "_bucket" + PromLabelsWith(labels, "le", le) +
                   " " + std::to_string(cum) + "\n";
          }
          out += name + "_bucket" + PromLabelsWith(labels, "le", "+Inf") +
                 " " + std::to_string(snap.count) + "\n";
          out += name + "_sum" + PromLabels(labels) + " " + Num(snap.sum) +
                 "\n";
          out += name + "_count" + PromLabels(labels) + " " +
                 std::to_string(snap.count) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters = "[";
  std::string gauges = "[";
  std::string histograms = "[";
  bool c0 = true, g0 = true, h0 = true;
  for (const auto& [name, fam] : families_) {
    for (const auto& [labels, idx] : fam.series) {
      switch (fam.type) {
        case Type::kCounter:
          if (!c0) counters += ",";
          c0 = false;
          counters += "{\"name\":\"";
          AppendEscaped(&counters, name);
          counters += "\",\"labels\":" + JsonLabels(labels) +
                      ",\"value\":" + std::to_string(counters_[idx].Value()) +
                      "}";
          break;
        case Type::kGauge:
          if (!g0) gauges += ",";
          g0 = false;
          gauges += "{\"name\":\"";
          AppendEscaped(&gauges, name);
          gauges += "\",\"labels\":" + JsonLabels(labels) +
                    ",\"value\":" + Num(gauges_[idx].Value()) + "}";
          break;
        case Type::kHistogram: {
          const HistogramSnapshot snap = histograms_[idx].Snapshot();
          if (!h0) histograms += ",";
          h0 = false;
          histograms += "{\"name\":\"";
          AppendEscaped(&histograms, name);
          histograms += "\",\"labels\":" + JsonLabels(labels) +
                        ",\"count\":" + std::to_string(snap.count) +
                        ",\"sum\":" + Num(snap.sum) +
                        ",\"mean\":" + Num(snap.Mean()) +
                        ",\"p50\":" + Num(snap.Quantile(0.50)) +
                        ",\"p90\":" + Num(snap.Quantile(0.90)) +
                        ",\"p99\":" + Num(snap.Quantile(0.99)) +
                        ",\"p999\":" + Num(snap.Quantile(0.999)) +
                        ",\"max\":" + Num(snap.Max()) + "}";
          break;
        }
      }
    }
  }
  return "{\"counters\":" + counters + "],\"gauges\":" + gauges +
         "],\"histograms\":" + histograms + "]}";
}

}  // namespace licm::metrics
