// Exporters for the telemetry event stream (telemetry.h): Chrome
// trace-event JSON loadable in chrome://tracing / Perfetto ("Open trace
// file"), a machine-readable per-phase wall-time summary, and a validator
// used by tests and the `trace_check` CLI to gate exported traces.
#ifndef LICM_COMMON_TRACE_EXPORT_H_
#define LICM_COMMON_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/telemetry.h"

namespace licm::telemetry {

/// Renders the current session's events as Chrome trace-event JSON:
/// {"traceEvents":[...],"displayTimeUnit":"ms"}. Timestamps are
/// microseconds relative to the session start; non-finite arg values are
/// dropped (JSON has no representation for them).
std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path`.
Status WriteChromeTrace(const std::string& path);

/// Wall-time aggregation of 'X' spans sharing a name.
struct PhaseSummary {
  std::string name;
  std::string category;
  int64_t count = 0;
  /// Summed span durations. Spans of concurrent strands overlap, so for
  /// parallel phases this is closer to CPU time than to elapsed time.
  double total_ms = 0.0;
};

/// Per-phase totals over spans with ts_ns >= since_ns (0 = whole
/// session), ordered by descending total.
std::vector<PhaseSummary> SummarizeSpans(int64_t since_ns = 0);

/// SummarizeSpans() as a JSON array of {name, category, count, total_ms}.
std::string PhaseSummaryJson(int64_t since_ns = 0);

/// Writes PhaseSummaryJson() to `path`.
Status WritePhaseSummary(const std::string& path, int64_t since_ns = 0);

/// Validates Chrome-trace JSON text: well-formed JSON, a traceEvents
/// array whose members carry name/cat/ph/ts/pid/tid (plus dur >= 0 for
/// 'X'), and monotone span nesting per thread (two spans of one thread
/// either nest or are disjoint). Returns OK or an explanatory error.
Status ValidateChromeTrace(const std::string& json);

/// Reads `path` and validates its contents. On success `*num_events` (if
/// non-null) receives the traceEvents count.
Status ValidateChromeTraceFile(const std::string& path,
                               size_t* num_events = nullptr);

}  // namespace licm::telemetry

#endif  // LICM_COMMON_TRACE_EXPORT_H_
