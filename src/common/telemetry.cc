#include "common/telemetry.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace licm::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// Buffer geometry: chunks are allocated lazily as a thread records, so an
// idle thread costs one small registration and a busy one grows in ~1 MiB
// steps. A thread that exhausts every chunk drops further events (counted)
// instead of reallocating, which keeps the writer wait-free.
constexpr size_t kChunkSize = 8192;
constexpr size_t kMaxChunks = 512;

struct Chunk {
  Event events[kChunkSize];
};

// One per recording thread, owned by the global registry (buffers outlive
// their threads so the exporter can read events of finished workers).
//
// Writer protocol (owner thread only): write the event slot, then
// release-store the new count. Reader protocol (exporter, any thread):
// acquire-load the count, then read slots below it. Chunk pointers are
// release-published the same way. `session` tags the buffer's events;
// a writer observing a newer global session resets its own buffer before
// recording, which is how StartTracing() "clears" without touching other
// threads' memory.
struct ThreadBuffer {
  std::atomic<uint64_t> count{0};
  std::atomic<uint32_t> session{0};
  std::atomic<int64_t> dropped{0};
  std::atomic<Chunk*> chunks[kMaxChunks] = {};
  uint64_t local_count = 0;  // owner-thread cache of `count`
  uint32_t tid = 0;

  ~ThreadBuffer() {
    for (auto& c : chunks) delete c.load(std::memory_order_relaxed);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  // never shrinks
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leak: threads may outlive
  return *registry;                            // static destruction order
}

std::atomic<uint32_t> g_session{0};
std::atomic<int64_t> g_session_start_ns{0};

thread_local ThreadBuffer* tls_buffer = nullptr;

int64_t AnchorNow() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point anchor = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              anchor)
      .count();
}

ThreadBuffer* RegisterThreadBuffer() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<uint32_t>(reg.buffers.size());
  tls_buffer = buffer.get();
  reg.buffers.push_back(std::move(buffer));
  return tls_buffer;
}

}  // namespace

namespace detail {

int64_t NowNs() { return AnchorNow(); }

void Record(const Event& e) {
  if (!Enabled()) return;  // re-check: tracing may have stopped mid-span
  ThreadBuffer* b = tls_buffer;
  if (b == nullptr) b = RegisterThreadBuffer();
  const uint32_t session = g_session.load(std::memory_order_relaxed);
  if (b->session.load(std::memory_order_relaxed) != session) {
    // First record of a new session: retire this buffer's old events.
    b->local_count = 0;
    b->count.store(0, std::memory_order_relaxed);
    b->session.store(session, std::memory_order_release);
  }
  const uint64_t n = b->local_count;
  if (n >= kChunkSize * kMaxChunks) {
    b->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const size_t chunk_index = n / kChunkSize;
  Chunk* chunk = b->chunks[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    b->chunks[chunk_index].store(chunk, std::memory_order_release);
  }
  Event& slot = chunk->events[n % kChunkSize];
  slot = e;
  slot.tid = b->tid;
  b->local_count = n + 1;
  b->count.store(n + 1, std::memory_order_release);
}

}  // namespace detail

int64_t NowNs() { return detail::NowNs(); }

void StartTracing() {
  AnchorNow();  // pin the process anchor before the first event
  g_session.fetch_add(1, std::memory_order_relaxed);
  g_session_start_ns.store(detail::NowNs(), std::memory_order_relaxed);
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void StopTracing() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

int64_t SessionStartNs() {
  return g_session_start_ns.load(std::memory_order_relaxed);
}

std::vector<Event> Snapshot() {
  std::vector<Event> out;
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const uint32_t session = g_session.load(std::memory_order_relaxed);
  for (const auto& b : reg.buffers) {
    if (b->session.load(std::memory_order_acquire) != session) continue;
    const uint64_t n = b->count.load(std::memory_order_acquire);
    for (uint64_t i = 0; i < n; ++i) {
      const Chunk* chunk =
          b->chunks[i / kChunkSize].load(std::memory_order_acquire);
      out.push_back(chunk->events[i % kChunkSize]);
    }
  }
  // Enclosing spans first: earlier start, and at equal start the longer
  // span is the parent.
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    return a.dur_ns > b.dur_ns;
  });
  return out;
}

int64_t DroppedEvents() {
  int64_t total = 0;
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& b : reg.buffers) {
    total += b->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace licm::telemetry
