// Shared pieces of the columnar evaluator that the LICM columnar encode
// reuses: predicate → selection-bitmap compilation and batch dedup
// grouping. The full-query entry points live in engine.h
// (EvaluateColumnar / EvaluateAggregateColumnar).
#ifndef LICM_RELATIONAL_COLUMNAR_ENGINE_H_
#define LICM_RELATIONAL_COLUMNAR_ENGINE_H_

#include <vector>

#include "relational/batch.h"
#include "relational/column.h"
#include "relational/engine.h"

namespace licm::rel {

/// ANDs the bitmap of `column_index op operand` into `dst` (sized for
/// `in.rows`). Numeric predicates compare like Value::Compare (int/double
/// mix compared as doubles); string predicates compile to a per-dictionary-
/// id truth table. Mixed string/non-string predicates LICM_CHECK-fail,
/// matching the row engine's Compare.
Status AndPredicateBits(const BatchView& in, size_t column_index,
                        const Predicate& pred, const StringDictionary& dict,
                        Arena* arena, uint64_t* dst);

/// Bitmap with the first `rows` bits of `view.sel` (or all ones when the
/// view has no selection); tail bits are zero.
uint64_t* CopySelection(const BatchView& view, Arena* arena);

/// Restricts `view`'s selection to the first occurrence of each distinct
/// row (set semantics), preserving row order — the columnar counterpart of
/// Relation::Deduplicate. No-op when all active rows are already distinct.
void DeduplicateBatch(BatchView* view, Arena* arena);

/// Gathers the active rows of `view` into a row Relation, in row order.
Relation BatchToRelation(const BatchView& view, const StringDictionary& dict,
                         Arena* arena);

}  // namespace licm::rel

#endif  // LICM_RELATIONAL_COLUMNAR_ENGINE_H_
