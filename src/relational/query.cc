#include "relational/query.h"

#include <sstream>

namespace licm::rel {

bool CmpApply(CmpOp op, const Value& a, const Value& b) {
  const int c = Compare(a, b);
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

const char* CmpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

namespace {
std::shared_ptr<QueryNode> Make(QueryKind kind) {
  auto n = std::make_shared<QueryNode>();
  n->kind = kind;
  return n;
}
}  // namespace

QueryNodePtr Scan(std::string relation_name) {
  auto n = Make(QueryKind::kScan);
  n->relation_name = std::move(relation_name);
  return n;
}

QueryNodePtr Select(QueryNodePtr child, std::vector<Predicate> predicates) {
  auto n = Make(QueryKind::kSelect);
  n->left = std::move(child);
  n->predicates = std::move(predicates);
  return n;
}

QueryNodePtr Project(QueryNodePtr child, std::vector<std::string> columns) {
  auto n = Make(QueryKind::kProject);
  n->left = std::move(child);
  n->columns = std::move(columns);
  return n;
}

QueryNodePtr Intersect(QueryNodePtr left, QueryNodePtr right) {
  auto n = Make(QueryKind::kIntersect);
  n->left = std::move(left);
  n->right = std::move(right);
  return n;
}

QueryNodePtr Product(QueryNodePtr left, QueryNodePtr right) {
  auto n = Make(QueryKind::kProduct);
  n->left = std::move(left);
  n->right = std::move(right);
  return n;
}

QueryNodePtr Join(QueryNodePtr left, QueryNodePtr right,
                  std::vector<std::pair<std::string, std::string>> on) {
  auto n = Make(QueryKind::kJoin);
  n->left = std::move(left);
  n->right = std::move(right);
  n->join_on = std::move(on);
  return n;
}

QueryNodePtr CountPredicate(QueryNodePtr child, std::string group_column,
                            CmpOp op, int64_t d) {
  auto n = Make(QueryKind::kCountPredicate);
  n->left = std::move(child);
  n->group_column = std::move(group_column);
  n->count_op = op;
  n->count_d = d;
  return n;
}

QueryNodePtr SumPredicate(QueryNodePtr child, std::string group_column,
                          std::string sum_column, CmpOp op, int64_t d) {
  auto n = Make(QueryKind::kSumPredicate);
  n->left = std::move(child);
  n->group_column = std::move(group_column);
  n->sum_column = std::move(sum_column);
  n->count_op = op;
  n->count_d = d;
  return n;
}

QueryNodePtr CountStar(QueryNodePtr child) {
  auto n = Make(QueryKind::kCountStar);
  n->left = std::move(child);
  return n;
}

QueryNodePtr Sum(QueryNodePtr child, std::string column) {
  auto n = Make(QueryKind::kSum);
  n->left = std::move(child);
  n->sum_column = std::move(column);
  return n;
}

QueryNodePtr Min(QueryNodePtr child, std::string column) {
  auto n = Make(QueryKind::kMin);
  n->left = std::move(child);
  n->sum_column = std::move(column);
  return n;
}

QueryNodePtr Max(QueryNodePtr child, std::string column) {
  auto n = Make(QueryKind::kMax);
  n->left = std::move(child);
  n->sum_column = std::move(column);
  return n;
}

bool IsAggregate(const QueryNode& node) {
  switch (node.kind) {
    case QueryKind::kCountStar:
    case QueryKind::kSum:
    case QueryKind::kMin:
    case QueryKind::kMax:
      return true;
    default:
      return false;
  }
}

std::string QueryNode::ToString(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad;
  switch (kind) {
    case QueryKind::kScan:
      os << "Scan(" << relation_name << ")";
      break;
    case QueryKind::kSelect: {
      os << "Select(";
      for (size_t i = 0; i < predicates.size(); ++i) {
        if (i) os << " AND ";
        os << predicates[i].column << " " << CmpName(predicates[i].op) << " "
           << licm::rel::ToString(predicates[i].operand);
      }
      os << ")";
      break;
    }
    case QueryKind::kProject: {
      os << "Project(";
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i) os << ", ";
        os << columns[i];
      }
      os << ")";
      break;
    }
    case QueryKind::kIntersect: os << "Intersect"; break;
    case QueryKind::kProduct: os << "Product"; break;
    case QueryKind::kJoin: {
      os << "Join(";
      for (size_t i = 0; i < join_on.size(); ++i) {
        if (i) os << ", ";
        os << join_on[i].first << "=" << join_on[i].second;
      }
      os << ")";
      break;
    }
    case QueryKind::kCountPredicate:
      os << "CountPredicate(" << group_column << ": COUNT "
         << CmpName(count_op) << " " << count_d << ")";
      break;
    case QueryKind::kSumPredicate:
      os << "SumPredicate(" << group_column << ": SUM(" << sum_column
         << ") " << CmpName(count_op) << " " << count_d << ")";
      break;
    case QueryKind::kCountStar: os << "Count(*)"; break;
    case QueryKind::kSum: os << "Sum(" << sum_column << ")"; break;
    case QueryKind::kMin: os << "Min(" << sum_column << ")"; break;
    case QueryKind::kMax: os << "Max(" << sum_column << ")"; break;
  }
  os << "\n";
  if (left) os << left->ToString(indent + 1);
  if (right) os << right->ToString(indent + 1);
  return os.str();
}

}  // namespace licm::rel
