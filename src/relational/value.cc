#include "relational/value.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <sstream>

namespace licm::rel {

std::string ToString(const Value& v) {
  switch (v.index()) {
    case 0: return std::to_string(std::get<int64_t>(v));
    case 1: {
      std::ostringstream os;
      os << std::get<double>(v);
      return os.str();
    }
    default: return std::get<std::string>(v);
  }
}

const char* TypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

int Compare(const Value& a, const Value& b) {
  const ValueType ta = TypeOf(a), tb = TypeOf(b);
  if (ta == ValueType::kString || tb == ValueType::kString) {
    LICM_CHECK(ta == tb);
    const auto& sa = std::get<std::string>(a);
    const auto& sb = std::get<std::string>(b);
    return sa < sb ? -1 : (sa == sb ? 0 : 1);
  }
  // Numeric comparison across int/double.
  const double da =
      ta == ValueType::kInt ? static_cast<double>(std::get<int64_t>(a))
                            : std::get<double>(a);
  const double db =
      tb == ValueType::kInt ? static_cast<double>(std::get<int64_t>(b))
                            : std::get<double>(b);
  return da < db ? -1 : (da == db ? 0 : 1);
}

size_t ValueHash::operator()(const Value& v) const {
  switch (v.index()) {
    case 0: return std::hash<int64_t>()(std::get<int64_t>(v));
    case 1: return std::hash<double>()(std::get<double>(v));
    default: return std::hash<std::string>()(std::get<std::string>(v));
  }
}

size_t TupleHash::operator()(const Tuple& t) const {
  size_t h = 0x9e3779b97f4a7c15ULL;
  ValueHash vh;
  for (const Value& v : t) {
    h ^= vh(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  index_.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    index_.emplace(columns_[i].name, i);  // keeps the first on duplicates
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  return Status::NotFound("no column named '" + name + "' in " + ToString());
}

bool Schema::Has(const std::string& name) const {
  return index_.contains(name);
}

Status Schema::Check(const Tuple& t) const {
  if (t.size() != columns_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(t.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < t.size(); ++i) {
    if (TypeOf(t[i]) != columns_[i].type) {
      return Status::InvalidArgument(
          "column '" + columns_[i].name + "' expects " +
          TypeName(columns_[i].type) + " got " + TypeName(TypeOf(t[i])));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) s += ", ";
    s += columns_[i].name;
    s += ":";
    s += TypeName(columns_[i].type);
  }
  s += ")";
  return s;
}

Result<Tuple> TupleFromText(const Schema& schema, const std::string& text) {
  std::vector<std::string> cells;
  size_t start = 0;
  while (true) {
    const size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(text.substr(start));
      break;
    }
    cells.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  if (cells.size() != schema.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(cells.size()) + " cells, schema " +
        schema.ToString() + " expects " + std::to_string(schema.size()));
  }
  Tuple t;
  t.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    const std::string& cell = cells[i];
    switch (schema.column(i).type) {
      case ValueType::kInt: {
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(cell.c_str(), &end, 10);
        if (cell.empty() || end != cell.c_str() + cell.size() || errno != 0) {
          return Status::InvalidArgument("column '" + schema.column(i).name +
                                         "': '" + cell + "' is not an int");
        }
        t.emplace_back(static_cast<int64_t>(v));
        break;
      }
      case ValueType::kDouble: {
        errno = 0;
        char* end = nullptr;
        const double v = std::strtod(cell.c_str(), &end);
        if (cell.empty() || end != cell.c_str() + cell.size() || errno != 0) {
          return Status::InvalidArgument("column '" + schema.column(i).name +
                                         "': '" + cell + "' is not a number");
        }
        t.emplace_back(v);
        break;
      }
      case ValueType::kString:
        t.emplace_back(cell);
        break;
    }
  }
  return t;
}

}  // namespace licm::rel
