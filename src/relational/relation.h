// A deterministic (certain) relation: a schema plus a bag of tuples.
//
// This is what each LICM possible world instantiates to, and what the
// Monte-Carlo baseline queries. Operators live in query.h / engine.cc.
#ifndef LICM_RELATIONAL_RELATION_H_
#define LICM_RELATIONAL_RELATION_H_

#include <unordered_set>
#include <vector>

#include "relational/value.h"

namespace licm::rel {

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a tuple after type-checking it against the schema.
  Status Append(Tuple t) {
    LICM_RETURN_NOT_OK(schema_.Check(t));
    rows_.push_back(std::move(t));
    return Status::OK();
  }

  /// Appends without checking (hot paths that construct typed tuples).
  void AppendUnchecked(Tuple t) { rows_.push_back(std::move(t)); }

  /// Pre-sizes the row vector ahead of a known-length append loop.
  void Reserve(size_t rows) { rows_.reserve(rows); }

  /// Removes duplicate tuples (set semantics), preserving first occurrence
  /// order.
  void Deduplicate();

  /// True if the two relations contain the same set of tuples (order
  /// insensitive, duplicates ignored).
  bool SetEquals(const Relation& other) const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace licm::rel

#endif  // LICM_RELATIONAL_RELATION_H_
