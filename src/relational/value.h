// Value, Schema and Tuple: the type layer shared by the deterministic
// relational engine and the LICM possibilistic layer.
//
// LICM (Definition 2) requires attributes over finite domains; we support
// 64-bit integers, doubles and strings, which covers the paper's workloads
// (transaction ids, item names, locations, prices).
#ifndef LICM_RELATIONAL_VALUE_H_
#define LICM_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/status.h"

namespace licm::rel {

using Value = std::variant<int64_t, double, std::string>;

enum class ValueType { kInt, kDouble, kString };

/// Type tag of a Value's active alternative.
inline ValueType TypeOf(const Value& v) {
  switch (v.index()) {
    case 0: return ValueType::kInt;
    case 1: return ValueType::kDouble;
    default: return ValueType::kString;
  }
}

std::string ToString(const Value& v);
const char* TypeName(ValueType t);

/// Three-way comparison; values must have the same type (int/double mix is
/// compared numerically).
int Compare(const Value& a, const Value& b);

struct ValueHash {
  size_t operator()(const Value& v) const;
};

using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const;
};

struct Column {
  std::string name;
  ValueType type;
  bool operator==(const Column&) const = default;
};

/// Ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Index of `name`, or NotFound. O(1): served from a name→index map
  /// built once at construction.
  Result<size_t> IndexOf(const std::string& name) const;
  bool Has(const std::string& name) const;

  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Schemas are equal iff their column lists are (the index map is
  /// derived state).
  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  /// Type-checks a tuple against this schema.
  Status Check(const Tuple& t) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  // First index per name; duplicate names (possible after product/join
  // renaming collisions) resolve to the first match, like the old linear
  // scan did.
  std::unordered_map<std::string, size_t> index_;
};

/// Parses one comma-separated row of `schema` ("1,soda,5") into a typed
/// tuple, cell by cell: kInt/kDouble cells must parse completely (trailing
/// garbage is an error, matching the CSV loader's strictness), kString
/// cells are taken verbatim (no quoting — the wire protocol's mutate verb
/// carries whole rows as one JSON string, so commas inside string cells
/// are not representable; the LICM schemas contain none).
Result<Tuple> TupleFromText(const Schema& schema, const std::string& text);

}  // namespace licm::rel

#endif  // LICM_RELATIONAL_VALUE_H_
