// Columnar batch evaluator. Mirrors the row engine operator by operator —
// same schemas, same row order, same error statuses — but executes over
// typed column spans, selection bitmaps and one per-query arena. The row
// order invariant (the active rows of every batch, in ascending physical
// order, equal the row engine's output rows in order) is what the
// differential tests assert and what keeps the LICM layer's variable
// allocation identical across engines.
#include <algorithm>
#include <memory>
#include <numeric>

#include "common/metrics.h"
#include "relational/columnar_engine.h"

namespace licm::rel {

namespace {

// Deterministic batch-engine totals, flushed once per evaluated query:
// base rows through the operator pipeline and arena bytes consumed.
void RecordBatchMetrics(size_t rows_scanned, size_t arena_bytes) {
  auto& reg = licm::metrics::MetricsRegistry::Default();
  static licm::metrics::Counter* rows = reg.GetCounter(
      "licm_query_rows_scanned_total", {{"engine", "deterministic"}});
  static licm::metrics::Counter* bytes = reg.GetCounter(
      "licm_query_arena_bytes_total", {{"engine", "deterministic"}});
  rows->Increment(static_cast<int64_t>(rows_scanned));
  bytes->Increment(static_cast<int64_t>(arena_bytes));
}

}  // namespace

Status AndPredicateBits(const BatchView& in, size_t column_index,
                        const Predicate& pred, const StringDictionary& dict,
                        Arena* arena, uint64_t* dst) {
  const ValueType col_type = in.schema.column(column_index).type;
  const ValueType operand_type = TypeOf(pred.operand);
  // Mirror Value::Compare: string and non-string never meet.
  LICM_CHECK((col_type == ValueType::kString) ==
             (operand_type == ValueType::kString));
  uint64_t* bits = arena->AllocArray<uint64_t>(BitmapWords(in.rows));
  const ColSpan& col = in.cols[column_index];
  switch (col_type) {
    case ValueType::kInt:
      if (operand_type == ValueType::kInt) {
        CompareBitsI64(col.i64, in.rows, pred.op,
                       std::get<int64_t>(pred.operand), bits);
      } else {
        CompareBitsI64AsF64(col.i64, in.rows, pred.op,
                            std::get<double>(pred.operand), bits);
      }
      break;
    case ValueType::kDouble: {
      const double operand =
          operand_type == ValueType::kInt
              ? static_cast<double>(std::get<int64_t>(pred.operand))
              : std::get<double>(pred.operand);
      CompareBitsF64(col.f64, in.rows, pred.op, operand, bits);
      break;
    }
    case ValueType::kString: {
      // One CmpApply per distinct string, not per row.
      uint8_t* table = arena->AllocArray<uint8_t>(dict.size());
      for (size_t id = 0; id < dict.size(); ++id) {
        table[id] = CmpApply(pred.op, Value(dict.str(static_cast<int64_t>(id))),
                             pred.operand)
                        ? 1
                        : 0;
      }
      CompareBitsTable(col.i64, in.rows, table, bits);
      break;
    }
  }
  BitmapAnd(dst, bits, in.rows);
  return Status::OK();
}

uint64_t* CopySelection(const BatchView& view, Arena* arena) {
  const size_t words = BitmapWords(view.rows);
  uint64_t* out = arena->AllocArray<uint64_t>(words);
  if (view.sel != nullptr) {
    for (size_t w = 0; w < words; ++w) out[w] = view.sel[w];
  } else {
    for (size_t w = 0; w < words; ++w) out[w] = ~uint64_t{0};
    const size_t rem = view.rows & 63;
    if (rem != 0) out[words - 1] = (uint64_t{1} << rem) - 1;
  }
  return out;
}

void DeduplicateBatch(BatchView* view, Arena* arena) {
  std::vector<size_t> all_cols(view->schema.size());
  std::iota(all_cols.begin(), all_cols.end(), size_t{0});
  const Grouping g = GroupBy(*view, all_cols, arena);
  if (g.num_groups == g.n) return;  // already a set
  uint64_t* sel = AllocBitmap(view->rows, arena);
  for (uint32_t gid = 0; gid < g.num_groups; ++gid) {
    BitmapSet(sel, g.rep_row[gid]);
  }
  view->sel = sel;
  view->active = g.num_groups;
}

Relation BatchToRelation(const BatchView& view, const StringDictionary& dict,
                         Arena* arena) {
  Relation out(view.schema);
  out.Reserve(view.active);
  const uint32_t* rows = ActiveRows(view, arena);
  const size_t num_cols = view.schema.size();
  for (size_t i = 0; i < view.active; ++i) {
    const uint32_t row = rows[i];
    Tuple t(num_cols);
    for (size_t c = 0; c < num_cols; ++c) {
      switch (view.schema.column(c).type) {
        case ValueType::kInt: t[c] = view.cols[c].i64[row]; break;
        case ValueType::kDouble: t[c] = view.cols[c].f64[row]; break;
        case ValueType::kString: t[c] = dict.str(view.cols[c].i64[row]); break;
      }
    }
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

namespace {

// Per-evaluation state: the arena owning every transient buffer, the
// string dictionary interning every string seen by the query, and the
// converted base tables (whose vectors back the leaf column spans).
struct Ctx {
  const Database& db;
  Arena arena;
  StringDictionary dict;
  std::vector<std::unique_ptr<ColumnTable>> base_tables;
};

Result<BatchView> EvalNode(const QueryNode& node, Ctx* ctx);

Result<BatchView> EvalScan(const QueryNode& node, Ctx* ctx) {
  LICM_ASSIGN_OR_RETURN(const Relation* r, ctx->db.Get(node.relation_name));
  ctx->base_tables.push_back(
      std::make_unique<ColumnTable>(ColumnTable::FromRows(*r, &ctx->dict)));
  BatchView v = TableView(*ctx->base_tables.back());
  DeduplicateBatch(&v, &ctx->arena);  // scans deduplicate (set semantics)
  return v;
}

Result<BatchView> EvalSelect(const QueryNode& node, Ctx* ctx) {
  LICM_ASSIGN_OR_RETURN(BatchView in, EvalNode(*node.left, ctx));
  uint64_t* sel = CopySelection(in, &ctx->arena);
  for (const Predicate& p : node.predicates) {
    LICM_ASSIGN_OR_RETURN(size_t idx, in.schema.IndexOf(p.column));
    LICM_RETURN_NOT_OK(
        AndPredicateBits(in, idx, p, ctx->dict, &ctx->arena, sel));
  }
  BatchView out = in;
  out.sel = sel;
  out.active = BitmapCount(sel, out.rows);
  return out;
}

Result<BatchView> EvalProject(const QueryNode& node, Ctx* ctx) {
  LICM_ASSIGN_OR_RETURN(BatchView in, EvalNode(*node.left, ctx));
  std::vector<Column> cols(node.columns.size());
  BatchView out;
  out.rows = in.rows;
  out.sel = in.sel;
  out.active = in.active;
  out.cols.reserve(node.columns.size());
  for (size_t i = 0; i < node.columns.size(); ++i) {
    LICM_ASSIGN_OR_RETURN(size_t idx, in.schema.IndexOf(node.columns[i]));
    cols[i] = in.schema.column(idx);
    out.cols.push_back(in.cols[idx]);  // zero-copy: reuse the spans
  }
  out.schema = Schema(std::move(cols));
  DeduplicateBatch(&out, &ctx->arena);
  return out;
}

Result<BatchView> EvalIntersect(const QueryNode& node, Ctx* ctx) {
  LICM_ASSIGN_OR_RETURN(BatchView l, EvalNode(*node.left, ctx));
  LICM_ASSIGN_OR_RETURN(BatchView r, EvalNode(*node.right, ctx));
  if (!(l.schema == r.schema)) {
    return Status::InvalidArgument("intersect schema mismatch: " +
                                   l.schema.ToString() + " vs " +
                                   r.schema.ToString());
  }
  std::vector<size_t> all_cols(l.schema.size());
  std::iota(all_cols.begin(), all_cols.end(), size_t{0});
  const RowHashIndex index(r, all_cols, &ctx->arena);
  uint64_t* sel = AllocBitmap(l.rows, &ctx->arena);
  const uint32_t* lrows = ActiveRows(l, &ctx->arena);
  size_t kept = 0;
  for (size_t i = 0; i < l.active; ++i) {
    if (index.Find(l, all_cols, lrows[i]) != RowHashIndex::kNone) {
      BitmapSet(sel, lrows[i]);
      ++kept;
    }
  }
  BatchView out = l;
  out.sel = sel;
  out.active = kept;
  DeduplicateBatch(&out, &ctx->arena);
  return out;
}

Result<BatchView> EvalProduct(const QueryNode& node, Ctx* ctx) {
  LICM_ASSIGN_OR_RETURN(BatchView l, EvalNode(*node.left, ctx));
  LICM_ASSIGN_OR_RETURN(BatchView r, EvalNode(*node.right, ctx));
  const uint32_t* lrows = ActiveRows(l, &ctx->arena);
  const uint32_t* rrows = ActiveRows(r, &ctx->arena);
  const size_t n = l.active * r.active;
  // Left-major output order: physical row i*|R|+j pairs left row i with
  // right row j, matching the row engine's nested loop.
  uint32_t* lsrc = ctx->arena.AllocArray<uint32_t>(n);
  uint32_t* rsrc = ctx->arena.AllocArray<uint32_t>(n);
  size_t k = 0;
  for (size_t i = 0; i < l.active; ++i) {
    for (size_t j = 0; j < r.active; ++j, ++k) {
      lsrc[k] = lrows[i];
      rsrc[k] = rrows[j];
    }
  }
  BatchView out;
  out.schema = ProductSchema(l.schema, r.schema);
  out.rows = n;
  out.active = n;
  out.cols.reserve(l.schema.size() + r.schema.size());
  for (size_t c = 0; c < l.schema.size(); ++c) {
    out.cols.push_back(GatherColumn(l, c, lsrc, n, &ctx->arena));
  }
  for (size_t c = 0; c < r.schema.size(); ++c) {
    out.cols.push_back(GatherColumn(r, c, rsrc, n, &ctx->arena));
  }
  return out;  // product does not deduplicate (matches the row engine)
}

Result<BatchView> EvalJoin(const QueryNode& node, Ctx* ctx) {
  LICM_ASSIGN_OR_RETURN(BatchView l, EvalNode(*node.left, ctx));
  LICM_ASSIGN_OR_RETURN(BatchView r, EvalNode(*node.right, ctx));
  if (node.join_on.empty()) {
    return Status::InvalidArgument("join requires at least one key pair");
  }
  std::vector<size_t> lkeys, rkeys;
  for (const auto& [ln, rn] : node.join_on) {
    LICM_ASSIGN_OR_RETURN(size_t li, l.schema.IndexOf(ln));
    LICM_ASSIGN_OR_RETURN(size_t ri, r.schema.IndexOf(rn));
    lkeys.push_back(li);
    rkeys.push_back(ri);
  }
  const RowHashIndex index(r, rkeys, &ctx->arena);
  const Grouping& rg = index.grouping();

  // Probe once, remembering each left row's matching right group; runs are
  // ascending right rows, matching the row engine's bucket order.
  const uint32_t* lrows = ActiveRows(l, &ctx->arena);
  uint32_t* match = ctx->arena.AllocArray<uint32_t>(l.active);
  size_t total = 0;
  for (size_t i = 0; i < l.active; ++i) {
    const uint32_t gid = index.Find(l, lkeys, lrows[i]);
    match[i] = gid;
    if (gid != RowHashIndex::kNone) {
      total += rg.run_begin[gid + 1] - rg.run_begin[gid];
    }
  }
  uint32_t* lsrc = ctx->arena.AllocArray<uint32_t>(total);
  uint32_t* rsrc = ctx->arena.AllocArray<uint32_t>(total);
  size_t k = 0;
  for (size_t i = 0; i < l.active; ++i) {
    const uint32_t gid = match[i];
    if (gid == RowHashIndex::kNone) continue;
    for (uint32_t p = rg.run_begin[gid]; p < rg.run_begin[gid + 1]; ++p) {
      lsrc[k] = lrows[i];
      rsrc[k] = rg.run_rows[p];
      ++k;
    }
  }

  // Right key columns are dropped by index, like the row engine.
  std::vector<bool> rdrop(r.schema.size(), false);
  for (const size_t ri : rkeys) rdrop[ri] = true;
  BatchView out;
  out.schema = JoinSchema(l.schema, r.schema, node.join_on);
  out.rows = total;
  out.active = total;
  for (size_t c = 0; c < l.schema.size(); ++c) {
    out.cols.push_back(GatherColumn(l, c, lsrc, total, &ctx->arena));
  }
  for (size_t c = 0; c < r.schema.size(); ++c) {
    if (rdrop[c]) continue;
    out.cols.push_back(GatherColumn(r, c, rsrc, total, &ctx->arena));
  }
  LICM_CHECK(out.cols.size() == out.schema.size());
  DeduplicateBatch(&out, &ctx->arena);
  return out;
}

// Shared grouping body of Count/SumPredicate: dedup, group by the group
// column, emit qualifying group representatives in first-seen order.
Result<BatchView> EvalGroupPredicate(const QueryNode& node, Ctx* ctx) {
  LICM_ASSIGN_OR_RETURN(BatchView in, EvalNode(*node.left, ctx));
  LICM_ASSIGN_OR_RETURN(size_t gidx, in.schema.IndexOf(node.group_column));
  const bool weighted = node.kind == QueryKind::kSumPredicate;
  size_t vidx = 0;
  if (weighted) {
    LICM_ASSIGN_OR_RETURN(vidx, in.schema.IndexOf(node.sum_column));
    if (in.schema.column(vidx).type != ValueType::kInt) {
      return Status::InvalidArgument(
          "SUM predicate needs an int column, got " +
          std::string(TypeName(in.schema.column(vidx).type)));
    }
  }
  DeduplicateBatch(&in, &ctx->arena);
  const Grouping g = GroupBy(in, {gidx}, &ctx->arena);

  // Group totals from contiguous runs: counts are run lengths, sums one
  // pass over the weight column.
  std::vector<int64_t> totals(g.num_groups);
  for (uint32_t gid = 0; gid < g.num_groups; ++gid) {
    if (!weighted) {
      totals[gid] = g.run_begin[gid + 1] - g.run_begin[gid];
      continue;
    }
    int64_t sum = 0;
    for (uint32_t p = g.run_begin[gid]; p < g.run_begin[gid + 1]; ++p) {
      const int64_t w = in.cols[vidx].i64[g.run_rows[p]];
      if (w < 0) {
        return Status::Unimplemented("SUM predicate requires non-negative "
                                     "values");
      }
      sum += w;
    }
    totals[gid] = sum;
  }

  const Column gcol = in.schema.column(gidx);
  BatchView out;
  out.schema = Schema({gcol});
  out.cols.resize(1);
  if (gcol.type == ValueType::kDouble) {
    double* data = ctx->arena.AllocArray<double>(g.num_groups);
    size_t n = 0;
    for (uint32_t gid = 0; gid < g.num_groups; ++gid) {
      if (CmpApply(node.count_op, Value(totals[gid]), Value(node.count_d))) {
        data[n++] = in.cols[gidx].f64[g.rep_row[gid]];
      }
    }
    out.cols[0].f64 = data;
    out.rows = out.active = n;
  } else {
    int64_t* data = ctx->arena.AllocArray<int64_t>(g.num_groups);
    size_t n = 0;
    for (uint32_t gid = 0; gid < g.num_groups; ++gid) {
      if (CmpApply(node.count_op, Value(totals[gid]), Value(node.count_d))) {
        data[n++] = in.cols[gidx].i64[g.rep_row[gid]];
      }
    }
    out.cols[0].i64 = data;
    out.rows = out.active = n;
  }
  return out;
}

Result<BatchView> EvalNode(const QueryNode& node, Ctx* ctx) {
  switch (node.kind) {
    case QueryKind::kScan: return EvalScan(node, ctx);
    case QueryKind::kSelect: return EvalSelect(node, ctx);
    case QueryKind::kProject: return EvalProject(node, ctx);
    case QueryKind::kIntersect: return EvalIntersect(node, ctx);
    case QueryKind::kProduct: return EvalProduct(node, ctx);
    case QueryKind::kJoin: return EvalJoin(node, ctx);
    case QueryKind::kCountPredicate:
    case QueryKind::kSumPredicate:
      return EvalGroupPredicate(node, ctx);
    case QueryKind::kCountStar:
    case QueryKind::kSum:
    case QueryKind::kMin:
    case QueryKind::kMax:
      return Status::InvalidArgument(
          "aggregate root: use EvaluateAggregate()");
  }
  return Status::Internal("unknown query kind");
}

}  // namespace

namespace {

// Flushes the per-query totals when the evaluation scope unwinds, so
// every exit path (including error statuses) is counted once.
struct BatchMetricsScope {
  const Ctx& ctx;
  ~BatchMetricsScope() {
    size_t rows = 0;
    for (const auto& t : ctx.base_tables) rows += t->num_rows();
    RecordBatchMetrics(rows, ctx.arena.bytes_allocated());
  }
};

}  // namespace

Result<Relation> EvaluateColumnar(const QueryNode& node, const Database& db) {
  Ctx ctx{db};
  BatchMetricsScope metrics_scope{ctx};
  LICM_ASSIGN_OR_RETURN(BatchView out, EvalNode(node, &ctx));
  return BatchToRelation(out, ctx.dict, &ctx.arena);
}

Result<double> EvaluateAggregateColumnar(const QueryNode& node,
                                         const Database& db) {
  if (!IsAggregate(node)) {
    return Status::InvalidArgument("EvaluateAggregate requires kCountStar "
                                   "or kSum at the root");
  }
  Ctx ctx{db};
  BatchMetricsScope metrics_scope{ctx};
  LICM_ASSIGN_OR_RETURN(BatchView in, EvalNode(*node.left, &ctx));
  DeduplicateBatch(&in, &ctx.arena);
  if (node.kind == QueryKind::kCountStar) {
    return static_cast<double>(in.active);
  }
  LICM_ASSIGN_OR_RETURN(size_t idx, in.schema.IndexOf(node.sum_column));
  const ValueType t = in.schema.column(idx).type;
  if (t == ValueType::kString) {
    return Status::InvalidArgument("numeric aggregate over string column '" +
                                   node.sum_column + "'");
  }
  const uint32_t* rows = ActiveRows(in, &ctx.arena);
  auto numeric = [&](uint32_t row) {
    return t == ValueType::kInt ? static_cast<double>(in.cols[idx].i64[row])
                                : in.cols[idx].f64[row];
  };
  if (node.kind == QueryKind::kMin || node.kind == QueryKind::kMax) {
    if (in.active == 0) {
      return Status::InvalidArgument("MIN/MAX over an empty relation");
    }
    double best = numeric(rows[0]);
    for (size_t i = 0; i < in.active; ++i) {
      const double v = numeric(rows[i]);
      best = node.kind == QueryKind::kMin ? std::min(best, v)
                                          : std::max(best, v);
    }
    return best;
  }
  double sum = 0.0;
  for (size_t i = 0; i < in.active; ++i) sum += numeric(rows[i]);
  return sum;
}

}  // namespace licm::rel
