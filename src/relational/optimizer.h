// Rule-based logical optimizer for query trees.
//
// The paper argues that because LICM redefines operator *behaviour* rather
// than adding operators, "the same space of query plans exists as in the
// traditional relational case (e.g. selections can be pushed down)". This
// optimizer demonstrates that: it pushes selections through projections,
// intersections, joins/products and COUNT/SUM predicates, and merges
// adjacent selections. Both evaluators accept the rewritten tree, and LICM
// answers are unchanged (operator determinism, Section IV-B).
#ifndef LICM_RELATIONAL_OPTIMIZER_H_
#define LICM_RELATIONAL_OPTIMIZER_H_

#include <unordered_map>

#include "relational/query.h"

namespace licm::rel {

/// Relation name -> schema, needed to resolve predicate columns while
/// pushing through renaming operators.
using Catalog = std::unordered_map<std::string, Schema>;

/// Output schema of `node` against `catalog` (mirrors the engine's rules).
Result<Schema> InferSchema(const QueryNode& node, const Catalog& catalog);

/// Returns an equivalent tree with selections pushed as far down as
/// possible and adjacent selections merged. Nodes that cannot be pushed
/// further are left in place; the result always evaluates identically.
Result<QueryNodePtr> PushDownSelections(const QueryNodePtr& node,
                                        const Catalog& catalog);

}  // namespace licm::rel

#endif  // LICM_RELATIONAL_OPTIMIZER_H_
