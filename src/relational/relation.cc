#include "relational/relation.h"

#include <sstream>

namespace licm::rel {

void Relation::Deduplicate() {
  std::unordered_set<Tuple, TupleHash> seen;
  std::vector<Tuple> out;
  out.reserve(rows_.size());
  for (Tuple& t : rows_) {
    if (seen.insert(t).second) out.push_back(std::move(t));
  }
  rows_ = std::move(out);
}

bool Relation::SetEquals(const Relation& other) const {
  if (!(schema_ == other.schema_)) return false;
  std::unordered_set<Tuple, TupleHash> a(rows_.begin(), rows_.end());
  std::unordered_set<Tuple, TupleHash> b(other.rows_.begin(),
                                         other.rows_.end());
  return a == b;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " [" << rows_.size() << " rows]\n";
  size_t shown = 0;
  for (const Tuple& t : rows_) {
    if (shown++ >= max_rows) {
      os << "  ...\n";
      break;
    }
    os << "  (";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i) os << ", ";
      os << licm::rel::ToString(t[i]);
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace licm::rel
