// Typed column storage and string interning for the columnar engine.
//
// A ColumnTable stores a relation as one contiguous vector per column
// instead of a std::vector<Tuple> of variant Values: int64 and
// dictionary-encoded string columns share an int64_t buffer (string cells
// hold dictionary ids), double columns a double buffer. The row
// Relation/Tuple API stays available through FromRows/ToRows conversion
// shims, so existing callers keep working while the batch operators
// (batch.h, columnar engine) work on raw typed arrays.
#ifndef LICM_RELATIONAL_COLUMN_H_
#define LICM_RELATIONAL_COLUMN_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relational/relation.h"
#include "relational/value.h"

namespace licm::rel {

/// Append-only string interner. Ids are dense in insertion order, so equal
/// strings interned through one dictionary — across every relation touched
/// by a query — always compare equal by id. Ordered string comparisons go
/// through per-predicate lookup tables built over the dictionary (see
/// batch.h), never through the strings on the hot path.
class StringDictionary {
 public:
  /// Id of `s`, interning it on first sight.
  int64_t Intern(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    strings_.emplace_back(s);
    const int64_t id = static_cast<int64_t>(strings_.size()) - 1;
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Id of `s`, or -1 when it was never interned.
  int64_t Find(std::string_view s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? -1 : it->second;
  }

  const std::string& str(int64_t id) const {
    LICM_CHECK(id >= 0 && static_cast<size_t>(id) < strings_.size());
    return strings_[static_cast<size_t>(id)];
  }

  size_t size() const { return strings_.size(); }

 private:
  // Heterogeneous lookup so Intern/Find take string_view without a
  // temporary std::string per probe.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  // std::deque-like stability is not needed: ids_ keys view into
  // strings_ elements, and std::string's heap buffer survives vector
  // reallocation for non-SSO strings — but SSO strings do move. Key by
  // copies instead.
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int64_t, Hash, Eq> ids_;
};

/// One typed column: i64 doubles as the buffer for kInt and kString
/// (dictionary ids), f64 for kDouble. Exactly one buffer is populated.
struct ColumnData {
  std::vector<int64_t> i64;
  std::vector<double> f64;
};

/// A relation stored column-wise. `dict` maps the ids in string columns
/// back to their text; tables that never see a string column may leave it
/// null.
class ColumnTable {
 public:
  ColumnTable() = default;
  explicit ColumnTable(Schema schema)
      : schema_(std::move(schema)), cols_(schema_.size()) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  const ColumnData& col(size_t i) const { return cols_[i]; }
  ColumnData& col(size_t i) { return cols_[i]; }
  size_t num_cols() const { return cols_.size(); }

  void set_num_rows(size_t n) { num_rows_ = n; }
  void Reserve(size_t rows);

  /// Converts a row relation, interning strings through `dict` (required
  /// when the schema has a string column).
  static ColumnTable FromRows(const Relation& rows, StringDictionary* dict);

  /// Same, from a bare tuple vector (the LICM relation layout).
  static ColumnTable FromTuples(const Schema& schema,
                                const std::vector<Tuple>& tuples,
                                StringDictionary* dict);

  /// Converts back to the row representation, in row order.
  Relation ToRows(const StringDictionary* dict) const;

 private:
  Schema schema_;
  std::vector<ColumnData> cols_;
  size_t num_rows_ = 0;
};

}  // namespace licm::rel

#endif  // LICM_RELATIONAL_COLUMN_H_
