#include "relational/engine.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace licm::rel {

Status Database::Add(std::string name, Relation relation) {
  auto [it, inserted] = map_.emplace(std::move(name), std::move(relation));
  if (!inserted) {
    return Status::AlreadyExists("relation '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

Result<const Relation*> Database::Get(const std::string& name) const {
  auto it = map_.find(name);
  if (it == map_.end()) return Status::NotFound("no relation '" + name + "'");
  return &it->second;
}

Schema ProductSchema(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns();
  for (const Column& c : right.columns()) {
    Column nc = c;
    if (left.Has(nc.name)) nc.name = "r_" + nc.name;
    cols.push_back(std::move(nc));
  }
  return Schema(std::move(cols));
}

Schema JoinSchema(const Schema& left, const Schema& right,
                  const std::vector<std::pair<std::string, std::string>>& on) {
  std::vector<Column> cols = left.columns();
  std::unordered_set<std::string> drop;
  for (const auto& [l, r] : on) drop.insert(r);
  for (const Column& c : right.columns()) {
    if (drop.contains(c.name)) continue;
    Column nc = c;
    if (left.Has(nc.name)) nc.name = "r_" + nc.name;
    cols.push_back(std::move(nc));
  }
  return Schema(std::move(cols));
}

namespace {

Result<Relation> EvalSelect(const QueryNode& node, const Database& db) {
  LICM_ASSIGN_OR_RETURN(Relation in, Evaluate(*node.left, db, EvalEngine::kRow));
  // Resolve predicate columns once.
  std::vector<size_t> idx(node.predicates.size());
  for (size_t i = 0; i < node.predicates.size(); ++i) {
    LICM_ASSIGN_OR_RETURN(idx[i],
                          in.schema().IndexOf(node.predicates[i].column));
  }
  Relation out(in.schema());
  out.Reserve(in.size());
  for (const Tuple& t : in.rows()) {
    bool pass = true;
    for (size_t i = 0; i < node.predicates.size() && pass; ++i) {
      pass = CmpApply(node.predicates[i].op, t[idx[i]],
                      node.predicates[i].operand);
    }
    if (pass) out.AppendUnchecked(t);
  }
  return out;
}

Result<Relation> EvalProject(const QueryNode& node, const Database& db) {
  LICM_ASSIGN_OR_RETURN(Relation in, Evaluate(*node.left, db, EvalEngine::kRow));
  std::vector<size_t> idx(node.columns.size());
  std::vector<Column> cols(node.columns.size());
  for (size_t i = 0; i < node.columns.size(); ++i) {
    LICM_ASSIGN_OR_RETURN(idx[i], in.schema().IndexOf(node.columns[i]));
    cols[i] = in.schema().column(idx[i]);
  }
  Relation out(Schema(std::move(cols)));
  out.Reserve(in.size());
  for (const Tuple& t : in.rows()) {
    Tuple nt(idx.size());
    for (size_t i = 0; i < idx.size(); ++i) nt[i] = t[idx[i]];
    out.AppendUnchecked(std::move(nt));
  }
  out.Deduplicate();
  return out;
}

Result<Relation> EvalIntersect(const QueryNode& node, const Database& db) {
  LICM_ASSIGN_OR_RETURN(Relation l, Evaluate(*node.left, db, EvalEngine::kRow));
  LICM_ASSIGN_OR_RETURN(Relation r, Evaluate(*node.right, db, EvalEngine::kRow));
  if (!(l.schema() == r.schema())) {
    return Status::InvalidArgument("intersect schema mismatch: " +
                                   l.schema().ToString() + " vs " +
                                   r.schema().ToString());
  }
  std::unordered_set<Tuple, TupleHash> rset(r.rows().begin(), r.rows().end());
  Relation out(l.schema());
  for (const Tuple& t : l.rows()) {
    if (rset.contains(t)) out.AppendUnchecked(t);
  }
  out.Deduplicate();
  return out;
}

Result<Relation> EvalProduct(const QueryNode& node, const Database& db) {
  LICM_ASSIGN_OR_RETURN(Relation l, Evaluate(*node.left, db, EvalEngine::kRow));
  LICM_ASSIGN_OR_RETURN(Relation r, Evaluate(*node.right, db, EvalEngine::kRow));
  Relation out(ProductSchema(l.schema(), r.schema()));
  for (const Tuple& lt : l.rows()) {
    for (const Tuple& rt : r.rows()) {
      Tuple nt = lt;
      nt.insert(nt.end(), rt.begin(), rt.end());
      out.AppendUnchecked(std::move(nt));
    }
  }
  return out;
}

Result<Relation> EvalJoin(const QueryNode& node, const Database& db) {
  LICM_ASSIGN_OR_RETURN(Relation l, Evaluate(*node.left, db, EvalEngine::kRow));
  LICM_ASSIGN_OR_RETURN(Relation r, Evaluate(*node.right, db, EvalEngine::kRow));
  if (node.join_on.empty()) {
    return Status::InvalidArgument("join requires at least one key pair");
  }
  std::vector<size_t> lkeys, rkeys;
  for (const auto& [ln, rn] : node.join_on) {
    LICM_ASSIGN_OR_RETURN(size_t li, l.schema().IndexOf(ln));
    LICM_ASSIGN_OR_RETURN(size_t ri, r.schema().IndexOf(rn));
    lkeys.push_back(li);
    rkeys.push_back(ri);
  }
  std::unordered_set<size_t> rdrop(rkeys.begin(), rkeys.end());

  // Hash join on the key tuple.
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> index;
  for (const Tuple& rt : r.rows()) {
    Tuple key(rkeys.size());
    for (size_t i = 0; i < rkeys.size(); ++i) key[i] = rt[rkeys[i]];
    index[std::move(key)].push_back(&rt);
  }
  Relation out(JoinSchema(l.schema(), r.schema(), node.join_on));
  for (const Tuple& lt : l.rows()) {
    Tuple key(lkeys.size());
    for (size_t i = 0; i < lkeys.size(); ++i) key[i] = lt[lkeys[i]];
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (const Tuple* rt : it->second) {
      Tuple nt = lt;
      for (size_t c = 0; c < rt->size(); ++c) {
        if (!rdrop.contains(c)) nt.push_back((*rt)[c]);
      }
      out.AppendUnchecked(std::move(nt));
    }
  }
  out.Deduplicate();
  return out;
}

Result<Relation> EvalSumPredicate(const QueryNode& node, const Database& db) {
  LICM_ASSIGN_OR_RETURN(Relation in, Evaluate(*node.left, db, EvalEngine::kRow));
  LICM_ASSIGN_OR_RETURN(size_t gidx, in.schema().IndexOf(node.group_column));
  LICM_ASSIGN_OR_RETURN(size_t vidx, in.schema().IndexOf(node.sum_column));
  if (in.schema().column(vidx).type != ValueType::kInt) {
    return Status::InvalidArgument("SUM predicate needs an int column, got " +
                                   std::string(TypeName(
                                       in.schema().column(vidx).type)));
  }
  in.Deduplicate();
  std::unordered_map<Value, int64_t, ValueHash> sums;
  std::vector<Value> order;
  for (const Tuple& t : in.rows()) {
    const int64_t w = std::get<int64_t>(t[vidx]);
    if (w < 0) {
      return Status::Unimplemented("SUM predicate requires non-negative "
                                   "values");
    }
    auto [it, inserted] = sums.emplace(t[gidx], 0);
    if (inserted) order.push_back(t[gidx]);
    it->second += w;
  }
  Relation out(Schema({in.schema().column(gidx)}));
  for (const Value& g : order) {
    if (CmpApply(node.count_op, Value(sums[g]), Value(node.count_d))) {
      out.AppendUnchecked(Tuple{g});
    }
  }
  return out;
}

Result<Relation> EvalCountPredicate(const QueryNode& node,
                                    const Database& db) {
  LICM_ASSIGN_OR_RETURN(Relation in, Evaluate(*node.left, db, EvalEngine::kRow));
  LICM_ASSIGN_OR_RETURN(size_t gidx, in.schema().IndexOf(node.group_column));
  // Enforce set semantics before counting group members.
  in.Deduplicate();
  std::unordered_map<Value, int64_t, ValueHash> counts;
  std::vector<Value> order;  // first-seen order for stable output
  for (const Tuple& t : in.rows()) {
    auto [it, inserted] = counts.emplace(t[gidx], 0);
    if (inserted) order.push_back(t[gidx]);
    ++it->second;
  }
  Relation out(Schema({in.schema().column(gidx)}));
  for (const Value& g : order) {
    if (CmpApply(node.count_op, Value(counts[g]), Value(node.count_d))) {
      out.AppendUnchecked(Tuple{g});
    }
  }
  return out;
}

}  // namespace

Result<Relation> Evaluate(const QueryNode& node, const Database& db,
                          EvalEngine engine) {
  if (engine == EvalEngine::kColumnar) return EvaluateColumnar(node, db);
  switch (node.kind) {
    case QueryKind::kScan: {
      LICM_ASSIGN_OR_RETURN(const Relation* r, db.Get(node.relation_name));
      Relation copy = *r;
      copy.Deduplicate();
      return copy;
    }
    case QueryKind::kSelect: return EvalSelect(node, db);
    case QueryKind::kProject: return EvalProject(node, db);
    case QueryKind::kIntersect: return EvalIntersect(node, db);
    case QueryKind::kProduct: return EvalProduct(node, db);
    case QueryKind::kJoin: return EvalJoin(node, db);
    case QueryKind::kCountPredicate: return EvalCountPredicate(node, db);
    case QueryKind::kSumPredicate: return EvalSumPredicate(node, db);
    case QueryKind::kCountStar:
    case QueryKind::kSum:
    case QueryKind::kMin:
    case QueryKind::kMax:
      return Status::InvalidArgument(
          "aggregate root: use EvaluateAggregate()");
  }
  return Status::Internal("unknown query kind");
}

Result<double> EvaluateAggregate(const QueryNode& node, const Database& db,
                                 EvalEngine engine) {
  if (engine == EvalEngine::kColumnar) {
    return EvaluateAggregateColumnar(node, db);
  }
  if (!IsAggregate(node)) {
    return Status::InvalidArgument("EvaluateAggregate requires kCountStar "
                                   "or kSum at the root");
  }
  LICM_ASSIGN_OR_RETURN(Relation in, Evaluate(*node.left, db, EvalEngine::kRow));
  in.Deduplicate();
  if (node.kind == QueryKind::kCountStar) {
    return static_cast<double>(in.size());
  }
  LICM_ASSIGN_OR_RETURN(size_t idx, in.schema().IndexOf(node.sum_column));
  const ValueType t = in.schema().column(idx).type;
  if (t == ValueType::kString) {
    return Status::InvalidArgument("numeric aggregate over string column '" +
                                   node.sum_column + "'");
  }
  auto numeric = [&](const Tuple& row) {
    return t == ValueType::kInt
               ? static_cast<double>(std::get<int64_t>(row[idx]))
               : std::get<double>(row[idx]);
  };
  if (node.kind == QueryKind::kMin || node.kind == QueryKind::kMax) {
    if (in.empty()) {
      return Status::InvalidArgument("MIN/MAX over an empty relation");
    }
    double best = numeric(in.rows()[0]);
    for (const Tuple& row : in.rows()) {
      const double v = numeric(row);
      best = node.kind == QueryKind::kMin ? std::min(best, v)
                                          : std::max(best, v);
    }
    return best;
  }
  double sum = 0.0;
  for (const Tuple& row : in.rows()) sum += numeric(row);
  return sum;
}

}  // namespace licm::rel
