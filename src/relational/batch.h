// Zero-copy column batches, selection bitmaps and grouping kernels — the
// execution layer of the columnar engine.
//
// A BatchView is a schema plus one typed pointer per column and an
// optional selection bitmap (one bit per physical row, uint64_t words).
// Operators that only filter (selection, intersection membership, dedup)
// produce a new bitmap over the same column pointers instead of
// materializing an intermediate relation; operators that reshape rows
// (project/join/product/group) materialize gathered columns into the
// per-query Arena. Predicate evaluation is branch-free per 64-row word so
// the compiler can auto-vectorize the compare loops.
//
// Grouping/dedup/join all share one primitive: GroupBy assigns dense group
// ids in first-seen order over the active rows — exactly the first-
// occurrence order the row engine's hash-map-plus-order-vector code used,
// which is what keeps the two engines bit-identical — and exposes each
// group's rows as one contiguous run (counting sort), so downstream
// consumers bulk-emit per group instead of re-probing a hash map per row.
#ifndef LICM_RELATIONAL_BATCH_H_
#define LICM_RELATIONAL_BATCH_H_

#include <cstdint>
#include <vector>

#include "relational/arena.h"
#include "relational/column.h"
#include "relational/query.h"

namespace licm::rel {

/// Borrowed pointer to one column's data; which member is set follows the
/// column's ValueType (i64 for kInt/kString ids, f64 for kDouble).
struct ColSpan {
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
};

ColSpan SpanOf(const ColumnData& col, ValueType type);

/// Number of uint64_t words of a bitmap over `rows` rows.
inline size_t BitmapWords(size_t rows) { return (rows + 63) / 64; }

/// Arena-allocated all-zero bitmap.
uint64_t* AllocBitmap(size_t rows, Arena* arena);

/// Number of set bits in the first `rows` bits.
size_t BitmapCount(const uint64_t* words, size_t rows);

/// dst &= src, word-wise.
void BitmapAnd(uint64_t* dst, const uint64_t* src, size_t rows);

inline bool BitmapTest(const uint64_t* words, size_t row) {
  return (words[row >> 6] >> (row & 63)) & 1;
}
inline void BitmapSet(uint64_t* words, size_t row) {
  words[row >> 6] |= uint64_t{1} << (row & 63);
}

/// A batch of rows: physical columns plus an optional selection. `sel ==
/// nullptr` means every physical row is active. `active` caches the
/// selected row count.
struct BatchView {
  Schema schema;
  size_t rows = 0;
  std::vector<ColSpan> cols;
  const uint64_t* sel = nullptr;
  size_t active = 0;

  bool AllActive() const { return sel == nullptr; }
};

/// Physical indices of the active rows, ascending.
const uint32_t* ActiveRows(const BatchView& view, Arena* arena);

/// Branch-free predicate bitmaps: out[bit i] = (data[i] op operand) for
/// every physical row, one 64-row word at a time.
void CompareBitsI64(const int64_t* data, size_t rows, CmpOp op,
                    int64_t operand, uint64_t* out);
void CompareBitsF64(const double* data, size_t rows, CmpOp op,
                    double operand, uint64_t* out);
/// Int column vs double operand (the row engine compares numerically
/// across int/double): bit i = (double(data[i]) op operand).
void CompareBitsI64AsF64(const int64_t* data, size_t rows, CmpOp op,
                         double operand, uint64_t* out);
/// Dictionary-id column through a precomputed per-id truth table.
void CompareBitsTable(const int64_t* ids, size_t rows, const uint8_t* table,
                      uint64_t* out);

/// Grouping of the active rows of a batch by a set of key columns. Group
/// ids are dense and assigned in first-seen (row) order. Rows of group g
/// are run_rows[run_begin[g] .. run_begin[g+1]), ascending — counting sort
/// is stable, so each run preserves the physical row order.
struct Grouping {
  uint32_t num_groups = 0;
  size_t n = 0;                        // active rows grouped
  const uint32_t* row_index = nullptr; // active rows ascending, size n
  const uint32_t* group_of = nullptr;  // group id per row_index entry
  const uint32_t* rep_row = nullptr;   // first physical row per group
  const uint32_t* run_begin = nullptr; // size num_groups + 1
  const uint32_t* run_rows = nullptr;  // size n, physical row ids
};

/// Groups the active rows of `view` by `key_cols`. Key equality follows
/// the row engine's Value equality: type-strict, doubles by == (so ±0.0
/// merge and NaNs never do).
Grouping GroupBy(const BatchView& view, const std::vector<size_t>& key_cols,
                 Arena* arena);

/// Hash index over the active rows of a build-side batch, keyed by
/// `build_cols`; probe-side rows look up the matching build group. Used
/// for join (runs give the matching right rows, ascending) and intersect
/// (membership).
class RowHashIndex {
 public:
  static constexpr uint32_t kNone = 0xffffffffu;

  RowHashIndex(const BatchView& build, const std::vector<size_t>& build_cols,
               Arena* arena);

  const Grouping& grouping() const { return grouping_; }

  /// Group id matching `probe`'s physical row `row` on `probe_cols`, or
  /// kNone. Key columns compare type-strictly: if any probe column type
  /// differs from its build counterpart, nothing matches (mirroring the
  /// row engine's variant equality).
  uint32_t Find(const BatchView& probe, const std::vector<size_t>& probe_cols,
                uint32_t row) const;

 private:
  const BatchView& build_;
  std::vector<size_t> build_cols_;
  Grouping grouping_;
  // Open-addressing table of group ids, probed by row hash.
  const uint32_t* slots_ = nullptr;
  size_t slot_mask_ = 0;
  const uint64_t* group_hash_ = nullptr;  // hash per group
};

/// 64-bit hash of one row restricted to `key_cols` (normalizing -0.0 so
/// hash is compatible with double ==).
uint64_t HashRow(const BatchView& view, const std::vector<size_t>& key_cols,
                 uint32_t row);

/// Type-strict equality of two rows on parallel column lists.
bool RowsEqual(const BatchView& a, const std::vector<size_t>& a_cols,
               uint32_t a_row, const BatchView& b,
               const std::vector<size_t>& b_cols, uint32_t b_row);

/// All-rows-active view over a column table (the table must outlive it).
BatchView TableView(const ColumnTable& table);

/// Gathers `view`'s column `c` at `rows[0..n)` into a fresh arena array
/// and returns its span (materialization step of product/join/group
/// outputs).
ColSpan GatherColumn(const BatchView& view, size_t c, const uint32_t* rows,
                     size_t n, Arena* arena);

}  // namespace licm::rel

#endif  // LICM_RELATIONAL_BATCH_H_
