// Deterministic evaluation of query trees over certain relations.
//
// This engine plays two roles in the reproduction: (i) it is the
// "traditional DBMS" that the Monte-Carlo baseline runs each sampled
// possible world through (the paper used SQL Server for this), and (ii) it
// is the ground-truth oracle the tests compare the LICM evaluator against
// by enumerating all possible worlds.
//
// All operators use set semantics, per the paper's relational-algebra
// setting: base relations are deduplicated on scan, projection/intersection
// deduplicate their outputs.
#ifndef LICM_RELATIONAL_ENGINE_H_
#define LICM_RELATIONAL_ENGINE_H_

#include <unordered_map>

#include "relational/query.h"
#include "relational/relation.h"

namespace licm::rel {

/// A named collection of certain relations (one possible world).
class Database {
 public:
  Status Add(std::string name, Relation relation);
  Result<const Relation*> Get(const std::string& name) const;
  bool Has(const std::string& name) const { return map_.contains(name); }

 private:
  std::unordered_map<std::string, Relation> map_;
};

/// Which physical evaluator executes the query tree. Both produce
/// bit-identical relations (same rows, same order); kColumnar is the
/// production engine, kRow the reference the differential tests compare
/// against.
enum class EvalEngine { kColumnar, kRow };

/// Evaluates a non-aggregate query tree to a relation.
Result<Relation> Evaluate(const QueryNode& node, const Database& db,
                          EvalEngine engine = EvalEngine::kColumnar);

/// Evaluates a tree rooted at a kCountStar / kSum / kMin / kMax aggregate
/// to a scalar.
Result<double> EvaluateAggregate(const QueryNode& node, const Database& db,
                                 EvalEngine engine = EvalEngine::kColumnar);

/// Columnar entry points (columnar_engine.cc); the wrappers above
/// dispatch here by default.
Result<Relation> EvaluateColumnar(const QueryNode& node, const Database& db);
Result<double> EvaluateAggregateColumnar(const QueryNode& node,
                                         const Database& db);

/// Output schema of Product/Join column naming (exposed for the LICM
/// evaluator, which must produce identical schemas).
Schema ProductSchema(const Schema& left, const Schema& right);
Schema JoinSchema(const Schema& left, const Schema& right,
                  const std::vector<std::pair<std::string, std::string>>& on);

}  // namespace licm::rel

#endif  // LICM_RELATIONAL_ENGINE_H_
