#include "relational/optimizer.h"

#include <algorithm>
#include <unordered_set>

#include "relational/engine.h"

namespace licm::rel {

Result<Schema> InferSchema(const QueryNode& node, const Catalog& catalog) {
  switch (node.kind) {
    case QueryKind::kScan: {
      auto it = catalog.find(node.relation_name);
      if (it == catalog.end()) {
        return Status::NotFound("no schema for relation '" +
                                node.relation_name + "'");
      }
      return it->second;
    }
    case QueryKind::kSelect:
      return InferSchema(*node.left, catalog);
    case QueryKind::kProject: {
      LICM_ASSIGN_OR_RETURN(Schema in, InferSchema(*node.left, catalog));
      std::vector<Column> cols;
      for (const std::string& c : node.columns) {
        LICM_ASSIGN_OR_RETURN(size_t idx, in.IndexOf(c));
        cols.push_back(in.column(idx));
      }
      return Schema(std::move(cols));
    }
    case QueryKind::kIntersect:
      return InferSchema(*node.left, catalog);
    case QueryKind::kProduct: {
      LICM_ASSIGN_OR_RETURN(Schema l, InferSchema(*node.left, catalog));
      LICM_ASSIGN_OR_RETURN(Schema r, InferSchema(*node.right, catalog));
      return ProductSchema(l, r);
    }
    case QueryKind::kJoin: {
      LICM_ASSIGN_OR_RETURN(Schema l, InferSchema(*node.left, catalog));
      LICM_ASSIGN_OR_RETURN(Schema r, InferSchema(*node.right, catalog));
      return JoinSchema(l, r, node.join_on);
    }
    case QueryKind::kCountPredicate:
    case QueryKind::kSumPredicate: {
      LICM_ASSIGN_OR_RETURN(Schema in, InferSchema(*node.left, catalog));
      LICM_ASSIGN_OR_RETURN(size_t idx, in.IndexOf(node.group_column));
      return Schema({in.column(idx)});
    }
    case QueryKind::kCountStar:
    case QueryKind::kSum:
    case QueryKind::kMin:
    case QueryKind::kMax:
      return Status::InvalidArgument("aggregate roots have no schema");
  }
  return Status::Internal("unknown query kind");
}

namespace {

// Rebuilds `node` with new children, copying the operator parameters.
QueryNodePtr WithChildren(const QueryNode& node, QueryNodePtr left,
                          QueryNodePtr right) {
  auto n = std::make_shared<QueryNode>(node);
  n->left = std::move(left);
  n->right = std::move(right);
  return n;
}

// Pushes the conjunction `preds` into `node`, recursing as deep as the
// operators allow, and returns the rewritten subtree. Any predicates that
// cannot be pushed wrap the result in a residual Select.
Result<QueryNodePtr> Push(const QueryNodePtr& node,
                          std::vector<Predicate> preds,
                          const Catalog& catalog);

Result<QueryNodePtr> Residual(QueryNodePtr child,
                              std::vector<Predicate> preds) {
  if (preds.empty()) return child;
  return Select(std::move(child), std::move(preds));
}

Result<QueryNodePtr> Push(const QueryNodePtr& node,
                          std::vector<Predicate> preds,
                          const Catalog& catalog) {
  switch (node->kind) {
    case QueryKind::kSelect: {
      // Merge and continue below.
      std::vector<Predicate> merged = node->predicates;
      merged.insert(merged.end(), preds.begin(), preds.end());
      return Push(node->left, std::move(merged), catalog);
    }
    case QueryKind::kProject: {
      // Predicates referencing projected columns move below (projection
      // keeps column names, so no renaming is needed).
      std::unordered_set<std::string> kept(node->columns.begin(),
                                           node->columns.end());
      std::vector<Predicate> down, stay;
      for (auto& p : preds) {
        (kept.contains(p.column) ? down : stay).push_back(std::move(p));
      }
      LICM_ASSIGN_OR_RETURN(QueryNodePtr child,
                            Push(node->left, std::move(down), catalog));
      return Residual(WithChildren(*node, std::move(child), nullptr),
                      std::move(stay));
    }
    case QueryKind::kIntersect: {
      // A selection distributes over intersection.
      LICM_ASSIGN_OR_RETURN(QueryNodePtr l, Push(node->left, preds, catalog));
      LICM_ASSIGN_OR_RETURN(QueryNodePtr r,
                            Push(node->right, std::move(preds), catalog));
      return WithChildren(*node, std::move(l), std::move(r));
    }
    case QueryKind::kProduct:
    case QueryKind::kJoin: {
      LICM_ASSIGN_OR_RETURN(Schema lschema,
                            InferSchema(*node->left, catalog));
      LICM_ASSIGN_OR_RETURN(Schema rschema,
                            InferSchema(*node->right, catalog));
      // A predicate goes left when the left child produces the column.
      // Right-side columns may have been renamed ("r_" prefix) or, for
      // joins, dropped (right key columns); only untouched names push.
      std::unordered_set<std::string> rdropped;
      if (node->kind == QueryKind::kJoin) {
        for (const auto& [l, r] : node->join_on) rdropped.insert(r);
      }
      std::vector<Predicate> to_left, to_right, stay;
      for (auto& p : preds) {
        if (lschema.Has(p.column)) {
          to_left.push_back(std::move(p));
        } else if (rschema.Has(p.column) && !lschema.Has(p.column) &&
                   !rdropped.contains(p.column)) {
          to_right.push_back(std::move(p));
        } else {
          stay.push_back(std::move(p));
        }
      }
      LICM_ASSIGN_OR_RETURN(QueryNodePtr l,
                            Push(node->left, std::move(to_left), catalog));
      LICM_ASSIGN_OR_RETURN(QueryNodePtr r,
                            Push(node->right, std::move(to_right), catalog));
      return Residual(WithChildren(*node, std::move(l), std::move(r)),
                      std::move(stay));
    }
    case QueryKind::kCountPredicate:
    case QueryKind::kSumPredicate: {
      // Predicates on the group column remove whole groups, so they
      // commute with the grouping.
      std::vector<Predicate> down, stay;
      for (auto& p : preds) {
        (p.column == node->group_column ? down : stay)
            .push_back(std::move(p));
      }
      LICM_ASSIGN_OR_RETURN(QueryNodePtr child,
                            Push(node->left, std::move(down), catalog));
      return Residual(WithChildren(*node, std::move(child), nullptr),
                      std::move(stay));
    }
    case QueryKind::kScan:
      return Residual(node, std::move(preds));
    case QueryKind::kCountStar:
    case QueryKind::kSum:
    case QueryKind::kMin:
    case QueryKind::kMax:
      if (!preds.empty()) {
        return Status::InvalidArgument(
            "selection above an aggregate root is not a relation");
      }
      LICM_ASSIGN_OR_RETURN(QueryNodePtr child,
                            PushDownSelections(node->left, catalog));
      return WithChildren(*node, std::move(child), nullptr);
  }
  return Status::Internal("unknown query kind");
}

}  // namespace

Result<QueryNodePtr> PushDownSelections(const QueryNodePtr& node,
                                        const Catalog& catalog) {
  if (node == nullptr) return Status::InvalidArgument("null query");
  // Non-Select internal nodes still need their descendants optimized.
  switch (node->kind) {
    case QueryKind::kSelect:
      return Push(node->left, node->predicates, catalog);
    case QueryKind::kScan:
      return node;
    case QueryKind::kCountStar:
    case QueryKind::kSum:
    case QueryKind::kMin:
    case QueryKind::kMax:
    case QueryKind::kProject:
    case QueryKind::kCountPredicate:
    case QueryKind::kSumPredicate: {
      LICM_ASSIGN_OR_RETURN(QueryNodePtr child,
                            PushDownSelections(node->left, catalog));
      return WithChildren(*node, std::move(child), nullptr);
    }
    case QueryKind::kIntersect:
    case QueryKind::kProduct:
    case QueryKind::kJoin: {
      LICM_ASSIGN_OR_RETURN(QueryNodePtr l,
                            PushDownSelections(node->left, catalog));
      LICM_ASSIGN_OR_RETURN(QueryNodePtr r,
                            PushDownSelections(node->right, catalog));
      return WithChildren(*node, std::move(l), std::move(r));
    }
  }
  return Status::Internal("unknown query kind");
}

}  // namespace licm::rel
