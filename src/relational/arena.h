// Per-query bump arena for transient columnar buffers.
//
// The columnar batch pipeline allocates every intermediate buffer —
// materialized columns, selection bitmaps, group index scratch, Ext
// arrays — from one Arena owned by the evaluation. Allocation is a
// pointer bump (no per-buffer free; the whole arena is released when the
// query finishes), which removes the per-tuple allocator traffic that
// dominated the row-at-a-time evaluator. Chunks grow geometrically so a
// query that materializes a large join does not pay one malloc per batch.
#ifndef LICM_RELATIONAL_ARENA_H_
#define LICM_RELATIONAL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace licm::rel {

class Arena {
 public:
  explicit Arena(size_t first_chunk_bytes = 1 << 16)
      : next_chunk_bytes_(first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align` (a power
  /// of two, at most kMaxAlign). Valid until the arena is destroyed.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    LICM_CHECK(align != 0 && (align & (align - 1)) == 0 &&
               align <= kMaxAlign);
    size_t offset = (used_ + align - 1) & ~(align - 1);
    if (current_ == nullptr || offset + bytes > capacity_) {
      NewChunk(bytes + align);
      offset = (used_ + align - 1) & ~(align - 1);
    }
    used_ = offset + bytes;
    bytes_allocated_ += bytes;
    return current_ + offset;
  }

  /// Uninitialized array of `n` trivially copyable Ts. Callers initialize
  /// every slot they read back (assignment for implicit-lifetime types,
  /// placement-new otherwise).
  template <typename T>
  T* AllocArray(size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(std::is_trivially_destructible_v<T>);
    if (n == 0) return nullptr;
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Zero-initialized array (used for bitmaps and counters).
  template <typename T>
  T* AllocZeroed(size_t n) {
    T* out = AllocArray<T>(n);
    for (size_t i = 0; i < n; ++i) out[i] = T{};
    return out;
  }

  /// Total payload bytes handed out (excludes alignment padding and chunk
  /// slack); reported by the bench layer as arena pressure.
  size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  static constexpr size_t kMaxAlign = 64;  // cache-line; covers SIMD loads
  static constexpr size_t kMaxChunkBytes = size_t{1} << 26;  // 64 MiB

  void NewChunk(size_t min_bytes) {
    size_t bytes = next_chunk_bytes_;
    while (bytes < min_bytes + kMaxAlign) bytes *= 2;
    // Over-allocate so the chunk base can be aligned to kMaxAlign.
    chunks_.push_back(std::make_unique<char[]>(bytes + kMaxAlign));
    auto addr = reinterpret_cast<uintptr_t>(chunks_.back().get());
    const uintptr_t aligned = (addr + kMaxAlign - 1) & ~(kMaxAlign - 1);
    current_ = reinterpret_cast<char*>(aligned);
    capacity_ = bytes;
    used_ = 0;
    if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ *= 2;
  }

  std::vector<std::unique_ptr<char[]>> chunks_;
  char* current_ = nullptr;
  size_t capacity_ = 0;
  size_t used_ = 0;
  size_t next_chunk_bytes_;
  size_t bytes_allocated_ = 0;
};

}  // namespace licm::rel

#endif  // LICM_RELATIONAL_ARENA_H_
