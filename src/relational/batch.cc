#include "relational/batch.h"

#include <bit>
#include <cstring>

namespace licm::rel {

namespace {

// splitmix64 finalizer: cheap, well-mixed, deterministic across platforms.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Bit pattern of a double compatible with ==: -0.0 folds onto +0.0 so the
// two hash alike (they compare equal); NaNs keep their payload, which is
// irrelevant because NaN == NaN is false and equality always rejects them.
inline uint64_t DoubleBits(double d) {
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

inline uint64_t CellBits(const BatchView& view, size_t col, uint32_t row) {
  return view.schema.column(col).type == ValueType::kDouble
             ? DoubleBits(view.cols[col].f64[row])
             : static_cast<uint64_t>(view.cols[col].i64[row]);
}

template <typename T, typename Op>
void CompareLoop(const T* data, size_t rows, Op op, uint64_t* out) {
  const size_t full = rows / 64;
  for (size_t w = 0; w < full; ++w) {
    const T* p = data + w * 64;
    uint64_t bits = 0;
    for (unsigned b = 0; b < 64; ++b) {
      bits |= static_cast<uint64_t>(op(p[b])) << b;
    }
    out[w] = bits;
  }
  const size_t rem = rows & 63;
  if (rem != 0) {
    const T* p = data + full * 64;
    uint64_t bits = 0;
    for (unsigned b = 0; b < rem; ++b) {
      bits |= static_cast<uint64_t>(op(p[b])) << b;
    }
    out[full] = bits;
  }
}

template <typename T>
void CompareDispatch(const T* data, size_t rows, CmpOp op, T operand,
                     uint64_t* out) {
  switch (op) {
    case CmpOp::kEq:
      CompareLoop(data, rows, [operand](T v) { return v == operand; }, out);
      break;
    case CmpOp::kNe:
      CompareLoop(data, rows, [operand](T v) { return v != operand; }, out);
      break;
    case CmpOp::kLt:
      CompareLoop(data, rows, [operand](T v) { return v < operand; }, out);
      break;
    case CmpOp::kLe:
      CompareLoop(data, rows, [operand](T v) { return v <= operand; }, out);
      break;
    case CmpOp::kGt:
      CompareLoop(data, rows, [operand](T v) { return v > operand; }, out);
      break;
    case CmpOp::kGe:
      CompareLoop(data, rows, [operand](T v) { return v >= operand; }, out);
      break;
  }
}

}  // namespace

BatchView TableView(const ColumnTable& table) {
  BatchView v;
  v.schema = table.schema();
  v.rows = table.num_rows();
  v.active = table.num_rows();
  v.cols.reserve(table.num_cols());
  for (size_t c = 0; c < table.num_cols(); ++c) {
    v.cols.push_back(SpanOf(table.col(c), table.schema().column(c).type));
  }
  return v;
}

ColSpan GatherColumn(const BatchView& view, size_t c, const uint32_t* rows,
                     size_t n, Arena* arena) {
  ColSpan out;
  if (view.schema.column(c).type == ValueType::kDouble) {
    double* data = arena->AllocArray<double>(n);
    const double* src = view.cols[c].f64;
    for (size_t i = 0; i < n; ++i) data[i] = src[rows[i]];
    out.f64 = data;
  } else {
    int64_t* data = arena->AllocArray<int64_t>(n);
    const int64_t* src = view.cols[c].i64;
    for (size_t i = 0; i < n; ++i) data[i] = src[rows[i]];
    out.i64 = data;
  }
  return out;
}

ColSpan SpanOf(const ColumnData& col, ValueType type) {
  ColSpan s;
  if (type == ValueType::kDouble) {
    s.f64 = col.f64.data();
  } else {
    s.i64 = col.i64.data();
  }
  return s;
}

uint64_t* AllocBitmap(size_t rows, Arena* arena) {
  return arena->AllocZeroed<uint64_t>(BitmapWords(rows));
}

size_t BitmapCount(const uint64_t* words, size_t rows) {
  const size_t full = rows / 64;
  size_t n = 0;
  for (size_t w = 0; w < full; ++w) n += std::popcount(words[w]);
  const size_t rem = rows & 63;
  if (rem != 0) {
    n += std::popcount(words[full] & ((uint64_t{1} << rem) - 1));
  }
  return n;
}

void BitmapAnd(uint64_t* dst, const uint64_t* src, size_t rows) {
  const size_t words = BitmapWords(rows);
  for (size_t w = 0; w < words; ++w) dst[w] &= src[w];
}

const uint32_t* ActiveRows(const BatchView& view, Arena* arena) {
  uint32_t* out = arena->AllocArray<uint32_t>(view.active);
  if (view.AllActive()) {
    for (size_t i = 0; i < view.rows; ++i) out[i] = static_cast<uint32_t>(i);
    return out;
  }
  size_t n = 0;
  const size_t words = BitmapWords(view.rows);
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = view.sel[w];
    while (bits != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
      out[n++] = static_cast<uint32_t>(w * 64 + b);
      bits &= bits - 1;
    }
  }
  LICM_CHECK(n == view.active);
  return out;
}

void CompareBitsI64(const int64_t* data, size_t rows, CmpOp op,
                    int64_t operand, uint64_t* out) {
  CompareDispatch(data, rows, op, operand, out);
}

void CompareBitsF64(const double* data, size_t rows, CmpOp op, double operand,
                    uint64_t* out) {
  CompareDispatch(data, rows, op, operand, out);
}

void CompareBitsI64AsF64(const int64_t* data, size_t rows, CmpOp op,
                         double operand, uint64_t* out) {
  switch (op) {
    case CmpOp::kEq:
      CompareLoop(
          data, rows,
          [operand](int64_t v) { return static_cast<double>(v) == operand; },
          out);
      break;
    case CmpOp::kNe:
      CompareLoop(
          data, rows,
          [operand](int64_t v) { return static_cast<double>(v) != operand; },
          out);
      break;
    case CmpOp::kLt:
      CompareLoop(
          data, rows,
          [operand](int64_t v) { return static_cast<double>(v) < operand; },
          out);
      break;
    case CmpOp::kLe:
      CompareLoop(
          data, rows,
          [operand](int64_t v) { return static_cast<double>(v) <= operand; },
          out);
      break;
    case CmpOp::kGt:
      CompareLoop(
          data, rows,
          [operand](int64_t v) { return static_cast<double>(v) > operand; },
          out);
      break;
    case CmpOp::kGe:
      CompareLoop(
          data, rows,
          [operand](int64_t v) { return static_cast<double>(v) >= operand; },
          out);
      break;
  }
}

void CompareBitsTable(const int64_t* ids, size_t rows, const uint8_t* table,
                      uint64_t* out) {
  CompareLoop(
      ids, rows, [table](int64_t id) { return table[id] != 0; }, out);
}

uint64_t HashRow(const BatchView& view, const std::vector<size_t>& key_cols,
                 uint32_t row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const size_t c : key_cols) {
    h ^= Mix64(CellBits(view, c, row)) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

bool RowsEqual(const BatchView& a, const std::vector<size_t>& a_cols,
               uint32_t a_row, const BatchView& b,
               const std::vector<size_t>& b_cols, uint32_t b_row) {
  LICM_CHECK(a_cols.size() == b_cols.size());
  for (size_t i = 0; i < a_cols.size(); ++i) {
    const size_t ac = a_cols[i], bc = b_cols[i];
    const ValueType at = a.schema.column(ac).type;
    // variant equality is type-strict: an int64 never equals a double.
    if (at != b.schema.column(bc).type) return false;
    if (at == ValueType::kDouble) {
      // == semantics: ±0.0 equal, NaN equal to nothing (incl. itself).
      if (!(a.cols[ac].f64[a_row] == b.cols[bc].f64[b_row])) return false;
    } else {
      if (a.cols[ac].i64[a_row] != b.cols[bc].i64[b_row]) return false;
    }
  }
  return true;
}

namespace {

inline size_t TableSizeFor(size_t n) {
  size_t size = 16;
  while (size < n * 2) size *= 2;
  return size;
}

}  // namespace

Grouping GroupBy(const BatchView& view, const std::vector<size_t>& key_cols,
                 Arena* arena) {
  Grouping g;
  g.n = view.active;
  const uint32_t* rows = ActiveRows(view, arena);
  g.row_index = rows;
  uint32_t* group_of = arena->AllocArray<uint32_t>(g.n);
  uint32_t* rep = arena->AllocArray<uint32_t>(g.n);  // capacity: ≤ n groups
  g.group_of = group_of;
  g.rep_row = rep;
  if (g.n == 0) {
    g.run_begin = arena->AllocZeroed<uint32_t>(1);
    return g;
  }

  const size_t table_size = TableSizeFor(g.n);
  const size_t mask = table_size - 1;
  constexpr uint32_t kEmpty = 0xffffffffu;
  uint32_t* slots = arena->AllocArray<uint32_t>(table_size);
  uint64_t* slot_hash = arena->AllocArray<uint64_t>(table_size);
  for (size_t s = 0; s < table_size; ++s) slots[s] = kEmpty;

  uint32_t num_groups = 0;
  for (size_t i = 0; i < g.n; ++i) {
    const uint32_t row = rows[i];
    const uint64_t h = HashRow(view, key_cols, row);
    size_t s = h & mask;
    uint32_t gid = kEmpty;
    while (slots[s] != kEmpty) {
      if (slot_hash[s] == h &&
          RowsEqual(view, key_cols, rep[slots[s]], view, key_cols, row)) {
        gid = slots[s];
        break;
      }
      s = (s + 1) & mask;
    }
    if (gid == kEmpty) {
      gid = num_groups++;
      rep[gid] = row;
      slots[s] = gid;
      slot_hash[s] = h;
    }
    group_of[i] = gid;
  }
  g.num_groups = num_groups;

  // Counting sort into contiguous per-group runs; scanning rows in
  // ascending order keeps each run ascending (stable).
  uint32_t* run_begin = arena->AllocZeroed<uint32_t>(num_groups + 1);
  uint32_t* run_rows = arena->AllocArray<uint32_t>(g.n);
  for (size_t i = 0; i < g.n; ++i) ++run_begin[group_of[i] + 1];
  for (uint32_t k = 0; k < num_groups; ++k) run_begin[k + 1] += run_begin[k];
  uint32_t* cursor = arena->AllocArray<uint32_t>(num_groups);
  for (uint32_t k = 0; k < num_groups; ++k) cursor[k] = run_begin[k];
  for (size_t i = 0; i < g.n; ++i) {
    run_rows[cursor[group_of[i]]++] = rows[i];
  }
  g.run_begin = run_begin;
  g.run_rows = run_rows;
  return g;
}

RowHashIndex::RowHashIndex(const BatchView& build,
                           const std::vector<size_t>& build_cols, Arena* arena)
    : build_(build), build_cols_(build_cols) {
  grouping_ = GroupBy(build, build_cols, arena);
  if (grouping_.num_groups == 0) return;
  const size_t table_size = TableSizeFor(grouping_.num_groups);
  slot_mask_ = table_size - 1;
  uint32_t* slots = arena->AllocArray<uint32_t>(table_size);
  uint64_t* hashes = arena->AllocArray<uint64_t>(grouping_.num_groups);
  for (size_t s = 0; s < table_size; ++s) slots[s] = kNone;
  for (uint32_t gid = 0; gid < grouping_.num_groups; ++gid) {
    const uint64_t h = HashRow(build, build_cols_, grouping_.rep_row[gid]);
    hashes[gid] = h;
    size_t s = h & slot_mask_;
    while (slots[s] != kNone) s = (s + 1) & slot_mask_;
    slots[s] = gid;
  }
  slots_ = slots;
  group_hash_ = hashes;
}

uint32_t RowHashIndex::Find(const BatchView& probe,
                            const std::vector<size_t>& probe_cols,
                            uint32_t row) const {
  if (slots_ == nullptr) return kNone;
  const uint64_t h = HashRow(probe, probe_cols, row);
  size_t s = h & slot_mask_;
  while (slots_[s] != kNone) {
    const uint32_t gid = slots_[s];
    if (group_hash_[gid] == h &&
        RowsEqual(build_, build_cols_, grouping_.rep_row[gid], probe,
                  probe_cols, row)) {
      return gid;
    }
    s = (s + 1) & slot_mask_;
  }
  return kNone;
}

}  // namespace licm::rel
