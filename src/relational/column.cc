#include "relational/column.h"

namespace licm::rel {

void ColumnTable::Reserve(size_t rows) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    if (schema_.column(c).type == ValueType::kDouble) {
      cols_[c].f64.reserve(rows);
    } else {
      cols_[c].i64.reserve(rows);
    }
  }
}

ColumnTable ColumnTable::FromRows(const Relation& rows,
                                  StringDictionary* dict) {
  return FromTuples(rows.schema(), rows.rows(), dict);
}

ColumnTable ColumnTable::FromTuples(const Schema& schema,
                                    const std::vector<Tuple>& tuples,
                                    StringDictionary* dict) {
  ColumnTable out(schema);
  const size_t n = tuples.size();
  out.num_rows_ = n;
  for (size_t c = 0; c < out.cols_.size(); ++c) {
    switch (out.schema_.column(c).type) {
      case ValueType::kInt: {
        auto& v = out.cols_[c].i64;
        v.resize(n);
        for (size_t i = 0; i < n; ++i) {
          v[i] = std::get<int64_t>(tuples[i][c]);
        }
        break;
      }
      case ValueType::kDouble: {
        auto& v = out.cols_[c].f64;
        v.resize(n);
        for (size_t i = 0; i < n; ++i) {
          v[i] = std::get<double>(tuples[i][c]);
        }
        break;
      }
      case ValueType::kString: {
        LICM_CHECK(dict != nullptr);
        auto& v = out.cols_[c].i64;
        v.resize(n);
        for (size_t i = 0; i < n; ++i) {
          v[i] = dict->Intern(std::get<std::string>(tuples[i][c]));
        }
        break;
      }
    }
  }
  return out;
}

Relation ColumnTable::ToRows(const StringDictionary* dict) const {
  Relation out(schema_);
  out.Reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    Tuple t(cols_.size());
    for (size_t c = 0; c < cols_.size(); ++c) {
      switch (schema_.column(c).type) {
        case ValueType::kInt: t[c] = cols_[c].i64[i]; break;
        case ValueType::kDouble: t[c] = cols_[c].f64[i]; break;
        case ValueType::kString:
          LICM_CHECK(dict != nullptr);
          t[c] = dict->str(cols_[c].i64[i]);
          break;
      }
    }
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

}  // namespace licm::rel
