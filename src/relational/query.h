// Logical query trees shared by the deterministic engine and the LICM
// evaluator.
//
// A query is a tree of conjunctive relational operators (the paper's
// Section IV): selection, projection, intersection, Cartesian product,
// equi-join, plus the mid-tree COUNT-predicate operator (Algorithm 4) and
// top-level COUNT / SUM aggregates (Section IV-C/D). Both evaluators walk
// the *same* tree, which is what lets the Monte-Carlo baseline and LICM
// answer literally the same query.
#ifndef LICM_RELATIONAL_QUERY_H_
#define LICM_RELATIONAL_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/value.h"

namespace licm::rel {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Applies `op` to Compare(a, b).
bool CmpApply(CmpOp op, const Value& a, const Value& b);
const char* CmpName(CmpOp op);

/// A single `column op constant` predicate. Selections carry a conjunction
/// of these. Predicates may only reference normal attributes — never the
/// special Ext attribute (enforced by the LICM evaluator).
struct Predicate {
  std::string column;
  CmpOp op;
  Value operand;
};

enum class QueryKind {
  kScan,            // named base relation
  kSelect,          // conjunctive predicates over child
  kProject,         // set-semantics projection to named columns
  kIntersect,       // set intersection (schemas must match)
  kProduct,         // Cartesian product (clashing right columns renamed)
  kJoin,            // equi-join on pairs of column names
  kCountPredicate,  // groups of `group_column` with COUNT op d (Algorithm 4)
  kSumPredicate,    // groups with SUM(sum_column) op d (weighted Alg. 4)
  kCountStar,       // top-level COUNT(*) aggregate
  kSum,             // top-level SUM(column) aggregate
  kMin,             // top-level MIN(column) aggregate
  kMax,             // top-level MAX(column) aggregate
};

struct QueryNode;
using QueryNodePtr = std::shared_ptr<const QueryNode>;

/// Immutable query-tree node; build with the factory functions below.
struct QueryNode {
  QueryKind kind;
  QueryNodePtr left, right;

  std::string relation_name;              // kScan
  std::vector<Predicate> predicates;      // kSelect
  std::vector<std::string> columns;       // kProject
  std::vector<std::pair<std::string, std::string>> join_on;  // kJoin
  std::string group_column;               // kCountPredicate / kSumPredicate
  CmpOp count_op = CmpOp::kGe;            // kCountPredicate / kSumPredicate
  int64_t count_d = 0;                    // kCountPredicate / kSumPredicate
  std::string sum_column;                 // kSum / kMin / kMax / kSumPredicate

  std::string ToString(int indent = 0) const;
};

QueryNodePtr Scan(std::string relation_name);
QueryNodePtr Select(QueryNodePtr child, std::vector<Predicate> predicates);
QueryNodePtr Project(QueryNodePtr child, std::vector<std::string> columns);
QueryNodePtr Intersect(QueryNodePtr left, QueryNodePtr right);
QueryNodePtr Product(QueryNodePtr left, QueryNodePtr right);
QueryNodePtr Join(QueryNodePtr left, QueryNodePtr right,
                  std::vector<std::pair<std::string, std::string>> on);
/// Keeps one row per distinct `group_column` value whose group size
/// satisfies `COUNT op d`. Output schema: (group_column).
QueryNodePtr CountPredicate(QueryNodePtr child, std::string group_column,
                            CmpOp op, int64_t d);
/// Keeps one row per distinct `group_column` value whose group satisfies
/// `SUM(sum_column) op d`; sum_column must hold non-negative integers.
QueryNodePtr SumPredicate(QueryNodePtr child, std::string group_column,
                          std::string sum_column, CmpOp op, int64_t d);
QueryNodePtr CountStar(QueryNodePtr child);
QueryNodePtr Sum(QueryNodePtr child, std::string column);
QueryNodePtr Min(QueryNodePtr child, std::string column);
QueryNodePtr Max(QueryNodePtr child, std::string column);

/// True for aggregate roots (kCountStar/kSum/kMin/kMax) producing scalars.
bool IsAggregate(const QueryNode& node);

}  // namespace licm::rel

#endif  // LICM_RELATIONAL_QUERY_H_
