// The paper's Section-VI extension: probabilistic priors over LICM.
//
// Possibilistic bounds tell the analyst the best and worst case; when the
// analyst additionally believes each possibility has an (independent)
// probability, LICM answers with an expected value and the full
// distribution — while the possibilistic bounds remain available by just
// dropping the priors.
//
// Build & run:  ./build/examples/probabilistic_priors
#include <cstdio>

#include "licm/evaluator.h"
#include "licm/probabilistic.h"

using namespace licm;

int main() {
  // Five integrated address records per customer, 1-2 of which are
  // correct (Example 1), for a handful of customers.
  LicmDatabase db;
  LicmRelation records(rel::Schema(
      {{"customer", rel::ValueType::kInt}, {"region", rel::ValueType::kInt}}));
  for (int64_t cust = 0; cust < 4; ++cust) {
    std::vector<BVar> candidates;
    for (int64_t r = 0; r < 4; ++r) {
      BVar b = db.pool().New();
      candidates.push_back(b);
      records.AppendUnchecked({cust, (cust + r) % 6}, Ext::Maybe(b));
    }
    db.constraints().AddCardinality(candidates, 1, 2);
  }
  LICM_CHECK_OK(db.AddRelation("customer_region", std::move(records)));

  auto query = rel::CountStar(rel::Scan("customer_region"));

  // 1. Possibilistic: exact bounds over all worlds.
  auto bounds = AnswerAggregate(*query, db);
  LICM_CHECK_OK(bounds.status());
  std::printf("possibilistic bounds on COUNT(*): [%.0f, %.0f]\n",
              bounds->bounds.min.value, bounds->bounds.max.value);

  // 2. Probabilistic: each candidate record deemed correct with its own
  // prior; source A (first candidate) is trusted more.
  Priors priors;
  priors.p.assign(db.pool().size(), 0.3);
  for (size_t v = 0; v < priors.p.size(); v += 4) priors.p[v] = 0.8;
  auto prob = ExpectedAggregate(*query, db, priors);
  LICM_CHECK_OK(prob.status());
  std::printf("\nwith priors (trusted source at 0.8, others 0.3):\n");
  std::printf("  E[COUNT] = %.3f  (variance %.3f, %s)\n", prob->expected,
              prob->variance, prob->exact ? "exact" : "sampled");
  std::printf("  distribution:\n");
  for (const auto& [value, p] : prob->distribution) {
    std::printf("    P[COUNT = %2.0f] = %.4f\n", value, p);
  }

  // 3. Uniform priors for comparison — the "all worlds equally likely"
  // assumption the paper warns gives false semantics if presented as the
  // only answer; here it is explicit and sits beside the exact bounds.
  auto uniform =
      ExpectedAggregate(*query, db, Priors::Uniform(db.pool().size()));
  LICM_CHECK_OK(uniform.status());
  std::printf("\nuniform priors: E[COUNT] = %.3f\n", uniform->expected);
  std::printf("(both expectations lie inside the possibilistic bounds)\n");
  return 0;
}
