// Full pipeline (the paper's Section V, end to end at example scale):
// generate BMS-POS-like transactions, k-anonymize them, encode the
// anonymized output in LICM, then answer Query 1 both ways — LICM exact
// bounds vs naive Monte-Carlo sampling — and compare.
//
// Build & run:  ./build/examples/anonymize_and_query [num_transactions] [k]
#include <cstdio>
#include <cstdlib>

#include "anonymize/licm_encode.h"
#include "licm/evaluator.h"
#include "relational/engine.h"
#include "sampler/monte_carlo.h"

using namespace licm;
using rel::CmpOp;
using rel::Value;

int main(int argc, char** argv) {
  uint32_t num_transactions = 1500, k = 4;
  if (argc > 1) num_transactions = std::atoi(argv[1]);
  if (argc > 2) k = std::atoi(argv[2]);

  // 1. Synthetic retail transactions (see src/data).
  data::GeneratorConfig gen;
  gen.num_transactions = num_transactions;
  gen.num_items = 150;
  auto dataset = data::GenerateTransactions(gen);
  auto stats = dataset.ComputeStats();
  std::printf("dataset: %zu transactions, avg size %.1f, %u distinct items\n",
              stats.num_transactions, stats.avg_size, stats.distinct_items);

  // 2. k-anonymize with local generalization over a fanout-4 hierarchy.
  auto hierarchy = anonymize::Hierarchy::BuildUniform(dataset.num_items, 2);
  auto anon = anonymize::KAnonymize(dataset, hierarchy, {k});
  LICM_CHECK_OK(anon.status());
  auto astats = anon->ComputeStats(hierarchy);
  std::printf("k-anonymity (k=%u): %zu exact items, %zu generalized, "
              "expansion +%zu possible tuples\n",
              k, astats.exact_items, astats.generalized_nodes,
              astats.expansion);

  // 3. Encode the anonymized output as an LICM database.
  auto enc = anonymize::EncodeGeneralized(*anon, hierarchy, dataset);
  LICM_CHECK_OK(enc.status());
  std::printf("LICM: %u variables, %zu constraints\n",
              enc->db.pool().size(), enc->db.constraints().size());

  // 4. Query 1: count transactions at loc < 5 with >= 1 item of price < 10.
  auto query = rel::CountStar(rel::CountPredicate(
      rel::Select(rel::Scan("trans_item"),
                  {{"loc", CmpOp::kLt, Value(int64_t{5})},
                   {"price", CmpOp::kLt, Value(int64_t{10})}}),
      "tid", CmpOp::kGe, 1));

  auto licm_answer = AnswerAggregate(*query, enc->db);
  LICM_CHECK_OK(licm_answer.status());

  sampler::MonteCarloOptions mco;  // 20 worlds, like the paper
  auto mc = sampler::MonteCarloBounds(enc->db, enc->structure, *query, mco);
  LICM_CHECK_OK(mc.status());

  // Ground truth: the original (pre-anonymization) answer.
  rel::Database original;
  LICM_CHECK_OK(original.Add("trans_item", dataset.ToTransItem()));
  auto truth = rel::EvaluateAggregate(*query, original);
  LICM_CHECK_OK(truth.status());

  std::printf("\nQuery 1 answers:\n");
  std::printf("  original data (hidden from analyst): %.0f\n", *truth);
  std::printf("  LICM exact bounds:                   [%.0f, %.0f]\n",
              licm_answer->bounds.min.value, licm_answer->bounds.max.value);
  std::printf("  Monte-Carlo (20 worlds) range:       [%.0f, %.0f]\n",
              mc->min, mc->max);
  std::printf("\nThe MC range sits strictly inside the true range: "
              "sampling misses the extremes the analyst asked about.\n");
  return 0;
}
