// Example 1 from the paper: data cleaning / integration.
//
// For each customer, data integration produced several candidate address
// records from different sources; domain knowledge says at least one and
// at most two of them are correct (home + office). The advertising team
// asks: "At most how many regions have more than `threshold` of our
// customers?" — an upper-bound aggregate over all possible worlds.
//
// Build & run:  ./build/examples/data_cleaning
#include <cstdio>

#include "common/rng.h"
#include "licm/evaluator.h"

using namespace licm;

int main() {
  constexpr int kCustomers = 300;
  constexpr int kRegions = 12;
  constexpr int kCandidatesPerCustomer = 5;
  constexpr int64_t kThreshold = 40;
  Rng rng(2024);

  // customer_region(customer, region): five candidate records per
  // customer, of which between 1 and 2 are correct.
  LicmDatabase db;
  LicmRelation records(rel::Schema(
      {{"customer", rel::ValueType::kInt}, {"region", rel::ValueType::kInt}}));
  for (int64_t cust = 0; cust < kCustomers; ++cust) {
    std::vector<BVar> candidates;
    // Distinct candidate regions for this customer.
    std::vector<uint32_t> regions = rng.Permutation(kRegions);
    for (int i = 0; i < kCandidatesPerCustomer; ++i) {
      BVar b = db.pool().New();
      candidates.push_back(b);
      records.AppendUnchecked({cust, static_cast<int64_t>(regions[i])},
                              Ext::Maybe(b));
    }
    // "at least one and at most two of the five records are correct".
    db.constraints().AddCardinality(candidates, 1, 2);
  }
  LICM_CHECK_OK(db.AddRelation("customer_region", std::move(records)));

  std::printf("customers: %d, candidate records: %d, regions: %d\n",
              kCustomers, kCustomers * kCandidatesPerCustomer, kRegions);

  // Query tree: regions with COUNT(customers) > threshold, then COUNT(*).
  auto query = rel::CountStar(rel::CountPredicate(
      rel::Scan("customer_region"), "region", rel::CmpOp::kGt, kThreshold));

  auto answer = AnswerAggregate(*query, db);
  LICM_CHECK_OK(answer.status());
  std::printf(
      "\n'How many regions have more than %lld customers?'\n"
      "  at least: %.0f\n  at most:  %.0f   <- Example 1's question\n",
      static_cast<long long>(kThreshold), answer->bounds.min.value,
      answer->bounds.max.value);
  std::printf("  (exact: %s/%s; %zu variables, %zu constraints after "
              "pruning)\n",
              answer->bounds.min.exact ? "yes" : "no",
              answer->bounds.max.exact ? "yes" : "no",
              answer->bounds.prune_stats.vars_after,
              answer->bounds.prune_stats.constraints_after);

  // Contrast with the naive "pick one world" reading of the data: evaluate
  // on the world that keeps each customer's first candidate only.
  std::vector<uint8_t> one_world(db.pool().size(), 0);
  for (uint32_t v = 0; v < db.pool().size(); v += kCandidatesPerCustomer) {
    one_world[v] = 1;
  }
  LICM_CHECK(db.constraints().Satisfied(one_world));
  auto world = db.Instantiate(one_world);
  auto naive = rel::EvaluateAggregate(*query, world);
  LICM_CHECK_OK(naive.status());
  std::printf(
      "\nA single arbitrarily-chosen world answers %.0f — planning the\n"
      "campaign on it would ignore the worst case of %.0f regions.\n",
      *naive, answer->bounds.max.value);
  return 0;
}
