// Example 2 from the paper: permuted sensitive attributes.
//
// A hospital publishes patient demographics exactly, but permutes the
// sensitive disease attribute within groups: the researcher knows each
// group of patients maps one-to-one onto a group of diseases, not who has
// what. Query: "At least how many male patients do NOT have cancer?" —
// a lower-bound aggregate (Example 2 in the paper).
//
// Build & run:  ./build/examples/permutation_privacy
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "licm/evaluator.h"

using namespace licm;

int main() {
  // Patients with public sex attribute; diseases permuted within groups
  // of 3 (the paper's {Alice, Bob, Carol} <-> {flu, cancer, heart disease}
  // example, scaled up).
  constexpr int kGroups = 40;
  constexpr int kGroupSize = 3;
  const char* diseases[] = {"flu", "cancer", "heart_disease"};
  Rng rng(7);

  LicmDatabase db;
  LicmRelation rel(rel::Schema({{"patient", rel::ValueType::kInt},
                                {"sex", rel::ValueType::kString},
                                {"disease", rel::ValueType::kString}}));
  int64_t patient_id = 0;
  for (int g = 0; g < kGroups; ++g) {
    // Each group of 3 patients holds one case of each disease.
    std::vector<std::string> sexes;
    for (int i = 0; i < kGroupSize; ++i) {
      sexes.push_back(rng.Bernoulli(0.5) ? "male" : "female");
    }
    BVar b[kGroupSize][kGroupSize];
    for (int i = 0; i < kGroupSize; ++i) {
      for (int j = 0; j < kGroupSize; ++j) {
        b[i][j] = db.pool().New();
        rel.AppendUnchecked({patient_id + i, sexes[static_cast<size_t>(i)],
                             std::string(diseases[j])},
                            Ext::Maybe(b[i][j]));
      }
    }
    // Bijection: every patient has exactly one disease, every disease
    // exactly one patient (Example 3's permutation constraints).
    for (int i = 0; i < kGroupSize; ++i) {
      std::vector<BVar> row, col;
      for (int j = 0; j < kGroupSize; ++j) {
        row.push_back(b[i][j]);
        col.push_back(b[j][i]);
      }
      db.constraints().AddCardinality(row, 1, 1);
      db.constraints().AddCardinality(col, 1, 1);
    }
    patient_id += kGroupSize;
  }
  LICM_CHECK_OK(db.AddRelation("patients", std::move(rel)));
  std::printf("patients: %lld in %d permutation groups of %d\n",
              static_cast<long long>(patient_id), kGroups, kGroupSize);

  // "male patients who do not have cancer".
  auto query = rel::CountStar(rel::Select(
      rel::Scan("patients"),
      {{"sex", rel::CmpOp::kEq, rel::Value(std::string("male"))},
       {"disease", rel::CmpOp::kNe, rel::Value(std::string("cancer"))}}));

  auto answer = AnswerAggregate(*query, db);
  LICM_CHECK_OK(answer.status());
  std::printf(
      "\n'How many male patients do not have cancer?'\n"
      "  at least: %.0f   <- Example 2's question\n  at most:  %.0f\n",
      answer->bounds.min.value, answer->bounds.max.value);
  std::printf(
      "  (exact: %s/%s; solver explored %lld nodes, %lld/%lld cache "
      "hits/misses)\n",
      answer->bounds.min.exact ? "yes" : "no",
      answer->bounds.max.exact ? "yes" : "no",
      static_cast<long long>(answer->bounds.stats.nodes),
      static_cast<long long>(answer->bounds.stats.cache_hits),
      static_cast<long long>(answer->bounds.stats.cache_misses));

  // Sanity: the bounds respect the arithmetic of the groups — each group
  // contributes (#males - [group has a male with cancer?]) in any world.
  return 0;
}
