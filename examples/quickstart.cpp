// Quickstart: the paper's running example (Figure 2).
//
// Transaction T1 = {Alcohol, Shampoo}, where "Alcohol" is a generalized
// item that could be any non-empty subset of {Beer, Wine, Liquor}. We
// build the LICM encoding of Figure 2(c), print it, enumerate its possible
// worlds, and answer an aggregate query with exact bounds.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "licm/evaluator.h"
#include "licm/worlds.h"

using namespace licm;

int main() {
  // --- Build the LICM database of Figure 2(c). ---------------------------
  LicmDatabase db;
  LicmRelation trans_item(rel::Schema(
      {{"tid", rel::ValueType::kInt}, {"item", rel::ValueType::kString}}));

  // "Alcohol" in T1: maybe-tuples for each covered leaf...
  std::vector<BVar> alcohol;
  for (const char* item : {"beer", "wine", "liquor"}) {
    BVar b = db.pool().New();
    alcohol.push_back(b);
    trans_item.AppendUnchecked({int64_t{1}, std::string(item)},
                               Ext::Maybe(b));
  }
  // ...with the cardinality constraint b1 + b2 + b3 >= 1.
  db.constraints().AddCardinality(alcohol, 1, 3);
  // "Shampoo" in T1 is certain: Ext = 1.
  trans_item.AppendUnchecked({int64_t{1}, std::string("shampoo")},
                             Ext::Certain());
  LICM_CHECK_OK(db.AddRelation("trans_item", std::move(trans_item)));

  std::printf("LICM relation (Figure 2(c)):\n%s",
              db.GetRelation("trans_item").value()->ToString().c_str());
  std::printf("Constraints:\n");
  for (const auto& c : db.constraints().constraints()) {
    std::printf("  %s\n", c.ToString().c_str());
  }

  // --- Enumerate the possible worlds (only viable for toy data!). --------
  auto worlds = EnumerateWorlds(*db.GetRelation("trans_item").value(),
                                db.constraints(), db.pool().size());
  LICM_CHECK_OK(worlds.status());
  std::printf("\n%zu possible worlds (non-empty subsets of the alcohol "
              "expansion, each plus shampoo)\n",
              worlds->size());

  // --- Answer "how many items did T1 buy?" with exact bounds. ------------
  auto query = rel::CountStar(rel::Scan("trans_item"));
  auto answer = AnswerAggregate(*query, db);
  LICM_CHECK_OK(answer.status());
  std::printf("\nCOUNT(*) over trans_item:\n");
  std::printf("  lower bound: %.0f (exact: %s)\n", answer->bounds.min.value,
              answer->bounds.min.exact ? "yes" : "no");
  std::printf("  upper bound: %.0f (exact: %s)\n", answer->bounds.max.value,
              answer->bounds.max.exact ? "yes" : "no");

  // The solver also returns the extreme world achieving each bound.
  std::vector<uint8_t> assignment(db.pool().size(), 0);
  for (const auto& [var, value] : answer->bounds.max.world) {
    assignment[var] = value;
  }
  std::printf("\nA world achieving the upper bound:\n%s",
              db.GetRelation("trans_item")
                  .value()
                  ->Instantiate(assignment)
                  .ToString()
                  .c_str());
  return 0;
}
