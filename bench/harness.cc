#include "harness.h"

#include <functional>

#include "common/stopwatch.h"
#include "relational/engine.h"

namespace licm::bench {

using rel::CmpOp;
using rel::QueryNodePtr;
using rel::Value;

const char* SchemeName(Scheme s) {
  switch (s) {
    case Scheme::kKm: return "km-anonymity";
    case Scheme::kKAnon: return "k-anonymity";
    case Scheme::kBipartite: return "bipartite";
    case Scheme::kSuppression: return "suppression";
  }
  return "?";
}

namespace {

// Query builders over an arbitrary trans_item-shaped subtree provider.
// `base(txn_preds, item_preds)` must return the (tid, loc, item, price)
// view with the given predicates applied.
using BaseFn = std::function<QueryNodePtr(std::vector<rel::Predicate>,
                                          std::vector<rel::Predicate>)>;

QueryNodePtr BuildQuery(int qnum, const QueryParams& p, const BaseFn& base) {
  switch (qnum) {
    case 1: {
      // COUNT of Pa-transactions containing >= 1 Pb-item.
      auto src = base({{"loc", CmpOp::kLt, Value(p.q1_pa_max_loc)}},
                      {{"price", CmpOp::kLt, Value(p.q1_pb_max_price)}});
      return rel::CountStar(
          rel::CountPredicate(src, "tid", CmpOp::kGe, 1));
    }
    case 2: {
      // COUNT of Pa-transactions with >= X Pb-items AND >= Y Pc-items.
      auto pb = base({{"loc", CmpOp::kLt, Value(p.q2_pa_max_loc)}},
                     {{"price", CmpOp::kLt, Value(p.q2_pb_max_price)}});
      auto pc = base({{"loc", CmpOp::kLt, Value(p.q2_pa_max_loc)}},
                     {{"price", CmpOp::kGe, Value(p.q2_pc_min_price)}});
      return rel::CountStar(rel::Intersect(
          rel::CountPredicate(pb, "tid", CmpOp::kGe, p.q2_x),
          rel::CountPredicate(pc, "tid", CmpOp::kGe, p.q2_y)));
    }
    case 3: {
      // COUNT of Pa-transactions containing >= 1 item that appears in
      // >= X Pb-transactions.
      auto pb_side = base({{"loc", CmpOp::kLt, Value(p.q3_pb_max_loc)}}, {});
      auto popular = rel::CountPredicate(
          rel::Project(pb_side, {"item", "tid"}), "item", CmpOp::kGe,
          p.q3_x);
      auto pa_side = base({{"loc", CmpOp::kLt, Value(p.q3_pa_max_loc)}}, {});
      auto joined = rel::Join(pa_side, popular, {{"item", "item"}});
      return rel::CountStar(rel::Project(joined, {"tid"}));
    }
    default:
      LICM_CHECK(false);
      return nullptr;
  }
}

}  // namespace

QueryNodePtr BuildFlatQuery(int qnum, const QueryParams& p) {
  BaseFn base = [](std::vector<rel::Predicate> txn_preds,
                   std::vector<rel::Predicate> item_preds) -> QueryNodePtr {
    QueryNodePtr node = rel::Scan("trans_item");
    std::vector<rel::Predicate> all = std::move(txn_preds);
    for (auto& pr : item_preds) all.push_back(std::move(pr));
    if (!all.empty()) node = rel::Select(node, std::move(all));
    return node;
  };
  return BuildQuery(qnum, p, base);
}

QueryNodePtr BuildBipartiteQuery(int qnum, const QueryParams& p) {
  BaseFn base = [](std::vector<rel::Predicate> txn_preds,
                   std::vector<rel::Predicate> item_preds) -> QueryNodePtr {
    return anonymize::BipartiteTransItemView(std::move(txn_preds),
                                             std::move(item_preds));
  };
  return BuildQuery(qnum, p, base);
}

Result<CellResult> RunCell(Scheme scheme, int qnum, uint32_t k,
                           const BenchConfig& config,
                           const QueryParams& params) {
  data::GeneratorConfig gen;
  gen.num_transactions = scheme == Scheme::kBipartite
                             ? config.bipartite_transactions
                             : config.num_transactions;
  gen.num_items = config.num_items;
  gen.seed = config.seed;
  data::TransactionDataset dataset = data::GenerateTransactions(gen);

  CellResult cell;
  StopWatch model_watch;
  anonymize::EncodedDb enc;
  if (scheme == Scheme::kBipartite) {
    LICM_ASSIGN_OR_RETURN(
        auto groups, anonymize::SafeGrouping(dataset, {k, 2, config.seed}));
    LICM_ASSIGN_OR_RETURN(enc, anonymize::EncodeBipartite(groups, dataset));
  } else if (scheme == Scheme::kSuppression) {
    LICM_ASSIGN_OR_RETURN(auto anon,
                          anonymize::SuppressRareItems(dataset, {k}));
    LICM_ASSIGN_OR_RETURN(enc, anonymize::EncodeSuppressed(anon, dataset));
  } else {
    anonymize::Hierarchy h = anonymize::Hierarchy::BuildUniform(
        dataset.num_items, config.hierarchy_fanout);
    anonymize::GeneralizedDataset anon;
    if (scheme == Scheme::kKm) {
      LICM_ASSIGN_OR_RETURN(anon,
                            anonymize::KmAnonymize(dataset, h, {k, 2}));
    } else {
      LICM_ASSIGN_OR_RETURN(anon, anonymize::KAnonymize(dataset, h, {k}));
    }
    LICM_ASSIGN_OR_RETURN(enc, anonymize::EncodeGeneralized(anon, h, dataset));
  }
  cell.model_ms = model_watch.ElapsedMs();
  cell.vars_model = enc.db.pool().size();
  cell.cons_model = enc.db.constraints().size();

  // Bipartite sweeps run at a smaller transaction count; scale the
  // Query 3 popularity threshold with it so the query stays non-trivial.
  QueryParams scaled = params;
  if (scheme == Scheme::kBipartite &&
      config.bipartite_transactions < config.num_transactions) {
    scaled.q3_x = std::max<int64_t>(
        2, params.q3_x * config.bipartite_transactions /
               config.num_transactions);
  }
  rel::QueryNodePtr query = scheme == Scheme::kBipartite
                                ? BuildBipartiteQuery(qnum, scaled)
                                : BuildFlatQuery(qnum, scaled);

  AnswerOptions opts;
  opts.bounds.mip.time_limit_seconds = scheme == Scheme::kBipartite
                                           ? config.bipartite_time_limit
                                           : config.solver_time_limit;
  LICM_ASSIGN_OR_RETURN(AggregateAnswer ans,
                        AnswerAggregate(*query, enc.db, opts));
  cell.l_min = ans.bounds.min.value;
  cell.l_max = ans.bounds.max.value;
  cell.l_min_exact = ans.bounds.min.exact;
  cell.l_max_exact = ans.bounds.max.exact;
  cell.l_min_proved = ans.bounds.min.proved;
  cell.l_max_proved = ans.bounds.max.proved;
  cell.query_ms = ans.query_ms;
  cell.solve_ms = ans.solve_ms;
  cell.vars_query = ans.vars_at_query;
  cell.cons_query = ans.constraints_at_query;
  cell.vars_pruned = ans.bounds.prune_stats.vars_after;
  cell.cons_pruned = ans.bounds.prune_stats.constraints_after;

  sampler::MonteCarloOptions mco;
  mco.num_worlds = config.mc_worlds;
  mco.seed = config.seed + 1;
  LICM_ASSIGN_OR_RETURN(
      auto mc, sampler::MonteCarloBounds(enc.db, enc.structure, *query, mco));
  cell.m_min = mc.min;
  cell.m_max = mc.max;
  cell.mc_ms = mc.total_ms;
  return cell;
}

}  // namespace licm::bench
