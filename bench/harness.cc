#include "harness.h"

#include <sys/resource.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace_export.h"
#include "common/version.h"
#include "relational/engine.h"

namespace licm::bench {

using rel::CmpOp;
using rel::QueryNodePtr;
using rel::Value;

int ThreadsFromEnv(int fallback) {
  const char* env = std::getenv("LICM_THREADS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return fallback;
  return static_cast<int>(v);
}

PhaseBreakdown PhasesSince(int64_t since_ns) {
  PhaseBreakdown out;
  for (const telemetry::PhaseSummary& p :
       telemetry::SummarizeSpans(since_ns)) {
    if (p.name == "encode") out.encode_ms += p.total_ms;
    else if (p.name == "prune") out.prune_ms += p.total_ms;
    else if (p.name == "presolve") out.presolve_ms += p.total_ms;
    else if (p.name == "decompose") out.decompose_ms += p.total_ms;
    else if (p.name == "search") out.search_ms += p.total_ms;
    else if (p.name == "canonicalize") out.cache_ms += p.total_ms;
  }
  return out;
}

void BenchTraceInit() { telemetry::StartTracing(); }

Status BenchTraceFinish() {
  telemetry::StopTracing();
  const char* path = std::getenv("LICM_TRACE");
  if (path == nullptr || *path == '\0') return Status::OK();
  LICM_RETURN_NOT_OK(telemetry::WriteChromeTrace(path));
  LICM_RETURN_NOT_OK(
      telemetry::WritePhaseSummary(std::string(path) + ".phases.json"));
  const int64_t dropped = telemetry::DroppedEvents();
  std::fprintf(stderr,
               "trace: wrote %s (+ .phases.json); %lld events dropped\n",
               path, static_cast<long long>(dropped));
  return Status::OK();
}

const char* SchemeName(Scheme s) {
  switch (s) {
    case Scheme::kKm: return "km-anonymity";
    case Scheme::kKAnon: return "k-anonymity";
    case Scheme::kBipartite: return "bipartite";
    case Scheme::kSuppression: return "suppression";
  }
  return "?";
}

namespace {

// Query builders over an arbitrary trans_item-shaped subtree provider.
// `base(txn_preds, item_preds)` must return the (tid, loc, item, price)
// view with the given predicates applied.
using BaseFn = std::function<QueryNodePtr(std::vector<rel::Predicate>,
                                          std::vector<rel::Predicate>)>;

QueryNodePtr BuildQuery(int qnum, const QueryParams& p, const BaseFn& base) {
  switch (qnum) {
    case 1: {
      // COUNT of Pa-transactions containing >= 1 Pb-item.
      auto src = base({{"loc", CmpOp::kLt, Value(p.q1_pa_max_loc)}},
                      {{"price", CmpOp::kLt, Value(p.q1_pb_max_price)}});
      return rel::CountStar(
          rel::CountPredicate(src, "tid", CmpOp::kGe, 1));
    }
    case 2: {
      // COUNT of Pa-transactions with >= X Pb-items AND >= Y Pc-items.
      auto pb = base({{"loc", CmpOp::kLt, Value(p.q2_pa_max_loc)}},
                     {{"price", CmpOp::kLt, Value(p.q2_pb_max_price)}});
      auto pc = base({{"loc", CmpOp::kLt, Value(p.q2_pa_max_loc)}},
                     {{"price", CmpOp::kGe, Value(p.q2_pc_min_price)}});
      return rel::CountStar(rel::Intersect(
          rel::CountPredicate(pb, "tid", CmpOp::kGe, p.q2_x),
          rel::CountPredicate(pc, "tid", CmpOp::kGe, p.q2_y)));
    }
    case 3: {
      // COUNT of Pa-transactions containing >= 1 item that appears in
      // >= X Pb-transactions.
      auto pb_side = base({{"loc", CmpOp::kLt, Value(p.q3_pb_max_loc)}}, {});
      auto popular = rel::CountPredicate(
          rel::Project(pb_side, {"item", "tid"}), "item", CmpOp::kGe,
          p.q3_x);
      auto pa_side = base({{"loc", CmpOp::kLt, Value(p.q3_pa_max_loc)}}, {});
      auto joined = rel::Join(pa_side, popular, {{"item", "item"}});
      return rel::CountStar(rel::Project(joined, {"tid"}));
    }
    default:
      LICM_CHECK(false);
      return nullptr;
  }
}

}  // namespace

QueryNodePtr BuildFlatQuery(int qnum, const QueryParams& p) {
  BaseFn base = [](std::vector<rel::Predicate> txn_preds,
                   std::vector<rel::Predicate> item_preds) -> QueryNodePtr {
    QueryNodePtr node = rel::Scan("trans_item");
    std::vector<rel::Predicate> all = std::move(txn_preds);
    for (auto& pr : item_preds) all.push_back(std::move(pr));
    if (!all.empty()) node = rel::Select(node, std::move(all));
    return node;
  };
  return BuildQuery(qnum, p, base);
}

QueryNodePtr BuildBipartiteQuery(int qnum, const QueryParams& p) {
  BaseFn base = [](std::vector<rel::Predicate> txn_preds,
                   std::vector<rel::Predicate> item_preds) -> QueryNodePtr {
    return anonymize::BipartiteTransItemView(std::move(txn_preds),
                                             std::move(item_preds));
  };
  return BuildQuery(qnum, p, base);
}

Result<CellResult> RunCell(Scheme scheme, int qnum, uint32_t k,
                           const BenchConfig& config,
                           const QueryParams& params) {
  const int64_t trace_mark = telemetry::NowNs();
  data::GeneratorConfig gen;
  gen.num_transactions = scheme == Scheme::kBipartite
                             ? config.bipartite_transactions
                             : config.num_transactions;
  gen.num_items = config.num_items;
  gen.seed = config.seed;
  data::TransactionDataset dataset = data::GenerateTransactions(gen);

  CellResult cell;
  StopWatch model_watch;
  anonymize::EncodedDb enc;
  if (scheme == Scheme::kBipartite) {
    LICM_ASSIGN_OR_RETURN(
        auto groups, anonymize::SafeGrouping(dataset, {k, 2, config.seed}));
    LICM_ASSIGN_OR_RETURN(enc, anonymize::EncodeBipartite(groups, dataset));
  } else if (scheme == Scheme::kSuppression) {
    LICM_ASSIGN_OR_RETURN(auto anon,
                          anonymize::SuppressRareItems(dataset, {k}));
    LICM_ASSIGN_OR_RETURN(enc, anonymize::EncodeSuppressed(anon, dataset));
  } else {
    anonymize::Hierarchy h = anonymize::Hierarchy::BuildUniform(
        dataset.num_items, config.hierarchy_fanout);
    anonymize::GeneralizedDataset anon;
    if (scheme == Scheme::kKm) {
      LICM_ASSIGN_OR_RETURN(anon,
                            anonymize::KmAnonymize(dataset, h, {k, 2}));
    } else {
      LICM_ASSIGN_OR_RETURN(anon, anonymize::KAnonymize(dataset, h, {k}));
    }
    LICM_ASSIGN_OR_RETURN(enc, anonymize::EncodeGeneralized(anon, h, dataset));
  }
  cell.model_ms = model_watch.ElapsedMs();
  cell.vars_model = enc.db.pool().size();
  cell.cons_model = enc.db.constraints().size();

  // Bipartite sweeps run at a smaller transaction count; scale the
  // Query 3 popularity threshold with it so the query stays non-trivial.
  QueryParams scaled = params;
  if (scheme == Scheme::kBipartite &&
      config.bipartite_transactions < config.num_transactions) {
    scaled.q3_x = std::max<int64_t>(
        2, params.q3_x * config.bipartite_transactions /
               config.num_transactions);
  }
  rel::QueryNodePtr query = scheme == Scheme::kBipartite
                                ? BuildBipartiteQuery(qnum, scaled)
                                : BuildFlatQuery(qnum, scaled);

  AnswerOptions opts;
  opts.bounds.mip.time_limit_seconds = scheme == Scheme::kBipartite
                                           ? config.bipartite_time_limit
                                           : config.solver_time_limit;
  opts.bounds.mip.num_threads = ThreadsFromEnv();
  LICM_ASSIGN_OR_RETURN(AggregateAnswer ans,
                        AnswerAggregate(*query, enc.db, opts));
  cell.l_min = ans.bounds.min.value;
  cell.l_max = ans.bounds.max.value;
  cell.l_min_exact = ans.bounds.min.exact;
  cell.l_max_exact = ans.bounds.max.exact;
  cell.l_min_proved = ans.bounds.min.proved;
  cell.l_max_proved = ans.bounds.max.proved;
  cell.query_ms = ans.query_ms;
  cell.solve_ms = ans.solve_ms;
  cell.vars_query = ans.vars_at_query;
  cell.cons_query = ans.constraints_at_query;
  cell.vars_pruned = ans.bounds.prune_stats.vars_after;
  cell.cons_pruned = ans.bounds.prune_stats.constraints_after;

  cell.solve_stats = ans.bounds.stats;

  sampler::MonteCarloOptions mco;
  mco.num_worlds = config.mc_worlds;
  mco.seed = config.seed + 1;
  LICM_ASSIGN_OR_RETURN(
      auto mc, sampler::MonteCarloBounds(enc.db, enc.structure, *query, mco));
  cell.m_min = mc.min;
  cell.m_max = mc.max;
  cell.mc_ms = mc.total_ms;
  cell.phases = PhasesSince(trace_mark);
  return cell;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderNumber(double v) {
  // JSON has no inf/nan; fall back to null so files stay parseable.
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

JsonRecord& JsonRecord::AddString(const std::string& key,
                                  const std::string& value) {
  fields_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonRecord& JsonRecord::AddNumber(const std::string& key, double value) {
  fields_.emplace_back(key, RenderNumber(value));
  return *this;
}

JsonRecord& JsonRecord::AddInt(const std::string& key, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  fields_.emplace_back(key, buf);
  return *this;
}

JsonRecord& JsonRecord::AddBool(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonRecord& JsonRecord::AddRunMetrics(double min_value, double max_value,
                                      bool min_exact, bool max_exact,
                                      double query_ms, double solve_ms,
                                      const solver::MipStats& stats) {
  int64_t lookups = stats.cache_hits + stats.cache_misses;
  AddNumber("min", min_value);
  AddNumber("max", max_value);
  AddBool("min_exact", min_exact);
  AddBool("max_exact", max_exact);
  AddNumber("query_ms", query_ms);
  AddNumber("solve_ms", solve_ms);
  AddInt("nodes", stats.nodes);
  AddInt("components", static_cast<int64_t>(stats.components));
  AddInt("cache_hits", stats.cache_hits);
  AddInt("cache_misses", stats.cache_misses);
  AddNumber("cache_hit_rate",
            lookups > 0 ? static_cast<double>(stats.cache_hits) / lookups
                        : 0.0);
  AddInt("canonical_forms", stats.canonical_forms);
  AddInt("presolve_calls", stats.presolve_calls);
  AddInt("decompose_calls", stats.decompose_calls);
  AddInt("threads", stats.num_threads);
  AddInt("subtree_splits", stats.subtree_splits);
  AddNumber("solve_wall_s", stats.solve_seconds);
  AddNumber("cpu_s", stats.cpu_seconds);
  return *this;
}

JsonRecord& JsonRecord::AddPhaseBreakdown(const PhaseBreakdown& phases) {
  AddNumber("encode_ms", phases.encode_ms);
  AddNumber("prune_ms", phases.prune_ms);
  AddNumber("presolve_ms", phases.presolve_ms);
  AddNumber("decompose_ms", phases.decompose_ms);
  AddNumber("search_ms", phases.search_ms);
  AddNumber("cache_ms", phases.cache_ms);
  return *this;
}

std::string JsonRecord::ToJson() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(fields_[i].first) + "\":" + fields_[i].second;
  }
  out += "}";
  return out;
}

int64_t PeakRssKb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux (kernel >= 2.6.32; this repo's
  // platforms).
  return static_cast<int64_t>(usage.ru_maxrss);
}

namespace {

void WriteProvenancedRows(std::FILE* f,
                          const std::vector<JsonRecord>& records) {
  // Provenance prefix spliced into every row: one touch point covers all
  // bench binaries, and per-row stamping keeps rows self-describing when
  // files are concatenated across runs. Peak RSS and the registry totals
  // are process-lifetime values at write time — identical across the rows
  // of one file, comparable across files of one trajectory.
  auto& reg = metrics::MetricsRegistry::Default();
  char provenance[512];
  std::snprintf(provenance, sizeof(provenance),
                "{\"git_sha\":\"%s\",\"build_type\":\"%s\","
                "\"hardware_concurrency\":%u,\"max_rss_kb\":%lld,"
                "\"m_solver_nodes\":%lld,\"m_rows_scanned\":%lld,"
                "\"m_constraints_emitted\":%lld,\"m_arena_bytes\":%lld,",
                BuildGitSha(), BuildTypeName(),
                std::thread::hardware_concurrency(),
                static_cast<long long>(PeakRssKb()),
                static_cast<long long>(
                    reg.CounterTotal("licm_solver_nodes_total")),
                static_cast<long long>(
                    reg.CounterTotal("licm_query_rows_scanned_total")),
                static_cast<long long>(
                    reg.CounterTotal("licm_query_constraints_emitted_total")),
                static_cast<long long>(
                    reg.CounterTotal("licm_query_arena_bytes_total")));
  for (size_t i = 0; i < records.size(); ++i) {
    const std::string row = records[i].ToJson();
    if (row.size() > 2) {  // non-empty record: replace its leading '{'
      std::fputs(provenance, f);
      std::fputs(row.c_str() + 1, f);
    } else {
      std::fputs(row.c_str(), f);
    }
    std::fputs(i + 1 < records.size() ? ",\n" : "\n", f);
  }
}

}  // namespace

Status WriteBenchJson(const std::string& path,
                      const std::vector<JsonRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  std::fputs("[\n", f);
  WriteProvenancedRows(f, records);
  std::fputs("]\n", f);
  if (std::fclose(f) != 0) {
    return Status::Internal("error writing " + path);
  }
  return Status::OK();
}

Status AppendBenchJson(const std::string& path,
                       const std::vector<JsonRecord>& records) {
  std::string existing;
  {
    std::FILE* in = std::fopen(path.c_str(), "r");
    if (in == nullptr) return WriteBenchJson(path, records);
    char chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
      existing.append(chunk, n);
    }
    std::fclose(in);
  }
  const size_t close_bracket = existing.find_last_of(']');
  if (close_bracket == std::string::npos) {
    // Not a bench array (empty/corrupt file): start fresh.
    return WriteBenchJson(path, records);
  }
  std::string head = existing.substr(0, close_bracket);
  while (!head.empty() &&
         (head.back() == '\n' || head.back() == '\r' || head.back() == ' ' ||
          head.back() == '\t')) {
    head.pop_back();
  }
  const bool has_rows = !head.empty() && head.back() != '[';

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  std::fputs(head.c_str(), f);
  std::fputs(has_rows ? ",\n" : "\n", f);
  WriteProvenancedRows(f, records);
  std::fputs("]\n", f);
  if (std::fclose(f) != 0) {
    return Status::Internal("error writing " + path);
  }
  return Status::OK();
}

}  // namespace licm::bench
