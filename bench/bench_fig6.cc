// Figure 6 reproduction: time to answer each query at k = 8, broken into
// the paper's phases — MC (20 sampled worlds on the deterministic engine)
// vs L-model (anonymized data -> LICM database), L-query (operator
// evaluation + pruning) and L-solve (both BIP solves).
//
// Prints one row per (scheme, query):
//   scheme query MC_ms L_model_ms L_query_ms L_solve_ms L_total_ms
// Expected shape: LICM total well below MC for the generalization schemes;
// bipartite Q3 is the solver-hard case.
//
// Usage: bench_fig6 [num_transactions] [bipartite_transactions] [k]
#include <cstdio>
#include <cstdlib>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace licm::bench;
  BenchTraceInit();
  BenchConfig config;
  if (argc > 1) config.num_transactions = std::atoi(argv[1]);
  if (argc > 2) config.bipartite_transactions = std::atoi(argv[2]);
  uint32_t k = 8;
  if (argc > 3) k = std::atoi(argv[3]);
  QueryParams params;

  std::printf("# Figure 6: timing breakdown at k = %u (%u txns, %u "
              "bipartite txns)\n",
              k, config.num_transactions, config.bipartite_transactions);
  std::printf("%-14s %-3s %10s %12s %12s %12s %12s\n", "scheme", "qry",
              "MC_ms", "L_model_ms", "L_query_ms", "L_solve_ms",
              "L_total_ms");
  for (Scheme scheme :
       {Scheme::kKm, Scheme::kKAnon, Scheme::kBipartite}) {
    for (int q = 1; q <= 3; ++q) {
      auto cell = RunCell(scheme, q, k, config, params);
      if (!cell.ok()) {
        std::printf("%-14s Q%-2d ERROR: %s\n", SchemeName(scheme), q,
                    cell.status().ToString().c_str());
        continue;
      }
      std::printf("%-14s Q%-2d %10.1f %12.1f %12.1f %12.1f %12.1f\n",
                  SchemeName(scheme), q, cell->mc_ms, cell->model_ms,
                  cell->query_ms, cell->solve_ms,
                  cell->model_ms + cell->query_ms + cell->solve_ms);
      std::fflush(stdout);
    }
  }
  auto finish = BenchTraceFinish();
  if (!finish.ok()) {
    std::printf("trace export failed: %s\n", finish.ToString().c_str());
    return 1;
  }
  return 0;
}
