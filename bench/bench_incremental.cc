// Benchmark of the streaming mutation layer (licm/mutable_instance.h):
// a K-component instance takes a single-component mutation, and the
// versioned instance's warm re-answer — untouched components served from
// the cross-version component cache — is compared against a full reload
// (fresh solve of every component, no cache). The bounds must be
// bit-identical; the report carries the speedup and the cross-version
// hit count.
//
// Instance shape: K pairwise non-isomorphic components. Component g is an
// odd ring of 2S+1+2g variables under mutual-exclusion edges
// (b_i + b_{i+1} <= 1 around the cycle) plus a cardinality floor. Odd
// rings keep the LP relaxation fractional (all-halves), so every
// component costs real branch & bound — the regime where re-solving only
// the touched component pays.
//
// Usage: bench_incremental [groups] [ring_base] [repeats] [out.json]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "harness.h"
#include "licm/mutable_instance.h"
#include "relational/query.h"

namespace {

using namespace licm;

struct BuiltInstance {
  LicmDatabase db;
  size_t group0_floor_index = 0;  // constraint index of group 0's floor
};

// K odd-ring components of pairwise distinct sizes over one relation:
// every variable backs one maybe-tuple, plus a single certain tuple.
BuiltInstance BuildRings(int groups, int ring_base) {
  BuiltInstance built;
  rel::Schema schema({{"id", rel::ValueType::kInt}});
  LicmRelation r(schema);
  r.AppendUnchecked({int64_t{0}}, Ext::Certain());
  int64_t next_id = 1;
  for (int g = 0; g < groups; ++g) {
    const int n = 2 * ring_base + 1 + 2 * g;  // odd, distinct per group
    std::vector<BVar> ring;
    ring.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const BVar v = built.db.pool().New();
      ring.push_back(v);
      r.AppendUnchecked({next_id++}, Ext::Maybe(v));
    }
    for (int i = 0; i < n; ++i) {
      LinearConstraint edge;
      edge.terms = {{ring[static_cast<size_t>(i)], 1},
                    {ring[static_cast<size_t>((i + 1) % n)], 1}};
      edge.op = ConstraintOp::kLe;
      edge.rhs = 1;
      built.db.constraints().Add(std::move(edge));
    }
    if (g == 0) built.group0_floor_index = built.db.constraints().size();
    LinearConstraint floor;
    for (BVar v : ring) floor.terms.push_back({v, 1});
    floor.op = ConstraintOp::kGe;
    floor.rhs = 1;
    built.db.constraints().Add(std::move(floor));
  }
  const Status added = built.db.AddRelation("t", std::move(r));
  LICM_CHECK(added.ok());
  return built;
}

AnswerOptions DeterministicOptions() {
  AnswerOptions opts;
  // No wall-clock limit and one search thread: both paths must compute
  // the same proved optima regardless of machine load.
  opts.bounds.mip.time_limit_seconds = 1e9;
  opts.bounds.mip.num_threads = 1;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  using bench::JsonRecord;
  using bench::WriteBenchJson;

  bench::BenchTraceInit();
  int groups = 16;
  int ring_base = 80;  // smallest ring: 2*80+1 = 161 variables
  int repeats = 3;
  std::string out_path = "BENCH_incremental.json";
  const bool default_config = argc <= 1;
  if (argc > 1) groups = std::atoi(argv[1]);
  if (argc > 2) ring_base = std::atoi(argv[2]);
  if (argc > 3) repeats = std::atoi(argv[3]);
  if (argc > 4) out_path = argv[4];
  if (groups < 2 || ring_base < 1 || repeats < 1) {
    std::fprintf(stderr,
                 "usage: %s [groups>=2] [ring_base>=1] [repeats>=1] "
                 "[out.json]\n",
                 argv[0]);
    return 2;
  }

  BuiltInstance built = BuildRings(groups, ring_base);
  const rel::QueryNodePtr query = rel::CountStar(rel::Scan("t"));
  const uint32_t num_vars = built.db.pool().size();
  MutableInstance inst(built.db);

  // Prime: the first answer is the initial full solve every deployment
  // pays once; it fills the instance cache for the mutation loop below.
  auto primed = inst.Answer(*query, DeterministicOptions());
  if (!primed.ok()) {
    std::printf("prime failed: %s\n", primed.status().ToString().c_str());
    return 1;
  }

  std::printf("# Incremental re-solve benchmark: %d ring components, "
              "%u vars\n",
              groups, num_vars);
  std::printf("%-7s %-12s %10s %10s %9s %9s %12s\n", "step", "mode",
              "total_ms", "solve_ms", "min", "max", "cross_hits");

  double best_reload_ms = 0, best_incremental_ms = 0;
  bool bounds_ok = true;
  solver::MipStats reload_stats, incremental_stats;
  double final_min = 0, final_max = 0;
  bool final_min_exact = false, final_max_exact = false;
  double reload_query_ms = 0, reload_solve_ms = 0;
  double incremental_query_ms = 0, incremental_solve_ms = 0;
  uint64_t cross_hits_before = inst.cache()->Snapshot().cross_epoch_hits;

  for (int step = 0; step < repeats; ++step) {
    // Mutate exactly one component: nudge group 0's cardinality floor
    // between 1 and 2 (both satisfiable on an odd ring).
    const int64_t rhs = 1 + (step % 2 == 0 ? 1 : 0);
    auto mutated = inst.EditConstraintRhs(built.group0_floor_index,
                                          ConstraintOp::kGe, rhs);
    if (!mutated.ok()) {
      std::printf("mutation failed: %s\n",
                  mutated.status().ToString().c_str());
      return 1;
    }
    if (mutated->dirty_components != 1) {
      std::printf("FAIL: floor edit dirtied %zu components (expected 1)\n",
                  mutated->dirty_components);
      return 1;
    }

    // Incremental path: warm re-answer through the versioned instance.
    StopWatch warm_watch;
    auto warm = inst.Answer(*query, DeterministicOptions());
    const double warm_ms = warm_watch.ElapsedMs();
    if (!warm.ok()) {
      std::printf("warm answer failed: %s\n",
                  warm.status().ToString().c_str());
      return 1;
    }

    // Full-reload path: the same post-mutation database, fresh solve of
    // every component with no cache (what `load replace=true` plus a
    // cold query would pay).
    StopWatch cold_watch;
    auto cold =
        AnswerAggregate(*query, inst.snapshot()->db, DeterministicOptions());
    const double cold_ms = cold_watch.ElapsedMs();
    if (!cold.ok()) {
      std::printf("reload answer failed: %s\n",
                  cold.status().ToString().c_str());
      return 1;
    }

    if (warm->bounds.min.value != cold->bounds.min.value ||
        warm->bounds.max.value != cold->bounds.max.value ||
        warm->bounds.min.exact != cold->bounds.min.exact ||
        warm->bounds.max.exact != cold->bounds.max.exact) {
      std::printf("step %d BOUND MISMATCH: incremental [%g, %g] vs reload "
                  "[%g, %g]\n",
                  step, warm->bounds.min.value, warm->bounds.max.value,
                  cold->bounds.min.value, cold->bounds.max.value);
      bounds_ok = false;
    }

    const uint64_t cross_hits =
        inst.cache()->Snapshot().cross_epoch_hits - cross_hits_before;
    std::printf("%-7d %-12s %10.2f %10.2f %9.1f %9.1f %12s\n", step,
                "reload", cold_ms, cold->solve_ms, cold->bounds.min.value,
                cold->bounds.max.value, "-");
    std::printf("%-7d %-12s %10.2f %10.2f %9.1f %9.1f %12llu\n", step,
                "incremental", warm_ms, warm->solve_ms,
                warm->bounds.min.value, warm->bounds.max.value,
                static_cast<unsigned long long>(cross_hits));

    // Deterministic runs: best-of-N is the right point estimate.
    if (step == 0 || cold_ms < best_reload_ms) {
      best_reload_ms = cold_ms;
      reload_stats = cold->bounds.stats;
      reload_query_ms = cold->query_ms;
      reload_solve_ms = cold->solve_ms;
    }
    if (step == 0 || warm_ms < best_incremental_ms) {
      best_incremental_ms = warm_ms;
      incremental_stats = warm->bounds.stats;
      incremental_query_ms = warm->query_ms;
      incremental_solve_ms = warm->solve_ms;
    }
    final_min = warm->bounds.min.value;
    final_max = warm->bounds.max.value;
    final_min_exact = warm->bounds.min.exact;
    final_max_exact = warm->bounds.max.exact;
  }

  const uint64_t total_cross_hits =
      inst.cache()->Snapshot().cross_epoch_hits - cross_hits_before;
  const double speedup =
      best_incremental_ms > 0 ? best_reload_ms / best_incremental_ms : 0.0;
  std::printf("\nsingle-component mutation: incremental %.2f ms vs reload "
              "%.2f ms -> %.1fx, %llu cross-version cache hits\n",
              best_incremental_ms, best_reload_ms, speedup,
              static_cast<unsigned long long>(total_cross_hits));

  std::vector<JsonRecord> records;
  {
    JsonRecord rec;
    rec.AddString("bench", "incremental")
        .AddString("mode", "reload")
        .AddInt("groups", groups)
        .AddInt("ring_base", ring_base)
        .AddInt("num_vars", num_vars)
        .AddNumber("total_ms", best_reload_ms)
        .AddRunMetrics(final_min, final_max, final_min_exact,
                       final_max_exact, reload_query_ms, reload_solve_ms,
                       reload_stats);
    records.push_back(std::move(rec));
  }
  {
    JsonRecord rec;
    rec.AddString("bench", "incremental")
        .AddString("mode", "incremental")
        .AddInt("groups", groups)
        .AddInt("ring_base", ring_base)
        .AddInt("num_vars", num_vars)
        .AddNumber("total_ms", best_incremental_ms)
        .AddRunMetrics(final_min, final_max, final_min_exact,
                       final_max_exact, incremental_query_ms,
                       incremental_solve_ms, incremental_stats)
        .AddNumber("speedup", speedup)
        .AddInt("cross_version_hits",
                static_cast<int64_t>(total_cross_hits))
        .AddInt("dirty_components", 1)
        .AddInt("total_components", groups);
    records.push_back(std::move(rec));
  }

  auto finish = bench::BenchTraceFinish();
  if (!finish.ok()) {
    std::printf("trace export failed: %s\n", finish.ToString().c_str());
    return 1;
  }
  auto write = WriteBenchJson(out_path, records);
  if (!write.ok()) {
    std::printf("json write failed: %s\n", write.ToString().c_str());
    return 1;
  }
  std::printf("results -> %s\n", out_path.c_str());

  if (!bounds_ok) {
    std::printf("FAIL: incremental re-solve changed the answer\n");
    return 1;
  }
  if (total_cross_hits == 0) {
    std::printf("FAIL: untouched components produced no cross-version "
                "cache hits\n");
    return 1;
  }
  // At the default workload, re-solving one touched component out of K
  // must beat a full reload by an order of magnitude.
  if (default_config && speedup < 10.0) {
    std::printf("FAIL: expected >=10x incremental speedup at the default "
                "workload\n");
    return 1;
  }
  return 0;
}
