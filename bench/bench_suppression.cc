// Extension experiment (Appendix C): LICM vs Monte-Carlo bounds over
// suppression-anonymized data. Suppression removes every item whose
// support falls below k; the LICM encoding says any transaction could
// contain any suppressed item, which yields very wide — but still exact —
// bounds, illustrating the appendix's warning that the suppressed encoding
// can "grow somewhat large" in uncertainty.
//
// Usage: bench_suppression [num_transactions]
#include <cstdio>
#include <cstdlib>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace licm::bench;
  BenchTraceInit();
  BenchConfig config;
  if (argc > 1) config.num_transactions = std::atoi(argv[1]);
  // Suppression at BMS-like density removes few items; shrink the domain
  // coupling so that the suppressed vocabulary is non-trivial.
  config.num_items = 400;
  QueryParams params;

  std::printf("# Suppression scheme: LICM vs MC bounds (%u txns)\n",
              config.num_transactions);
  std::printf("%-3s %-2s %10s %10s %10s %10s\n", "qry", "k", "L_min",
              "L_max", "M_min", "M_max");
  for (int q = 1; q <= 2; ++q) {
    for (uint32_t k : {2u, 4u, 8u}) {
      auto cell = RunCell(Scheme::kSuppression, q, k, config, params);
      if (!cell.ok()) {
        std::printf("Q%-2d %-2u ERROR: %s\n", q, k,
                    cell.status().ToString().c_str());
        continue;
      }
      std::printf("Q%-2d %-2u %9.1f%s %9.1f%s %10.1f %10.1f\n", q, k,
                  cell->l_min, cell->l_min_exact ? " " : "~", cell->l_max,
                  cell->l_max_exact ? " " : "~", cell->m_min, cell->m_max);
      std::fflush(stdout);
    }
  }
  auto finish = BenchTraceFinish();
  if (!finish.ok()) {
    std::printf("trace export failed: %s\n", finish.ToString().c_str());
    return 1;
  }
  return 0;
}
