// Scaling benchmark for the work-stealing parallel branch & bound: runs
// the paper's Query 1/2/3 at 1, 2, 4 and 8 solver threads, asserts every
// thread count proves bit-identical bounds to the sequential run (the
// determinism contract in DESIGN.md), and reports per-thread-count wall
// times and speedups. Writes BENCH_parallel_scaling.json.
//
// Schemes: "bipartite" (default) — the permutation encoding couples each
// group into one blob component the solve cache cannot dedupe, so the
// only parallelism available is *intra*-component subtree splitting, the
// regime this benchmark exists to measure; "kanon" — thousands of small
// isomorphic components, where cross-component task parallelism (and the
// cache) dominate and splitting stays dormant.
//
// The workload is sized so every solve completes to proven optimality
// (huge time/node budget): bounds of *proved* solves are thread-count
// invariant, which is what makes the equality gate below exact rather
// than approximate. The >=2x speedup gate only arms on machines with at
// least 4 hardware threads running the default configuration.
//
// Usage: bench_parallel_scaling [scheme] [num_transactions] [k] [items]
//                               [queries] [out.json]
// `queries` is a digit string, e.g. "13" runs Query 1 and Query 3.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "harness.h"

namespace {

struct RunOutcome {
  double min = 0, max = 0;
  bool min_exact = false, max_exact = false;
  double total_ms = 0;  // full AnswerAggregate wall time
  double query_ms = 0, solve_ms = 0;
  licm::solver::MipStats stats;
  licm::bench::PhaseBreakdown phases;
};

constexpr int kThreadCounts[] = {1, 2, 4, 8};

}  // namespace

int main(int argc, char** argv) {
  using namespace licm::bench;
  using licm::AnswerOptions;

  BenchTraceInit();
  bool bipartite = true;
  uint32_t txns = 0, k = 0, items = 0;
  std::string queries;
  std::string out_path = "BENCH_parallel_scaling.json";
  const bool default_config = argc <= 1;
  if (argc > 1) bipartite = std::strcmp(argv[1], "kanon") != 0;
  if (argc > 2) txns = std::atoi(argv[2]);
  if (argc > 3) k = std::atoi(argv[3]);
  if (argc > 4) items = std::atoi(argv[4]);
  if (argc > 5) queries = argv[5];
  if (argc > 6) out_path = argv[6];
  // Defaults calibrated so every solve completes to proven optimality in
  // seconds while Query 3 — one join-coupled blob per group — still runs
  // deep enough to exercise subtree splitting. Query 2 (two cardinality
  // thresholds intersected) is out of reach of *exact* solves at this
  // scale; sweep it explicitly at a smaller instance, e.g.
  // `bench_parallel_scaling bipartite 24 4 60 2`.
  if (txns == 0) txns = bipartite ? 60 : 2000;
  if (k == 0) k = bipartite ? 10 : 25;
  if (items == 0) items = bipartite ? 60 : 400;
  if (queries.empty()) queries = bipartite ? "13" : "123";

  licm::data::GeneratorConfig gen;
  gen.num_transactions = txns;
  gen.num_items = items;
  auto dataset = licm::data::GenerateTransactions(gen);
  licm::Result<licm::anonymize::EncodedDb> enc =
      licm::Status::Internal("unset");
  if (bipartite) {
    auto groups = licm::anonymize::SafeGrouping(dataset, {k, 2, gen.seed});
    if (!groups.ok()) {
      std::printf("grouping failed: %s\n",
                  groups.status().ToString().c_str());
      return 1;
    }
    enc = licm::anonymize::EncodeBipartite(*groups, dataset);
  } else {
    auto hierarchy =
        licm::anonymize::Hierarchy::BuildUniform(dataset.num_items, 16);
    auto anon = licm::anonymize::KAnonymize(dataset, hierarchy, {k});
    if (!anon.ok()) {
      std::printf("anonymize failed: %s\n",
                  anon.status().ToString().c_str());
      return 1;
    }
    enc = licm::anonymize::EncodeGeneralized(*anon, hierarchy, dataset);
  }
  if (!enc.ok()) {
    std::printf("encode failed: %s\n", enc.status().ToString().c_str());
    return 1;
  }

  auto run = [&](int qnum, int threads) -> licm::Result<RunOutcome> {
    QueryParams params;
    // Popularity threshold scaled with the transaction count, as in
    // RunCell, so Query 3 stays non-trivial at bipartite scale.
    if (bipartite && txns < 6000) {
      params.q3_x = std::max<int64_t>(2, params.q3_x * txns / 6000);
    }
    auto query = bipartite ? BuildBipartiteQuery(qnum, params)
                           : BuildFlatQuery(qnum, params);
    AnswerOptions opts;
    // Effectively unlimited budget: every solve must run to proven
    // optimality, because only *proved* bounds are guaranteed identical
    // across thread counts (capped runs stop at run-order-dependent
    // frontiers; see DESIGN.md).
    opts.bounds.mip.time_limit_seconds = 1e9;
    opts.bounds.mip.num_threads = threads;
    // Split eagerly so even medium searches exercise the subtree-donation
    // path; production keeps the higher default to spare trivial solves
    // the snapshot cost.
    opts.bounds.mip.split_node_threshold = 1'000;
    licm::StopWatch watch;
    const int64_t mark = licm::telemetry::NowNs();
    LICM_ASSIGN_OR_RETURN(auto ans,
                          licm::AnswerAggregate(*query, enc->db, opts));
    RunOutcome out;
    out.total_ms = watch.ElapsedMs();
    out.phases = PhasesSince(mark);
    out.min = ans.bounds.min.value;
    out.max = ans.bounds.max.value;
    out.min_exact = ans.bounds.min.exact;
    out.max_exact = ans.bounds.max.exact;
    out.query_ms = ans.query_ms;
    out.solve_ms = ans.solve_ms;
    out.stats = ans.bounds.stats;
    return out;
  };

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("# Parallel-scaling benchmark: %s, k=%u, %u txns, %u hw "
              "threads\n",
              bipartite ? "bipartite" : "k-anonymity", k, txns, hw);
  std::printf("%-7s %-8s %9s %9s %10s %10s %8s %8s\n", "query", "threads",
              "min", "max", "total_ms", "solve_ms", "splits", "speedup");

  std::vector<JsonRecord> records;
  bool bounds_ok = true;
  bool all_exact = true;
  double q3_best_speedup = 0.0;
  for (char qc : queries) {
    if (qc < '1' || qc > '3') continue;
    const int qnum = qc - '0';
    RunOutcome base;  // the 1-thread reference
    for (int threads : kThreadCounts) {
      auto r = run(qnum, threads);
      if (!r.ok()) {
        std::printf("query %d ERROR: %s\n", qnum,
                    r.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) base = *r;
      all_exact = all_exact && r->min_exact && r->max_exact;
      // Proved bounds must be bit-identical to the sequential run.
      if (r->min != base.min || r->max != base.max ||
          r->min_exact != base.min_exact || r->max_exact != base.max_exact) {
        std::printf("query %d BOUND MISMATCH at %d threads: [%g, %g] "
                    "(%d/%d) vs sequential [%g, %g] (%d/%d)\n",
                    qnum, threads, r->min, r->max, r->min_exact,
                    r->max_exact, base.min, base.max, base.min_exact,
                    base.max_exact);
        bounds_ok = false;
      }
      const double speedup =
          r->solve_ms > 0 ? base.solve_ms / r->solve_ms : 0.0;
      if (qnum == 3 && threads >= 4 && speedup > q3_best_speedup) {
        q3_best_speedup = speedup;
      }
      std::printf("%-7d %-8d %9.1f %9.1f %10.1f %10.1f %8lld %7.2fx\n",
                  qnum, threads, r->min, r->max, r->total_ms, r->solve_ms,
                  static_cast<long long>(r->stats.subtree_splits), speedup);
      JsonRecord rec;
      rec.AddString("bench", "parallel_scaling")
          .AddString("scheme", bipartite ? "bipartite" : "kanon")
          .AddInt("query", qnum)
          .AddInt("requested_threads", threads)
          .AddInt("hardware_threads", static_cast<int64_t>(hw))
          .AddInt("num_transactions", txns)
          .AddInt("k", k)
          .AddNumber("total_ms", r->total_ms)
          .AddNumber("speedup", speedup)
          .AddInt("subtree_tasks", r->stats.subtree_tasks)
          .AddRunMetrics(r->min, r->max, r->min_exact, r->max_exact,
                         r->query_ms, r->solve_ms, r->stats)
          .AddPhaseBreakdown(r->phases);
      records.push_back(std::move(rec));
    }
    std::fflush(stdout);
  }

  auto finish = BenchTraceFinish();
  if (!finish.ok()) {
    std::printf("trace export failed: %s\n", finish.ToString().c_str());
    return 1;
  }
  auto write = WriteBenchJson(out_path, records);
  if (!write.ok()) {
    std::printf("json write failed: %s\n", write.ToString().c_str());
    return 1;
  }
  std::printf("\nbest Query-3 solve speedup at >=4 threads: %.2fx; "
              "results -> %s\n",
              q3_best_speedup, out_path.c_str());
  if (!bounds_ok) {
    std::printf("FAIL: thread count changed the answer\n");
    return 1;
  }
  if (!all_exact) {
    std::printf("FAIL: a solve hit its budget; the workload must complete "
                "to proven optimality for the equality gate to be exact\n");
    return 1;
  }
  // On a machine with real parallelism, the hard permutation Query 3 is
  // expected to cut its solve time at least in half. Single- and
  // dual-core machines (CI smoke runs) still exercise the equality gate
  // above; they just cannot demonstrate the speedup.
  if (default_config && hw >= 4 && queries.find('3') != std::string::npos &&
      q3_best_speedup < 2.0) {
    std::printf("FAIL: expected >=2x Query-3 solve speedup at >=4 threads "
                "(got %.2fx)\n",
                q3_best_speedup);
    return 1;
  }
  return 0;
}
