// Figure 5 reproduction: LICM exact bounds vs Monte-Carlo sampled bounds
// for the three paper queries under the three anonymization schemes, at
// k in {2, 4, 6, 8}.
//
// Prints one row per (scheme, query, k):
//   scheme query k L_min L_max M_min M_max width(L) width(M)
// Expected shape (paper Section V-C): [M_min, M_max] lies strictly inside
// [L_min, L_max], MC misses the extremes, and bounds widen with k.
// Non-exact solver bounds (time limit) are flagged with '~'.
//
// Usage: bench_fig5 [num_transactions] [bipartite_transactions]
#include <cstdio>
#include <cstdlib>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace licm::bench;
  BenchTraceInit();
  BenchConfig config;
  if (argc > 1) config.num_transactions = std::atoi(argv[1]);
  if (argc > 2) config.bipartite_transactions = std::atoi(argv[2]);
  QueryParams params;

  std::printf("# Figure 5: LICM bounds vs MC bounds (%u txns, %u bipartite "
              "txns, %d MC worlds)\n",
              config.num_transactions, config.bipartite_transactions,
              config.mc_worlds);
  std::printf("%-14s %-3s %-2s %10s %10s %10s %10s %9s %9s\n", "scheme",
              "qry", "k", "L_min", "L_max", "M_min", "M_max", "width_L",
              "width_M");
  for (Scheme scheme :
       {Scheme::kKm, Scheme::kKAnon, Scheme::kBipartite}) {
    for (int q = 1; q <= 3; ++q) {
      for (uint32_t k : {2u, 4u, 6u, 8u}) {
        auto cell = RunCell(scheme, q, k, config, params);
        if (!cell.ok()) {
          std::printf("%-14s Q%-2d %-2u ERROR: %s\n", SchemeName(scheme), q,
                      k, cell.status().ToString().c_str());
          continue;
        }
        // On time limit, report the proved outer bound (marked '~'), like
        // the paper's "quite tight approximate bounds" for its Query 3.
        const double lmin =
            (cell->l_min_exact ? cell->l_min : cell->l_min_proved) + 0.0;
        const double lmax =
            (cell->l_max_exact ? cell->l_max : cell->l_max_proved) + 0.0;
        std::printf("%-14s Q%-2d %-2u %9.1f%s %9.1f%s %10.1f %10.1f %9.1f "
                    "%9.1f\n",
                    SchemeName(scheme), q, k, lmin,
                    cell->l_min_exact ? " " : "~", lmax,
                    cell->l_max_exact ? " " : "~", cell->m_min, cell->m_max,
                    lmax - lmin, cell->m_max - cell->m_min);
        std::fflush(stdout);
      }
    }
  }
  std::printf("\n# '~' marks a bound the solver could not prove optimal "
              "within the time limit (still a valid possible-world "
              "answer).\n");
  auto finish = BenchTraceFinish();
  if (!finish.ok()) {
    std::printf("trace export failed: %s\n", finish.ToString().c_str());
    return 1;
  }
  return 0;
}
