// Query-path benchmark: the columnar batch engine vs the row-at-a-time
// reference on the paper's Query 1/2/3, at two workload scales. Both
// engines must produce bit-identical min/max bounds (the run aborts
// otherwise — the speedup claim is only meaningful over identical
// answers); the report is the L-query wall time split from encode and
// solve, plus base-relation rows/s through the operator pipeline. Writes
// BENCH_query.json.
//
// Usage: bench_query_path [txns_small] [txns_large] [k] [items] [fanout]
//                         [queries] [repeats] [out.json]
// `queries` is a digit string, e.g. "13" runs Query 1 and Query 3.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "harness.h"

namespace {

struct RunOutcome {
  double min = 0, max = 0;
  bool min_exact = false, max_exact = false;
  size_t vars_query = 0, cons_query = 0;
  double total_ms = 0;  // full AnswerAggregate wall time
  double query_ms = 0, solve_ms = 0;
  licm::solver::MipStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace licm::bench;
  using licm::AnswerOptions;

  BenchTraceInit();
  uint32_t txns_small = 400, txns_large = 2000;
  uint32_t k = 25, items = 400, fanout = 16;
  std::string queries = "123";
  int repeats = 3;
  std::string out_path = "BENCH_query.json";
  const bool default_config = argc <= 1;
  if (argc > 1) txns_small = std::atoi(argv[1]);
  if (argc > 2) txns_large = std::atoi(argv[2]);
  if (argc > 3) k = std::atoi(argv[3]);
  if (argc > 4) items = std::atoi(argv[4]);
  if (argc > 5) fanout = std::atoi(argv[5]);
  if (argc > 6) queries = argv[6];
  if (argc > 7) repeats = std::atoi(argv[7]);
  if (argc > 8) out_path = argv[8];
  if (repeats < 1) repeats = 1;

  std::printf("# Query-path benchmark: columnar vs row engine, k=%u\n", k);
  std::printf("%-6s %-7s %-9s %9s %9s %10s %10s %12s %8s\n", "txns", "query",
              "engine", "min", "max", "query_ms", "solve_ms", "rows/s",
              "speedup");

  std::vector<JsonRecord> records;
  bool bounds_ok = true;
  // query-time speedup per (scale, query), keyed for the default-config
  // gate below.
  double q1_large_speedup = 0.0, q2_large_speedup = 0.0;

  for (uint32_t txns : {txns_small, txns_large}) {
    if (txns == 0) continue;
    licm::data::GeneratorConfig gen;
    gen.num_transactions = txns;
    gen.num_items = items;
    licm::data::TransactionDataset dataset =
        licm::data::GenerateTransactions(gen);
    licm::StopWatch encode_watch;
    auto hierarchy =
        licm::anonymize::Hierarchy::BuildUniform(dataset.num_items, fanout);
    auto anon = licm::anonymize::KAnonymize(dataset, hierarchy, {k});
    if (!anon.ok()) {
      std::printf("anonymize failed: %s\n", anon.status().ToString().c_str());
      return 1;
    }
    auto enc = licm::anonymize::EncodeGeneralized(*anon, hierarchy, dataset);
    if (!enc.ok()) {
      std::printf("encode failed: %s\n", enc.status().ToString().c_str());
      return 1;
    }
    const double encode_ms = encode_watch.ElapsedMs();
    auto base = enc->db.GetRelation("trans_item");
    if (!base.ok()) {
      std::printf("no trans_item relation: %s\n",
                  base.status().ToString().c_str());
      return 1;
    }
    const size_t base_rows = (*base)->size();

    auto run = [&](int qnum,
                   licm::rel::EvalEngine engine) -> licm::Result<RunOutcome> {
      auto query = BuildFlatQuery(qnum, QueryParams{});
      AnswerOptions opts;
      opts.engine = engine;
      // Deterministic solver configuration (as in bench_solve_cache): a
      // node cap instead of wall-clock limits, sequential search. The
      // engines must then agree bit for bit, including exactness flags.
      opts.bounds.mip.time_limit_seconds = 1e9;
      opts.bounds.mip.max_nodes_per_component = 200'000;
      opts.bounds.mip.num_threads = 1;
      licm::StopWatch watch;
      LICM_ASSIGN_OR_RETURN(auto ans,
                            licm::AnswerAggregate(*query, enc->db, opts));
      RunOutcome out;
      out.total_ms = watch.ElapsedMs();
      out.min = ans.bounds.min.value;
      out.max = ans.bounds.max.value;
      out.min_exact = ans.bounds.min.exact;
      out.max_exact = ans.bounds.max.exact;
      out.vars_query = ans.vars_at_query;
      out.cons_query = ans.constraints_at_query;
      out.query_ms = ans.query_ms;
      out.solve_ms = ans.solve_ms;
      out.stats = ans.bounds.stats;
      return out;
    };

    // Best-of-N query times: both engines are deterministic and the
    // operator pipeline is allocation-heavy, so the minimum is the right
    // point estimate. Columnar runs first so process warmup penalizes the
    // side whose speedup we claim (conservative).
    auto run_best = [&](int qnum, licm::rel::EvalEngine engine)
        -> licm::Result<RunOutcome> {
      LICM_ASSIGN_OR_RETURN(RunOutcome best, run(qnum, engine));
      for (int i = 1; i < repeats; ++i) {
        LICM_ASSIGN_OR_RETURN(RunOutcome r, run(qnum, engine));
        if (r.query_ms < best.query_ms) best = r;
      }
      return best;
    };

    for (char qc : queries) {
      if (qc < '1' || qc > '3') continue;
      const int qnum = qc - '0';
      auto col = run_best(qnum, licm::rel::EvalEngine::kColumnar);
      auto row = run_best(qnum, licm::rel::EvalEngine::kRow);
      if (!col.ok() || !row.ok()) {
        std::printf(
            "query %d ERROR: %s\n", qnum,
            (col.ok() ? row.status() : col.status()).ToString().c_str());
        return 1;
      }
      // The engine must be invisible in the answer: identical bounds,
      // exactness, and problem sizes — not merely close.
      if (col->min != row->min || col->max != row->max ||
          col->min_exact != row->min_exact ||
          col->max_exact != row->max_exact ||
          col->vars_query != row->vars_query ||
          col->cons_query != row->cons_query) {
        std::printf(
            "query %d BOUND MISMATCH: columnar [%g, %g] (%d/%d, %zu vars) "
            "vs row [%g, %g] (%d/%d, %zu vars)\n",
            qnum, col->min, col->max, col->min_exact, col->max_exact,
            col->vars_query, row->min, row->max, row->min_exact,
            row->max_exact, row->vars_query);
        bounds_ok = false;
      }
      const double speedup =
          col->query_ms > 0 ? row->query_ms / col->query_ms : 0.0;
      if (txns == txns_large) {
        if (qnum == 1) q1_large_speedup = speedup;
        if (qnum == 2) q2_large_speedup = speedup;
      }
      for (const RunOutcome* r : {&*row, &*col}) {
        const bool is_col = r == &*col;
        const double rows_per_s =
            r->query_ms > 0 ? base_rows / (r->query_ms / 1000.0) : 0.0;
        std::printf("%-6u %-7d %-9s %9.1f %9.1f %10.2f %10.2f %12.0f %8s\n",
                    txns, qnum, is_col ? "columnar" : "row", r->min, r->max,
                    r->query_ms, r->solve_ms, rows_per_s,
                    is_col ? (std::to_string(speedup).substr(0, 5) + "x")
                                 .c_str()
                           : "-");
        JsonRecord rec;
        rec.AddString("bench", "query_path")
            .AddString("scheme", "kanon")
            .AddInt("query", qnum)
            .AddString("engine", is_col ? "columnar" : "row")
            .AddInt("num_transactions", txns)
            .AddInt("base_rows", static_cast<int64_t>(base_rows))
            .AddInt("k", k)
            .AddNumber("total_ms", r->total_ms)
            .AddNumber("encode_ms", encode_ms)
            .AddNumber("rows_per_s", rows_per_s)
            .AddRunMetrics(r->min, r->max, r->min_exact, r->max_exact,
                           r->query_ms, r->solve_ms, r->stats);
        if (is_col) rec.AddNumber("query_speedup", speedup);
        records.push_back(std::move(rec));
      }
      std::fflush(stdout);
    }
  }

  auto finish = BenchTraceFinish();
  if (!finish.ok()) {
    std::printf("trace export failed: %s\n", finish.ToString().c_str());
    return 1;
  }
  auto write = WriteBenchJson(out_path, records);
  if (!write.ok()) {
    std::printf("json write failed: %s\n", write.ToString().c_str());
    return 1;
  }
  std::printf("\nlarge-scale query speedups: Q1 %.2fx, Q2 %.2fx; "
              "results -> %s\n",
              q1_large_speedup, q2_large_speedup, out_path.c_str());
  if (!bounds_ok) {
    std::printf("FAIL: engines disagree on the answer\n");
    return 1;
  }
  // The batch engine's reason to exist: at the default workload, Query 1
  // and Query 2 operator evaluation must be at least 3x faster than the
  // row engine (Query 3's join work is dominated by the mid-tree COUNT's
  // constraint emission, so it is reported but not gated here).
  if (default_config &&
      (q1_large_speedup < 3.0 || q2_large_speedup < 3.0)) {
    std::printf("FAIL: expected >=3x query speedup on Q1 and Q2 at the "
                "default workload\n");
    return 1;
  }
  return 0;
}
