// Ablation bench for the solver design choices DESIGN.md calls out:
// presolve, decomposition, LP bounds, probing, pruning — plus the
// incremental-LP core features (warm dual simplex, reduced-cost fixing,
// cardinality cuts, pseudo-cost branching, adaptive prologue). Runs one
// paper query with each feature toggled off and reports solve time, node
// counts, and the LP-core counters. Every variant must reproduce the
// all-features bounds exactly; a mismatch fails the run.
//
// Usage: bench_solver_ablation [query] [num_transactions] [k] [fanout]
//                              [out.json]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace licm::bench;
  using licm::AnswerOptions;

  BenchTraceInit();
  int qnum = 3;
  uint32_t txns = 600, k = 25, fanout = 16;
  std::string out_path = "BENCH_solver_ablation.json";
  if (argc > 1) qnum = std::atoi(argv[1]);
  if (qnum < 1 || qnum > 3) {
    // The pre-rewrite CLI took txns first; fail loudly instead of letting
    // a stale invocation crash inside query construction.
    std::printf(
        "usage: bench_solver_ablation [query 1-3] [txns] [k] [fanout] "
        "[out.json]\n  got query=%d\n", qnum);
    return 2;
  }
  if (argc > 2) txns = std::atoi(argv[2]);
  if (argc > 3) k = std::atoi(argv[3]);
  if (argc > 4) fanout = std::atoi(argv[4]);
  if (argc > 5) out_path = argv[5];

  licm::data::GeneratorConfig gen;
  gen.num_transactions = txns;
  gen.num_items = 400;
  auto dataset = licm::data::GenerateTransactions(gen);
  auto hierarchy =
      licm::anonymize::Hierarchy::BuildUniform(dataset.num_items, fanout);
  auto anon = licm::anonymize::KAnonymize(dataset, hierarchy, {k});
  if (!anon.ok()) {
    std::printf("anonymize failed: %s\n", anon.status().ToString().c_str());
    return 1;
  }
  auto enc = licm::anonymize::EncodeGeneralized(*anon, hierarchy, dataset);
  if (!enc.ok()) {
    std::printf("encode failed: %s\n", enc.status().ToString().c_str());
    return 1;
  }
  QueryParams params;
  auto query = BuildFlatQuery(qnum, params);

  struct Variant {
    const char* name;
    // Pipeline features (pre-existing).
    bool prune, presolve, decompose, lp, probing, cache;
    // Incremental-LP core features (this PR's flags).
    bool warm, rc, cuts, pc, adaptive;
  };
  constexpr bool T = true, F = false;
  const Variant variants[] = {
      {"all-features", T, T, T, T, T, T, T, T, T, T, T},
      // One LP-core feature off at a time.
      {"no-warm-lp", T, T, T, T, T, T, F, T, T, T, T},
      {"no-rc-fixing", T, T, T, T, T, T, T, F, T, T, T},
      {"no-cuts", T, T, T, T, T, T, T, T, F, T, T},
      {"no-pseudo-cost", T, T, T, T, T, T, T, T, T, F, T},
      {"no-adaptive-prologue", T, T, T, T, T, T, T, T, T, T, F},
      // Whole LP core off: the CI gate compares this against
      // all-features (features-on must be at most half its solve_ms on
      // Query 3).
      {"core-off", T, T, T, T, T, T, F, F, F, F, F},
      // Pipeline ablations (pre-existing rows).
      {"no-prune", F, T, T, T, T, T, T, T, T, T, T},
      {"no-presolve", T, F, T, T, T, T, T, T, T, T, T},
      {"no-decompose", T, T, F, T, T, T, T, T, T, T, T},
      {"no-lp-bound", T, T, T, F, T, T, T, T, T, T, T},
      {"no-probing", T, T, T, T, F, T, T, T, T, T, T},
      {"no-cache", T, T, T, T, T, F, T, T, T, T, T},
  };

  std::printf("# Solver/pipeline ablation on Query %d, k-anonymity k=%u, "
              "%u txns\n",
              qnum, k, txns);
  // solve_ms is wall time of the outermost solve; cpu_ms sums the branch &
  // bound work across strands (equal when sequential). pivots / rc_fixed /
  // cuts count the incremental-LP core's work (zero when it is off or the
  // component exceeds its size gate).
  std::printf("%-21s %7s %7s %10s %10s %10s %8s %8s %8s %6s\n", "variant",
              "min", "max", "query_ms", "solve_ms", "cpu_ms", "nodes",
              "pivots", "rc_fixed", "cuts");
  std::vector<JsonRecord> records;
  double ref_min = 0.0, ref_max = 0.0, ref_solve_ms = 0.0;
  double core_off_solve_ms = 0.0;
  bool have_ref = false, parity_ok = true;
  for (const Variant& v : variants) {
    AnswerOptions opts;
    opts.bounds.prune = v.prune;
    opts.bounds.mip.use_presolve = v.presolve;
    opts.bounds.mip.use_decomposition = v.decompose;
    opts.bounds.mip.use_lp_bound = v.lp;
    opts.bounds.mip.use_probing = v.probing;
    opts.bounds.mip.use_objective_probing = v.probing;
    opts.bounds.mip.use_cache = v.cache;
    opts.bounds.mip.use_warm_lp = v.warm;
    opts.bounds.mip.use_rc_fixing = v.rc;
    opts.bounds.mip.use_cuts = v.cuts;
    opts.bounds.mip.use_pseudo_cost = v.pc;
    opts.bounds.mip.use_adaptive_prologue = v.adaptive;
    opts.bounds.mip.time_limit_seconds = 600.0;
    // Sequential search: keeps solve_ms comparable across variants (no
    // pool contention) and the node counts deterministic.
    opts.bounds.mip.num_threads = 1;
    auto ans = licm::AnswerAggregate(*query, enc->db, opts);
    if (!ans.ok()) {
      std::printf("%-21s ERROR: %s\n", v.name,
                  ans.status().ToString().c_str());
      return 1;
    }
    const licm::solver::MipStats& st = ans->bounds.stats;
    std::printf("%-21s %7.1f %7.1f %10.1f %10.1f %10.1f %8lld %8lld %8lld "
                "%6lld\n",
                v.name, ans->bounds.min.value, ans->bounds.max.value,
                ans->query_ms, ans->solve_ms, st.cpu_seconds * 1e3,
                static_cast<long long>(st.nodes),
                static_cast<long long>(st.lp_pivots),
                static_cast<long long>(st.rc_fixed_vars),
                static_cast<long long>(st.cuts_generated));
    std::fflush(stdout);
    if (!have_ref) {
      ref_min = ans->bounds.min.value;
      ref_max = ans->bounds.max.value;
      ref_solve_ms = ans->solve_ms;
      have_ref = true;
    } else if (ans->bounds.min.value != ref_min ||
               ans->bounds.max.value != ref_max) {
      std::printf("BOUNDS MISMATCH: %s produced [%g, %g], all-features "
                  "produced [%g, %g]\n",
                  v.name, ans->bounds.min.value, ans->bounds.max.value,
                  ref_min, ref_max);
      parity_ok = false;
    }
    if (std::strcmp(v.name, "core-off") == 0) {
      core_off_solve_ms = ans->solve_ms;
    }
    JsonRecord rec;
    rec.AddString("bench", "solver_ablation")
        .AddString("variant", v.name)
        .AddInt("query", qnum)
        .AddInt("txns", txns)
        .AddInt("k", k)
        .AddRunMetrics(ans->bounds.min.value, ans->bounds.max.value,
                       ans->bounds.min.exact, ans->bounds.max.exact,
                       ans->query_ms, ans->solve_ms, st)
        .AddInt("lp_pivots", st.lp_pivots)
        .AddInt("warm_lp_solves", st.warm_lp_solves)
        .AddInt("rc_fixed_vars", st.rc_fixed_vars)
        .AddInt("cuts_generated", st.cuts_generated)
        .AddInt("cuts_reused", st.cuts_reused)
        .AddInt("strong_branch_solves", st.strong_branch_solves);
    records.push_back(std::move(rec));
  }
  if (!parity_ok) return 1;
  if (core_off_solve_ms > 0.0) {
    std::printf("\nfeatures-on solve_ms %.1f vs core-off %.1f (%.2fx)\n",
                ref_solve_ms, core_off_solve_ms,
                core_off_solve_ms / std::max(ref_solve_ms, 1e-9));
  }
  auto write = WriteBenchJson(out_path, records);
  if (!write.ok()) {
    std::printf("json write failed: %s\n", write.ToString().c_str());
    return 1;
  }
  auto finish = BenchTraceFinish();
  if (!finish.ok()) {
    std::printf("trace export failed: %s\n", finish.ToString().c_str());
    return 1;
  }
  return 0;
}
