// Ablation bench for the solver design choices DESIGN.md calls out:
// presolve, connected-component decomposition, LP bounds, probing, and
// pruning at the LICM layer. Runs the same Query-1 instance (k-anonymized
// data) with each feature toggled off and reports solve time and node
// counts.
//
// Usage: bench_solver_ablation [num_transactions] [k]
#include <cstdio>
#include <cstdlib>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace licm::bench;
  using licm::AnswerOptions;

  BenchTraceInit();
  uint32_t txns = 2000, k = 6;
  if (argc > 1) txns = std::atoi(argv[1]);
  if (argc > 2) k = std::atoi(argv[2]);

  licm::data::GeneratorConfig gen;
  gen.num_transactions = txns;
  gen.num_items = 400;
  auto dataset = licm::data::GenerateTransactions(gen);
  auto hierarchy =
      licm::anonymize::Hierarchy::BuildUniform(dataset.num_items, 4);
  auto anon = licm::anonymize::KAnonymize(dataset, hierarchy, {k});
  if (!anon.ok()) {
    std::printf("anonymize failed: %s\n", anon.status().ToString().c_str());
    return 1;
  }
  auto enc = licm::anonymize::EncodeGeneralized(*anon, hierarchy, dataset);
  if (!enc.ok()) {
    std::printf("encode failed: %s\n", enc.status().ToString().c_str());
    return 1;
  }
  QueryParams params;
  auto query = BuildFlatQuery(1, params);

  struct Variant {
    const char* name;
    bool prune, presolve, decompose, lp, probing, cache;
  };
  const Variant variants[] = {
      {"all-features", true, true, true, true, true, true},
      {"no-prune", false, true, true, true, true, true},
      {"no-presolve", true, false, true, true, true, true},
      {"no-decompose", true, true, false, true, true, true},
      {"no-lp-bound", true, true, true, false, true, true},
      {"no-probing", true, true, true, true, false, true},
      {"no-cache", true, true, true, true, true, false},
  };

  std::printf("# Solver/pipeline ablation on Query 1, k-anonymity k=%u, "
              "%u txns\n",
              k, txns);
  // solve_ms is wall time of the outermost solve; cpu_ms sums the branch &
  // bound work across strands (equal when sequential).
  std::printf("%-14s %9s %9s %10s %10s %10s %10s %9s %9s %9s %12s\n",
              "variant", "min", "max", "query_ms", "solve_ms", "cpu_ms",
              "nodes", "hits", "misses", "canon", "vars_to_solver");
  for (const Variant& v : variants) {
    AnswerOptions opts;
    opts.bounds.prune = v.prune;
    opts.bounds.mip.use_presolve = v.presolve;
    opts.bounds.mip.use_decomposition = v.decompose;
    opts.bounds.mip.use_lp_bound = v.lp;
    opts.bounds.mip.use_probing = v.probing;
    opts.bounds.mip.use_objective_probing = v.probing;
    opts.bounds.mip.use_cache = v.cache;
    opts.bounds.mip.time_limit_seconds = 120.0;
    auto ans = licm::AnswerAggregate(*query, enc->db, opts);
    if (!ans.ok()) {
      std::printf("%-14s ERROR: %s\n", v.name,
                  ans.status().ToString().c_str());
      continue;
    }
    const licm::solver::MipStats& st = ans->bounds.stats;
    std::printf("%-14s %9.1f %9.1f %10.1f %10.1f %10.1f %10lld %9lld %9lld "
                "%9lld %12zu\n",
                v.name, ans->bounds.min.value, ans->bounds.max.value,
                ans->query_ms, ans->solve_ms, st.cpu_seconds * 1e3,
                static_cast<long long>(st.nodes),
                static_cast<long long>(st.cache_hits),
                static_cast<long long>(st.cache_misses),
                static_cast<long long>(st.canonical_forms),
                ans->bounds.prune_stats.vars_after);
    std::fflush(stdout);
  }
  auto finish = BenchTraceFinish();
  if (!finish.ok()) {
    std::printf("trace export failed: %s\n", finish.ToString().c_str());
    return 1;
  }
  return 0;
}
