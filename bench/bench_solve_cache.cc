// End-to-end benchmark of the isomorphic-component solve cache: runs the
// paper's Query 1/2/3 on an anonymized workload with the cache enabled
// and disabled, asserts the bounds are bit-identical, and reports the
// speedup and cache hit rate. Writes BENCH_solve_cache.json.
//
// Schemes: "kanon" (default) — flat generalization encoding, which
// decomposes into thousands of small isomorphic group components, the
// regime the cache targets; "bipartite" — the permutation encoding (whose
// shared items couple everything into one component; included as the
// cache's worst case).
//
// Usage: bench_solve_cache [scheme] [num_transactions] [k] [items] [fanout]
//                          [queries] [repeats] [out.json]
// `queries` is a digit string, e.g. "13" runs Query 1 and Query 3.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "harness.h"

namespace {

struct RunOutcome {
  double min = 0, max = 0;
  bool min_exact = false, max_exact = false;
  double total_ms = 0;  // full AnswerAggregate wall time
  double query_ms = 0, solve_ms = 0;
  licm::solver::MipStats stats;
  licm::bench::PhaseBreakdown phases;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace licm::bench;
  using licm::AnswerOptions;

  BenchTraceInit();
  bool bipartite = false;
  uint32_t txns = 0, k = 25, items = 400, fanout = 16;
  std::string queries = "123";
  int repeats = 2;
  std::string out_path = "BENCH_solve_cache.json";
  const bool default_config = argc <= 1;
  if (argc > 1) bipartite = std::strcmp(argv[1], "bipartite") == 0;
  if (argc > 2) txns = std::atoi(argv[2]);
  if (argc > 3) k = std::atoi(argv[3]);
  if (argc > 4) items = std::atoi(argv[4]);
  if (argc > 5) fanout = std::atoi(argv[5]);
  if (argc > 6) queries = argv[6];
  if (argc > 7) repeats = std::atoi(argv[7]);
  if (argc > 8) out_path = argv[8];
  if (txns == 0) txns = bipartite ? 200 : 2000;
  if (repeats < 1) repeats = 1;

  licm::data::GeneratorConfig gen;
  gen.num_transactions = txns;
  gen.num_items = items;
  auto dataset = licm::data::GenerateTransactions(gen);
  licm::Result<licm::anonymize::EncodedDb> enc =
      licm::Status::Internal("unset");
  if (bipartite) {
    auto groups = licm::anonymize::SafeGrouping(dataset, {k, 2, gen.seed});
    if (!groups.ok()) {
      std::printf("grouping failed: %s\n",
                  groups.status().ToString().c_str());
      return 1;
    }
    enc = licm::anonymize::EncodeBipartite(*groups, dataset);
  } else {
    auto hierarchy =
        licm::anonymize::Hierarchy::BuildUniform(dataset.num_items, fanout);
    auto anon = licm::anonymize::KAnonymize(dataset, hierarchy, {k});
    if (!anon.ok()) {
      std::printf("anonymize failed: %s\n",
                  anon.status().ToString().c_str());
      return 1;
    }
    enc = licm::anonymize::EncodeGeneralized(*anon, hierarchy, dataset);
  }
  if (!enc.ok()) {
    std::printf("encode failed: %s\n", enc.status().ToString().c_str());
    return 1;
  }
  // Encoding runs once up front; fold its breakdown into every row so the
  // per-query rows still carry the full pipeline picture.
  const PhaseBreakdown encode_phases = PhasesSince(0);

  auto run = [&](int qnum, bool use_cache) -> licm::Result<RunOutcome> {
    QueryParams params;
    // Popularity threshold scaled with the transaction count, as in
    // RunCell, so Query 3 stays non-trivial at bipartite scale.
    if (bipartite && txns < 6000) {
      params.q3_x = std::max<int64_t>(2, params.q3_x * txns / 6000);
    }
    auto query = bipartite ? BuildBipartiteQuery(qnum, params)
                           : BuildFlatQuery(qnum, params);
    AnswerOptions opts;
    opts.bounds.mip.use_cache = use_cache;
    // A wall-clock limit would make cache-on and cache-off runs diverge
    // on hard components (different elapsed time when a component is
    // reached); the deterministic per-component node cap bounds work
    // instead, so both runs compute identical results.
    opts.bounds.mip.time_limit_seconds = 1e9;
    opts.bounds.mip.max_nodes_per_component = 200'000;
    // Node-capped *parallel* searches stop at run-order-dependent bounds
    // (see DESIGN.md); force sequential search so the cache on/off
    // equality gate below stays sound on multicore machines.
    opts.bounds.mip.num_threads = 1;
    licm::StopWatch watch;
    const int64_t mark = licm::telemetry::NowNs();
    LICM_ASSIGN_OR_RETURN(auto ans,
                          licm::AnswerAggregate(*query, enc->db, opts));
    RunOutcome out;
    out.total_ms = watch.ElapsedMs();
    out.phases = PhasesSince(mark);
    out.min = ans.bounds.min.value;
    out.max = ans.bounds.max.value;
    out.min_exact = ans.bounds.min.exact;
    out.max_exact = ans.bounds.max.exact;
    out.query_ms = ans.query_ms;
    out.solve_ms = ans.solve_ms;
    out.stats = ans.bounds.stats;
    return out;
  };

  std::printf("# Solve-cache benchmark: %s, k=%u, %u txns\n",
              bipartite ? "bipartite" : "k-anonymity", k, txns);
  std::printf("%-7s %-6s %9s %9s %10s %10s %10s %8s\n", "query", "cache",
              "min", "max", "total_ms", "solve_ms", "hit_rate", "speedup");

  std::vector<JsonRecord> records;
  bool bounds_ok = true;
  double best_speedup = 0.0;
  // Best-of-N wall times: relational evaluation is allocation-heavy and
  // noisy at the hundreds-of-ms scale, and the runs are deterministic, so
  // the minimum is the right point estimate. Cache-on runs first so any
  // process warmup penalizes the cached side (conservative speedup).
  auto run_best = [&](int qnum, bool use_cache) -> licm::Result<RunOutcome> {
    LICM_ASSIGN_OR_RETURN(RunOutcome best, run(qnum, use_cache));
    for (int i = 1; i < repeats; ++i) {
      LICM_ASSIGN_OR_RETURN(RunOutcome r, run(qnum, use_cache));
      if (r.total_ms < best.total_ms) best = r;
    }
    return best;
  };

  for (char qc : queries) {
    if (qc < '1' || qc > '3') continue;
    const int qnum = qc - '0';
    auto on = run_best(qnum, true);
    auto off = run_best(qnum, false);
    if (!off.ok() || !on.ok()) {
      std::printf("query %d ERROR: %s\n", qnum,
                  (off.ok() ? on.status() : off.status()).ToString().c_str());
      return 1;
    }
    // The cache must be invisible in the answer: identical bounds and
    // identical exactness, not merely close.
    if (on->min != off->min || on->max != off->max ||
        on->min_exact != off->min_exact || on->max_exact != off->max_exact) {
      std::printf("query %d BOUND MISMATCH: cache-on [%g, %g] (%d/%d) vs "
                  "cache-off [%g, %g] (%d/%d)\n",
                  qnum, on->min, on->max, on->min_exact, on->max_exact,
                  off->min, off->max, off->min_exact, off->max_exact);
      bounds_ok = false;
    }
    double speedup = on->total_ms > 0 ? off->total_ms / on->total_ms : 0.0;
    if (speedup > best_speedup) best_speedup = speedup;
    int64_t lookups = on->stats.cache_hits + on->stats.cache_misses;
    double hit_rate =
        lookups > 0
            ? static_cast<double>(on->stats.cache_hits) / lookups
            : 0.0;
    std::printf("%-7d %-6s %9.1f %9.1f %10.1f %10.1f %10s %8s\n", qnum,
                "off", off->min, off->max, off->total_ms, off->solve_ms, "-",
                "-");
    std::printf("%-7d %-6s %9.1f %9.1f %10.1f %10.1f %9.1f%% %7.2fx\n",
                qnum, "on", on->min, on->max, on->total_ms, on->solve_ms,
                100.0 * hit_rate, speedup);
    for (const RunOutcome* r : {&*off, &*on}) {
      JsonRecord rec;
      rec.AddString("bench", "solve_cache")
          .AddString("scheme", bipartite ? "bipartite" : "kanon")
          .AddInt("query", qnum)
          .AddBool("cache", r == &*on)
          .AddInt("num_transactions", txns)
          .AddInt("k", k)
          .AddNumber("total_ms", r->total_ms)
          .AddRunMetrics(r->min, r->max, r->min_exact, r->max_exact,
                         r->query_ms, r->solve_ms, r->stats);
      PhaseBreakdown ph = r->phases;
      ph.encode_ms = encode_phases.encode_ms;
      rec.AddPhaseBreakdown(ph);
      if (r == &*on) rec.AddNumber("speedup", speedup);
      records.push_back(std::move(rec));
    }
    std::fflush(stdout);
  }

  auto finish = BenchTraceFinish();
  if (!finish.ok()) {
    std::printf("trace export failed: %s\n", finish.ToString().c_str());
    return 1;
  }
  auto write = WriteBenchJson(out_path, records);
  if (!write.ok()) {
    std::printf("json write failed: %s\n", write.ToString().c_str());
    return 1;
  }
  std::printf("\nbest end-to-end speedup: %.2fx; results -> %s\n",
              best_speedup, out_path.c_str());
  if (!bounds_ok) {
    std::printf("FAIL: cache changed the answer\n");
    return 1;
  }
  // At the default workload the cache is expected to at least halve the
  // end-to-end latency of one of the three queries.
  if (default_config && best_speedup < 2.0) {
    std::printf("FAIL: expected >=2x speedup on some query at the default "
                "workload\n");
    return 1;
  }
  return 0;
}
