// Figure 7 reproduction: effectiveness of pruning. For Query 2 and
// Query 3 over k-anonymized data (k = 6), prints the number of variables
// and constraints (a) after LICM modeling, (b) after query processing, and
// (c) after pruning — the paper's Figure 7(a)/(b) tables.
//
// Expected shape: querying adds relatively few variables/constraints on
// top of modeling; pruning removes the overwhelming majority for the
// selective Query 2 and is less effective (but still large) for Query 3.
//
// Usage: bench_fig7 [num_transactions] [k]
#include <cstdio>
#include <cstdlib>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace licm::bench;
  BenchTraceInit();
  BenchConfig config;
  if (argc > 1) config.num_transactions = std::atoi(argv[1]);
  uint32_t k = 6;
  if (argc > 2) k = std::atoi(argv[2]);
  QueryParams params;

  std::printf("# Figure 7: pruning effectiveness, k-anonymity k = %u "
              "(%u txns)\n",
              k, config.num_transactions);
  std::printf("%-4s %-12s %14s %14s %14s\n", "qry", "metric",
              "LICM modeling", "Querying", "After pruning");
  for (int q : {2, 3}) {
    auto cell = RunCell(Scheme::kKAnon, q, k, config, params);
    if (!cell.ok()) {
      std::printf("Q%-3d ERROR: %s\n", q, cell.status().ToString().c_str());
      continue;
    }
    std::printf("Q%-3d %-12s %14zu %14zu %14zu\n", q, "#variables",
                cell->vars_model, cell->vars_query, cell->vars_pruned);
    std::printf("Q%-3d %-12s %14zu %14zu %14zu\n", q, "#constraints",
                cell->cons_model, cell->cons_query, cell->cons_pruned);
    std::fflush(stdout);
  }
  auto finish = BenchTraceFinish();
  if (!finish.ok()) {
    std::printf("trace export failed: %s\n", finish.ToString().c_str());
    return 1;
  }
  return 0;
}
