// google-benchmark microbenchmarks for the LICM operator implementations
// and the solver primitives: per-operator throughput over synthetic LICM
// relations of increasing size, and MIP solve latency for the two
// canonical constraint structures (cardinality blocks, permutations).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "licm/aggregate.h"
#include "licm/ops.h"
#include "solver/mip_solver.h"

namespace licm {
namespace {

// A TRANSITEM-style LICM relation with one cardinality block per
// transaction (the generalization-encoding shape).
LicmDatabase MakeDb(int64_t txns, int items_per_txn) {
  LicmDatabase db;
  LicmRelation r(rel::Schema(
      {{"tid", rel::ValueType::kInt}, {"item", rel::ValueType::kInt}}));
  for (int64_t t = 0; t < txns; ++t) {
    std::vector<BVar> block;
    for (int i = 0; i < items_per_txn; ++i) {
      BVar b = db.pool().New();
      block.push_back(b);
      r.AppendUnchecked({t, static_cast<int64_t>(i)}, Ext::Maybe(b));
    }
    db.constraints().AddCardinality(block, 1,
                                    static_cast<int64_t>(block.size()));
  }
  LICM_CHECK_OK(db.AddRelation("r", std::move(r)));
  return db;
}

void BM_SelectOp(benchmark::State& state) {
  LicmDatabase db = MakeDb(state.range(0), 5);
  const LicmRelation& r = *db.GetRelation("r").value();
  std::vector<rel::Predicate> preds{
      {"item", rel::CmpOp::kLt, rel::Value(int64_t{3})}};
  for (auto _ : state) {
    auto out = SelectOp(r, preds);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 5);
}
BENCHMARK(BM_SelectOp)->Range(256, 16384);

void BM_ProjectOp(benchmark::State& state) {
  LicmDatabase db = MakeDb(state.range(0), 5);
  const LicmRelation& r = *db.GetRelation("r").value();
  for (auto _ : state) {
    state.PauseTiming();
    LicmDatabase scratch = db;  // projection appends variables
    OpContext ctx{&scratch.pool(), &scratch.constraints()};
    state.ResumeTiming();
    auto out = ProjectOp(r, {"tid"}, ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 5);
}
BENCHMARK(BM_ProjectOp)->Range(256, 4096);

void BM_CountPredicateOp(benchmark::State& state) {
  LicmDatabase db = MakeDb(state.range(0), 5);
  const LicmRelation& r = *db.GetRelation("r").value();
  for (auto _ : state) {
    state.PauseTiming();
    LicmDatabase scratch = db;
    OpContext ctx{&scratch.pool(), &scratch.constraints()};
    state.ResumeTiming();
    auto out = CountPredicateOp(r, "tid", rel::CmpOp::kGe, 2, ctx);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 5);
}
BENCHMARK(BM_CountPredicateOp)->Range(256, 4096);

void BM_PruneReachability(benchmark::State& state) {
  LicmDatabase db = MakeDb(state.range(0), 5);
  // Seed with the variables of the first 1% of transactions.
  std::vector<BVar> seeds;
  for (BVar v = 0; v < db.pool().size() / 100 + 1; ++v) seeds.push_back(v);
  for (auto _ : state) {
    auto pr = Prune(db.constraints(), seeds, db.pool().size());
    benchmark::DoNotOptimize(pr);
  }
}
BENCHMARK(BM_PruneReachability)->Range(1024, 65536);

void BM_SolveCardinalityBlocks(benchmark::State& state) {
  LicmDatabase db = MakeDb(state.range(0), 5);
  const LicmRelation& r = *db.GetRelation("r").value();
  Objective obj = CountObjective(r);
  for (auto _ : state) {
    auto bounds = ComputeBounds(obj, db.constraints(), db.pool().size());
    benchmark::DoNotOptimize(bounds);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SolveCardinalityBlocks)->Range(64, 4096);

void BM_SolvePermutation(benchmark::State& state) {
  // One k x k permutation block with random 0/1 objective weights.
  const int k = static_cast<int>(state.range(0));
  solver::LinearProgram lp;
  Rng rng(3);
  std::vector<std::vector<solver::VarId>> b(k, std::vector<solver::VarId>(k));
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      b[i][j] = lp.AddBinary();
      lp.SetObjectiveCoef(b[i][j], static_cast<double>(rng.Uniform(10)));
    }
  }
  for (int i = 0; i < k; ++i) {
    solver::Row r1, r2;
    for (int j = 0; j < k; ++j) {
      r1.terms.push_back({b[i][j], 1.0});
      r2.terms.push_back({b[j][i], 1.0});
    }
    r1.op = r2.op = solver::RowOp::kEq;
    r1.rhs = r2.rhs = 1.0;
    lp.AddRow(std::move(r1));
    lp.AddRow(std::move(r2));
  }
  solver::MipSolver solver;
  for (auto _ : state) {
    auto res = solver.Solve(lp, solver::Sense::kMaximize);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_SolvePermutation)->DenseRange(4, 12, 4);

}  // namespace
}  // namespace licm

BENCHMARK_MAIN();
