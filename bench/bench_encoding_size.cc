// Figure 1 vs Figure 2(c) reproduction: representation size of a
// generalized item under the U-relation encoding (which enumerates every
// non-empty subset of the covered leaves — 2^g - 1 rows) versus LICM
// (g maybe-tuples + one cardinality constraint).
//
// Prints one row per generalized-node size g, demonstrating the paper's
// succinctness claim (Section III).
#include <cstdio>

int main() {
  std::printf("# Representation of one generalized item covering g leaves\n");
  std::printf("%-4s %22s %18s %18s\n", "g", "U-relation rows (2^g-1)",
              "LICM tuples (g)", "LICM constraints");
  for (int g = 2; g <= 20; g += (g < 8 ? 1 : 4)) {
    const unsigned long long urel = (1ull << g) - 1;
    std::printf("%-4d %22llu %18d %18d\n", g, urel, g, 1);
  }
  std::printf("\n# Permutation (bijection) of a size-k group: models that\n"
              "# enumerate possible worlds need k! entries; LICM needs k^2\n"
              "# variables and 2k constraints (Appendix B).\n");
  std::printf("%-4s %22s %18s %18s\n", "k", "worlds (k!)", "LICM vars (k^2)",
              "LICM constraints");
  unsigned long long fact = 1;
  for (int k = 2; k <= 12; ++k) {
    fact *= static_cast<unsigned long long>(k);
    std::printf("%-4d %22llu %18d %18d\n", k, fact, k * k, 2 * k);
  }
  return 0;
}
