// Shared benchmark harness: datasets, the paper's three evaluation queries
// (Section V-B), anonymization pipelines, and the LICM-vs-Monte-Carlo
// measurement loop used by the Figure 5/6/7 reproductions.
#ifndef LICM_BENCH_HARNESS_H_
#define LICM_BENCH_HARNESS_H_

#include <string>
#include <utility>
#include <vector>

#include "anonymize/licm_encode.h"
#include "licm/evaluator.h"
#include "sampler/monte_carlo.h"

namespace licm::bench {

/// Parameters of the three paper queries, pre-scaled to the synthetic
/// dataset (locations in [0,1000), prices in [0,40)).
struct QueryParams {
  // Query 1: count Pa-transactions containing >= 1 Pb-item. The paper
  // used Pa selectivity 0.5% on 515K transactions (~2.5K qualifying
  // transactions); at laptop scale we widen Pa to 10% so the answer
  // magnitude (hundreds) matches the paper's figures.
  int64_t q1_pa_max_loc = 100;   // loc < 100    (10% of locations)
  int64_t q1_pb_max_price = 10;  // price < 10   (25% of prices)
  // Query 2: count Pa-transactions with >= X Pb-items AND >= Y Pc-items.
  int64_t q2_pa_max_loc = 100;
  int64_t q2_pb_max_price = 10;  // Pb: price < 10  (25%)
  int64_t q2_pc_min_price = 30;  // Pc: price >= 30 (25%)
  int64_t q2_x = 4;
  int64_t q2_y = 2;
  // Query 3: count Pa-transactions containing >= 1 item that appears in
  // >= X Pb-transactions. The paper used selectivity 0.3% and X = 80 at
  // 515K transactions; at laptop scale that predicate is empty, so the
  // defaults widen Pa/Pb to 3% and scale X down, preserving the query
  // shape (mid-tree COUNT + join).
  int64_t q3_pa_max_loc = 50;  // 5%
  int64_t q3_pb_max_loc = 50;  // 5%
  /// Popularity threshold, sized so that item popularity is borderline
  /// (and therefore genuinely uncertain) for mid-tail items at the default
  /// scale — the regime the paper's Query 3 probes.
  int64_t q3_x = 8;
};

/// Builds paper query `qnum` (1..3) over the flattened trans_item view
/// (generalization / suppression encodings).
rel::QueryNodePtr BuildFlatQuery(int qnum, const QueryParams& p);

/// Same queries over the bipartite three-relation encoding, with the
/// transaction/item predicates pushed below the composition joins.
rel::QueryNodePtr BuildBipartiteQuery(int qnum, const QueryParams& p);

enum class Scheme { kKm, kKAnon, kBipartite, kSuppression };
const char* SchemeName(Scheme s);

/// Per-phase wall-time breakdown of one bench cell, derived from the
/// telemetry spans recorded while the cell ran (common/telemetry.h).
/// Parallel phases (search) sum over concurrent strands, so their total
/// can exceed the cell's wall time on multi-thread runs.
struct PhaseBreakdown {
  double encode_ms = 0;     // anonymized data -> LICM database
  double prune_ms = 0;      // constraint-graph pruning
  double presolve_ms = 0;   // solver presolve passes
  double decompose_ms = 0;  // connected-component decomposition
  double search_ms = 0;     // branch & bound component searches
  double cache_ms = 0;      // canonical-form fingerprinting for the cache
};

/// One measured cell of Figure 5/6: LICM bounds + MC bounds + timings.
struct CellResult {
  double l_min = 0, l_max = 0;
  bool l_min_exact = true, l_max_exact = true;
  /// Proved outer bounds (== l_min/l_max when exact; wider on time limit).
  double l_min_proved = 0, l_max_proved = 0;
  double m_min = 0, m_max = 0;
  double model_ms = 0;   // anonymized data -> LICM database (L-model)
  double query_ms = 0;   // LICM operator evaluation (L-query)
  double solve_ms = 0;   // both BIP solves (L-solve)
  double mc_ms = 0;      // 20-world Monte Carlo (MC)
  // Figure 7 instrumentation.
  size_t vars_model = 0, cons_model = 0;       // after modeling
  size_t vars_query = 0, cons_query = 0;       // after query processing
  size_t vars_pruned = 0, cons_pruned = 0;     // after pruning
  /// Solver statistics for the LICM solve (nodes, cache hits/misses, ...).
  solver::MipStats solve_stats;
  /// Span-derived wall-time breakdown of the cell (see PhaseBreakdown).
  PhaseBreakdown phases;
};

struct BenchConfig {
  uint32_t num_transactions = 6000;  // generalization-scheme scale
  uint32_t bipartite_transactions = 120;  // permutation instances are
                                          // solver-hard; keep them smaller
  /// Sized for a transactions/items ratio of ~50, comparable in density to
  /// BMS-POS (515K txns / 1657 items); k-anonymity degenerates on sparse
  /// domains.
  uint32_t num_items = 120;
  uint64_t seed = 42;
  int mc_worlds = 20;        // the paper's sample size
  double solver_time_limit = 60.0;
  /// Permutation instances are solver-hard (see DESIGN.md); cap their
  /// solves separately so full sweeps stay laptop-sized.
  double bipartite_time_limit = 15.0;
  uint32_t hierarchy_fanout = 2;
};

/// Solver thread count for bench runs: the LICM_THREADS environment
/// variable when set to a positive integer, else `fallback` (0 =
/// auto-detect, see MipOptions::num_threads). Lets one binary sweep
/// thread counts without rebuilds: `LICM_THREADS=1 ./bench_fig5 ...`.
int ThreadsFromEnv(int fallback = 0);

/// Aggregates the spans recorded since `since_ns` (a telemetry::NowNs()
/// mark) into a PhaseBreakdown.
PhaseBreakdown PhasesSince(int64_t since_ns);

/// Starts the process-wide trace session every bench binary records into.
/// Collection is always on (its cost is noise at bench event volumes);
/// the LICM_TRACE=<path> environment variable controls whether
/// BenchTraceFinish() exports the trace.
void BenchTraceInit();

/// Stops tracing and, when LICM_TRACE=<path> is set, writes the Chrome
/// trace-event JSON to <path> and a per-phase summary to <path>.phases.json.
Status BenchTraceFinish();

/// Runs one (scheme, query, k) cell end to end.
Result<CellResult> RunCell(Scheme scheme, int qnum, uint32_t k,
                           const BenchConfig& config,
                           const QueryParams& params);

/// One flat JSON object, keys in insertion order. Values are rendered at
/// Add time; no external JSON dependency. Used for the machine-readable
/// BENCH_*.json files every bench binary writes next to its stdout table.
class JsonRecord {
 public:
  JsonRecord& AddString(const std::string& key, const std::string& value);
  JsonRecord& AddNumber(const std::string& key, double value);
  JsonRecord& AddInt(const std::string& key, int64_t value);
  JsonRecord& AddBool(const std::string& key, bool value);

  /// The standard per-run measurement block: bound values, exactness,
  /// wall times (including the wall/CPU solve split), node count, and
  /// cache hit rate derived from `stats`.
  JsonRecord& AddRunMetrics(double min_value, double max_value,
                            bool min_exact, bool max_exact, double query_ms,
                            double solve_ms, const solver::MipStats& stats);

  /// The per-phase wall-time block: encode/prune/presolve/decompose/
  /// search/cache milliseconds from the telemetry spans.
  JsonRecord& AddPhaseBreakdown(const PhaseBreakdown& phases);

  /// Renders as {"key":value,...}.
  std::string ToJson() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Peak resident set size of this process in kilobytes, via
/// getrusage(RUSAGE_SELF). Monotone over the process lifetime.
int64_t PeakRssKb();

/// Writes `records` to `path` as a JSON array (one object per line).
/// Every record is prefixed with provenance fields — git_sha, build_type,
/// hardware_concurrency, max_rss_kb, and the process metrics-registry
/// totals (solver nodes / rows scanned / constraints emitted / arena
/// bytes at write time) — so BENCH_*.json trajectories stay comparable
/// across commits and machines, and memory/work regressions are visible
/// alongside wall times.
Status WriteBenchJson(const std::string& path,
                      const std::vector<JsonRecord>& records);

/// Appends rows to an existing BENCH file (written by WriteBenchJson),
/// preserving its rows; starts a fresh file when `path` is missing or
/// not a bench array. Lets multi-phase drivers (e.g. licm_client runs
/// against several server topologies) accumulate one comparable file.
Status AppendBenchJson(const std::string& path,
                       const std::vector<JsonRecord>& records);

}  // namespace licm::bench

#endif  // LICM_BENCH_HARNESS_H_
