
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/anonymize_test.cc" "tests/CMakeFiles/anonymize_test.dir/anonymize_test.cc.o" "gcc" "tests/CMakeFiles/anonymize_test.dir/anonymize_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/anonymize/CMakeFiles/licm_anonymize.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/licm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sampler/CMakeFiles/licm_sampler.dir/DependInfo.cmake"
  "/root/repo/build/src/licm/CMakeFiles/licm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/licm_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/licm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/licm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
