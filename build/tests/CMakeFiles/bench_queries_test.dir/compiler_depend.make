# Empty compiler generated dependencies file for bench_queries_test.
# This may be replaced when dependencies are built.
