file(REMOVE_RECURSE
  "CMakeFiles/bench_queries_test.dir/bench_queries_test.cc.o"
  "CMakeFiles/bench_queries_test.dir/bench_queries_test.cc.o.d"
  "bench_queries_test"
  "bench_queries_test.pdb"
  "bench_queries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
