# Empty dependencies file for probabilistic_test.
# This may be replaced when dependencies are built.
