file(REMOVE_RECURSE
  "CMakeFiles/probabilistic_test.dir/probabilistic_test.cc.o"
  "CMakeFiles/probabilistic_test.dir/probabilistic_test.cc.o.d"
  "probabilistic_test"
  "probabilistic_test.pdb"
  "probabilistic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probabilistic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
