file(REMOVE_RECURSE
  "CMakeFiles/licm_ops_test.dir/licm_ops_test.cc.o"
  "CMakeFiles/licm_ops_test.dir/licm_ops_test.cc.o.d"
  "licm_ops_test"
  "licm_ops_test.pdb"
  "licm_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
