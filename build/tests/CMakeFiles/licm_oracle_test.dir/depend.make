# Empty dependencies file for licm_oracle_test.
# This may be replaced when dependencies are built.
