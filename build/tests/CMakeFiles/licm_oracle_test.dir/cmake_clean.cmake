file(REMOVE_RECURSE
  "CMakeFiles/licm_oracle_test.dir/licm_oracle_test.cc.o"
  "CMakeFiles/licm_oracle_test.dir/licm_oracle_test.cc.o.d"
  "licm_oracle_test"
  "licm_oracle_test.pdb"
  "licm_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
