file(REMOVE_RECURSE
  "CMakeFiles/licm_extensions_test.dir/licm_extensions_test.cc.o"
  "CMakeFiles/licm_extensions_test.dir/licm_extensions_test.cc.o.d"
  "licm_extensions_test"
  "licm_extensions_test.pdb"
  "licm_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
