
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/licm_extensions_test.cc" "tests/CMakeFiles/licm_extensions_test.dir/licm_extensions_test.cc.o" "gcc" "tests/CMakeFiles/licm_extensions_test.dir/licm_extensions_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/licm/CMakeFiles/licm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/licm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/licm_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/licm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
