# Empty dependencies file for licm_extensions_test.
# This may be replaced when dependencies are built.
