# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/solver_simplex_test[1]_include.cmake")
include("/root/repo/build/tests/solver_mip_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/licm_ops_test[1]_include.cmake")
include("/root/repo/build/tests/licm_oracle_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/anonymize_test[1]_include.cmake")
include("/root/repo/build/tests/encode_test[1]_include.cmake")
include("/root/repo/build/tests/bench_queries_test[1]_include.cmake")
include("/root/repo/build/tests/licm_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/probabilistic_test[1]_include.cmake")
include("/root/repo/build/tests/lp_format_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
