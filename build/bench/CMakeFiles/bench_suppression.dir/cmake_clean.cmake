file(REMOVE_RECURSE
  "CMakeFiles/bench_suppression.dir/bench_suppression.cc.o"
  "CMakeFiles/bench_suppression.dir/bench_suppression.cc.o.d"
  "bench_suppression"
  "bench_suppression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suppression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
