file(REMOVE_RECURSE
  "CMakeFiles/licm_bench_harness.dir/harness.cc.o"
  "CMakeFiles/licm_bench_harness.dir/harness.cc.o.d"
  "liblicm_bench_harness.a"
  "liblicm_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
