file(REMOVE_RECURSE
  "liblicm_bench_harness.a"
)
