# Empty dependencies file for licm_bench_harness.
# This may be replaced when dependencies are built.
