# Empty compiler generated dependencies file for bench_encoding_size.
# This may be replaced when dependencies are built.
