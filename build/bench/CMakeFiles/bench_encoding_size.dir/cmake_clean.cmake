file(REMOVE_RECURSE
  "CMakeFiles/bench_encoding_size.dir/bench_encoding_size.cc.o"
  "CMakeFiles/bench_encoding_size.dir/bench_encoding_size.cc.o.d"
  "bench_encoding_size"
  "bench_encoding_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encoding_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
