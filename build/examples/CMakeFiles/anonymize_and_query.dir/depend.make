# Empty dependencies file for anonymize_and_query.
# This may be replaced when dependencies are built.
