file(REMOVE_RECURSE
  "CMakeFiles/anonymize_and_query.dir/anonymize_and_query.cpp.o"
  "CMakeFiles/anonymize_and_query.dir/anonymize_and_query.cpp.o.d"
  "anonymize_and_query"
  "anonymize_and_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymize_and_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
