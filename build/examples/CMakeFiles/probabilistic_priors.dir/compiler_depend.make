# Empty compiler generated dependencies file for probabilistic_priors.
# This may be replaced when dependencies are built.
