file(REMOVE_RECURSE
  "CMakeFiles/probabilistic_priors.dir/probabilistic_priors.cpp.o"
  "CMakeFiles/probabilistic_priors.dir/probabilistic_priors.cpp.o.d"
  "probabilistic_priors"
  "probabilistic_priors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probabilistic_priors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
