file(REMOVE_RECURSE
  "CMakeFiles/permutation_privacy.dir/permutation_privacy.cpp.o"
  "CMakeFiles/permutation_privacy.dir/permutation_privacy.cpp.o.d"
  "permutation_privacy"
  "permutation_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permutation_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
