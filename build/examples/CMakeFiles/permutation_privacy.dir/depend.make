# Empty dependencies file for permutation_privacy.
# This may be replaced when dependencies are built.
