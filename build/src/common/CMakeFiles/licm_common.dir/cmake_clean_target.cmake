file(REMOVE_RECURSE
  "liblicm_common.a"
)
