file(REMOVE_RECURSE
  "CMakeFiles/licm_common.dir/rng.cc.o"
  "CMakeFiles/licm_common.dir/rng.cc.o.d"
  "liblicm_common.a"
  "liblicm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
