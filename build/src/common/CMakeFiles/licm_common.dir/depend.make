# Empty dependencies file for licm_common.
# This may be replaced when dependencies are built.
