file(REMOVE_RECURSE
  "CMakeFiles/licm_relational.dir/engine.cc.o"
  "CMakeFiles/licm_relational.dir/engine.cc.o.d"
  "CMakeFiles/licm_relational.dir/optimizer.cc.o"
  "CMakeFiles/licm_relational.dir/optimizer.cc.o.d"
  "CMakeFiles/licm_relational.dir/query.cc.o"
  "CMakeFiles/licm_relational.dir/query.cc.o.d"
  "CMakeFiles/licm_relational.dir/relation.cc.o"
  "CMakeFiles/licm_relational.dir/relation.cc.o.d"
  "CMakeFiles/licm_relational.dir/value.cc.o"
  "CMakeFiles/licm_relational.dir/value.cc.o.d"
  "liblicm_relational.a"
  "liblicm_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
