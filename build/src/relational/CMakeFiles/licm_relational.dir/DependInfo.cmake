
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/engine.cc" "src/relational/CMakeFiles/licm_relational.dir/engine.cc.o" "gcc" "src/relational/CMakeFiles/licm_relational.dir/engine.cc.o.d"
  "/root/repo/src/relational/optimizer.cc" "src/relational/CMakeFiles/licm_relational.dir/optimizer.cc.o" "gcc" "src/relational/CMakeFiles/licm_relational.dir/optimizer.cc.o.d"
  "/root/repo/src/relational/query.cc" "src/relational/CMakeFiles/licm_relational.dir/query.cc.o" "gcc" "src/relational/CMakeFiles/licm_relational.dir/query.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/relational/CMakeFiles/licm_relational.dir/relation.cc.o" "gcc" "src/relational/CMakeFiles/licm_relational.dir/relation.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/relational/CMakeFiles/licm_relational.dir/value.cc.o" "gcc" "src/relational/CMakeFiles/licm_relational.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/licm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
