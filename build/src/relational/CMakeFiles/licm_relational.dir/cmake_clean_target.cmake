file(REMOVE_RECURSE
  "liblicm_relational.a"
)
