# Empty compiler generated dependencies file for licm_relational.
# This may be replaced when dependencies are built.
