file(REMOVE_RECURSE
  "CMakeFiles/licm_core.dir/aggregate.cc.o"
  "CMakeFiles/licm_core.dir/aggregate.cc.o.d"
  "CMakeFiles/licm_core.dir/constraint.cc.o"
  "CMakeFiles/licm_core.dir/constraint.cc.o.d"
  "CMakeFiles/licm_core.dir/evaluator.cc.o"
  "CMakeFiles/licm_core.dir/evaluator.cc.o.d"
  "CMakeFiles/licm_core.dir/licm_relation.cc.o"
  "CMakeFiles/licm_core.dir/licm_relation.cc.o.d"
  "CMakeFiles/licm_core.dir/ops.cc.o"
  "CMakeFiles/licm_core.dir/ops.cc.o.d"
  "CMakeFiles/licm_core.dir/probabilistic.cc.o"
  "CMakeFiles/licm_core.dir/probabilistic.cc.o.d"
  "CMakeFiles/licm_core.dir/prune.cc.o"
  "CMakeFiles/licm_core.dir/prune.cc.o.d"
  "CMakeFiles/licm_core.dir/worlds.cc.o"
  "CMakeFiles/licm_core.dir/worlds.cc.o.d"
  "liblicm_core.a"
  "liblicm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
