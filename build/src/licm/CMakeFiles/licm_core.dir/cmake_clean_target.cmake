file(REMOVE_RECURSE
  "liblicm_core.a"
)
