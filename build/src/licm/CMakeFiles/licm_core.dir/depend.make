# Empty dependencies file for licm_core.
# This may be replaced when dependencies are built.
