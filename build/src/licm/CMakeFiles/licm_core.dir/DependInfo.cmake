
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/licm/aggregate.cc" "src/licm/CMakeFiles/licm_core.dir/aggregate.cc.o" "gcc" "src/licm/CMakeFiles/licm_core.dir/aggregate.cc.o.d"
  "/root/repo/src/licm/constraint.cc" "src/licm/CMakeFiles/licm_core.dir/constraint.cc.o" "gcc" "src/licm/CMakeFiles/licm_core.dir/constraint.cc.o.d"
  "/root/repo/src/licm/evaluator.cc" "src/licm/CMakeFiles/licm_core.dir/evaluator.cc.o" "gcc" "src/licm/CMakeFiles/licm_core.dir/evaluator.cc.o.d"
  "/root/repo/src/licm/licm_relation.cc" "src/licm/CMakeFiles/licm_core.dir/licm_relation.cc.o" "gcc" "src/licm/CMakeFiles/licm_core.dir/licm_relation.cc.o.d"
  "/root/repo/src/licm/ops.cc" "src/licm/CMakeFiles/licm_core.dir/ops.cc.o" "gcc" "src/licm/CMakeFiles/licm_core.dir/ops.cc.o.d"
  "/root/repo/src/licm/probabilistic.cc" "src/licm/CMakeFiles/licm_core.dir/probabilistic.cc.o" "gcc" "src/licm/CMakeFiles/licm_core.dir/probabilistic.cc.o.d"
  "/root/repo/src/licm/prune.cc" "src/licm/CMakeFiles/licm_core.dir/prune.cc.o" "gcc" "src/licm/CMakeFiles/licm_core.dir/prune.cc.o.d"
  "/root/repo/src/licm/worlds.cc" "src/licm/CMakeFiles/licm_core.dir/worlds.cc.o" "gcc" "src/licm/CMakeFiles/licm_core.dir/worlds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/licm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/licm_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/licm_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
