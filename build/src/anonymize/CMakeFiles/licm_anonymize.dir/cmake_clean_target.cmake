file(REMOVE_RECURSE
  "liblicm_anonymize.a"
)
