# Empty compiler generated dependencies file for licm_anonymize.
# This may be replaced when dependencies are built.
